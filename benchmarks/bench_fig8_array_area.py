"""E6 (Fig. 8): rotated-abutment array, cell-pair LUT, and the area claims.

Maps a batch of random 3-input functions onto cell pairs, simulates each
on the tiled array (complement cell + product plane + collector), and
reproduces the area arithmetic: <400 lambda^2 per pair versus 600 K-lambda^2
per conventional 4-LUT — the three-orders-of-magnitude claim.
"""

import numpy as np

from repro.arch.compare import area_claims_report
from repro.core.platform import PolymorphicPlatform
from repro.core.report import ExperimentReport
from repro.synth.macros import complement_cell, lut_pair_from_table
from repro.synth.truthtable import TruthTable


def map_and_check(seed: int) -> bool:
    """Map one random 3-var function through the full fabric path."""
    t = TruthTable.random(3, np.random.default_rng(seed))
    p = PolymorphicPlatform(1, 4)
    comp = p.place(complement_cell(3), 0, 0)
    lut = p.place(lut_pair_from_table(t), 0, 1)
    del lut
    ok = True
    for idx in range(8):
        bits = [(idx >> k) & 1 for k in range(3)]
        p2 = PolymorphicPlatform(1, 4)
        c2 = p2.place(complement_cell(3), 0, 0)
        l2 = p2.place(lut_pair_from_table(t), 0, 1)
        for k, b in enumerate(bits):
            p2.drive_bit(c2.inputs[f"x{k}"], b)
        p2.settle(120)
        ok &= p2.bit(l2.outputs["f"]) == int(t.outputs[idx])
    del comp
    return ok


def run_batch():
    return all(map_and_check(seed) for seed in range(6))


def test_fig8_pairs_and_area(benchmark):
    all_ok = benchmark(run_batch)
    rep = ExperimentReport("E6 / Fig. 8", "cell-pair LUTs on the tiled array")
    rep.add("random 3-LUTs via complement cell + pair", "functionally correct",
            "6/6 functions exhaustive" if all_ok else "FAILURES",
            verdict="match" if all_ok else "deviation")
    rep.add("pair capacity", "6 inputs / 6 outputs / 6 product terms",
            "6 columns x 6 rows per cell, 2-level across the pair")
    print()
    print(rep.render())
    print()
    print(area_claims_report().render())
    assert all_ok
    assert area_claims_report().all_match()
