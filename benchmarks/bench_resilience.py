"""Bench: the compile service under injected faults (`repro.service`).

Records what resilience costs and what it buys, per ISSUE 10:

* **crash recovery** — cold compile wall time with a worker killed on
  the first attempt (resubmitted exactly once, byte-identical) against
  the fault-free compile: the recovery overhead ratio;
* **degraded serving** — latency of handing out the marked golden
  stand-in when a die's repair budget is exhausted, against a real
  warm repair, plus the degraded fraction of a mixed-pressure burst;
* **retry / fault-point overhead** — wall cost of a retried transient
  around the backoff schedule, and nanoseconds per ``fault_point``
  visit with **no plan active** — the zero-overhead claim the whole
  harness rests on.

``run_all.py`` imports :func:`run_crash_recovery`,
:func:`run_degraded_serve` and :func:`run_retry_overhead` and folds
them into ``BENCH_results.json``; ``check_regressions.py`` prints the
rows (recorded, never gated — all machine-dependent).
"""

from __future__ import annotations

import time

from repro.datapath.adder import ripple_carry_netlist
from repro.pnr import sample_defect_map
from repro.pnr.parallel import fault_point
from repro.service import (
    CompileOptions,
    CompileService,
    FaultPlan,
    RetryPolicy,
)


def run_crash_recovery() -> dict:
    """Cold compile with the first worker killed vs fault-free."""
    t0 = time.perf_counter()
    with CompileService(workers=2) as svc:
        reference = svc.compile(ripple_carry_netlist(4)).bitstreams()
    clean_s = time.perf_counter() - t0

    plan = FaultPlan.from_specs([("pool.worker", "die", {"token": "0"})])
    t0 = time.perf_counter()
    with CompileService(workers=2) as svc, plan.activate():
        recovered = svc.compile(ripple_carry_netlist(4)).bitstreams()
        stats = svc.stats()
    crashed_s = time.perf_counter() - t0

    return {
        "clean_s": round(clean_s, 4),
        "crashed_s": round(crashed_s, 4),
        "recovery_overhead": round(crashed_s / max(clean_s, 1e-9), 3),
        "worker_restarts": stats["worker_restarts"],
        "identical": recovered == reference,
    }


def run_degraded_serve(n_dies: int = 6) -> dict:
    """Marked golden stand-ins vs real repairs for a burst of dies.

    Half the burst carries an impossible deadline (repair budget
    exhausted on entry — the degradation trigger), half is unbounded;
    the service must repair the calm half and degrade the pressured
    half, and the stand-in must be near-free next to a real repair.
    """
    nl = ripple_carry_netlist(2)
    dies = [
        sample_defect_map(13, 13, cell_fail=0.01, wire_fail=0.004, seed=s)
        for s in range(9, 9 + n_dies)
    ]
    with CompileService(workers=0) as svc:
        svc.compile(nl)  # the golden, cached
        repair_s = degraded_s = 0.0
        for i, die in enumerate(dies):
            pressured = i % 2 == 0
            options = (
                CompileOptions(deadline=1e-6) if pressured
                else CompileOptions()
            )
            t0 = time.perf_counter()
            result = svc.compile_for_die(nl, die, options)
            wall = time.perf_counter() - t0
            if result.degraded:
                degraded_s += wall
            else:
                repair_s += wall
        stats = svc.stats()

    degraded = stats["degraded"]
    served = n_dies
    repaired = served - degraded
    return {
        "dies": served,
        "degraded": degraded,
        "degraded_rate": round(degraded / served, 3),
        "repair_ms": round(1e3 * repair_s / max(repaired, 1), 3),
        "degraded_ms": round(1e3 * degraded_s / max(degraded, 1), 3),
    }


def run_retry_overhead() -> dict:
    """Backoff cost of a twice-transient call + bare fault-point cost."""
    policy = RetryPolicy(max_attempts=3, base_delay=0.002, seed=0)

    calls = [0]

    def flaky() -> str:
        calls[0] += 1
        if calls[0] % 3:  # two transient failures per success
            raise OSError("injected blip")
        return "ok"

    t0 = time.perf_counter()
    rounds = 20
    for _ in range(rounds):
        policy.call(flaky, token="bench")
    retried_s = time.perf_counter() - t0

    # The zero-overhead claim: a fault point with no plan active is a
    # dict lookup away from free.
    visits = 100_000
    t0 = time.perf_counter()
    for _ in range(visits):
        fault_point("service.run", token="bench")
    no_plan_s = time.perf_counter() - t0

    return {
        "retried_call_ms": round(1e3 * retried_s / rounds, 4),
        "retries_per_call": 2,
        "fault_point_no_plan_ns": round(1e9 * no_plan_s / visits, 1),
    }


# -- pytest wrappers (bench files run standalone under pytest -q) ----------
def test_crash_recovery_is_byte_identical(capsys):
    row = run_crash_recovery()
    with capsys.disabled():
        print(
            f"\n  crash recovery: clean {row['clean_s']}s -> crashed "
            f"{row['crashed_s']}s ({row['recovery_overhead']}x), "
            f"{row['worker_restarts']} restart"
        )
    assert row["identical"], "recovered compile must match fault-free bytes"
    assert row["worker_restarts"] == 1


def test_degraded_serve_is_marked_and_cheap(capsys):
    row = run_degraded_serve()
    with capsys.disabled():
        print(
            f"  degraded serve: {row['degraded']}/{row['dies']} dies "
            f"degraded, stand-in {row['degraded_ms']} ms vs repair "
            f"{row['repair_ms']} ms"
        )
    assert row["degraded"] == row["dies"] // 2
    assert row["degraded_ms"] < row["repair_ms"]


def test_fault_point_without_a_plan_is_cheap(capsys):
    row = run_retry_overhead()
    with capsys.disabled():
        print(
            f"  retry overhead: {row['retried_call_ms']} ms/call "
            f"(2 backoffs), fault point (no plan) "
            f"{row['fault_point_no_plan_ns']} ns"
        )
    # Generous ceiling: the no-plan path is two attribute loads and a
    # None check — microseconds would mean the guard regressed.
    assert row["fault_point_no_plan_ns"] < 5_000
