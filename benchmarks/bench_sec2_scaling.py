"""E11 (Section 2.1): interconnect-delay scaling study.

Regenerates the section's quantitative anchors across the 250 nm -> 22 nm
ladder: interconnect fraction of FPGA path delay, the O(lambda^1/2)
frequency-scaling estimate, the widening gap to custom silicon, and the
Liu & Pai driver-sizing wall.
"""

from repro.arch.compare import scaling_report
from repro.arch.scaling import scaling_series
from repro.util.technology import nodes_descending


def run_series():
    return scaling_series()


def test_sec2_scaling(benchmark):
    series = benchmark(run_series)
    rep = scaling_report()
    print()
    print(rep.render())
    print()
    print("  node    fpga_MHz  custom_MHz  poly_MHz  fpga_wire_frac")
    for n, f, c, p in zip(
        nodes_descending(), series["fpga"], series["custom"], series["polymorphic"]
    ):
        print(
            f"  {n.name:>6}  {f.frequency_mhz:8.0f}  {c.frequency_mhz:10.0f}"
            f"  {p.frequency_mhz:8.0f}  {f.wire_fraction:14.2f}"
        )
    assert rep.all_match()
    # Shape assertions: the gap to custom widens monotonically overall.
    gaps = [
        c.frequency_mhz / f.frequency_mhz
        for c, f in zip(series["custom"], series["fpga"])
    ]
    assert gaps[-1] > gaps[0]
    fracs = [f.wire_fraction for f in series["fpga"]]
    assert fracs[-1] > fracs[0]
