"""E9 (Fig. 11): Sutherland micropipeline throughput and latency.

Pushes token streams through the gate-level micropipeline at several
depths, verifies FIFO semantics and handshake conformance, and compares
measured cycle time against the token-flow model and a worst-case-clocked
synchronous pipeline.
"""

import numpy as np

from repro.asynclogic.handshake import check_two_phase, completed_transfers
from repro.asynclogic.micropipeline import MicropipelineSim, PipelineModel
from repro.core.report import ExperimentReport
from repro.sim.waveform import TraceSet


def run_depth(n_stages: int, n_tokens: int = 12):
    pipe = MicropipelineSim(n_stages=n_stages, data_width=4)
    times = [pipe.push(v & 15) for v in range(n_tokens)]
    pipe.drain(4000)
    return pipe, times


def run_all():
    return {n: run_depth(n) for n in (2, 4, 6)}


def test_fig11_micropipeline(benchmark):
    results = benchmark(run_all)
    rep = ExperimentReport("E9 / Fig. 11", "micropipeline FIFO")
    for n, (pipe, times) in results.items():
        gaps = np.diff(times[3:])
        traces = TraceSet(pipe.sim)
        violations = check_two_phase(traces["req_in"], traces["c[0]"])
        done = completed_transfers(traces["req_in"], traces["c[0]"])
        rep.add(
            f"{n}-stage: protocol",
            "transition signalling alternates",
            f"{len(violations)} violations, {done} transfers",
            verdict="match" if not violations and done == 12 else "deviation",
        )
        rep.add(
            f"{n}-stage: steady-state cycle",
            "depth-independent (set by local handshake)",
            f"{gaps.mean():.1f} units",
            verdict="match" if gaps.std() < gaps.mean() else "deviation",
        )
    # Cycle time should be roughly constant across depths (elastic FIFO).
    cycles = {n: float(np.diff(t[3:]).mean()) for n, (_, t) in results.items()}
    spread = max(cycles.values()) - min(cycles.values())
    rep.add("cycle vs depth", "flat", f"{cycles} (spread {spread:.1f})",
            verdict="match" if spread <= 0.5 * min(cycles.values()) else "deviation")

    model = PipelineModel(n_stages=4, forward_ps=7, reverse_ps=4)
    rep.add("token model cycle", "forward + reverse latency",
            f"{model.cycle_ps} units vs measured {cycles[4]:.1f}",
            verdict="shape-match")
    rep.add("vs synchronous at worst-case clock", "elastic pipeline >= clocked",
            f"{model.against_synchronous(clock_ps=16.0):.2f}x throughput",
            verdict="match" if model.against_synchronous(16.0) >= 1.0 else "deviation")
    print()
    print(rep.render())
    assert rep.all_match()
