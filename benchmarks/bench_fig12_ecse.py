"""E10 (Fig. 12): event-controlled storage element on the fabric.

Places the ECSE cell pair, walks it through full two-phase capture/pass
cycles against the behavioural golden model, and verifies the hazard-free
cover property of its excitation function.
"""

from repro.core.platform import PolymorphicPlatform
from repro.core.report import ExperimentReport
from repro.synth.asyncfsm import count_sic_hazards, ecse_table, hazard_free_cover
from repro.synth.macros import ecse_pair


def golden(seq):
    """Behavioural capture-pass reference."""
    z = 0
    out = []
    for r, a, din in seq:
        if r == a:
            z = din
        out.append(z)
    return out


def run_sequence():
    seq = [
        (0, 0, 1),  # transparent: z = 1
        (1, 0, 1),  # request event: capture
        (1, 0, 0),  # opaque: input change invisible
        (1, 1, 0),  # acknowledge event: transparent, z = 0
        (1, 1, 1),  # still transparent: z = 1
        (0, 1, 1),  # request event (falling phase): capture
        (0, 1, 0),  # opaque again
        (0, 0, 0),  # acknowledge: transparent, z = 0
    ]
    p = PolymorphicPlatform(1, 3)
    placed = p.place(ecse_pair(), 0, 0)
    got = []
    now = 0
    for r, a, din in seq:
        p.drive_bit(placed.inputs["req"], r)
        p.drive_bit(placed.inputs["req_n"], 1 - r)
        p.drive_bit(placed.inputs["ack"], a)
        p.drive_bit(placed.inputs["ack_n"], 1 - a)
        p.drive_bit(placed.inputs["din"], din)
        now += 100
        p.run(now)
        got.append(p.bit(placed.outputs["z"]))
    return seq, got


def test_fig12_ecse(benchmark):
    seq, got = benchmark(run_sequence)
    want = golden(seq)
    rep = ExperimentReport("E10 / Fig. 12", "event-controlled storage element")
    rep.add("two-phase capture/pass trace", str(want), str(got),
            verdict="match" if got == want else "deviation")
    macro = ecse_pair()
    rep.add("cell budget", "reconfigurable blocks (one pair)",
            f"{macro.n_cells} cells",
            verdict="match" if macro.n_cells == 2 else "deviation")
    cover = hazard_free_cover(ecse_table())
    hazards = count_sic_hazards(ecse_table(), cover)
    rep.add("excitation cover", "hazard-free (async FSM techniques)",
            f"{len(cover)} products, {hazards} SIC hazards",
            verdict="match" if hazards == 0 and len(cover) <= 6 else "deviation")
    print()
    print(rep.render())
    assert rep.all_match()
