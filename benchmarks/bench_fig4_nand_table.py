"""E2 (Fig. 4): configurable 2-NAND function table.

Regenerates the five-row configuration table {NAND, NOT A, NOT B, 1, 0}
from the analog gate model (the paper's printed single-input rows are the
complemented functions; overbars were lost in the text).
"""

from repro.circuits.gates import ConfigurableNAND2
from repro.core.report import ExperimentReport

TABLE = [
    # (bias_a, bias_b, expected classification, paper row)
    (0.0, 0.0, "NAND", "(A.B)'"),
    (0.0, +2.0, "NOT_A", "A' (table row 'A')"),
    (+2.0, 0.0, "NOT_B", "B' (table row 'B')"),
    (-2.0, -2.0, "ONE", "1"),
    (+2.0, +2.0, "ZERO", "0"),
]


def run_table():
    gate = ConfigurableNAND2(vdd=1.0)
    return [(ba, bb, gate.classify(ba, bb)) for ba, bb, _, _ in TABLE]


def test_fig4_configuration_table(benchmark):
    results = benchmark(run_table)
    rep = ExperimentReport("E2 / Fig. 4", "configurable 2-NAND function set")
    for (ba, bb, got), (_, _, want, label) in zip(results, TABLE):
        rep.add(
            f"V_G=({ba:+.0f},{bb:+.0f}) V",
            label,
            got,
            verdict="match" if got == want else "deviation",
        )
    rep.note("paper's single-letter rows are the complemented inputs; "
             "NAND(A, 1) = NOT A")
    print()
    print(rep.render())
    assert rep.all_match()
