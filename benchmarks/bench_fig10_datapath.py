"""E8 (Fig. 10): ripple-carry adder / accumulator datapath.

Runs the fabric accumulator through an accumulation sequence, checks the
five-term adder claim and the cells-per-bit budget, and reproduces the
serial-versus-parallel crossover that motivates the paper's bit-serial
aside.
"""

from repro.core.report import ExperimentReport
from repro.datapath.accumulator import Accumulator
from repro.datapath.adder import RippleCarryAdder
from repro.datapath.bitserial import crossover_width
from repro.synth.macros import full_adder_slice
from repro.util.technology import node, nodes_descending


def run_accumulator():
    acc = Accumulator(4)
    acc.reset()
    values = [acc.accumulate(b) for b in (3, 5, 6, 1)]
    return acc, values


def test_fig10_accumulator(benchmark):
    acc, values = benchmark(run_accumulator)
    rep = ExperimentReport("E8 / Fig. 10", "adder + accumulator datapath")
    expect = [3, 8, 14, 15]
    rep.add("accumulation sequence (+3,+5,+6,+1)", str(expect), str(values),
            verdict="match" if values == expect else "deviation")
    fa = full_adder_slice()
    n_terms = sum(
        1 for r in range(6) if fa.cells[(0, 0)].row_kind(r) == "nand"
    )
    rep.add("full-adder product terms", "five terms (shared sum/carry)",
            str(n_terms),
            verdict="match" if n_terms == 5 else "deviation")
    rep.add("ripple transport", "two horizontal connections between cells",
            "cout/cout' on east lines 4/5 abutting next bit's cin/cin'")
    rep.add("adder cells per bit", "one 6-NAND cell pair",
            f"{RippleCarryAdder.CELLS_PER_BIT} cells "
            "(pair + sum/ripple-forward cell)",
            verdict="shape-match")
    rep.add("accumulator cells per bit", "adder pair + register",
            f"{acc.cells_per_bit():.0f} cells")

    # Serial-vs-parallel crossover across scaling (Section 4 aside).
    w_old = crossover_width(node("250nm"))
    w_new = crossover_width(node("22nm"))
    rep.add("bit-serial crossover width 250nm -> 22nm",
            "serial wins earlier as wires worsen",
            f"{w_old} -> {w_new} bits",
            verdict="match" if w_new < w_old else "deviation")
    print()
    print(rep.render())
    print()
    print("  serial-vs-ripple crossover by node:")
    for n in nodes_descending():
        print(f"    {n.name:>6}: {crossover_width(n)} bits")
    assert rep.all_match()
