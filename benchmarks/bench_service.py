"""Bench: the compile service under load (`repro.service`).

Records what serving adds on top of the raw flow: throughput of a
concurrent job mix (duplicates + distinct designs) against the same mix
compiled serially cold, the cache hit rate that mix achieves, the
cold vs incremental recompile latency for a one-gate edit — the ISSUE 7
acceptance number (``incremental_speedup``, required >= 5x) — and, per
ISSUE 9, the persisted tier (cold vs disk-hit vs memory-hit latency
for one artifact) and the 5-edit session chain against its cold
equivalent.  ``run_all.py`` imports :func:`run_service_throughput`,
:func:`run_service_incremental`, :func:`run_service_store` and
:func:`run_service_session` and folds them into ``BENCH_results.json``;
``check_regressions.py`` prints the rows (recorded, not gated).
"""

from __future__ import annotations

import time

from repro.datapath.adder import ripple_carry_netlist
from repro.datapath.multiplier import array_multiplier_netlist
from repro.netlist import Netlist
from repro.pnr import compile_incremental, compile_to_fabric
from repro.service import ArtifactStore, CompileService


def _job_mix() -> list[Netlist]:
    """18 submissions over 3 distinct circuits — a cache-friendly burst."""
    makers = [
        lambda: ripple_carry_netlist(4),
        lambda: ripple_carry_netlist(8),
        lambda: array_multiplier_netlist(2),
    ]
    return [makers[i % 3]() for i in range(18)]


def _one_gate_edit(nl: Netlist) -> Netlist:
    flip = next(c for c in nl.cells if c.kind == "and").name
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        kind = "or" if c.name == flip else c.kind
        out.add(kind, c.name, list(c.inputs), c.output,
                delay=c.delay, **dict(c.params))
    return out


def run_service_throughput(workers: int = 4) -> dict:
    """Concurrent served mix vs the same mix compiled serially cold."""
    jobs = _job_mix()

    t0 = time.perf_counter()
    for nl in jobs:
        compile_to_fabric(nl, seed=0, workers=0)
    serial_s = time.perf_counter() - t0

    with CompileService(workers=workers, cache_capacity=16) as svc:
        t0 = time.perf_counter()
        futures = [svc.submit(nl) for nl in jobs]
        for f in futures:
            f.result()
        served_s = time.perf_counter() - t0
        # Second wave of the same mix against the warm cache: the
        # steady-state latency a recompiling client actually sees.
        t0 = time.perf_counter()
        for f in [svc.submit(nl) for nl in jobs]:
            f.result()
        warm_s = time.perf_counter() - t0
        stats = svc.stats()

    cache = stats["cache"]
    return {
        "jobs": len(jobs),
        "distinct": stats["compiles"],
        "workers": workers,
        "serial_cold_s": round(serial_s, 4),
        "served_s": round(served_s, 4),
        "warm_pass_s": round(warm_s, 4),
        "speedup": round(serial_s / served_s, 2) if served_s > 0 else None,
        "jobs_per_s": round(len(jobs) / served_s, 1) if served_s > 0 else None,
        "coalesced": stats["coalesced"],
        "cache_hits": cache["hits"],
        "cache_hit_rate": round(
            cache["hits"] / cache["lookups"], 3
        ) if cache["lookups"] else None,
    }


def run_service_incremental() -> dict:
    """Cold vs delta-path latency for a one-gate rca8 edit (min of 3)."""
    nl = ripple_carry_netlist(8)
    base = compile_to_fabric(nl, seed=0, workers=0)
    edited = _one_gate_edit(nl)

    def best_of(fn, n=3):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    cold_s = best_of(lambda: compile_to_fabric(edited, seed=0, workers=0))
    inc_s = best_of(lambda: compile_incremental(edited, base, seed=0))
    return {
        "design": "rca8",
        "edit": "one-gate kind flip",
        "cold_s": round(cold_s, 4),
        "incremental_s": round(inc_s, 4),
        "incremental_speedup": round(cold_s / inc_s, 1) if inc_s > 0 else None,
    }


def run_service_store() -> dict:
    """Cold vs disk-hit vs memory-hit latency for one rca8 artifact.

    The three tiers of the persisted service, measured end to end
    through ``CompileService.compile``: a cold compile that publishes
    to the store, a *fresh* service whose first lookup deserialises
    from disk, and the same service's second lookup served from the
    promoted in-memory entry (min of 3 for the hit paths).
    """
    import tempfile

    nl = ripple_carry_netlist(8)
    root = tempfile.mkdtemp(prefix="bench-store-")

    with CompileService(workers=0, store=root) as svc:
        t0 = time.perf_counter()
        svc.compile(nl)
        cold_s = time.perf_counter() - t0

    disk_times, mem_times = [], []
    for _ in range(3):
        with CompileService(workers=0, store=root) as svc:
            t0 = time.perf_counter()
            served = svc.compile(nl)
            disk_times.append(time.perf_counter() - t0)
            assert served.from_store
            t0 = time.perf_counter()
            again = svc.compile(nl)
            mem_times.append(time.perf_counter() - t0)
            assert again.cached and not again.from_store
    disk_s, mem_s = min(disk_times), min(mem_times)
    store_stats = ArtifactStore(root).stats()
    return {
        "design": "rca8",
        "cold_ms": round(cold_s * 1e3, 2),
        "disk_hit_ms": round(disk_s * 1e3, 2),
        "memory_hit_ms": round(mem_s * 1e3, 2),
        "disk_hit_speedup": round(cold_s / disk_s, 1) if disk_s > 0 else None,
        "blob_bytes": store_stats["bytes"],
    }


def run_service_session() -> dict:
    """A 5-edit cumulative session vs the same five edits compiled cold.

    Each session step warm-starts from the previous step's artifact;
    the cold chain compiles every edited netlist from scratch.  A step
    the delta path declines falls back (recorded, not hidden), so the
    chain speedup is the honest end-to-end number.
    """
    base = ripple_carry_netlist(16)
    gates = sorted(c.name for c in base.cells if c.kind == "and")

    def edit(k: int):
        flips = set(gates[:k])
        out = Netlist(base.name)
        for p in base.inputs:
            out.add_input(p)
        for p in base.outputs:
            out.add_output(p)
        for c in base.cells:
            kind = "or" if c.name in flips else c.kind
            out.add(kind, c.name, list(c.inputs), c.output,
                    delay=c.delay, **dict(c.params))
        return out

    edits = [edit(k) for k in range(1, 6)]

    t0 = time.perf_counter()
    for nl in edits:
        compile_to_fabric(nl, seed=0, workers=0)
    cold_chain_s = time.perf_counter() - t0

    with CompileService(workers=0) as svc:
        session = svc.open_session(base)
        t0 = time.perf_counter()
        for nl in edits:
            session.apply(nl)
        session_chain_s = time.perf_counter() - t0
        s = session.stats()

    return {
        "design": "rca16",
        "edits": len(edits),
        "cold_chain_s": round(cold_chain_s, 4),
        "session_chain_s": round(session_chain_s, 4),
        "chain_speedup": round(
            cold_chain_s / session_chain_s, 1
        ) if session_chain_s > 0 else None,
        "incremental_steps": s["incremental"],
        "fallback_steps": s["fallbacks"],
    }


def test_service_throughput_with_cache_beats_serial(capsys):
    """The served mix must win: 15 of 18 jobs are cache/coalesce wins."""
    r = run_service_throughput()
    assert r["distinct"] == 3
    # wave 1 duplicates coalesce or hit; wave 2 is all hits
    assert r["coalesced"] + r["cache_hits"] == 2 * r["jobs"] - r["distinct"]
    assert r["served_s"] < r["serial_cold_s"]
    assert r["warm_pass_s"] < r["served_s"]
    with capsys.disabled():
        print(
            f"\n  service mix: {r['jobs']} jobs -> {r['distinct']} compiles, "
            f"{r['served_s']:.2f}s vs {r['serial_cold_s']:.2f}s serial "
            f"({r['speedup']}x), warm pass {r['warm_pass_s'] * 1e3:.0f} ms, "
            f"hit rate {r['cache_hit_rate']}"
        )


def test_incremental_recompile_meets_5x(capsys):
    """ISSUE 7 acceptance: one-gate rca8 edit recompiles >= 5x faster."""
    r = run_service_incremental()
    assert r["incremental_speedup"] >= 5
    with capsys.disabled():
        print(
            f"\n  incremental rca8: cold {r['cold_s'] * 1e3:.1f} ms -> "
            f"{r['incremental_s'] * 1e3:.1f} ms ({r['incremental_speedup']}x)"
        )


def test_store_disk_hit_beats_cold_compile(capsys):
    """A disk hit must beat recompiling, and lose to a memory hit."""
    r = run_service_store()
    assert r["disk_hit_ms"] < r["cold_ms"]
    assert r["memory_hit_ms"] <= r["disk_hit_ms"]
    with capsys.disabled():
        print(
            f"\n  store tiers rca8: cold {r['cold_ms']:.1f} ms -> disk "
            f"{r['disk_hit_ms']:.1f} ms ({r['disk_hit_speedup']}x) -> "
            f"memory {r['memory_hit_ms']:.2f} ms "
            f"({r['blob_bytes'] / 1e3:.0f} kB blob)"
        )


def test_session_chain_beats_cold_chain(capsys):
    """The 5-edit chain must beat five cold compiles end to end."""
    r = run_service_session()
    assert r["session_chain_s"] < r["cold_chain_s"]
    assert r["incremental_steps"] + r["fallback_steps"] == r["edits"]
    with capsys.disabled():
        print(
            f"\n  session chain rca16: {r['edits']} edits, cold "
            f"{r['cold_chain_s']:.2f}s -> session {r['session_chain_s']:.2f}s "
            f"({r['chain_speedup']}x; {r['incremental_steps']} delta, "
            f"{r['fallback_steps']} fallback)"
        )
