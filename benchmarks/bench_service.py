"""Bench: the compile service under load (`repro.service`).

Records what serving adds on top of the raw flow: throughput of a
concurrent job mix (duplicates + distinct designs) against the same mix
compiled serially cold, the cache hit rate that mix achieves, and the
cold vs incremental recompile latency for a one-gate edit — the ISSUE 7
acceptance number (``incremental_speedup``, required >= 5x).
``run_all.py`` imports :func:`run_service_throughput` and
:func:`run_service_incremental` and folds both into
``BENCH_results.json``; ``check_regressions.py`` prints the rows
(recorded, not gated).
"""

from __future__ import annotations

import time

from repro.datapath.adder import ripple_carry_netlist
from repro.datapath.multiplier import array_multiplier_netlist
from repro.netlist import Netlist
from repro.pnr import compile_incremental, compile_to_fabric
from repro.service import CompileService


def _job_mix() -> list[Netlist]:
    """18 submissions over 3 distinct circuits — a cache-friendly burst."""
    makers = [
        lambda: ripple_carry_netlist(4),
        lambda: ripple_carry_netlist(8),
        lambda: array_multiplier_netlist(2),
    ]
    return [makers[i % 3]() for i in range(18)]


def _one_gate_edit(nl: Netlist) -> Netlist:
    flip = next(c for c in nl.cells if c.kind == "and").name
    out = Netlist(nl.name)
    for p in nl.inputs:
        out.add_input(p)
    for p in nl.outputs:
        out.add_output(p)
    for c in nl.cells:
        kind = "or" if c.name == flip else c.kind
        out.add(kind, c.name, list(c.inputs), c.output,
                delay=c.delay, **dict(c.params))
    return out


def run_service_throughput(workers: int = 4) -> dict:
    """Concurrent served mix vs the same mix compiled serially cold."""
    jobs = _job_mix()

    t0 = time.perf_counter()
    for nl in jobs:
        compile_to_fabric(nl, seed=0, workers=0)
    serial_s = time.perf_counter() - t0

    with CompileService(workers=workers, cache_capacity=16) as svc:
        t0 = time.perf_counter()
        futures = [svc.submit(nl) for nl in jobs]
        for f in futures:
            f.result()
        served_s = time.perf_counter() - t0
        # Second wave of the same mix against the warm cache: the
        # steady-state latency a recompiling client actually sees.
        t0 = time.perf_counter()
        for f in [svc.submit(nl) for nl in jobs]:
            f.result()
        warm_s = time.perf_counter() - t0
        stats = svc.stats()

    cache = stats["cache"]
    return {
        "jobs": len(jobs),
        "distinct": stats["compiles"],
        "workers": workers,
        "serial_cold_s": round(serial_s, 4),
        "served_s": round(served_s, 4),
        "warm_pass_s": round(warm_s, 4),
        "speedup": round(serial_s / served_s, 2) if served_s > 0 else None,
        "jobs_per_s": round(len(jobs) / served_s, 1) if served_s > 0 else None,
        "coalesced": stats["coalesced"],
        "cache_hits": cache["hits"],
        "cache_hit_rate": round(
            cache["hits"] / cache["lookups"], 3
        ) if cache["lookups"] else None,
    }


def run_service_incremental() -> dict:
    """Cold vs delta-path latency for a one-gate rca8 edit (min of 3)."""
    nl = ripple_carry_netlist(8)
    base = compile_to_fabric(nl, seed=0, workers=0)
    edited = _one_gate_edit(nl)

    def best_of(fn, n=3):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    cold_s = best_of(lambda: compile_to_fabric(edited, seed=0, workers=0))
    inc_s = best_of(lambda: compile_incremental(edited, base, seed=0))
    return {
        "design": "rca8",
        "edit": "one-gate kind flip",
        "cold_s": round(cold_s, 4),
        "incremental_s": round(inc_s, 4),
        "incremental_speedup": round(cold_s / inc_s, 1) if inc_s > 0 else None,
    }


def test_service_throughput_with_cache_beats_serial(capsys):
    """The served mix must win: 15 of 18 jobs are cache/coalesce wins."""
    r = run_service_throughput()
    assert r["distinct"] == 3
    # wave 1 duplicates coalesce or hit; wave 2 is all hits
    assert r["coalesced"] + r["cache_hits"] == 2 * r["jobs"] - r["distinct"]
    assert r["served_s"] < r["serial_cold_s"]
    assert r["warm_pass_s"] < r["served_s"]
    with capsys.disabled():
        print(
            f"\n  service mix: {r['jobs']} jobs -> {r['distinct']} compiles, "
            f"{r['served_s']:.2f}s vs {r['serial_cold_s']:.2f}s serial "
            f"({r['speedup']}x), warm pass {r['warm_pass_s'] * 1e3:.0f} ms, "
            f"hit rate {r['cache_hit_rate']}"
        )


def test_incremental_recompile_meets_5x(capsys):
    """ISSUE 7 acceptance: one-gate rca8 edit recompiles >= 5x faster."""
    r = run_service_incremental()
    assert r["incremental_speedup"] >= 5
    with capsys.disabled():
        print(
            f"\n  incremental rca8: cold {r['cold_s'] * 1e3:.1f} ms -> "
            f"{r['incremental_s'] * 1e3:.1f} ms ({r['incremental_speedup']}x)"
        )
