"""Ablation (Section 4/5 future-work): multiplier organisation trade study.

Validates the shift-add multiplier on the fabric accumulator, then sweeps
the area-time trade between array, shift-add and bit-serial organisations
across technology nodes — the "serial vs parallel design styles" question
the paper's conclusion poses.
"""

from repro.core.report import ExperimentReport
from repro.datapath.multiplier import ShiftAddMultiplier, style_comparison
from repro.util.technology import node, nodes_descending


def run_multiplier():
    mul = ShiftAddMultiplier(3)
    cases = [(3, 5), (7, 7), (6, 4)]
    return mul, [(a, b, mul.multiply(a, b)) for a, b in cases]


def test_multiplier_styles(benchmark):
    mul, results = benchmark(run_multiplier)
    rep = ExperimentReport("ablation", "multiplier organisations")
    ok = all(got == a * b for a, b, got in results)
    rep.add("shift-add products on fabric", "exact", f"{results}",
            verdict="match" if ok else "deviation")
    rep.add("fabric cells (3x3 shift-add)", "one accumulator",
            str(mul.cells_used()))

    n65 = node("65nm")
    costs = {c.style: c for c in style_comparison(16, n65)}
    rep.add("16x16 area ordering", "serial < shift-add < array",
            " < ".join(sorted(costs, key=lambda s: costs[s].cells)),
            verdict="match"
            if costs["bit-serial"].cells < costs["shift-add"].cells < costs["array"].cells
            else "deviation")
    rep.add("16x16 latency ordering", "array fastest",
            min(costs.values(), key=lambda c: c.latency_ps).style,
            verdict="match"
            if min(costs.values(), key=lambda c: c.latency_ps).style == "array"
            else "deviation")
    print()
    print(rep.render())
    print()
    print("  area-time (cells, ns) for 16x16 by node:")
    for tech in nodes_descending():
        row = {c.style: c for c in style_comparison(16, tech)}
        print(f"    {tech.name:>6}: "
              + "  ".join(f"{s}=({c.cells}, {c.latency_ps / 1e3:.2f})"
                          for s, c in row.items()))
    assert rep.all_match()
