"""Ablation (Section 3 manufacturability claim): undoped DG vs doped bulk.

The paper's device-level argument — "the undoped channel region eliminates
performance variations ... due to random dopant dispersion" — quantified as
fabric configurability yield: Monte-Carlo over whole arrays of leaf cells,
with the analytic Gaussian cross-check.

Second half: the *functional* Monte-Carlo (gate-level fault sweep over the
Fig. 10 adder slice) run on both simulation backends, measuring the
configurations-per-second speedup the bit-parallel batch engine delivers
over one-at-a-time event simulation.
"""

import numpy as np

from repro.arch.montecarlo import (
    analytic_cell_yield,
    cell_fail_probability,
    compare_device_options,
    functional_fabric_yield,
)
from repro.core.report import ExperimentReport
from repro.devices.variation import bulk_rdf_sigma_vt, dg_geometric_sigma_vt
from repro.netlist import BatchBackend, EventBackend
from repro.synth.macros import full_adder_testbench


def run_mc():
    return compare_device_options(
        n_arrays=300, blocks_per_array=64, length_nm=10.0,
        rng=np.random.default_rng(42),
    )


def test_variation_ablation(benchmark):
    dg, bulk = benchmark(run_mc)
    rep = ExperimentReport("ablation", "RDF-free DG vs doped bulk at 10 nm")
    rep.add("sigma_VT, undoped DG", "geometry-limited (small)",
            f"{dg.sigma_vt * 1e3:.1f} mV")
    rep.add("sigma_VT, doped bulk", "RDF-dominated (large at 10 nm)",
            f"{bulk.sigma_vt * 1e3:.1f} mV",
            verdict="match" if bulk.sigma_vt > 5 * dg.sigma_vt else "deviation")
    rep.add("leaf-cell configurability yield",
            "DG ~ 1, bulk degraded",
            f"DG {dg.cell_yield:.4f} vs bulk {bulk.cell_yield:.4f}",
            verdict="match" if dg.cell_yield > bulk.cell_yield else "deviation")
    rep.add("6x6 block yield", "bulk collapses at block granularity",
            f"DG {dg.block_yield:.4f} vs bulk {bulk.block_yield:.4f}",
            verdict="match" if dg.block_yield > bulk.block_yield + 0.2 else "deviation")
    ana_bulk = analytic_cell_yield(bulk.sigma_vt)
    rep.add("Monte-Carlo vs analytic (bulk)", "agree",
            f"{bulk.cell_yield:.4f} vs {ana_bulk:.4f}",
            verdict="match" if abs(bulk.cell_yield - ana_bulk) < 0.02 else "deviation")
    print()
    print(rep.render())
    print()
    print("  sigma_VT vs gate length (bulk RDF / DG geometric), nm -> mV:")
    for length in (50.0, 25.0, 10.0):
        print(f"    {length:4.0f} nm: bulk {bulk_rdf_sigma_vt(length, length) * 1e3:6.1f}"
              f"  dg {float(dg_geometric_sigma_vt(length)) * 1e3:5.2f}")
    assert rep.all_match()


def run_functional_yield_comparison(
    n_event_configs: int = 40, n_batch_configs: int = 4000
):
    """Functional yield on both backends; returns the two results.

    The batch run evaluates 100x the configurations of the event run —
    the throughput metric (configs/second) is what is compared.
    """
    nl, stim, golden = full_adder_testbench()
    p_fail = cell_fail_probability(bulk_rdf_sigma_vt(10.0, 10.0))
    event = functional_fabric_yield(
        nl, stim, golden, p_fail, n_event_configs,
        rng=np.random.default_rng(42), backend=EventBackend(),
        label="event one-at-a-time",
    )
    batch = functional_fabric_yield(
        nl, stim, golden, p_fail, n_batch_configs,
        rng=np.random.default_rng(42), backend=BatchBackend(),
        label="batch bit-parallel",
    )
    return event, batch


def test_functional_yield_batch_speedup(benchmark):
    event, batch = benchmark(run_functional_yield_comparison)
    speedup = batch.configs_per_second / event.configs_per_second
    rep = ExperimentReport(
        "mc-backends", "Monte-Carlo functional yield: batch vs event backend"
    )
    rep.add(
        "event throughput", "baseline (1 config per simulation)",
        f"{event.configs_per_second:,.0f} configs/s",
    )
    rep.add(
        "batch throughput", ">= 10x the event backend",
        f"{batch.configs_per_second:,.0f} configs/s ({speedup:,.0f}x)",
        verdict="match" if speedup >= 10 else "deviation",
    )
    rep.add(
        "yield agreement", "both engines sample the same model",
        f"event {event.functional_yield:.3f} vs batch {batch.functional_yield:.3f}",
        verdict="match"
        if abs(event.functional_yield - batch.functional_yield) < 0.15
        else "deviation",
    )
    print()
    print(rep.render())
    assert rep.all_match()
    assert speedup >= 10.0
