"""Ablation (Section 3 manufacturability claim): undoped DG vs doped bulk.

The paper's device-level argument — "the undoped channel region eliminates
performance variations ... due to random dopant dispersion" — quantified as
fabric configurability yield: Monte-Carlo over whole arrays of leaf cells,
with the analytic Gaussian cross-check.
"""

import numpy as np

from repro.arch.montecarlo import analytic_cell_yield, compare_device_options
from repro.core.report import ExperimentReport
from repro.devices.variation import bulk_rdf_sigma_vt, dg_geometric_sigma_vt


def run_mc():
    return compare_device_options(
        n_arrays=300, blocks_per_array=64, length_nm=10.0,
        rng=np.random.default_rng(42),
    )


def test_variation_ablation(benchmark):
    dg, bulk = benchmark(run_mc)
    rep = ExperimentReport("ablation", "RDF-free DG vs doped bulk at 10 nm")
    rep.add("sigma_VT, undoped DG", "geometry-limited (small)",
            f"{dg.sigma_vt * 1e3:.1f} mV")
    rep.add("sigma_VT, doped bulk", "RDF-dominated (large at 10 nm)",
            f"{bulk.sigma_vt * 1e3:.1f} mV",
            verdict="match" if bulk.sigma_vt > 5 * dg.sigma_vt else "deviation")
    rep.add("leaf-cell configurability yield",
            "DG ~ 1, bulk degraded",
            f"DG {dg.cell_yield:.4f} vs bulk {bulk.cell_yield:.4f}",
            verdict="match" if dg.cell_yield > bulk.cell_yield else "deviation")
    rep.add("6x6 block yield", "bulk collapses at block granularity",
            f"DG {dg.block_yield:.4f} vs bulk {bulk.block_yield:.4f}",
            verdict="match" if dg.block_yield > bulk.block_yield + 0.2 else "deviation")
    ana_bulk = analytic_cell_yield(bulk.sigma_vt)
    rep.add("Monte-Carlo vs analytic (bulk)", "agree",
            f"{bulk.cell_yield:.4f} vs {ana_bulk:.4f}",
            verdict="match" if abs(bulk.cell_yield - ana_bulk) < 0.02 else "deviation")
    print()
    print(rep.render())
    print()
    print("  sigma_VT vs gate length (bulk RDF / DG geometric), nm -> mV:")
    for length in (50.0, 25.0, 10.0):
        print(f"    {length:4.0f} nm: bulk {bulk_rdf_sigma_vt(length, length) * 1e3:6.1f}"
              f"  dg {float(dg_geometric_sigma_vt(length)) * 1e3:5.2f}")
    assert rep.all_match()
