"""E1 (Fig. 3): configurable-inverter voltage-transfer-curve family.

Regenerates the five-bias VTC family and checks the figure's shape: the
switching threshold sweeps across the logic range with back-gate bias,
saturating into stuck-high (V_G2 <= -1.5 V) and stuck-low (>= +1.5 V).
"""

import numpy as np

from repro.circuits.gates import ConfigurableInverter
from repro.core.report import ExperimentReport

BIASES = (-1.5, -0.5, 0.0, +0.5, +1.5)


def run_family():
    inv = ConfigurableInverter(vdd=1.0)
    return inv.vtc_family(BIASES, n_points=401)


def test_fig3_vtc_family(benchmark):
    family = benchmark(run_family)

    rep = ExperimentReport("E1 / Fig. 3", "configurable inverter VTC family")
    curves = dict(zip(BIASES, family))
    rep.add("V_G2 = -1.5 V", "output stays high",
            "stuck high" if curves[-1.5].is_stuck_high else "SWITCHES",
            verdict="match" if curves[-1.5].is_stuck_high else "deviation")
    rep.add("V_G2 = +1.5 V", "output stays low",
            "stuck low" if curves[+1.5].is_stuck_low else "SWITCHES",
            verdict="match" if curves[+1.5].is_stuck_low else "deviation")
    mids = [curves[b].threshold for b in (-0.5, 0.0, +0.5)]
    ordered = mids[0] > mids[1] > mids[2]
    rep.add("threshold vs bias", "moves monotonically across the range",
            f"V_M = {mids[0]:.2f} / {mids[1]:.2f} / {mids[2]:.2f} V",
            verdict="match" if ordered else "deviation")
    rep.add("V_G2 = 0 V symmetry", "switches near VDD/2",
            f"V_M = {mids[1]:.3f} V",
            verdict="match" if abs(mids[1] - 0.5) < 0.1 else "deviation")
    swing = curves[0.0].vout.max() - curves[0.0].vout.min()
    rep.add("active-curve swing", "full rail", f"{swing:.3f} V",
            verdict="match" if swing > 0.9 else "deviation")
    print()
    print(rep.render())
    assert rep.all_match()

    # Series for EXPERIMENTS.md: threshold sample grid.
    vin = family[2].vin
    assert len(vin) == 401
    assert np.all(np.diff(family[2].vout) <= 1e-9)
