"""E3 (Fig. 5): inverting / non-inverting / open 3-state driver table.

Regenerates the three-mode configuration table from the driver model and
verifies both logic polarities plus high impedance.  See EXPERIMENTS.md
for the one modelling deviation (the non-inverting mode spends a second
complementary stage).
"""

from repro.circuits.gates import TristateDriver
from repro.core.report import ExperimentReport


def run_modes():
    drv = TristateDriver(vdd=1.0)
    out = {}
    for vg1, vg2 in [(0.0, -2.0), (+2.0, 0.0), (-2.0, -2.0)]:
        mode = drv.mode_for_biases(vg1, vg2)
        out[(vg1, vg2)] = (mode, drv.drive(0, mode), drv.drive(1, mode))
    return out


def test_fig5_driver_modes(benchmark):
    modes = benchmark(run_modes)
    rep = ExperimentReport("E3 / Fig. 5", "configurable 3-state driver table")
    inv = modes[(0.0, -2.0)]
    rep.add("row 1: inverting", "Out = IN'",
            f"mode={inv[0]}, 0->{inv[1]}, 1->{inv[2]}",
            verdict="match" if inv[:1] == ("INVERTING",) and inv[1] == 1 and inv[2] == 0 else "deviation")
    buf = modes[(+2.0, 0.0)]
    rep.add("row 2: non-inverting", "Out = IN",
            f"mode={buf[0]}, 0->{buf[1]}, 1->{buf[2]}",
            verdict="match" if buf[0] == "NON_INVERTING" and buf[1] == 0 and buf[2] == 1 else "deviation")
    opn = modes[(-2.0, -2.0)]
    rep.add("row 3: open circuit", "Out = O/C",
            f"mode={opn[0]}, drives nothing" if opn[1] is None else f"drives {opn[1]}",
            verdict="match" if opn[0] == "OPEN" and opn[1] is None else "deviation")
    rep.note("non-inverting mode realised as two cascaded inverting stages "
             "(Fig. 5's exact 4-transistor reorganisation is not recoverable "
             "from the figure); table semantics reproduced exactly")
    print()
    print(rep.render())
    assert rep.all_match()
