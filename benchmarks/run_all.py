#!/usr/bin/env python
"""Run every bench, time it, and record the perf trajectory.

Usage::

    python benchmarks/run_all.py [--quick]

Each ``bench_*.py`` in this directory is executed as its own pytest run
(they are not collected by the default test sweep) and timed.  On top of
the per-bench wall times, three simulator-throughput microbenches are
measured directly:

* ``event_events_per_s``   — raw event-scheduler throughput (a saturated
  gate-level micropipeline);
* ``batch_vectors_per_s``  — bit-parallel vectors/second through the
  8-bit fabric ripple-carry adder on the batch backend;
* ``mc_configs_per_s``     — Monte-Carlo functional-yield configurations
  per second on both backends, plus their ratio (the build-once /
  evaluate-many speedup this architecture exists for).

Results go to ``BENCH_results.json`` next to this script, keyed by bench
name, so successive PRs can diff the trajectory.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent
SRC = REPO / "src"


def run_benches(quick: bool) -> dict[str, dict]:
    """Execute each bench file under pytest; record wall time and status."""
    results: dict[str, dict] = {}
    benches = sorted(HERE.glob("bench_*.py"))
    if quick:
        benches = benches[:3]
    for bench in benches:
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", str(bench)],
            cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
            capture_output=True,
            text=True,
        )
        wall = time.perf_counter() - t0
        tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
        results[bench.name] = {
            "wall_s": round(wall, 3),
            "passed": proc.returncode == 0,
            "summary": tail,
        }
        status = "ok" if proc.returncode == 0 else "FAIL"
        print(f"  {bench.name:<36} {wall:7.2f}s  {status}")
    return results


def microbench_event_throughput() -> dict:
    """Events/second of the inertial-delay scheduler at saturation."""
    from repro.asynclogic.micropipeline import MicropipelineSim

    pipe = MicropipelineSim(8, data_width=8)
    # Warm the pipeline, then measure a steady-state token stream.
    for v in range(4):
        pipe.push(v)
    t0 = time.perf_counter()
    events = 0
    for v in range(200):
        pipe.push(v & 0xFF)
        events += pipe.sim.run(until=pipe.sim.now + 5)
    pipe.drain()
    elapsed = time.perf_counter() - t0
    # Count every applied event in the measured window via the trace-free
    # counter: re-measure with an explicit run tally.
    return {
        "tokens": 200,
        "events_applied": events,
        "wall_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed) if elapsed > 0 else None,
        "tokens_per_s": round(200 / elapsed) if elapsed > 0 else None,
    }


def microbench_batch_throughput() -> dict:
    """Vectors/second through the 8-bit fabric adder, batch backend."""
    import numpy as np

    from repro.datapath.adder import RippleCarryAdder

    adder = RippleCarryAdder(8)
    rng = np.random.default_rng(0)
    n = 16384
    a = rng.integers(0, 256, n)
    b = rng.integers(0, 256, n)
    adder.add_batch(a[:64], b[:64])  # warm-up: compile + elaborate once
    t0 = time.perf_counter()
    got = adder.add_batch(a, b)
    elapsed = time.perf_counter() - t0
    assert (got == a + b).all()
    return {
        "vectors": n,
        "wall_s": round(elapsed, 4),
        "vectors_per_s": round(n / elapsed) if elapsed > 0 else None,
    }


def microbench_mc_yield() -> dict:
    """Monte-Carlo functional-yield throughput, event vs batch."""
    sys.path.insert(0, str(HERE))
    from bench_ablation_variation import run_functional_yield_comparison

    event, batch = run_functional_yield_comparison()
    ratio = batch.configs_per_second / event.configs_per_second
    return {
        "event_configs_per_s": round(event.configs_per_second),
        "batch_configs_per_s": round(batch.configs_per_second),
        "speedup": round(ratio, 1),
        "event_yield": event.functional_yield,
        "batch_yield": batch.functional_yield,
    }


def microbench_pnr() -> dict:
    """PnR quality and timing: wirelength, routing burn, cycle time.

    ``quality`` is per-design (includes the scale designs: multiplier,
    accumulator step); ``timing_driven`` compares wirelength-only vs
    timing-driven compiles on rca8 and the array multipliers (mul4
    single-array included — the incremental engine made it affordable);
    ``sharded`` compiles mul4, rca16 and rca32 across multiple chiplet
    arrays (shard count, channel cut, composed system cycle time).
    """
    sys.path.insert(0, str(HERE))
    from bench_pnr import run_pnr_quality, run_pnr_sharded, run_pnr_timing_driven

    return {
        "quality": run_pnr_quality(),
        "timing_driven": run_pnr_timing_driven(),
        "sharded": run_pnr_sharded(),
    }


def microbench_pnr_speed() -> dict:
    """Engine throughput: anneal moves/s, routed nets/s, stage seconds."""
    sys.path.insert(0, str(HERE))
    from profile_pnr import run_pnr_speed

    return run_pnr_speed()


def microbench_service() -> dict:
    """Service throughput, incremental latency, store tiers, sessions."""
    sys.path.insert(0, str(HERE))
    from bench_service import (
        run_service_incremental,
        run_service_session,
        run_service_store,
        run_service_throughput,
    )

    return {
        "throughput": run_service_throughput(),
        "incremental": run_service_incremental(),
        "store": run_service_store(),
        "session": run_service_session(),
    }


def microbench_defects() -> dict:
    """Die yield vs defect density, and warm-repair vs cold latency."""
    sys.path.insert(0, str(HERE))
    from bench_defects import run_defect_yield_curve, run_repair_speed

    return {
        "yield_curve": run_defect_yield_curve(),
        "repair": run_repair_speed(),
    }


def microbench_resilience() -> dict:
    """Crash recovery, degraded serving and retry/fault-point cost."""
    sys.path.insert(0, str(HERE))
    from bench_resilience import (
        run_crash_recovery,
        run_degraded_serve,
        run_retry_overhead,
    )

    return {
        "crash": run_crash_recovery(),
        "degraded": run_degraded_serve(),
        "retry": run_retry_overhead(),
    }


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    sys.path.insert(0, str(SRC))
    print("running benches:")
    results: dict[str, object] = {"benches": run_benches(quick)}
    print("microbenches:")
    micro = {
        "event_sim": microbench_event_throughput(),
        "batch_sim": microbench_batch_throughput(),
        "mc_yield": microbench_mc_yield(),
        "pnr": microbench_pnr(),
        "pnr_speed": microbench_pnr_speed(),
        "service": microbench_service(),
        "defects": microbench_defects(),
        "resilience": microbench_resilience(),
    }
    results["microbench"] = micro
    print(f"  event scheduler : {micro['event_sim']['events_per_s']:>12,} events/s")
    print(f"  batch adder     : {micro['batch_sim']['vectors_per_s']:>12,} vectors/s")
    print(
        f"  MC yield        : {micro['mc_yield']['batch_configs_per_s']:>12,} configs/s "
        f"({micro['mc_yield']['speedup']}x over event)"
    )
    fig10 = micro["pnr"]["quality"]["fig10_adder_slice"]
    print(
        f"  PnR Fig.10      : {fig10['cells_logic']} logic + "
        f"{fig10['cells_route']} route cells, wirelength "
        f"{fig10['wirelength']}, cycle {fig10['cycle_time']}, "
        f"compiled in {fig10['compile_s']}s"
    )
    rca8 = micro["pnr"]["timing_driven"]["rca8"]
    print(
        f"  PnR rca8 timing : cycle {rca8['cycle_hpwl']} (HPWL) -> "
        f"{rca8['cycle_timing_driven']} (timing-driven)"
    )
    mul4 = micro["pnr"]["sharded"]["mul4_array"]
    print(
        f"  PnR mul4 sharded: {mul4['shards']} chiplets (side <= "
        f"{mul4['max_side']}), {mul4['cut_nets']} cut nets, cycle "
        f"{mul4['cycle_time']}, compiled in {mul4['compile_s']}s"
    )
    speed8 = micro["pnr_speed"]["rca8"]
    print(
        f"  PnR engine      : {speed8['anneal_moves_per_s']:>12,} anneal moves/s, "
        f"{speed8['routed_nets_per_s']:,} routed nets/s (rca8)"
    )
    svc = micro["service"]
    print(
        f"  compile service : {svc['throughput']['jobs']} jobs -> "
        f"{svc['throughput']['distinct']} compiles "
        f"({svc['throughput']['speedup']}x over serial cold), incremental "
        f"rca8 edit {svc['incremental']['incremental_speedup']}x faster"
    )
    print(
        f"  artifact store  : disk hit {svc['store']['disk_hit_ms']} ms "
        f"({svc['store']['disk_hit_speedup']}x over cold), memory hit "
        f"{svc['store']['memory_hit_ms']} ms; 5-edit session chain "
        f"{svc['session']['chain_speedup']}x over cold"
    )
    from bench_defects import DENSITIES

    rep = micro["defects"]["repair"]
    lightest = micro["defects"]["yield_curve"][f"cell_fail_{DENSITIES[0]}"]
    print(
        f"  die repair      : {rep['dies']} dies from one golden rca8 "
        f"compile, {rep['median_repair_ms']} ms median repair "
        f"({rep['repair_speedup']}x over cold), die yield "
        f"{lightest['die_yield']} at the lightest density"
    )
    res = micro["resilience"]
    print(
        f"  resilience      : worker-crash recovery "
        f"{res['crash']['recovery_overhead']}x of clean, degraded serve "
        f"{res['degraded']['degraded_ms']} ms vs repair "
        f"{res['degraded']['repair_ms']} ms, fault point (no plan) "
        f"{res['retry']['fault_point_no_plan_ns']} ns"
    )
    out = HERE / "BENCH_results.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    failed = [
        name
        for name, r in results["benches"].items()  # type: ignore[union-attr]
        if not r["passed"]
    ]
    if failed:
        print(f"FAILED benches: {failed}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
