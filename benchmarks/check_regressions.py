#!/usr/bin/env python
"""CI benchmark-regression gate over ``BENCH_results.json``.

Compares a freshly generated trajectory against the committed baseline
and fails (exit code 1) when any *pinned* design regresses beyond the
tolerance on a gated metric.  Pinned designs are the stable PnR quality
rows whose numbers are deterministic for a seed — compile wall times
are machine-dependent and deliberately not gated:

* ``fig10_adder_slice`` (the paper's fa1 slice), ``rca8``,
  ``mul2_array``, ``mul3_array``;
* metrics: ``cycle_time`` and ``wirelength`` (higher = worse), each
  allowed to drift up by at most ``TOLERANCE`` (10%).

``compile_s`` is *recorded* for every pinned design (printed in the
drift table so the perf trajectory is visible in the CI artifact and
log) but never gated — wall time is machine-dependent.

A design or metric missing from the fresh results is itself a failure
(the bench silently dropping a row must not pass the gate); a design
missing from the *baseline* is skipped, so adding new rows never blocks.

Usage (what the CI example-smoke job runs)::

    cp benchmarks/BENCH_results.json /tmp/bench-baseline.json
    python benchmarks/run_all.py
    python benchmarks/check_regressions.py \
        --baseline /tmp/bench-baseline.json \
        --fresh benchmarks/BENCH_results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Designs whose quality rows are gated, and the gated metrics.
PINNED_DESIGNS: tuple[str, ...] = (
    "fig10_adder_slice",
    "rca8",
    "mul2_array",
    "mul3_array",
)
METRICS: tuple[str, ...] = ("cycle_time", "wirelength")

#: Metrics shown in the drift table but never gated (machine-dependent).
REPORT_ONLY_METRICS: tuple[str, ...] = ("compile_s",)

#: Throughput rows from ``microbench.pnr_speed`` shown (never gated) so
#: the annealer/fleet perf trajectory is visible next to the quality
#: gate: evaluated moves/s per design, and the replica fleet's exchange
#: acceptance rate + process-pool speedup.  All machine-dependent.
SPEED_REPORT_METRICS: tuple[str, ...] = ("anneal_moves_per_s",)
FLEET_REPORT_METRICS: tuple[str, ...] = (
    "exchange_accept_rate",
    "fleet_pool_speedup",
)


def speed_table(results: dict) -> dict:
    """The ``microbench.pnr_speed`` rows of one trajectory (may be {})."""
    return results.get("microbench", {}).get("pnr_speed", {}) or {}


#: Compile-service rows from ``microbench.service`` shown (never gated):
#: throughput and latency are machine-dependent, and the hit rate is a
#: property of the bench's job mix, not of the code under test.
SERVICE_REPORT_METRICS: dict[str, tuple[str, ...]] = {
    "throughput": ("speedup", "jobs_per_s", "cache_hit_rate"),
    "incremental": ("incremental_speedup", "cold_s", "incremental_s"),
    "store": ("disk_hit_speedup", "cold_ms", "disk_hit_ms", "memory_hit_ms"),
    "session": ("chain_speedup", "cold_chain_s", "session_chain_s"),
}


def service_table(results: dict) -> dict:
    """The ``microbench.service`` rows of one trajectory (may be {})."""
    return results.get("microbench", {}).get("service", {}) or {}


#: Defect-adaptive rows from ``microbench.defects`` shown (never
#: gated): repair latency and speedup are machine-dependent, and the
#: die yield is a property of the sampled lot, not of the code under
#: test — ``tests/test_service_defects.py`` pins the 5x floor.
DEFECTS_REPORT_METRICS: dict[str, tuple[str, ...]] = {
    "repair": ("repair_speedup", "median_repair_ms", "median_cold_ms"),
}


def defects_table(results: dict) -> dict:
    """The ``microbench.defects`` rows of one trajectory (may be {})."""
    return results.get("microbench", {}).get("defects", {}) or {}


#: Resilience rows from ``microbench.resilience`` shown (never gated):
#: recovery overhead and serve latencies are machine-dependent, and the
#: degraded rate is a property of the bench's pressure mix —
#: ``tests/test_resilience.py`` pins the functional contract.
RESILIENCE_REPORT_METRICS: dict[str, tuple[str, ...]] = {
    "crash": ("recovery_overhead", "clean_s", "crashed_s"),
    "degraded": ("degraded_rate", "degraded_ms", "repair_ms"),
    "retry": ("retried_call_ms", "fault_point_no_plan_ns"),
}


def resilience_table(results: dict) -> dict:
    """The ``microbench.resilience`` rows of one trajectory (may be {})."""
    return results.get("microbench", {}).get("resilience", {}) or {}


def defect_yield_rows(results: dict) -> dict:
    """The yield-vs-density rows, keyed by ``cell_fail_*`` (may be {})."""
    curve = defects_table(results).get("yield_curve", {}) or {}
    return {k: v for k, v in curve.items() if k.startswith("cell_fail_")}

#: Allowed relative drift upward (worse) before the gate fails.
TOLERANCE: float = 0.10


def quality_table(results: dict) -> dict:
    """The per-design PnR quality rows of one trajectory (may be {})."""
    return (
        results.get("microbench", {}).get("pnr", {}).get("quality", {}) or {}
    )


def check(
    baseline: dict,
    fresh: dict,
    designs: tuple[str, ...] = PINNED_DESIGNS,
    metrics: tuple[str, ...] = METRICS,
    tolerance: float = TOLERANCE,
) -> list[str]:
    """Violation messages for ``fresh`` against ``baseline`` (empty = pass)."""
    base_q = quality_table(baseline)
    fresh_q = quality_table(fresh)
    violations: list[str] = []
    if not fresh_q:
        return ["fresh results carry no microbench.pnr.quality table"]
    for design in designs:
        base_row = base_q.get(design)
        if base_row is None:
            continue  # new design: nothing to gate against yet
        fresh_row = fresh_q.get(design)
        if fresh_row is None:
            violations.append(f"{design}: missing from fresh results")
            continue
        for metric in metrics:
            base_val = base_row.get(metric)
            if base_val is None:
                continue
            fresh_val = fresh_row.get(metric)
            if fresh_val is None:
                violations.append(f"{design}.{metric}: missing from fresh results")
                continue
            limit = base_val * (1.0 + tolerance)
            if fresh_val > limit:
                violations.append(
                    f"{design}.{metric}: {fresh_val} exceeds baseline "
                    f"{base_val} by more than {tolerance:.0%} "
                    f"(limit {limit:.1f})"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="committed trajectory to gate against (save it before run_all)",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="freshly generated trajectory to check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE,
        help="allowed relative drift (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.baseline.resolve() == args.fresh.resolve():
        # Comparing a file against itself always passes — refuse the
        # silent no-op (run_all overwrites in place; copy the baseline
        # aside first, as the CI job does).
        print(
            f"benchmark gate: baseline and fresh are the same file "
            f"({args.fresh}); save the baseline aside before run_all"
        )
        return 2
    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    violations = check(baseline, fresh, tolerance=args.tolerance)
    base_q, fresh_q = quality_table(baseline), quality_table(fresh)
    print(f"benchmark gate: {len(PINNED_DESIGNS)} pinned designs, "
          f"tolerance {args.tolerance:.0%}")
    for design in PINNED_DESIGNS:
        for metric in METRICS + REPORT_ONLY_METRICS:
            b = base_q.get(design, {}).get(metric)
            f = fresh_q.get(design, {}).get(metric)
            drift = (
                f"{(f - b) / b:+.1%}" if b not in (None, 0) and f is not None
                else "n/a"
            )
            gated = "" if metric in METRICS else "  (recorded, not gated)"
            print(
                f"  {design:<20} {metric:<12} {b!s:>8} -> {f!s:>8}  "
                f"{drift}{gated}"
            )
    base_s, fresh_s = speed_table(baseline), speed_table(fresh)
    for row in sorted(set(base_s) | set(fresh_s)):
        metrics = (
            FLEET_REPORT_METRICS if "fleet" in row else SPEED_REPORT_METRICS
        )
        for metric in metrics:
            b = base_s.get(row, {}).get(metric)
            f = fresh_s.get(row, {}).get(metric)
            if b is None and f is None:
                continue
            drift = (
                f"{(f - b) / b:+.1%}" if b not in (None, 0) and f is not None
                else "n/a"
            )
            print(
                f"  {row:<20} {metric:<20} {b!s:>9} -> {f!s:>9}  "
                f"{drift}  (recorded, not gated)"
            )
    base_svc, fresh_svc = service_table(baseline), service_table(fresh)
    for row, svc_metrics in SERVICE_REPORT_METRICS.items():
        for metric in svc_metrics:
            b = base_svc.get(row, {}).get(metric)
            f = fresh_svc.get(row, {}).get(metric)
            if b is None and f is None:
                continue
            drift = (
                f"{(f - b) / b:+.1%}" if b not in (None, 0) and f is not None
                else "n/a"
            )
            print(
                f"  service.{row:<12} {metric:<20} {b!s:>9} -> {f!s:>9}  "
                f"{drift}  (recorded, not gated)"
            )
    base_r, fresh_r = resilience_table(baseline), resilience_table(fresh)
    for row, r_metrics in RESILIENCE_REPORT_METRICS.items():
        for metric in r_metrics:
            b = base_r.get(row, {}).get(metric)
            f = fresh_r.get(row, {}).get(metric)
            if b is None and f is None:
                continue
            drift = (
                f"{(f - b) / b:+.1%}" if b not in (None, 0) and f is not None
                else "n/a"
            )
            print(
                f"  resilience.{row:<9} {metric:<20} {b!s:>9} -> {f!s:>9}  "
                f"{drift}  (recorded, not gated)"
            )
    base_d, fresh_d = defects_table(baseline), defects_table(fresh)
    for row, d_metrics in DEFECTS_REPORT_METRICS.items():
        for metric in d_metrics:
            b = base_d.get(row, {}).get(metric)
            f = fresh_d.get(row, {}).get(metric)
            if b is None and f is None:
                continue
            drift = (
                f"{(f - b) / b:+.1%}" if b not in (None, 0) and f is not None
                else "n/a"
            )
            print(
                f"  defects.{row:<12} {metric:<20} {b!s:>9} -> {f!s:>9}  "
                f"{drift}  (recorded, not gated)"
            )
    base_y, fresh_y = defect_yield_rows(baseline), defect_yield_rows(fresh)
    for row in sorted(set(base_y) | set(fresh_y)):
        b = base_y.get(row, {}).get("die_yield")
        f = fresh_y.get(row, {}).get("die_yield")
        if b is None and f is None:
            continue
        drift = (
            f"{(f - b) / b:+.1%}" if b not in (None, 0) and f is not None
            else "n/a"
        )
        print(
            f"  defects.{row:<12} {'die_yield':<20} {b!s:>9} -> {f!s:>9}  "
            f"{drift}  (recorded, not gated)"
        )
    if violations:
        print("REGRESSIONS:")
        for v in violations:
            print(f"  {v}")
        return 1
    print("ok: no pinned metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
