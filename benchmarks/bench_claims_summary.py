"""E12: the paper's headline numeric claims, in one table.

128 config bits per block; ~3 orders of magnitude area reduction;
>1e9 cells/cm^2; <=100 mW configuration-plane static power; GALS clock
saving.  All four reports must hold simultaneously.
"""

from repro.arch.compare import (
    area_claims_report,
    config_bits_report,
    power_claim_report,
)
from repro.arch.power import config_plane_power_w


def run_reports():
    return [area_claims_report(), config_bits_report(), power_claim_report()]


def test_claims_summary(benchmark):
    reports = benchmark(run_reports)
    print()
    for rep in reports:
        print(rep.render())
        print()
    # Power sweep: the 100 mW budget versus cell count.
    print("  config-plane static power vs array size:")
    for cells in (1e6, 1e8, 1e9, 2e9):
        print(f"    {cells:.0e} cells: {config_plane_power_w(cells) * 1e3:8.2f} mW")
    for rep in reports:
        assert rep.all_match(), rep.render()
