"""E13 (Section 4.1): GALS partitioning — wrappers, page sizes, clock power.

Simulates cross-domain token flow through asynchronous wrappers (order and
conservation must hold under rate mismatch and backpressure), reproduces
the fixed-page-versus-exact-fit fragmentation argument with the
floorplanner, and quantifies the clock-power saving.
"""

from repro.arch.power import clock_power_saving
from repro.asynclogic.arbiter import flops_for_target_mtbf
from repro.asynclogic.gals import AsyncChannel, ClockDomain, GalsSystem
from repro.core.report import ExperimentReport
from repro.fabric.floorplan import Floorplan, Region


def run_gals():
    fast = ClockDomain("fast", period_ps=110, cells=700)
    slow = ClockDomain("slow", period_ps=270, cells=300)
    system = GalsSystem(fast, slow, AsyncChannel("fast", "slow", capacity=4))
    return system, system.run(2_000_000)


def test_gals_system(benchmark):
    system, result = benchmark(run_gals)
    rep = ExperimentReport("E13 / Section 4.1", "GALS wrappers and partitioning")
    rep.add("token integrity across domains", "in order, none lost",
            f"{result.tokens_consumed} tokens, in_order={result.in_order}",
            verdict="match" if result.in_order else "deviation")
    ideal = system.ideal_throughput_per_ns()
    rep.add("cross-domain throughput", "set by the slower domain",
            f"{result.throughput_per_ns:.4f} vs ideal {ideal:.4f} tokens/ns",
            verdict="match" if result.throughput_per_ns <= ideal * 1.001 else "deviation")
    rep.add("producer backpressure", "wrapper stalls the faster domain",
            f"{result.producer_stalls} stalls",
            verdict="match" if result.producer_stalls > 0 else "deviation")

    # Page-size analogy: fixed pages versus exact fit on the fabric.
    fixed = Floorplan(32, 32)
    for k, need in enumerate([700, 300, 150]):
        fixed.allocate(Region(f"m{k}", 0, k * 10, 10, 10))  # 100-cell pages... scaled
    frag_fixed = fixed.internal_fragmentation({"m0": 95, "m1": 60, "m2": 30})
    exact = Floorplan(32, 32)
    exact.allocate(Region("m0", 0, 0, 5, 19))
    exact.allocate(Region("m1", 6, 0, 6, 10))
    exact.allocate(Region("m2", 13, 0, 5, 6))
    frag_exact = exact.internal_fragmentation({"m0": 95, "m1": 60, "m2": 30})
    rep.add("fixed-page internal fragmentation", "page-size problem",
            f"{frag_fixed * 100:.0f}% wasted",
            verdict="match" if frag_fixed > 0.2 else "deviation")
    rep.add("fine-grained exact fit", "unconstrained module sizes",
            f"{frag_exact * 100:.0f}% wasted",
            verdict="match" if frag_exact < frag_fixed else "deviation")

    saving = clock_power_saving(n_sinks=1e6, n_domains=16)
    rep.add("global-clock power saving (16 domains)", "significant",
            f"{saving * 100:.0f}%",
            verdict="match" if saving > 0.2 else "deviation")
    depth = flops_for_target_mtbf(3.15e7, 1e9, 1e8, 80e-12)  # 1-year MTBF
    rep.add("wrapper synchroniser depth", "standard 2-flop territory",
            f"{depth} flops for 1-year MTBF",
            verdict="match" if depth <= 3 else "deviation")
    print()
    print(rep.render())
    assert rep.all_match()
