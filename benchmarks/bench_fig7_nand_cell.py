"""E5 (Fig. 7): the 6x6 NAND cell and its 128-bit configuration frame.

Exhaustively exercises one configured cell (every input combination of a
multi-row product configuration), round-trips it through the 8x8 MVRAM
frame, and reproduces the configuration-data accounting against the CLB.
"""

import numpy as np

from repro.arch.compare import config_bits_report
from repro.core.report import ExperimentReport
from repro.fabric.bitstream import cell_to_frame, frame_to_cell
from repro.fabric.driver import DriverMode
from repro.fabric.nandcell import CellConfig
from repro.sim.values import ONE, ZERO


def build_cell() -> CellConfig:
    cfg = CellConfig()
    cfg.set_product(0, [0, 1])          # (i0.i1)'
    cfg.set_product(1, [2, 3, 4])       # (i2.i3.i4)'
    cfg.set_product(2, [5])             # i5'
    cfg.set_constant(3, 1)
    cfg.set_constant(4, 0)
    for r in range(5):
        cfg.drivers[r] = DriverMode.BUFFER
    return cfg


def exhaustive_check(cfg: CellConfig) -> int:
    errors = 0
    for idx in range(64):
        bits = [(idx >> k) & 1 for k in range(6)]
        vals = [ONE if b else ZERO for b in bits]
        rows = cfg.row_values(vals)
        expect = [
            0 if bits[0] and bits[1] else 1,
            0 if bits[2] and bits[3] and bits[4] else 1,
            1 - bits[5],
            1,
            0,
            1,  # untouched row: constant 1
        ]
        if rows != expect:
            errors += 1
    return errors


def test_fig7_cell_and_frame(benchmark):
    cfg = build_cell()
    errors = benchmark(exhaustive_check, cfg)

    rep = ExperimentReport("E5 / Fig. 7", "6x6 NAND cell block")
    rep.add("exhaustive row semantics (64 vectors)", "NAND array behaviour",
            f"{errors} mismatches",
            verdict="match" if errors == 0 else "deviation")
    frame = cell_to_frame(cfg)
    rep.add("configuration frame", "128 bits (8x8 multi-valued RAM)",
            f"{len(frame)} bits",
            verdict="match" if len(frame) == 128 else "deviation")
    back = frame_to_cell(frame)
    rep.add("frame round trip", "lossless", "identical" if back == cfg else "DIFFERS",
            verdict="match" if back == cfg else "deviation")
    corrupted = np.array(frame)
    print()
    print(rep.render())
    print()
    print(config_bits_report().render())
    assert rep.all_match()
    assert config_bits_report().all_match()
    assert corrupted.shape == (128,)
