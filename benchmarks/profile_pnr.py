#!/usr/bin/env python
"""Per-stage PnR profiling harness (the ``microbench.pnr_speed`` table).

Times every stage of the compile flow in isolation — tech-map, greedy
seed, annealing, routing, STA, emit — on a few representative designs,
and derives the two engine throughput numbers the perf work is tracked
by:

* ``anneal_moves_per_s``  — proposed moves per second through the
  incremental delta-HPWL annealer (:class:`repro.pnr.place.IncrementalHpwl`);
* ``routed_nets_per_s``   — nets per second through the reusable-state
  A* router (:class:`repro.pnr.route.Router`).

``run_all.py`` imports :func:`run_pnr_speed` and folds the table into
``BENCH_results.json`` under ``microbench.pnr_speed``; the CI
example-smoke job prints the table with ``--from-results`` so the perf
trajectory is visible in every run's log.  Run directly for a live
profile::

    PYTHONPATH=src python benchmarks/profile_pnr.py
    python benchmarks/profile_pnr.py --from-results benchmarks/BENCH_results.json

See ``docs/performance.md`` for what each stage does and why the hot
paths are shaped the way they are.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from pathlib import Path


def profile_design(netlist, seed: int = 0) -> dict:
    """Compile ``netlist`` stage by stage; return per-stage seconds.

    Mirrors one attempt of :func:`repro.pnr.flow._compile_mapped`
    (tech-map -> seed -> anneal -> route -> STA -> emit) with a timer
    around each stage, plus the derived throughput numbers.
    """
    from repro.fabric.array import CellArray
    from repro.fabric.floorplan import Region
    from repro.pnr.emit import emit_design
    from repro.pnr.place import (
        anneal_placement,
        default_anneal_steps,
        initial_placement,
    )
    from repro.pnr.route import Router
    from repro.pnr.flow import suggest_array
    from repro.pnr.techmap import map_netlist
    from repro.pnr.timing import analyze_timing

    gc.collect()  # keep predecessor garbage out of the timed stages
    t0 = time.perf_counter()
    design = map_netlist(netlist)
    t_map = time.perf_counter() - t0

    array = suggest_array(design)
    region = Region("bench", 0, 0, array.n_rows, array.n_cols)
    rng = random.Random(seed)

    t0 = time.perf_counter()
    seed_placement = initial_placement(design, region, rng)
    t_seed = time.perf_counter() - t0

    steps = default_anneal_steps(design.n_gates)
    anneal_stats: dict = {}
    t0 = time.perf_counter()
    placement = anneal_placement(
        design, seed_placement, rng, stats=anneal_stats
    )
    t_anneal = time.perf_counter() - t0
    evaluated = anneal_stats.get("evaluated", steps)

    router = Router(
        design, placement, (array.n_rows, array.n_cols), region,
        rng=rng, array=array,
    )
    t0 = time.perf_counter()
    routes = router.route_design(strict=True)
    t_route = time.perf_counter() - t0

    t0 = time.perf_counter()
    analyze_timing(design, placement, state=router.state, routes=routes)
    t_sta = time.perf_counter() - t0

    target = CellArray(array.n_rows, array.n_cols)
    t0 = time.perf_counter()
    emit_design(target, router.state)
    t_emit = time.perf_counter() - t0

    return {
        "gates": design.n_gates,
        "nets": len(routes),
        "array_side": array.n_rows,
        "techmap_s": round(t_map, 4),
        "seed_s": round(t_seed, 4),
        "anneal_s": round(t_anneal, 4),
        "route_s": round(t_route, 4),
        "sta_s": round(t_sta, 4),
        "emit_s": round(t_emit, 4),
        "anneal_steps": steps,
        "anneal_evaluated": evaluated,
        "anneal_accepted": anneal_stats.get("accepted", 0),
        "anneal_moves_per_s": (
            round(evaluated / t_anneal) if t_anneal > 0 else None
        ),
        "routed_nets_per_s": round(len(routes) / t_route) if t_route > 0 else None,
    }


def profile_fleet(netlist, *, replicas: int = 4, seed: int = 0) -> dict:
    """Parallel-tempering fleet metrics on one design.

    Anneals the same seeded placement three ways — single replica, an
    N-replica fleet on one worker, the same fleet on ``workers=None``
    (auto pool) — and records the replica-exchange acceptance rate plus
    the fleet's wall-clock speedup from the process pool.  The fleet is
    byte-identical across worker counts, so the speedup row measures
    pool efficiency only (1.0x on a single-CPU runner, by design).
    """
    from repro.fabric.floorplan import Region
    from repro.pnr.flow import suggest_array
    from repro.pnr.place import anneal_placement, initial_placement
    from repro.pnr.techmap import map_netlist

    design = map_netlist(netlist)
    array = suggest_array(design)
    region = Region("bench", 0, 0, array.n_rows, array.n_cols)
    seed_placement = initial_placement(design, region, random.Random(seed))

    gc.collect()
    t0 = time.perf_counter()
    anneal_placement(design, seed_placement, random.Random(seed))
    t_single = time.perf_counter() - t0

    stats: dict = {}
    gc.collect()
    t0 = time.perf_counter()
    anneal_placement(
        design, seed_placement, random.Random(seed),
        replicas=replicas, workers=1, stats=stats,
    )
    t_serial = time.perf_counter() - t0

    gc.collect()
    t0 = time.perf_counter()
    anneal_placement(
        design, seed_placement, random.Random(seed),
        replicas=replicas, workers=None,
    )
    t_pool = time.perf_counter() - t0

    attempts = stats.get("exchange_attempts", 0)
    return {
        "replicas": replicas,
        "evaluated": stats.get("evaluated", 0),
        "exchange_attempts": attempts,
        "exchange_accepted": stats.get("exchange_accepted", 0),
        "exchange_accept_rate": (
            round(stats.get("exchange_accepted", 0) / attempts, 3)
            if attempts else None
        ),
        "single_replica_s": round(t_single, 4),
        "fleet_serial_s": round(t_serial, 4),
        "fleet_pool_s": round(t_pool, 4),
        "fleet_pool_speedup": (
            round(t_serial / t_pool, 2) if t_pool > 0 else None
        ),
    }


def run_pnr_speed() -> dict[str, dict]:
    """The ``microbench.pnr_speed`` table: per-stage seconds + throughput."""
    from repro.datapath.adder import ripple_carry_netlist
    from repro.datapath.multiplier import array_multiplier_netlist
    from repro.synth.macros import full_adder_testbench

    fig10, _, _ = full_adder_testbench()
    designs = {
        "fig10_adder_slice": fig10,
        "rca8": ripple_carry_netlist(8),
        "mul3_array": array_multiplier_netlist(3),
    }
    speed = {name: profile_design(nl) for name, nl in designs.items()}
    speed["replica_fleet_rca8"] = profile_fleet(ripple_carry_netlist(8))
    return speed


def format_table(speed: dict[str, dict]) -> str:
    """The pnr_speed table as fixed-width text (CI logs, CLI)."""
    lines = [
        "PnR speed microbench (per-stage seconds, engine throughput):",
        f"  {'design':<20} {'gates':>5} {'seed':>7} {'anneal':>7} "
        f"{'route':>7} {'sta':>7} {'emit':>7} {'moves/s':>9} {'nets/s':>7}",
    ]
    for name, row in speed.items():
        if "gates" not in row:
            continue  # fleet row: formatted below
        lines.append(
            f"  {name:<20} {row['gates']:>5} {row['seed_s']:>7.3f} "
            f"{row['anneal_s']:>7.3f} {row['route_s']:>7.3f} "
            f"{row['sta_s']:>7.3f} {row['emit_s']:>7.3f} "
            f"{row['anneal_moves_per_s'] or 0:>9,} "
            f"{row['routed_nets_per_s'] or 0:>7,}"
        )
    for name, row in speed.items():
        if "gates" in row:
            continue
        rate = row.get("exchange_accept_rate")
        lines.append(
            f"  {name}: {row['replicas']} replicas, "
            f"exchange accept {rate if rate is not None else 'n/a'}, "
            f"fleet {row['fleet_serial_s']:.3f}s serial / "
            f"{row['fleet_pool_s']:.3f}s pooled "
            f"({row['fleet_pool_speedup'] or 0:.2f}x)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--from-results", type=Path, default=None,
        help="print the pnr_speed table recorded in a BENCH_results.json "
        "instead of re-profiling",
    )
    args = parser.parse_args(argv)
    if args.from_results is not None:
        results = json.loads(args.from_results.read_text())
        speed = results.get("microbench", {}).get("pnr_speed")
        if not speed:
            print(f"{args.from_results} has no microbench.pnr_speed table")
            return 1
        print(format_table(speed))
        return 0
    repo_src = Path(__file__).resolve().parent.parent / "src"
    sys.path.insert(0, str(repo_src))
    print(format_table(run_pnr_speed()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
