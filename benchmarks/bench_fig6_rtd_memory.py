"""E4 (Fig. 6): RTD leaf-cell memory — stable states and write/settle.

Regenerates the storage analysis behind the configuration mechanism: the
bipolar tunnelling-SRAM latch holds exactly three states mapping onto the
-2/0/+2 V back-gate levels, every write settles into the intended basin,
hold currents sit in the Roadmap's 10-50 pA window, and the cited
nine-state Seabaugh cell emerges from an eight-peak stack.
"""

from repro.core.report import ExperimentReport
from repro.devices.rtd import RTD
from repro.devices.rtd_sram import BackGateDriver, ResistiveRTDMemory, TunnellingSRAM


def run_analysis():
    cell = TunnellingSRAM()
    drv = BackGateDriver(cell)
    nine = ResistiveRTDMemory(8)
    return cell, drv, nine


def test_fig6_storage_cell(benchmark):
    cell, drv, nine = benchmark(run_analysis)
    rep = ExperimentReport("E4 / Fig. 6", "RTD configuration memory")
    rep.add("stable states (trit cell)", "3 (multi-valued RAM [34])",
            str(cell.n_states),
            verdict="match" if cell.n_states == 3 else "deviation")
    volts = [round(p.voltage, 2) for p in cell.stable_points()]
    rep.add("stored levels", "map onto -2/0/+2 V via layer thickness",
            f"{volts} V, calib err {drv.calibration_error():.3f} V",
            verdict="match" if drv.calibration_error() < 0.25 else "deviation")
    holds = [cell.hold_current(k) * 1e12 for k in range(cell.n_states)]
    in_window = max(holds) <= 50.0
    rep.add("hold current", "RTD peaks 10-50 pA (Roadmap [40])",
            f"{max(holds):.1f} pA worst state",
            verdict="match" if in_window else "deviation")
    ok_writes = all(cell.settle(cell.write(k)) == k for k in range(cell.n_states))
    rep.add("write-then-settle", "returns written state",
            "all states" if ok_writes else "FAILS",
            verdict="match" if ok_writes else "deviation")
    rep.add("nine-state cell (Seabaugh [36])", "9 states",
            str(nine.n_states),
            verdict="match" if nine.n_states == 9 else "deviation")
    pvcr = RTD().measured_pvcr()
    rep.add("peak-to-valley ratio", "adequate at room temperature [37,38]",
            f"{pvcr:.1f}",
            verdict="match" if pvcr > 3 else "deviation")
    print()
    print(rep.render())
    assert rep.all_match()
