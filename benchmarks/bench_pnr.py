"""Bench: place-and-route quality and throughput (`repro.pnr`).

Records what the compile flow pays for position independence on the
polymorphic fabric — wirelength, cells burned on routing versus logic,
utilisation, and the routed-net fraction — across a suite of designs
from the paper (the Fig. 10 adder slice, a micropipeline stage) and
scaling ripple-carry adders.  `run_all.py` imports
:func:`run_pnr_quality` and folds the numbers into
``BENCH_results.json``.
"""

from __future__ import annotations

import time

from repro.datapath.adder import ripple_carry_netlist
from repro.netlist import Netlist
from repro.pnr import compile_to_fabric, verify_equivalence


def _suite() -> dict[str, Netlist]:
    from repro.asynclogic.micropipeline import micropipeline_netlist
    from repro.synth.macros import full_adder_testbench

    fig10, _, _ = full_adder_testbench()
    stage, _ = micropipeline_netlist(1, data_width=4, auto_sink=False)
    return {
        "fig10_adder_slice": fig10,
        "micropipeline_stage": stage,
        "rca4": ripple_carry_netlist(4),
        "rca8": ripple_carry_netlist(8),
    }


def run_pnr_quality(verify_vectors: int = 256) -> dict[str, dict]:
    """Compile the suite; return per-design quality metrics."""
    results: dict[str, dict] = {}
    for name, netlist in _suite().items():
        t0 = time.perf_counter()
        res = compile_to_fabric(netlist, seed=0)
        compile_s = time.perf_counter() - t0
        s = res.stats
        entry = {
            "source_cells": s.n_source_cells,
            "mapped_gates": s.n_gates,
            "cells_logic": s.cells_logic,
            "cells_route": s.cells_route,
            "routing_overhead": round(s.routing_overhead, 3),
            "wirelength": s.wirelength,
            "hpwl": s.hpwl,
            "routed_net_fraction": s.routed_fraction,
            "utilisation": round(s.utilisation, 4),
            "array_side": res.array.n_rows,
            "interconnect_area_l2": s.area.interconnect_l2,
            "compile_s": round(compile_s, 4),
        }
        if not res.design.has_stateful_gates():
            t0 = time.perf_counter()
            verify_equivalence(res, n_vectors=verify_vectors, event_vectors=4)
            entry["verify_s"] = round(time.perf_counter() - t0, 4)
            entry["verified_vectors"] = verify_vectors
        results[name] = entry
    return results


# ----------------------------------------------------------------------
# pytest entry points (run_all.py executes this file under pytest)
# ----------------------------------------------------------------------

def test_pnr_quality_suite():
    """Every suite design compiles fully routed; overheads stay sane."""
    results = run_pnr_quality(verify_vectors=64)
    assert set(results) == set(_suite())
    for name, entry in results.items():
        assert entry["routed_net_fraction"] == 1.0, name
        # Paper Section 4: interconnect is cells; it should cost the
        # same order as the logic, not dominate it wholesale.
        assert entry["cells_route"] <= 3 * entry["cells_logic"], name


def test_pnr_scales_with_adder_width(capsys):
    rows = []
    for n_bits in (2, 4, 8):
        res = compile_to_fabric(ripple_carry_netlist(n_bits), seed=0)
        s = res.stats
        rows.append((n_bits, s.n_gates, s.cells_route, s.wirelength))
    # Wirelength and routing burn grow with the design, not explode.
    assert rows[-1][3] < 40 * rows[0][3]
    with capsys.disabled():
        print("\n  bits gates route wirelength")
        for r in rows:
            print(f"  {r[0]:4d} {r[1]:5d} {r[2]:5d} {r[3]:10d}")
