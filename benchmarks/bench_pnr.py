"""Bench: place-and-route quality, timing, and throughput (`repro.pnr`).

Records what the compile flow pays for position independence on the
polymorphic fabric — wirelength, cells burned on routing versus logic,
utilisation, routed-net fraction, and (since the STA stage landed) the
achieved cycle time against the ideal-wire logic depth — across a suite
of designs from the paper (the Fig. 10 adder slice, a micropipeline
stage), scaling ripple-carry adders, and the datapath generators (array
multiplier, accumulator step), so ``BENCH_results.json`` tracks compile
time, wirelength and cycle time against array side.  A second table
compares wirelength-only and timing-driven compiles on the larger
designs; a third compiles the deep designs (mul4, rca16) across
multiple chiplet arrays with the sharded flow, recording shard count,
channel cut size and the composed system cycle time.  `run_all.py`
imports :func:`run_pnr_quality`, :func:`run_pnr_timing_driven` and
:func:`run_pnr_sharded` and folds the numbers into
``BENCH_results.json``.
"""

from __future__ import annotations

import gc
import time

from repro.datapath.accumulator import accumulator_step_netlist
from repro.datapath.adder import ripple_carry_netlist
from repro.datapath.multiplier import array_multiplier_netlist
from repro.netlist import Netlist
from repro.pnr import compile_sharded, compile_to_fabric, verify_equivalence


def _suite() -> dict[str, Netlist]:
    from repro.asynclogic.micropipeline import micropipeline_netlist
    from repro.synth.macros import full_adder_testbench

    fig10, _, _ = full_adder_testbench()
    stage, _ = micropipeline_netlist(1, data_width=4, auto_sink=False)
    return {
        "fig10_adder_slice": fig10,
        "micropipeline_stage": stage,
        "rca4": ripple_carry_netlist(4),
        "rca8": ripple_carry_netlist(8),
        "mul2_array": array_multiplier_netlist(2),
        "mul3_array": array_multiplier_netlist(3),
        "acc8_step": accumulator_step_netlist(8),
    }


def run_pnr_quality(verify_vectors: int = 256) -> dict[str, dict]:
    """Compile the suite; return per-design quality + timing metrics."""
    results: dict[str, dict] = {}
    for name, netlist in _suite().items():
        gc.collect()  # keep predecessor garbage out of the timed window
        t0 = time.perf_counter()
        res = compile_to_fabric(netlist, seed=0)
        compile_s = time.perf_counter() - t0
        s = res.stats
        entry = {
            "source_cells": s.n_source_cells,
            "mapped_gates": s.n_gates,
            "cells_logic": s.cells_logic,
            "cells_route": s.cells_route,
            "routing_overhead": round(s.routing_overhead, 3),
            "wirelength": s.wirelength,
            "hpwl": s.hpwl,
            "routed_net_fraction": s.routed_fraction,
            "utilisation": round(s.utilisation, 4),
            "array_side": res.array.n_rows,
            "interconnect_area_l2": s.area.interconnect_l2,
            "cycle_time": s.cycle_time,
            "logic_delay": s.logic_delay,
            "worst_slack": s.worst_slack,
            "compile_s": round(compile_s, 4),
        }
        if not res.design.has_stateful_gates():
            t0 = time.perf_counter()
            verify_equivalence(res, n_vectors=verify_vectors, event_vectors=4)
            entry["verify_s"] = round(time.perf_counter() - t0, 4)
            entry["verified_vectors"] = verify_vectors
        results[name] = entry
    return results


def run_pnr_timing_driven() -> dict[str, dict]:
    """Wirelength-only vs timing-driven compiles on the larger designs.

    The acceptance bar for the timing-driven loop: its achieved cycle
    time is never worse than the HPWL-only placement's, on the rca8 and
    multiplier benchmarks.  mul4 compiles on a *single* array here — a
    row the pre-incremental engine couldn't afford (the warm-started
    weight ladder and journal-replay routing make the 168-gate compile
    a sub-second affair).
    """
    designs = {
        "rca8": ripple_carry_netlist(8),
        "mul3_array": array_multiplier_netlist(3),
        "mul4_array": array_multiplier_netlist(4),
    }
    results: dict[str, dict] = {}
    for name, netlist in designs.items():
        gc.collect()
        t0 = time.perf_counter()
        base = compile_to_fabric(netlist, seed=0)
        base_s = time.perf_counter() - t0
        gc.collect()
        t0 = time.perf_counter()
        timed = compile_to_fabric(netlist, seed=0, timing_driven=True)
        timed_s = time.perf_counter() - t0
        results[name] = {
            "cycle_hpwl": base.stats.cycle_time,
            "cycle_timing_driven": timed.stats.cycle_time,
            "slack_hpwl": base.stats.worst_slack,
            "slack_timing_driven": timed.stats.worst_slack,
            "wirelength_hpwl": base.stats.wirelength,
            "wirelength_timing_driven": timed.stats.wirelength,
            "compile_s_hpwl": round(base_s, 4),
            "compile_s_timing_driven": round(timed_s, 4),
        }
    return results


def run_pnr_sharded() -> dict[str, dict]:
    """Deep designs compiled across chiplet arrays (`repro.pnr.partition`).

    rca16 (depth 51) outright exceeds a side-24 array's monotone depth
    bound (``rows + cols - 1 = 47``); mul4 (168 mapped gates, depth 32)
    fits the bound but not the placement/routing capacity of one capped
    array (the sizer wants side 36); rca32 (depth ~99) needs many
    chiplets — a row the pre-incremental engine couldn't afford.  mul5
    (290 gates) and rca64 (960 gates, 17 chiplets) joined once the
    vectorized batch annealer made them interactive compiles.  The
    sharded flow partitions all five; the rows record the shard count
    the auto-sizer settled on, the channel cut, and the composed system
    cycle time, with equivalence verified against the source netlist on
    both backends, plus ``compile_parallel_s`` — the same compile
    through the ``concurrent.futures`` shard pool (byte-identical
    result; the wall-clock delta records what the GIL currently costs).
    """
    designs = {
        "mul4_array": (array_multiplier_netlist(4), 24),
        "rca16": (ripple_carry_netlist(16), 24),
        "rca32": (ripple_carry_netlist(32), 24),
        "mul5_array": (array_multiplier_netlist(5), 24),
        "rca64": (ripple_carry_netlist(64), 24),
    }
    results: dict[str, dict] = {}
    for name, (netlist, max_side) in designs.items():
        gc.collect()
        t0 = time.perf_counter()
        res = compile_sharded(netlist, max_side=max_side, seed=0)
        compile_s = time.perf_counter() - t0
        gc.collect()
        t0 = time.perf_counter()
        compile_sharded(netlist, max_side=max_side, seed=0, workers=None)
        compile_parallel_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        res.verify(n_vectors=256, event_vectors=2)
        verify_s = time.perf_counter() - t0
        s = res.stats
        results[name] = {
            "max_side": max_side,
            "shards": s.n_shards,
            "mapped_gates": s.n_gates,
            "cut_nets": s.cut_nets,
            "cut_size": s.cut_size,
            "wirelength": s.wirelength,
            "cells_logic": s.cells_logic,
            "cells_route": s.cells_route,
            "cycle_time": s.cycle_time,
            "logic_delay": s.logic_delay,
            "worst_slack": s.worst_slack,
            "compile_s": round(compile_s, 4),
            "compile_parallel_s": round(compile_parallel_s, 4),
            "verify_s": round(verify_s, 4),
            "verified_vectors": 256,
        }
    return results


# ----------------------------------------------------------------------
# pytest entry points (run_all.py executes this file under pytest)
# ----------------------------------------------------------------------

def test_pnr_quality_suite():
    """Every suite design compiles fully routed; overheads stay sane."""
    results = run_pnr_quality(verify_vectors=64)
    assert set(results) == set(_suite())
    for name, entry in results.items():
        assert entry["routed_net_fraction"] == 1.0, name
        # Paper Section 4: interconnect is cells; it should cost the
        # same order as the logic, not dominate it wholesale.
        assert entry["cells_route"] <= 3 * entry["cells_logic"], name
        # Routed wires only add delay on top of the logic depth.
        assert entry["cycle_time"] >= entry["logic_delay"] > 0, name


def test_pnr_scales_with_adder_width(capsys):
    rows = []
    for n_bits in (2, 4, 8):
        res = compile_to_fabric(ripple_carry_netlist(n_bits), seed=0)
        s = res.stats
        rows.append((n_bits, s.n_gates, s.cells_route, s.wirelength, s.cycle_time))
    # Wirelength and routing burn grow with the design, not explode.
    assert rows[-1][3] < 40 * rows[0][3]
    with capsys.disabled():
        print("\n  bits gates route wirelength cycle")
        for r in rows:
            print(f"  {r[0]:4d} {r[1]:5d} {r[2]:5d} {r[3]:10d} {r[4]:5d}")


def test_timing_driven_never_slower():
    """Acceptance: timing-driven cycle <= HPWL-only cycle, both designs."""
    results = run_pnr_timing_driven()
    for name, entry in results.items():
        assert entry["cycle_timing_driven"] <= entry["cycle_hpwl"], name


def test_sharded_designs_split_and_verify(capsys):
    """Acceptance: deep designs land on >= 2 chiplets and stay equivalent."""
    results = run_pnr_sharded()
    for name, entry in results.items():
        assert entry["shards"] >= 2, name
        assert entry["cut_nets"] > 0, name
        assert entry["cycle_time"] >= entry["logic_delay"] > 0, name
    with capsys.disabled():
        print("\n  design      shards cut   cycle  compile_s")
        for name, e in results.items():
            print(
                f"  {name:<11} {e['shards']:5d} {e['cut_size']:4d} "
                f"{e['cycle_time']:6d} {e['compile_s']:9.2f}"
            )
