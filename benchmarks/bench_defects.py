"""Bench: defect-adaptive compilation (`repro.pnr.defects`).

Records the ISSUE 8 economics: how die yield falls as the per-resource
defect density rises (warm repair, cold-compile escalation, or die
scrapped), and how much faster adapting the golden rca8 compile to a
defective die is than compiling that die cold (``repair_speedup``, the
acceptance number, required >= 5x).  ``run_all.py`` imports
:func:`run_defect_yield_curve` and :func:`run_repair_speed` and folds
both into ``BENCH_results.json`` under ``microbench.defects``;
``check_regressions.py`` prints the rows (recorded, not gated — repair
rates depend on the sampled lot, wall times on the machine).
"""

from __future__ import annotations

import statistics
import time

from repro.datapath.adder import ripple_carry_netlist
from repro.pnr import (
    PnrError,
    RepairFallback,
    compile_to_fabric,
    repair_for_die,
    sample_defect_map,
)

#: Cell-failure densities swept by the yield curve; wire and stuck-row
#: rates ride along at 40% of the cell rate (wires and configuration
#: rows are a fraction of a cell's device count).
DENSITIES: tuple[float, ...] = (0.0015, 0.003, 0.006, 0.012)
DIES_PER_DENSITY = 10


def _golden():
    nl = ripple_carry_netlist(8)
    t0 = time.perf_counter()
    golden = compile_to_fabric(nl, seed=0, workers=0)
    return golden, time.perf_counter() - t0


def _die(shape, cell_fail, seed):
    return sample_defect_map(
        *shape,
        cell_fail=cell_fail,
        wire_fail=0.4 * cell_fail,
        stuck_fail=0.4 * cell_fail,
        seed=seed,
    )


def run_defect_yield_curve(dies_per_density: int = DIES_PER_DENSITY) -> dict:
    """Die yield vs defect density: repaired, escalated, or scrapped.

    For each density, ``dies_per_density`` seeded dies are adapted from
    one golden rca8 compile.  A die counts toward yield when warm
    repair succeeds *or* the cold defect-aware escalation compiles it;
    only a die neither path can use is scrapped — the paper's
    defect-tolerance argument, measured.
    """
    golden, golden_s = _golden()
    shape = (golden.array.n_rows, golden.array.n_cols)
    curve = {}
    for cell_fail in DENSITIES:
        repaired = cold_ok = scrapped = 0
        repair_ms = []
        defects = []
        for seed in range(dies_per_density):
            dm = _die(shape, cell_fail, seed)
            defects.append(dm.n_defects)
            t0 = time.perf_counter()
            try:
                repair_for_die(golden, dm, seed=0)
                repair_ms.append((time.perf_counter() - t0) * 1e3)
                repaired += 1
            except RepairFallback:
                try:
                    compile_to_fabric(
                        ripple_carry_netlist(8), defect_map=dm,
                        seed=0, workers=0, max_attempts=3,
                    )
                    cold_ok += 1
                except PnrError:
                    scrapped += 1
        curve[f"cell_fail_{cell_fail}"] = {
            "dies": dies_per_density,
            "mean_defects_per_die": round(statistics.mean(defects), 1),
            "repaired": repaired,
            "cold_ok": cold_ok,
            "scrapped": scrapped,
            "die_yield": round((repaired + cold_ok) / dies_per_density, 2),
            "median_repair_ms": (
                round(statistics.median(repair_ms), 1) if repair_ms else None
            ),
        }
    return {"design": "rca8", "golden_compile_s": round(golden_s, 3), **curve}


def run_repair_speed(n_dies: int = 12) -> dict:
    """Warm per-die repair vs cold defect-aware compile (medians)."""
    golden, golden_s = _golden()
    shape = (golden.array.n_rows, golden.array.n_cols)
    dies = [_die(shape, DENSITIES[0], seed) for seed in range(n_dies)]

    def best_of(fn, n=2):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    repair_s, cold_s = [], []
    for dm in dies:
        try:
            repair_s.append(
                best_of(lambda: repair_for_die(golden, dm, seed=0))
            )
        except RepairFallback:
            continue  # rates are low; a rare fallback die just drops out
    for dm in dies[:6]:
        cold_s.append(
            best_of(
                lambda: compile_to_fabric(
                    ripple_carry_netlist(8), defect_map=dm,
                    seed=0, workers=0,
                ),
                n=1,
            )
        )
    med_repair = statistics.median(repair_s)
    med_cold = statistics.median(cold_s)
    return {
        "design": "rca8",
        "dies": len(repair_s),
        "golden_compile_s": round(golden_s, 4),
        "median_repair_ms": round(med_repair * 1e3, 1),
        "median_cold_ms": round(med_cold * 1e3, 1),
        "repair_speedup": round(med_cold / med_repair, 1),
    }


def test_yield_curve_accounts_for_every_die(capsys):
    """Every sampled die is repaired, escalated, or scrapped — no gaps."""
    r = run_defect_yield_curve()
    rows = {k: v for k, v in r.items() if k.startswith("cell_fail_")}
    assert len(rows) == len(DENSITIES)
    for row in rows.values():
        assert row["repaired"] + row["cold_ok"] + row["scrapped"] == row["dies"]
    # At the lightest density almost every die is warm-repairable.
    first = rows[f"cell_fail_{DENSITIES[0]}"]
    assert first["die_yield"] >= 0.9
    with capsys.disabled():
        print(f"\n  defect yield curve (rca8, {DIES_PER_DENSITY} dies/density):")
        for key, row in rows.items():
            print(
                f"    {key:<18} yield {row['die_yield']:<5} "
                f"({row['repaired']} repaired, {row['cold_ok']} cold, "
                f"{row['scrapped']} scrapped; ~{row['mean_defects_per_die']} "
                f"defects/die)"
            )


def test_repair_meets_5x(capsys):
    """ISSUE 8 acceptance: warm repair >= 5x over a cold die compile."""
    r = run_repair_speed()
    assert r["repair_speedup"] >= 5
    with capsys.disabled():
        print(
            f"\n  die repair rca8: cold {r['median_cold_ms']:.1f} ms -> "
            f"{r['median_repair_ms']:.1f} ms ({r['repair_speedup']}x, "
            f"{r['dies']} dies from one {r['golden_compile_s']}s golden "
            f"compile)"
        )
