"""E7 (Fig. 9): the configured tile — 3-LUT plus edge-triggered D-FF.

Builds the figure's structure (complement/interconnect cell, LUT pair,
flip-flop pair), clocks data through it, and compares the cell budget with
the paper's four-cell count and with the conventional FPGA logic cell.
"""

from repro.arch.fpga_baseline import FpgaBaseline
from repro.core.platform import PolymorphicPlatform
from repro.core.report import ExperimentReport
from repro.synth.macros import complement_cell, dff_pair, lut_pair_from_table
from repro.synth.qm import minimise
from repro.synth.truthtable import TruthTable


def fig9_function() -> TruthTable:
    """x' + y' + z' — the figure's LUT contents (overbars lost in print)."""
    return TruthTable.from_function(
        3, lambda x, y, z: (not x) or (not y) or (not z)
    )


def build_and_clock():
    t = fig9_function()
    p = PolymorphicPlatform(1, 8)
    comp = p.place(complement_cell(3), 0, 0)
    lut = p.place(lut_pair_from_table(t), 0, 1)
    ff = p.place(dff_pair(), 0, 4)
    # LUT output (east of the pair, line 0) feeds the flip-flop's D wire
    # directly by abutment position... the macro ports differ by one
    # column, so use an explicit connect for clarity.
    p.connect(lut.outputs["f"], ff.inputs["d"])
    clk, clk_n = ff.inputs["clk"], ff.inputs["clk_n"]

    captured = []
    now = 0

    def set_inputs(x, y, z):
        for name, b in zip(("x0", "x1", "x2"), (x, y, z)):
            p.drive_bit(comp.inputs[name], b)

    def pulse():
        nonlocal now
        for level in (0, 1, 0):
            p.drive_bit(clk, level)
            p.drive_bit(clk_n, 1 - level)
            now += 120
            p.run(now)

    # Initialise: capture f(1,1,1) = 0 twice to clear the X state.
    set_inputs(1, 1, 1)
    pulse()
    pulse()
    for vec in [(0, 1, 1), (1, 1, 1), (1, 0, 1), (1, 1, 0), (1, 1, 1)]:
        set_inputs(*vec)
        pulse()
        captured.append(p.bit(ff.outputs["q"]))
    return captured, p


def test_fig9_tile(benchmark):
    captured, platform = benchmark(build_and_clock)
    t = fig9_function()
    expect = [int(t.evaluate(list(v))) for v in
              [(0, 1, 1), (1, 1, 1), (1, 0, 1), (1, 1, 0), (1, 1, 1)]]

    rep = ExperimentReport("E7 / Fig. 9", "3-LUT + edge-triggered D flip-flop tile")
    rep.add("clocked capture sequence", str(expect), str(captured),
            verdict="match" if captured == expect else "deviation")
    cells = platform.array.used_cells()
    rep.add("cell budget", "4 cells (LUT pair + FF pair; complements in spare rows)",
            f"{cells} cells (complement generation in its own cell)",
            verdict="shape-match" if cells == 5 else "deviation")
    n_products = len(minimise(t))
    rep.add("LUT products", "fits the pair's 6 terms", f"{n_products} products",
            verdict="match" if n_products <= 6 else "deviation")
    base = FpgaBaseline().lut3_with_ff()
    rep.add("FPGA baseline equivalent", "1 logic cell (Fig. 1)",
            f"{base.n_lut4} LUT4 + {base.n_ff} FF, {base.config_bits} config bits")
    rep.note("unused FPGA components (carry mux, unused LUT half) are simply "
             "not instantiated on the fabric — the paper's Fig. 9 point")
    print()
    print(rep.render())
    assert captured == expect
