"""Stage 3 — routing: nets onto the abutment wiring, cells as wire.

The paper's Section 4 area argument is that interconnect is not a
separate resource: a route is a chain of ordinary cells configured as
feed-throughs (one single-input NAND row + INVERT driver per hop — a
buffer), each hop landing on the next cell's input line.  This router
implements that literally, generalising :mod:`repro.synth.route` from
straight channels to arbitrary nets:

* nets are routed as **trees**, one A* (maze) search per sink over wire
  nodes ``w[r][c][i]``, seeded from everything the net already drives —
  so fan-out branches wherever convenient (a feed-through re-drives its
  input column on several rows, one per branch direction);
* a source gate fans out by replicating its product row (same columns,
  another row, another direction) — exactly the trick
  :func:`repro.synth.macros.full_adder_slice` plays by hand;
* **logic cells carry through-traffic**: a placed gate's spare rows and
  columns are fair game for unrelated nets, so logic and interconnect
  genuinely share cells ("used interchangeably for logic and
  interconnection") — only the stateful pair macros are opaque, since
  their row/column budget is fully committed;
* primary inputs enter on any free, undriven wire (the fabric declares
  every read-but-undriven wire a primary input), chosen by the search;
* congestion is handled by ordering (short nets first), a cost ladder
  that prefers reusing cells the net (or anything else) already
  occupies over burning fresh blanks, and rip-up-and-retry passes that
  reroute failed nets first.

Routing is monotone by construction — rows drive east or north only —
so every search is confined to the dominance quadrant between source
and sink, and routed netlists can never acquire feedback.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro.fabric.floorplan import Region
from repro.fabric.nandcell import N_INPUTS, N_ROWS, Direction
from repro.pnr.place import Placement
from repro.pnr.techmap import (
    MappedDesign,
    MappedGate,
    PAIR_CELEMENT,
    PAIR_EVENTLATCH,
)

#: Wire owner marking a pair macro's internal product lines.
MACRO_OWNER = "__macro__"

#: Wire owner marking wires already driven or read by pre-existing
#: configuration on the target array (e.g. another floorplan region).
EXISTING_OWNER = "__existing__"

#: Product rows a pair macro drives into its collector cell (cell B
#: columns), by kind — these wires are consumed at placement time.
PAIR_INTERNAL_ROWS: dict[str, int] = {
    PAIR_CELEMENT: 3,
    PAIR_EVENTLATCH: 5,
}


class RoutingError(RuntimeError):
    """A net could not be routed with the available cells and wires."""


@dataclass
class NetRoute:
    """Everything one routed net occupies."""

    net: str
    wires: list[tuple[int, int, int]] = field(default_factory=list)
    entry_wire: tuple[int, int, int] | None = None
    sink_cols: dict[tuple[str, int], int] = field(default_factory=dict)

    @property
    def wirelength(self) -> int:
        """Wires the net occupies (driven hops + the entry line)."""
        return len(self.wires)


class RoutingState:
    """Occupancy of cells, rows, columns and wires during routing."""

    def __init__(
        self,
        design: MappedDesign,
        placement: Placement,
        shape: tuple[int, int],
        region: Region,
        array=None,
    ) -> None:
        self.design = design
        self.placement = placement
        self.n_rows, self.n_cols = shape
        self.region = region
        #: (r, c) -> gate name for cells a gate occupies.
        self.logic_cells: dict[tuple[int, int], str] = {}
        #: Pair-macro cells: fully committed, never shared with routing.
        self.opaque: set[tuple[int, int]] = set()
        #: (r, c) -> {row: Direction} of gate fan-out (function) rows.
        self.gate_rows: dict[tuple[int, int], dict[int, Direction]] = {}
        #: (r, c) -> {row: (in_col, Direction)} of feed-through rows.
        self.thru_rows: dict[tuple[int, int], dict[int, tuple[int, Direction]]] = {}
        #: ((r, c), net) -> the input column the net reads at that cell.
        self.thru_col: dict[tuple[tuple[int, int], str], int] = {}
        #: (r, c) -> {column: net} of claimed input columns (gate pins
        #: and feed-through reads alike).
        self.col_assign: dict[tuple[int, int], dict[int, str]] = {}
        #: (r, c, i) -> owning net (or MACRO_OWNER).
        self.wire_net: dict[tuple[int, int, int], str] = {}
        #: Undo journal for the net currently being routed.
        self._undo: list = []
        #: (r, c) -> input nets a gate still needs columns for: reserved
        #: capacity through-traffic must not consume.
        self.pending_inputs: dict[tuple[int, int], set[str]] = {}
        #: Gate output cells that have not committed a fan-out row yet:
        #: one row stays reserved for them.
        self.pending_output: set[tuple[int, int]] = set()

        for gate in design.gates.values():
            for cell in placement.cells_of(gate):
                self.logic_cells[cell] = gate.name
            in_cell = placement.input_cell(gate)
            self.pending_output.add(placement.output_cell(gate))
            cols = gate.pin_columns
            if cols is None:
                self.pending_inputs[in_cell] = set(gate.inputs)
            if cols is not None:
                self.opaque.update(placement.cells_of(gate))
                assign = self.col_assign.setdefault(in_cell, {})
                for pin, col in enumerate(cols):
                    assign[col] = gate.inputs[pin]
                r, c = in_cell
                for row in range(PAIR_INTERNAL_ROWS[gate.kind]):
                    self.wire_net[(r, c + 1, row)] = MACRO_OWNER
        if array is not None:
            self._claim_existing(array)

    def _claim_existing(self, array) -> None:
        """Reserve wires another configuration already drives or reads.

        This is what lets several designs compile into disjoint floorplan
        regions of one array without fighting over boundary wires.
        """
        from repro.fabric.driver import DriverMode
        from repro.fabric.nandcell import Direction as Dir, InputSource

        for r in range(array.n_rows):
            for c in range(array.n_cols):
                cfg = array.cell(r, c)
                if cfg.is_blank():
                    continue
                for row in cfg.used_rows():
                    if cfg.drivers[row] is not DriverMode.OFF:
                        target = (
                            (r, c + 1, row)
                            if cfg.directions[row] is Dir.EAST
                            else (r + 1, c, row)
                        )
                        self.wire_net.setdefault(target, EXISTING_OWNER)
                    for col in cfg.active_columns(row):
                        if cfg.input_select[col] is InputSource.ABUT:
                            self.wire_net.setdefault((r, c, col), EXISTING_OWNER)

    # -- transactional routing -----------------------------------------
    # All occupancy mutations go through the journaled mutators below,
    # so a net that fails mid-route undoes exactly what it wrote (the
    # success path records a handful of closures instead of copying the
    # whole state per net).

    def begin_net(self) -> None:
        """Start recording mutations for one net."""
        self._undo: list = []

    def commit_net(self) -> None:
        """The net routed: drop its undo journal."""
        self._undo = []

    def rollback_net(self) -> None:
        """Undo every mutation recorded since :meth:`begin_net`."""
        for fn in reversed(self._undo):
            fn()
        self._undo = []

    def claim_wire(self, w: tuple[int, int, int], net: str) -> None:
        self.wire_net[w] = net
        self._undo.append(lambda: self.wire_net.pop(w, None))

    def add_gate_row(self, cell, row: int, direction: Direction) -> None:
        rows = self.gate_rows.setdefault(cell, {})
        rows[row] = direction
        self._undo.append(lambda: rows.pop(row, None))
        if cell in self.pending_output:
            self.pending_output.discard(cell)
            self._undo.append(lambda: self.pending_output.add(cell))

    def add_thru_row(self, cell, net: str, in_col: int, row: int, direction) -> None:
        if (cell, net) not in self.thru_col:
            self.thru_col[(cell, net)] = in_col
            self._undo.append(lambda: self.thru_col.pop((cell, net), None))
        self.assign_col(cell, in_col, net)
        rows = self.thru_rows.setdefault(cell, {})
        rows[row] = (in_col, direction)
        self._undo.append(lambda: rows.pop(row, None))

    def assign_col(self, cell, col: int, net: str) -> None:
        assign = self.col_assign.setdefault(cell, {})
        if col not in assign:
            assign[col] = net
            self._undo.append(lambda: assign.pop(col, None))
        pending = self.pending_inputs.get(cell)
        if pending is not None and net in pending:
            pending.discard(net)
            self._undo.append(lambda: pending.add(net))

    # -- geometry helpers ----------------------------------------------
    def in_region(self, r: int, c: int) -> bool:
        """True when cell (r, c) may be used for routing."""
        return (
            self.region.row <= r < self.region.row + self.region.n_rows
            and self.region.col <= c < self.region.col + self.region.n_cols
        )

    def wire_exists(self, r: int, c: int, i: int) -> bool:
        """True when ``w[r][c][i]`` is a wire of this array."""
        return 0 <= r <= self.n_rows and 0 <= c <= self.n_cols and 0 <= i < N_INPUTS

    def wire_free(self, w: tuple[int, int, int]) -> bool:
        """True when nothing drives or claims the wire."""
        return w not in self.wire_net

    def free_rows(self, cell: tuple[int, int]) -> list[int]:
        """Rows still available for drivers on a cell."""
        gate_name = self.logic_cells.get(cell)
        if gate_name is not None:
            gate = self.design.gates[gate_name]
            if gate.width == 2 and cell == self.placement.input_cell(gate):
                return []  # the pair's product cell is fully committed
        used = set(self.gate_rows.get(cell, ())) | set(self.thru_rows.get(cell, ()))
        return [r for r in range(N_ROWS) if r not in used]

    def cell_passable(self, cell: tuple[int, int], net: str, in_col: int) -> bool:
        """Can ``net`` pass through ``cell`` reading column ``in_col``?"""
        if not self.in_region(*cell) or cell in self.opaque:
            return False
        existing = self.thru_col.get((cell, net))
        if existing is not None:
            return in_col == existing
        owner = self.col_assign.get(cell, {}).get(in_col)
        if owner is not None:
            # The column where this very net already lands as a gate
            # input may forward it; anything else is taken.
            return owner == net
        # A fresh column claim must leave enough free columns for the
        # cell's own unrouted gate inputs (unless this net is one).
        pending = self.pending_inputs.get(cell)
        if pending and net not in pending:
            free = N_INPUTS - len(self.col_assign.get(cell, {}))
            return free > len(pending)
        return True

    def thru_rows_available(self, cell: tuple[int, int]) -> list[int]:
        """Rows through-traffic may take: keeps one for an undriven gate."""
        rows = self.free_rows(cell)
        if cell in self.pending_output and len(rows) <= 1:
            return []
        return rows

    def is_route_only(self, cell: tuple[int, int]) -> bool:
        """True for cells burned purely as interconnect."""
        return cell in self.thru_rows and cell not in self.logic_cells

    def driver_cell_of(self, wire: tuple[int, int, int]) -> tuple[int, int] | None:
        """The cell whose committed row drives ``wire`` (None if undriven).

        A wire ``(r, c, i)`` can only be driven by its west neighbour's
        row ``i`` configured EAST or its south neighbour's row ``i``
        configured NORTH; this is the boundary-port-cell lookup the
        sharded flow uses to attribute an inter-array channel's source
        wire to a concrete cell.
        """
        r, c, i = wire
        for cell, direction in (
            ((r, c - 1), Direction.EAST),
            ((r - 1, c), Direction.NORTH),
        ):
            if cell[0] < 0 or cell[1] < 0:
                continue
            if self.gate_rows.get(cell, {}).get(i) is direction:
                return cell
            thru = self.thru_rows.get(cell, {}).get(i)
            if thru is not None and thru[1] is direction:
                return cell
        return None

    def output_candidates(self, gate: MappedGate) -> tuple[tuple[int, int], list[int]]:
        """(output cell, free rows) a gate can drive its net from."""
        cell = self.placement.output_cell(gate)
        return cell, self.free_rows(cell)


def _wire_after(cell: tuple[int, int], row: int, direction: Direction) -> tuple[int, int, int]:
    r, c = cell
    if direction is Direction.EAST:
        return (r, c + 1, row)
    return (r + 1, c, row)


class Router:
    """Maze-routes every net of a placed design."""

    #: Cost of a hop through a cell this net already reads.
    REUSE_COST = 1.0
    #: Cost of sharing a cell something else (logic, another net) uses.
    SHARE_COST = 1.5
    #: Cost of burning a fresh blank cell as a feed-through.
    FRESH_COST = 2.0

    def __init__(
        self,
        design: MappedDesign,
        placement: Placement,
        shape: tuple[int, int],
        region: Region,
        rng: random.Random | None = None,
        max_passes: int = 6,
        array=None,
        net_criticality: dict[str, float] | None = None,
    ) -> None:
        self.design = design
        self.placement = placement
        self.shape = shape
        self.region = region
        self.rng = rng or random.Random(0)
        self.max_passes = max_passes
        self.array = array
        #: Per-net timing criticality in [0, 1] (see `repro.pnr.timing`).
        #: Critical nets route first, and their cost ladder flattens
        #: toward uniform so A* returns the geometrically shortest
        #: (lowest-detour) tree instead of the congestion-cheapest one.
        self.net_criticality = net_criticality or {}
        self.state = RoutingState(design, placement, shape, region, array=array)
        self.routes: dict[str, NetRoute] = {}
        #: Per-cell congestion history, grown between rip-up passes so
        #: later passes spread traffic away from contested cells
        #: (a light take on PathFinder's negotiated congestion).
        self.history: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Net enumeration and ordering
    # ------------------------------------------------------------------
    def routable_nets(self) -> list[str]:
        nets = []
        for net in self.design.nets():
            sinks = self.design.sinks_of.get(net, [])
            if sinks or net in self.design.outputs:
                nets.append(net)
        return nets

    def _net_span(self, net: str) -> int:
        from repro.pnr.place import net_hpwl

        return net_hpwl(self.design, self.placement, net)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def route_design(self, strict: bool = True) -> dict[str, NetRoute]:
        """Route every net, rip-up-and-retrying failures.

        With ``strict`` any leftover failure raises :class:`RoutingError`;
        otherwise the partial result is returned and failed nets are
        simply absent from the route map (for congestion studies).

        Nets route shortest-span first; timing-critical nets jump the
        queue so they claim direct paths before congestion builds.
        """
        nets = sorted(
            self.routable_nets(),
            key=lambda n: (
                -round(self.net_criticality.get(n, 0.0), 3),
                self._net_span(n),
            ),
        )
        failed: list[str] = []
        for attempt in range(self.max_passes):
            failed = []
            for net in nets:
                self.state.begin_net()
                try:
                    self.routes[net] = self._route_net(net)
                    self.state.commit_net()
                except RoutingError:
                    # Roll the partial tree back so the failure cannot
                    # poison the nets routed after it.
                    self.state.rollback_net()
                    failed.append(net)
            if not failed:
                return self.routes
            if attempt == self.max_passes - 1:
                break
            # Charge the cells this pass leaned on, then rip everything
            # up and lead with the failures.
            for cell in set(self.state.thru_rows) | set(self.state.gate_rows):
                self.history[cell] = self.history.get(cell, 0.0) + 0.3
            self.state = RoutingState(
                self.design, self.placement, self.shape, self.region,
                array=self.array,
            )
            self.routes = {}
            rest = [n for n in nets if n not in failed]
            self.rng.shuffle(rest)
            nets = failed + rest
        if strict:
            raise RoutingError(
                f"unroutable nets after {self.max_passes} passes: "
                f"{failed[:6]} (of {len(failed)})"
            )
        return self.routes

    # ------------------------------------------------------------------
    # One net
    # ------------------------------------------------------------------
    def _route_net(self, net: str) -> NetRoute:
        route = NetRoute(net=net)
        src_gate_name = self.design.source_of.get(net)
        src_gate = (
            self.design.gates[src_gate_name] if src_gate_name is not None else None
        )
        sinks = list(self.design.sinks_of.get(net, []))
        is_output = net in self.design.outputs
        # A primary input has a free entry point, but the whole tree must
        # grow from it — so the entry is confined to the dominance corner
        # every sink can still be reached from.
        sink_cells = [
            self.placement.input_cell(self.design.gates[g]) for g, _ in sinks
        ]
        if src_gate is not None:
            origin = self.placement.output_cell(src_gate)
            entry_bound = None
        else:
            origin = (
                min((r for r, _ in sink_cells), default=self.region.row),
                min((c for _, c in sink_cells), default=self.region.col),
            )
            entry_bound = origin
        # Sort sinks nearest-first so the tree grows outward.
        sinks.sort(
            key=lambda s: (
                abs(self.placement.input_cell(self.design.gates[s[0]])[0] - origin[0])
                + abs(self.placement.input_cell(self.design.gates[s[0]])[1] - origin[1])
            )
        )
        for gate_name, pin in sinks:
            self._route_sink(
                route, src_gate, gate_name, pin,
                multi=len(sinks) > 1 or is_output,
                entry_bound=entry_bound,
            )
        if is_output:
            self._ensure_output_tap(route, src_gate)
        return route

    def _sink_target(
        self, gate: MappedGate, pin: int, net: str
    ) -> tuple[tuple[int, int], list[int]]:
        """(input cell, acceptable columns) for one sink pin."""
        cell = self.placement.input_cell(gate)
        cols = gate.pin_columns
        if cols is not None:
            return cell, [cols[pin]]
        assign = self.state.col_assign.get(cell, {})
        if net in assign.values():
            # The net already landed on this cell (duplicate pin).
            return cell, [c for c, n in assign.items() if n == net]
        return cell, [c for c in range(N_INPUTS) if c not in assign]

    def _route_sink(
        self,
        route: NetRoute,
        src_gate: MappedGate | None,
        sink_name: str,
        pin: int,
        multi: bool,
        entry_bound: tuple[int, int] | None = None,
    ) -> None:
        sink_gate = self.design.gates[sink_name]
        target_cell, allowed = self._sink_target(sink_gate, pin, route.net)
        if not allowed:
            raise RoutingError(
                f"net {route.net!r}: sink {sink_name!r} has no free input column"
            )
        tr, tc = target_cell
        # The net may already arrive on an acceptable column of this cell.
        for col in allowed:
            if self.state.wire_net.get((tr, tc, col)) == route.net:
                route.sink_cols[(sink_name, pin)] = col
                self._assign_col(target_cell, col, route.net)
                return
        came = self._search(route, src_gate, target_cell, allowed, multi, entry_bound)
        goal_col = self._commit(route, came)
        route.sink_cols[(sink_name, pin)] = goal_col
        self._assign_col(target_cell, goal_col, route.net)

    def _assign_col(self, cell: tuple[int, int], col: int, net: str) -> None:
        self.state.assign_col(cell, col, net)

    # ------------------------------------------------------------------
    # A* search over wire nodes
    # ------------------------------------------------------------------
    def _hop_cost(self, cell: tuple[int, int], net: str) -> float:
        st = self.state
        if (cell, net) in st.thru_col:
            base = self.REUSE_COST
        elif cell in st.logic_cells or cell in st.thru_rows:
            base = self.SHARE_COST
        else:
            base = self.FRESH_COST
        # Timing-critical nets care about hops (each hop is a buffer
        # delay), not cell economy: interpolate the ladder toward the
        # uniform REUSE_COST so the search minimises detour instead.
        crit = self.net_criticality.get(net, 0.0)
        if crit > 0.0:
            base = base * (1.0 - crit) + self.REUSE_COST * crit
        return base + self.history.get(cell, 0.0)

    def _search(
        self,
        route: NetRoute,
        src_gate: MappedGate | None,
        target: tuple[int, int],
        allowed_cols: list[int],
        multi: bool,
        entry_bound: tuple[int, int] | None = None,
    ):
        """Find a path of wires ending on ``target``'s allowed columns.

        Returns the parent map and the goal node; raises RoutingError.
        Nodes are wires ``(r, c, i)``; parents record how the wire came
        to carry the net: ``("seed",)`` (already in the tree),
        ``("drive", row, dir)`` (a new source row), ``("entry",)``
        (primary-input entry) or ``("hop", prev, row, dir)``.
        """
        st = self.state
        tr, tc = target

        def h(node: tuple[int, int, int]) -> float:
            return (tr - node[0]) + (tc - node[1])

        frontier: list[tuple[float, int, tuple[int, int, int]]] = []
        came: dict[tuple[int, int, int], tuple] = {}
        gcost: dict[tuple[int, int, int], float] = {}
        tick = 0

        def push(node, cost, parent):
            nonlocal tick
            if node[0] > tr or node[1] > tc:
                return
            if node in gcost and gcost[node] <= cost:
                return
            gcost[node] = cost
            came[node] = parent
            tick += 1
            heapq.heappush(frontier, (cost + h(node), tick, node))

        for w in route.wires:
            push(w, 0.0, ("seed",))
        if src_gate is not None:
            cell, rows = st.output_candidates(src_gate)
            for row in rows:
                for direction in (Direction.EAST, Direction.NORTH):
                    w = _wire_after(cell, row, direction)
                    if st.wire_exists(*w) and st.wire_free(w):
                        push(w, 1.0, ("drive", row, direction))
        elif not route.wires:
            # Primary input: enter on any free wire the search can use —
            # a passable cell's free column, or the sink pin directly.
            # The entry bound keeps the root inside every sink's quadrant.
            er, ec = entry_bound if entry_bound is not None else (tr, tc)
            for r in range(self.region.row, min(self.region.row + self.region.n_rows, er + 1)):
                for c in range(self.region.col, min(self.region.col + self.region.n_cols, ec + 1)):
                    cell = (r, c)
                    for i in range(N_INPUTS):
                        w = (r, c, i)
                        if not st.wire_free(w):
                            continue
                        direct = (
                            not multi and cell == target and i in allowed_cols
                        )
                        if direct or st.cell_passable(cell, route.net, i):
                            push(w, 0.0, ("entry",))

        while frontier:
            f, _, node = heapq.heappop(frontier)
            if gcost[node] + h(node) < f - 1e-9:
                continue
            r, c, i = node
            if (r, c) == target and i in allowed_cols:
                return came, node
            cell = (r, c)
            if not st.cell_passable(cell, route.net, i):
                continue
            base = self._hop_cost(cell, route.net)
            for row in st.thru_rows_available(cell):
                for direction in (Direction.EAST, Direction.NORTH):
                    w = _wire_after(cell, row, direction)
                    if st.wire_exists(*w) and st.wire_free(w):
                        push(w, gcost[node] + base, ("hop", node, row, direction))
        raise RoutingError(
            f"net {route.net!r}: no path to cell {target} columns {allowed_cols}"
        )

    # ------------------------------------------------------------------
    # Committing a found path
    # ------------------------------------------------------------------
    def _commit(self, route: NetRoute, came_and_goal) -> int:
        came, goal = came_and_goal
        st = self.state
        path: list[tuple[tuple[int, int, int], tuple]] = []
        node = goal
        while True:
            parent = came[node]
            path.append((node, parent))
            if parent[0] == "hop":
                node = parent[1]
            else:
                break
        for node, parent in reversed(path):
            kind = parent[0]
            if kind == "seed":
                continue
            if kind == "entry":
                st.claim_wire(node, route.net)
                route.wires.append(node)
                route.entry_wire = node
                continue
            if kind == "drive":
                _, row, direction = parent
                src_cell = self.placement.output_cell(
                    self.design.gates[self.design.source_of[route.net]]
                )
                st.add_gate_row(src_cell, row, direction)
            else:  # hop
                _, prev, row, direction = parent
                st.add_thru_row(
                    (prev[0], prev[1]), route.net, prev[2], row, direction
                )
            st.claim_wire(node, route.net)
            route.wires.append(node)
        return goal[2]

    # ------------------------------------------------------------------
    # Output taps
    # ------------------------------------------------------------------
    def _ensure_output_tap(self, route: NetRoute, src_gate: MappedGate | None) -> None:
        """Guarantee the net value is observable on a *driven* wire."""
        driven = [w for w in route.wires if w != route.entry_wire]
        if driven:
            return
        if src_gate is not None:
            cell, rows = self.state.output_candidates(src_gate)
            if self._tap_from(route, cell, rows, in_col=None):
                return
            raise RoutingError(
                f"output net {route.net!r}: no free row/wire to expose it"
            )
        # Primary input feeding an output: pass it through one cell.
        for (cell, owner), in_col in list(self.state.thru_col.items()):
            if owner == route.net:
                if self._tap_from(
                    route, cell, self.state.free_rows(cell), in_col=in_col
                ):
                    return
        # Forward straight from the cell the entry wire lands on (its
        # reader — a sink or feed-through — re-drives it on a spare row).
        if route.entry_wire is not None:
            er, ec, ei = route.entry_wire
            if self._tap_from(
                route, (er, ec), self.state.free_rows((er, ec)), in_col=ei
            ):
                return
        else:
            # No entry exists yet: claim one plus one buffer row.
            for r in range(self.region.row, self.region.row + self.region.n_rows):
                for c in range(self.region.col, self.region.col + self.region.n_cols):
                    cell = (r, c)
                    for i in range(N_INPUTS):
                        entry = (r, c, i)
                        if not self.state.wire_free(entry):
                            continue
                        if not self.state.cell_passable(cell, route.net, i):
                            continue
                        if self._tap_entry(route, cell, entry):
                            return
        raise RoutingError(
            f"output net {route.net!r}: no cell available to expose it"
        )

    def _tap_entry(self, route, cell, entry) -> bool:
        ok = self._tap_from(route, cell, self.state.free_rows(cell), in_col=entry[2])
        if not ok:
            return False
        self.state.claim_wire(entry, route.net)
        route.wires.insert(0, entry)
        route.entry_wire = entry
        return True

    def _tap_from(self, route, cell, rows, in_col) -> bool:
        st = self.state
        for row in rows:
            for direction in (Direction.EAST, Direction.NORTH):
                w = _wire_after(cell, row, direction)
                if st.wire_exists(*w) and st.wire_free(w):
                    if in_col is not None:
                        st.add_thru_row(cell, route.net, in_col, row, direction)
                    else:
                        st.add_gate_row(cell, row, direction)
                    st.claim_wire(w, route.net)
                    route.wires.append(w)
                    return True
        return False
