"""Stage 3 — routing: nets onto the abutment wiring, cells as wire.

The paper's Section 4 area argument is that interconnect is not a
separate resource: a route is a chain of ordinary cells configured as
feed-throughs (one single-input NAND row + INVERT driver per hop — a
buffer), each hop landing on the next cell's input line.  This router
implements that literally, generalising :mod:`repro.synth.route` from
straight channels to arbitrary nets:

* nets are routed as **trees**, one A* (maze) search per sink over wire
  nodes ``w[r][c][i]``, seeded from everything the net already drives —
  so fan-out branches wherever convenient (a feed-through re-drives its
  input column on several rows, one per branch direction);
* a source gate fans out by replicating its product row (same columns,
  another row, another direction) — exactly the trick
  :func:`repro.synth.macros.full_adder_slice` plays by hand;
* **logic cells carry through-traffic**: a placed gate's spare rows and
  columns are fair game for unrelated nets, so logic and interconnect
  genuinely share cells ("used interchangeably for logic and
  interconnection") — only the stateful pair macros are opaque, since
  their row/column budget is fully committed;
* primary inputs enter on any free, undriven wire (the fabric declares
  every read-but-undriven wire a primary input), chosen by the search;
* congestion is handled by ordering (short nets first), a cost ladder
  that prefers reusing cells the net (or anything else) already
  occupies over burning fresh blanks, and rip-up-and-retry passes that
  reroute failed nets first while *replaying* the rest from their
  committed claim journals;
* all A* searches share one preallocated, generation-stamped cost grid
  and a numpy congestion-history array — no per-net allocation (see
  ``docs/performance.md``).

Routing is monotone by construction — rows drive east or north only —
so every search is confined to the dominance quadrant between source
and sink, and routed netlists can never acquire feedback.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

import numpy as np

from repro.fabric.floorplan import Region
from repro.fabric.nandcell import N_INPUTS, N_ROWS, Direction
from repro.pnr.parallel import checkpoint
from repro.pnr.place import Placement
from repro.pnr.techmap import (
    MappedDesign,
    MappedGate,
    PAIR_CELEMENT,
    PAIR_EVENTLATCH,
)

#: Wire owner marking a pair macro's internal product lines.
MACRO_OWNER = "__macro__"

#: Wire owner marking wires already driven or read by pre-existing
#: configuration on the target array (e.g. another floorplan region).
EXISTING_OWNER = "__existing__"

#: Wire owner marking dead wire segments of a per-die defect map
#: (:class:`repro.pnr.defects.DefectMap`): pre-claimed before any net
#: routes, so both fresh A* searches and warm journal replays treat
#: them as permanently occupied.
DEFECT_OWNER = "__defect__"

#: Product rows a pair macro drives into its collector cell (cell B
#: columns), by kind — these wires are consumed at placement time.
PAIR_INTERNAL_ROWS: dict[str, int] = {
    PAIR_CELEMENT: 3,
    PAIR_EVENTLATCH: 5,
}

#: Free-row tuples by used-row bitmask: ``_ROWS_BY_MASK[mask]`` lists the
#: rows whose bit is clear — the O(1) lookup behind
#: :meth:`RoutingState.free_rows`.
_ROWS_BY_MASK: tuple[tuple[int, ...], ...] = tuple(
    tuple(r for r in range(N_ROWS) if not mask >> r & 1)
    for mask in range(1 << N_ROWS)
)


class RoutingError(RuntimeError):
    """A net could not be routed with the available cells and wires."""


@dataclass
class NetRoute:
    """Everything one routed net occupies.

    ``ops`` is the net's commit journal — the ordered resource claims
    (entry wires, source-row drives, feed-through hops, sink column
    landings) that produced the route.  A later router pass replays the
    journal verbatim when the net's endpoints have not moved, instead of
    searching again (see :meth:`Router.route_design`).
    """

    net: str
    wires: list[tuple[int, int, int]] = field(default_factory=list)
    entry_wire: tuple[int, int, int] | None = None
    sink_cols: dict[tuple[str, int], int] = field(default_factory=dict)
    ops: list[tuple] = field(default_factory=list, repr=False)

    @property
    def wirelength(self) -> int:
        """Wires the net occupies (driven hops + the entry line)."""
        return len(self.wires)


class RoutingState:
    """Occupancy of cells, rows, columns and wires during routing."""

    def __init__(
        self,
        design: MappedDesign,
        placement: Placement,
        shape: tuple[int, int],
        region: Region,
        array=None,
        defects=None,
    ) -> None:
        self.design = design
        self.placement = placement
        self.n_rows, self.n_cols = shape
        self.region = region
        self.defects = defects
        #: (r, c) -> gate name for cells a gate occupies.
        self.logic_cells: dict[tuple[int, int], str] = {}
        #: Pair-macro cells: fully committed, never shared with routing.
        self.opaque: set[tuple[int, int]] = set()
        #: (r, c) -> bitmask of driver rows in use (gate + feed-through):
        #: the O(1) source of :meth:`free_rows`.
        self._row_mask: dict[tuple[int, int], int] = {}
        #: Pair product cells whose rows are all spoken for.
        self._pair_committed: set[tuple[int, int]] = set()
        #: (r, c) -> {row: Direction} of gate fan-out (function) rows.
        self.gate_rows: dict[tuple[int, int], dict[int, Direction]] = {}
        #: (r, c) -> {row: (in_col, Direction)} of feed-through rows.
        self.thru_rows: dict[tuple[int, int], dict[int, tuple[int, Direction]]] = {}
        #: ((r, c), net) -> the input column the net reads at that cell.
        self.thru_col: dict[tuple[tuple[int, int], str], int] = {}
        #: (r, c) -> {column: net} of claimed input columns (gate pins
        #: and feed-through reads alike).
        self.col_assign: dict[tuple[int, int], dict[int, str]] = {}
        #: (r, c, i) -> owning net (or MACRO_OWNER).
        self.wire_net: dict[tuple[int, int, int], str] = {}
        #: Undo journal for the net currently being routed.
        self._undo: list = []
        #: (r, c) -> input nets a gate still needs columns for: reserved
        #: capacity through-traffic must not consume.
        self.pending_inputs: dict[tuple[int, int], set[str]] = {}
        #: Gate output cells that have not committed a fan-out row yet:
        #: one row stays reserved for them.
        self.pending_output: set[tuple[int, int]] = set()

        # Defect pre-claims go in before any gate or existing-config
        # claim: dead wires become permanently owned, dead cells opaque
        # *and* row-committed (so neither drives nor feed-throughs can
        # use them), stuck config rows are masked out of free_rows.
        # Warm journal replays validate each op against this occupancy,
        # so a journal crossing a defect fails its replay and the net
        # re-searches — exactly the repair semantics of
        # :func:`repro.pnr.defects.repair_for_die`.
        if defects is not None:
            for w in defects.dead_wires:
                self.wire_net[w] = DEFECT_OWNER
            for cell in defects.dead_cells:
                self.opaque.add(cell)
                self._pair_committed.add(cell)
            for dr, dc, row in defects.stuck_rows:
                cell = (dr, dc)
                self._row_mask[cell] = self._row_mask.get(cell, 0) | 1 << row

        for gate in design.gates.values():
            for cell in placement.cells_of(gate):
                self.logic_cells[cell] = gate.name
            in_cell = placement.input_cell(gate)
            self.pending_output.add(placement.output_cell(gate))
            cols = gate.pin_columns
            if cols is None:
                self.pending_inputs[in_cell] = set(gate.inputs)
            if cols is not None:
                self.opaque.update(placement.cells_of(gate))
                self._pair_committed.add(in_cell)
                assign = self.col_assign.setdefault(in_cell, {})
                for pin, col in enumerate(cols):
                    assign[col] = gate.inputs[pin]
                r, c = in_cell
                for row in range(PAIR_INTERNAL_ROWS[gate.kind]):
                    self.wire_net[(r, c + 1, row)] = MACRO_OWNER
        if array is not None:
            self._claim_existing(array)

    def _claim_existing(self, array) -> None:
        """Reserve wires another configuration already drives or reads.

        This is what lets several designs compile into disjoint floorplan
        regions of one array without fighting over boundary wires.
        """
        from repro.fabric.driver import DriverMode
        from repro.fabric.nandcell import Direction as Dir, InputSource

        for r in range(array.n_rows):
            for c in range(array.n_cols):
                cfg = array.cell(r, c)
                if cfg.is_blank():
                    continue
                for row in cfg.used_rows():
                    if cfg.drivers[row] is not DriverMode.OFF:
                        target = (
                            (r, c + 1, row)
                            if cfg.directions[row] is Dir.EAST
                            else (r + 1, c, row)
                        )
                        self.wire_net.setdefault(target, EXISTING_OWNER)
                    for col in cfg.active_columns(row):
                        if cfg.input_select[col] is InputSource.ABUT:
                            self.wire_net.setdefault((r, c, col), EXISTING_OWNER)

    # -- transactional routing -----------------------------------------
    # All occupancy mutations go through the journaled mutators below,
    # so a net that fails mid-route undoes exactly what it wrote (the
    # success path records a handful of closures instead of copying the
    # whole state per net).

    def begin_net(self) -> None:
        """Start recording mutations for one net."""
        self._undo: list = []

    def commit_net(self) -> None:
        """The net routed: drop its undo journal."""
        self._undo = []

    def rollback_net(self) -> None:
        """Undo every mutation recorded since :meth:`begin_net`."""
        for fn in reversed(self._undo):
            fn()
        self._undo = []

    def claim_wire(self, w: tuple[int, int, int], net: str) -> None:
        self.wire_net[w] = net
        self._undo.append(lambda: self.wire_net.pop(w, None))

    def add_gate_row(self, cell, row: int, direction: Direction) -> None:
        rows = self.gate_rows.setdefault(cell, {})
        rows[row] = direction
        self._mark_row(cell, row)
        self._undo.append(lambda: rows.pop(row, None))
        if cell in self.pending_output:
            self.pending_output.discard(cell)
            self._undo.append(lambda: self.pending_output.add(cell))

    def add_thru_row(self, cell, net: str, in_col: int, row: int, direction) -> None:
        if (cell, net) not in self.thru_col:
            self.thru_col[(cell, net)] = in_col
            self._undo.append(lambda: self.thru_col.pop((cell, net), None))
        self.assign_col(cell, in_col, net)
        rows = self.thru_rows.setdefault(cell, {})
        rows[row] = (in_col, direction)
        self._mark_row(cell, row)
        self._undo.append(lambda: rows.pop(row, None))

    def _mark_row(self, cell, row: int) -> None:
        mask = self._row_mask
        mask[cell] = mask.get(cell, 0) | 1 << row
        self._undo.append(lambda: mask.__setitem__(cell, mask[cell] & ~(1 << row)))

    def assign_col(self, cell, col: int, net: str) -> None:
        assign = self.col_assign.setdefault(cell, {})
        if col not in assign:
            assign[col] = net
            self._undo.append(lambda: assign.pop(col, None))
        pending = self.pending_inputs.get(cell)
        if pending is not None and net in pending:
            pending.discard(net)
            self._undo.append(lambda: pending.add(net))

    # -- geometry helpers ----------------------------------------------
    def in_region(self, r: int, c: int) -> bool:
        """True when cell (r, c) may be used for routing."""
        return (
            self.region.row <= r < self.region.row + self.region.n_rows
            and self.region.col <= c < self.region.col + self.region.n_cols
        )

    def wire_exists(self, r: int, c: int, i: int) -> bool:
        """True when ``w[r][c][i]`` is a wire of this array."""
        return 0 <= r <= self.n_rows and 0 <= c <= self.n_cols and 0 <= i < N_INPUTS

    def wire_free(self, w: tuple[int, int, int]) -> bool:
        """True when nothing drives or claims the wire."""
        return w not in self.wire_net

    def free_rows(self, cell: tuple[int, int]) -> tuple[int, ...]:
        """Rows still available for drivers on a cell."""
        if cell in self._pair_committed:
            return ()  # the pair's product cell is fully committed
        return _ROWS_BY_MASK[self._row_mask.get(cell, 0)]

    def cell_passable(self, cell: tuple[int, int], net: str, in_col: int) -> bool:
        """Can ``net`` pass through ``cell`` reading column ``in_col``?"""
        if not self.in_region(*cell) or cell in self.opaque:
            return False
        existing = self.thru_col.get((cell, net))
        if existing is not None:
            return in_col == existing
        owner = self.col_assign.get(cell, {}).get(in_col)
        if owner is not None:
            # The column where this very net already lands as a gate
            # input may forward it; anything else is taken.
            return owner == net
        # A fresh column claim must leave enough free columns for the
        # cell's own unrouted gate inputs (unless this net is one).
        pending = self.pending_inputs.get(cell)
        if pending and net not in pending:
            free = N_INPUTS - len(self.col_assign.get(cell, {}))
            return free > len(pending)
        return True

    def thru_rows_available(self, cell: tuple[int, int]) -> tuple[int, ...]:
        """Rows through-traffic may take: keeps one for an undriven gate."""
        rows = self.free_rows(cell)
        if cell in self.pending_output and len(rows) <= 1:
            return ()
        return rows

    def is_route_only(self, cell: tuple[int, int]) -> bool:
        """True for cells burned purely as interconnect."""
        return cell in self.thru_rows and cell not in self.logic_cells

    def driver_cell_of(self, wire: tuple[int, int, int]) -> tuple[int, int] | None:
        """The cell whose committed row drives ``wire`` (None if undriven).

        A wire ``(r, c, i)`` can only be driven by its west neighbour's
        row ``i`` configured EAST or its south neighbour's row ``i``
        configured NORTH; this is the boundary-port-cell lookup the
        sharded flow uses to attribute an inter-array channel's source
        wire to a concrete cell.
        """
        r, c, i = wire
        for cell, direction in (
            ((r, c - 1), Direction.EAST),
            ((r - 1, c), Direction.NORTH),
        ):
            if cell[0] < 0 or cell[1] < 0:
                continue
            if self.gate_rows.get(cell, {}).get(i) is direction:
                return cell
            thru = self.thru_rows.get(cell, {}).get(i)
            if thru is not None and thru[1] is direction:
                return cell
        return None

    def output_candidates(self, gate: MappedGate) -> tuple[tuple[int, int], list[int]]:
        """(output cell, free rows) a gate can drive its net from."""
        cell = self.placement.output_cell(gate)
        return cell, self.free_rows(cell)


def _wire_after(cell: tuple[int, int], row: int, direction: Direction) -> tuple[int, int, int]:
    r, c = cell
    if direction is Direction.EAST:
        return (r, c + 1, row)
    return (r + 1, c, row)


class Router:
    """Maze-routes every net of a placed design."""

    #: Cost of a hop through a cell this net already reads.
    REUSE_COST = 1.0
    #: Cost of sharing a cell something else (logic, another net) uses.
    SHARE_COST = 1.5
    #: Cost of burning a fresh blank cell as a feed-through.
    FRESH_COST = 2.0

    def __init__(
        self,
        design: MappedDesign,
        placement: Placement,
        shape: tuple[int, int],
        region: Region,
        rng: random.Random | None = None,
        max_passes: int = 6,
        array=None,
        net_criticality: dict[str, float] | None = None,
        warm_routes: dict[str, NetRoute] | None = None,
        warm_moved: set[str] | None = None,
        defects=None,
    ) -> None:
        self.design = design
        self.placement = placement
        self.shape = shape
        self.region = region
        #: Per-die defect map (see :mod:`repro.pnr.defects`): threaded
        #: into every :class:`RoutingState` this router builds, so the
        #: rip-up rebuilds keep the same blocked resources.
        self.defects = defects
        #: Retained for API compatibility: rip-up retries used to
        #: shuffle the remaining net order with this rng; they now keep
        #: a stable order so journal replays stay consistent, and
        #: routing is fully deterministic for a given placement.
        self.rng = rng or random.Random(0)
        self.max_passes = max_passes
        self.array = array
        #: Per-net timing criticality in [0, 1] (see `repro.pnr.timing`).
        #: Critical nets route first, and their cost ladder flattens
        #: toward uniform so A* returns the geometrically shortest
        #: (lowest-detour) tree instead of the congestion-cheapest one.
        self.net_criticality = net_criticality or {}
        self.state = RoutingState(
            design, placement, shape, region, array=array, defects=defects
        )
        self.routes: dict[str, NetRoute] = {}
        #: Warm-start accounting for the current/last ``route_design``:
        #: how many nets replayed their journal vs paid for an A* search
        #: (repair benchmarks report the replay fraction from these).
        self.n_replayed = 0
        self.n_searched = 0
        #: Per-cell congestion history, grown between rip-up passes so
        #: later passes spread traffic away from contested cells
        #: (a light take on PathFinder's negotiated congestion) — a
        #: numpy grid so charging and lookups stay cheap.
        self.history = np.zeros(shape, dtype=np.float64)
        #: Routes from a previous compile of (almost) this placement:
        #: a net none of whose endpoint gates appear in ``warm_moved``
        #: replays its journal instead of searching (see ``route_design``).
        self.warm_routes = warm_routes or {}
        self.warm_moved = warm_moved if warm_moved is not None else set()
        self._use_warm = bool(self.warm_routes)
        #: The most critical nets always re-search rather than replay —
        #: capped to a handful so a design whose whole spine is critical
        #: (a carry chain) still replays most of its routes.
        by_crit = sorted(
            (n for n, c in self.net_criticality.items() if c >= 0.9),
            key=lambda n: (-self.net_criticality[n], n),
        )
        self._warm_research = set(
            by_crit[: max(8, len(self.net_criticality) // 16)]
        )
        # One preallocated search grid, reused by every A* call: slots
        # are valid only when their generation stamp matches the current
        # search, so "clearing" between nets is a counter increment —
        # no per-net dict allocation or snapshot copies.
        nr, nc = shape
        self._nid_cols = nc + 1
        n_nodes = (nr + 1) * (nc + 1) * N_INPUTS
        self._gcost: list[float] = [0.0] * n_nodes
        self._parent: list[tuple | None] = [None] * n_nodes
        self._stamp: list[int] = [0] * n_nodes
        self._generation = 0

    # ------------------------------------------------------------------
    # Net enumeration and ordering
    # ------------------------------------------------------------------
    def routable_nets(self) -> list[str]:
        nets = []
        for net in self.design.nets():
            sinks = self.design.sinks_of.get(net, [])
            if sinks or net in self.design.outputs:
                nets.append(net)
        return nets

    def _net_span(self, net: str) -> int:
        from repro.pnr.place import net_hpwl

        return net_hpwl(self.design, self.placement, net)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def route_design(self, strict: bool = True) -> dict[str, NetRoute]:
        """Route every net, rip-up-and-retrying failures.

        With ``strict`` any leftover failure raises :class:`RoutingError`;
        otherwise the partial result is returned and failed nets are
        simply absent from the route map (for congestion studies).

        Nets route shortest-span first; timing-critical nets jump the
        queue so they claim direct paths before congestion builds.

        When the router was built with ``warm_routes`` (the timing-driven
        ladder re-entering after a warm-start re-anneal), any net whose
        endpoint gates all kept their position replays its previous
        commit journal — validating every claim against the current
        occupancy — and only falls back to a fresh A* search when the
        replay collides with a moved net's resources.

        Rip-up passes reuse state the same way: after a failed pass the
        failures route first (claiming whatever they need, with the
        congestion history charged), and every net the failed pass *did*
        route becomes a warm route — so a pass with one stuck net costs
        one search plus journal replays, not a full re-route of the
        design.
        """
        nets = sorted(
            self.routable_nets(),
            key=lambda n: (
                -round(self.net_criticality.get(n, 0.0), 3),
                self._net_span(n),
            ),
        )
        failed: list[str] = []
        for attempt in range(self.max_passes):
            prev_failed = failed
            failed = []
            ordered = nets
            if self._use_warm:
                # Last pass's failures keep absolute priority, then the
                # replays: they re-claim slices of one mutually
                # consistent previous solution, so played back-to-back
                # they almost never collide; fresh searches then route
                # around the replayed fabric.
                front = set(prev_failed)
                eligible = [
                    n for n in nets
                    if n not in front
                    and n in self.warm_routes
                    and self._warm_eligible(n)
                ]
                taken = front | set(eligible)
                ordered = (
                    prev_failed
                    + eligible
                    + [n for n in nets if n not in taken]
                )
            for net in ordered:
                # Cooperative cancellation: a service deadline cancels
                # between nets, never mid-search.
                checkpoint()
                if self._use_warm:
                    warm = self.warm_routes.get(net)
                    if warm is not None and self._warm_eligible(net):
                        replayed = self._replay_net(warm)
                        if replayed is not None:
                            self.routes[net] = replayed
                            self.n_replayed += 1
                            continue
                self.state.begin_net()
                try:
                    self.routes[net] = self._route_net(net)
                    self.n_searched += 1
                    self.state.commit_net()
                except RoutingError:
                    # Roll the partial tree back so the failure cannot
                    # poison the nets routed after it.
                    self.state.rollback_net()
                    failed.append(net)
            if not failed:
                return self.routes
            if attempt == self.max_passes - 1:
                break
            # Charge the cells this pass leaned on, then rip everything
            # up and lead with the failures; the routes this pass *did*
            # commit replay from their journals unless the retried
            # failures grab their resources first.
            for cell in set(self.state.thru_rows) | set(self.state.gate_rows):
                self.history[cell] += 0.3
            self.warm_routes = dict(self.routes)
            self.warm_moved = set()
            self._use_warm = True
            self.state = RoutingState(
                self.design, self.placement, self.shape, self.region,
                array=self.array, defects=self.defects,
            )
            self.routes = {}
            # Keep the remaining order stable: journal replays then stay
            # consistent pass over pass instead of cascading failures
            # through a reshuffled claim order.
            rest = [n for n in nets if n not in failed]
            nets = failed + rest
        if strict:
            raise RoutingError(
                f"unroutable nets after {self.max_passes} passes: "
                f"{failed[:6]} (of {len(failed)})"
            )
        return self.routes

    # ------------------------------------------------------------------
    # Warm replay of an earlier pass's routes
    # ------------------------------------------------------------------
    def _warm_eligible(self, net: str) -> bool:
        """True when every endpoint gate of ``net`` is unmoved.

        The most critical nets (capped to a handful — see
        ``_warm_research``) always re-search: the flattened cost ladder
        may find them a lower-detour tree than the one the previous rung
        committed, and re-searching those nets is what the timing-driven
        loop is *for*.
        """
        if net in self._warm_research:
            return False
        src = self.design.source_of.get(net)
        if src is not None and src in self.warm_moved:
            return False
        return all(
            g not in self.warm_moved
            for g, _ in self.design.sinks_of.get(net, [])
        )

    def _replay_net(self, warm: NetRoute) -> NetRoute | None:
        """Re-claim a previous route's resources from its commit journal.

        Every op is validated against the *current* routing state before
        it is applied; the first collision rolls the whole net back and
        returns ``None`` so the caller searches from scratch.  A replay
        that completes reproduces the old route exactly (same wires,
        same sink columns), which is what keeps the timing-driven ladder
        deterministic.
        """
        st = self.state
        net = warm.net
        st.begin_net()
        route = NetRoute(net=net, sink_cols=dict(warm.sink_cols))
        for op in warm.ops:
            kind = op[0]
            if kind == "entry" or kind == "entry_front":
                w = op[1]
                if not st.wire_free(w):
                    break
                st.claim_wire(w, net)
                if kind == "entry":
                    route.wires.append(w)
                else:
                    route.wires.insert(0, w)
                route.entry_wire = w
            elif kind == "drive":
                _, w, cell, row, direction = op
                if not st.wire_free(w) or row not in st.free_rows(cell):
                    break
                st.add_gate_row(cell, row, direction)
                st.claim_wire(w, net)
                route.wires.append(w)
            elif kind == "thru":
                _, w, cell, in_col, row, direction = op
                if (
                    not st.wire_free(w)
                    or not st.cell_passable(cell, net, in_col)
                    or row not in st.thru_rows_available(cell)
                ):
                    break
                st.add_thru_row(cell, net, in_col, row, direction)
                st.claim_wire(w, net)
                route.wires.append(w)
            elif kind == "col":
                _, cell, col = op
                owner = st.col_assign.get(cell, {}).get(col)
                if owner is not None and owner != net:
                    break
                st.assign_col(cell, col, net)
            else:  # pragma: no cover - journal kinds are closed
                break
        else:
            route.ops = list(warm.ops)
            st.commit_net()
            return route
        st.rollback_net()
        return None

    # ------------------------------------------------------------------
    # One net
    # ------------------------------------------------------------------
    def _route_net(self, net: str) -> NetRoute:
        route = NetRoute(net=net)
        src_gate_name = self.design.source_of.get(net)
        src_gate = (
            self.design.gates[src_gate_name] if src_gate_name is not None else None
        )
        sinks = list(self.design.sinks_of.get(net, []))
        is_output = net in self.design.outputs
        # A primary input has a free entry point, but the whole tree must
        # grow from it — so the entry is confined to the dominance corner
        # every sink can still be reached from.
        sink_cells = [
            self.placement.input_cell(self.design.gates[g]) for g, _ in sinks
        ]
        if src_gate is not None:
            origin = self.placement.output_cell(src_gate)
            entry_bound = None
        else:
            origin = (
                min((r for r, _ in sink_cells), default=self.region.row),
                min((c for _, c in sink_cells), default=self.region.col),
            )
            entry_bound = origin
        # Sort sinks nearest-first so the tree grows outward.
        sinks.sort(
            key=lambda s: (
                abs(self.placement.input_cell(self.design.gates[s[0]])[0] - origin[0])
                + abs(self.placement.input_cell(self.design.gates[s[0]])[1] - origin[1])
            )
        )
        for gate_name, pin in sinks:
            self._route_sink(
                route, src_gate, gate_name, pin,
                multi=len(sinks) > 1 or is_output,
                entry_bound=entry_bound,
            )
        if is_output:
            self._ensure_output_tap(route, src_gate)
        return route

    def _sink_target(
        self, gate: MappedGate, pin: int, net: str
    ) -> tuple[tuple[int, int], list[int]]:
        """(input cell, acceptable columns) for one sink pin."""
        cell = self.placement.input_cell(gate)
        cols = gate.pin_columns
        if cols is not None:
            return cell, [cols[pin]]
        assign = self.state.col_assign.get(cell, {})
        if net in assign.values():
            # The net already landed on this cell (duplicate pin).
            return cell, [c for c, n in assign.items() if n == net]
        return cell, [c for c in range(N_INPUTS) if c not in assign]

    def _route_sink(
        self,
        route: NetRoute,
        src_gate: MappedGate | None,
        sink_name: str,
        pin: int,
        multi: bool,
        entry_bound: tuple[int, int] | None = None,
    ) -> None:
        sink_gate = self.design.gates[sink_name]
        target_cell, allowed = self._sink_target(sink_gate, pin, route.net)
        if not allowed:
            raise RoutingError(
                f"net {route.net!r}: sink {sink_name!r} has no free input column"
            )
        tr, tc = target_cell
        # The net may already arrive on an acceptable column of this cell.
        for col in allowed:
            if self.state.wire_net.get((tr, tc, col)) == route.net:
                route.sink_cols[(sink_name, pin)] = col
                self._assign_col(target_cell, col, route.net)
                route.ops.append(("col", target_cell, col))
                return
        came = self._search(route, src_gate, target_cell, allowed, multi, entry_bound)
        goal_col = self._commit(route, came)
        route.sink_cols[(sink_name, pin)] = goal_col
        self._assign_col(target_cell, goal_col, route.net)
        route.ops.append(("col", target_cell, goal_col))

    def _assign_col(self, cell: tuple[int, int], col: int, net: str) -> None:
        self.state.assign_col(cell, col, net)

    # ------------------------------------------------------------------
    # A* search over wire nodes
    # ------------------------------------------------------------------
    def _hop_cost(self, cell: tuple[int, int], net: str) -> float:
        st = self.state
        if (cell, net) in st.thru_col:
            base = self.REUSE_COST
        elif cell in st.logic_cells or cell in st.thru_rows:
            base = self.SHARE_COST
        else:
            base = self.FRESH_COST
        # Timing-critical nets care about hops (each hop is a buffer
        # delay), not cell economy: interpolate the ladder toward the
        # uniform REUSE_COST so the search minimises detour instead.
        crit = self.net_criticality.get(net, 0.0)
        if crit > 0.0:
            base = base * (1.0 - crit) + self.REUSE_COST * crit
        return base + float(self.history[cell])

    def _search(
        self,
        route: NetRoute,
        src_gate: MappedGate | None,
        target: tuple[int, int],
        allowed_cols: list[int],
        multi: bool,
        entry_bound: tuple[int, int] | None = None,
    ):
        """Find a path of wires ending on ``target``'s allowed columns.

        Returns ``(parent lookup, goal node)``; raises RoutingError.
        Nodes are wires ``(r, c, i)``; parents record how the wire came
        to carry the net: ``("seed",)`` (already in the tree),
        ``("drive", row, dir)`` (a new source row), ``("entry",)``
        (primary-input entry) or ``("hop", prev, row, dir)``.

        Cost and parent slots live in the router's single preallocated
        grid, validity-stamped with the search generation — no per-net
        allocation, no clearing sweep.
        """
        st = self.state
        net = route.net
        wire_net = st.wire_net
        tr, tc = target
        self._generation += 1
        gen = self._generation
        gcost = self._gcost
        parent = self._parent
        stamp = self._stamp
        nid_cols = self._nid_cols
        heappush = heapq.heappush
        heappop = heapq.heappop
        east = Direction.EAST
        north = Direction.NORTH

        frontier: list[tuple[float, int, int, tuple[int, int, int]]] = []
        tick = 0

        def push(node, cost, par):
            nonlocal tick
            r, c, i = node
            if r > tr or c > tc:
                return
            nid = (r * nid_cols + c) * N_INPUTS + i
            if stamp[nid] == gen and gcost[nid] <= cost:
                return
            gcost[nid] = cost
            parent[nid] = par
            stamp[nid] = gen
            tick += 1
            # f = g + h with the Manhattan heuristic to the target cell.
            heappush(frontier, (cost + (tr - r) + (tc - c), tick, nid, node))

        for w in route.wires:
            push(w, 0.0, ("seed",))
        if src_gate is not None:
            cell, rows = st.output_candidates(src_gate)
            for row in rows:
                for direction in (east, north):
                    w = _wire_after(cell, row, direction)
                    if st.wire_exists(*w) and w not in wire_net:
                        push(w, 1.0, ("drive", row, direction))
        elif not route.wires:
            # Primary input: enter on any free wire the search can use —
            # a passable cell's free column, or the sink pin directly.
            # The entry bound keeps the root inside every sink's quadrant.
            # Cell-level vetoes (opaque, committed pin capacity) are
            # hoisted out of the per-wire loop: this scan visits every
            # cell of the entry quadrant.
            er, ec = entry_bound if entry_bound is not None else (tr, tc)
            opaque = st.opaque
            col_assign = st.col_assign
            pending_inputs = st.pending_inputs
            thru_col = st.thru_col
            for r in range(self.region.row, min(self.region.row + self.region.n_rows, er + 1)):
                for c in range(self.region.col, min(self.region.col + self.region.n_cols, ec + 1)):
                    cell = (r, c)
                    is_target = cell == target
                    if cell in opaque and not is_target:
                        continue
                    assign = col_assign.get(cell)
                    existing = thru_col.get((cell, net))
                    pending = pending_inputs.get(cell)
                    free_cols = (
                        N_INPUTS - len(assign) if assign is not None else N_INPUTS
                    )
                    for i in range(N_INPUTS):
                        w = (r, c, i)
                        if w in wire_net:
                            continue
                        if not multi and is_target and i in allowed_cols:
                            push(w, 0.0, ("entry",))
                            continue
                        if cell in opaque:
                            continue
                        # Inline cell_passable(cell, net, i):
                        if existing is not None:
                            if i != existing:
                                continue
                        else:
                            owner = assign.get(i) if assign is not None else None
                            if owner is not None:
                                if owner != net:
                                    continue
                            elif pending and net not in pending:
                                if free_cols <= len(pending):
                                    continue
                        push(w, 0.0, ("entry",))

        while frontier:
            f, _, nid, node = heappop(frontier)
            if gcost[nid] + 1e-9 < f - (tr - node[0]) - (tc - node[1]):
                continue
            r, c, i = node
            if r == tr and c == tc and i in allowed_cols:
                return self._parent_lookup(gen), node
            cell = (r, c)
            if not st.cell_passable(cell, net, i):
                continue
            base = self._hop_cost(cell, net)
            g_here = gcost[nid]
            ce = c + 1
            rn = r + 1
            push_east = ce <= tc
            push_north = rn <= tr
            if not (push_east or push_north):
                continue
            for row in st.thru_rows_available(cell):
                # Produced wires always exist: the cell is in-region,
                # so (r, c+1) / (r+1, c) index real wires and
                # row < N_ROWS == N_INPUTS.
                if push_east:
                    w = (r, ce, row)
                    if w not in wire_net:
                        nid2 = (r * nid_cols + ce) * N_INPUTS + row
                        cost = g_here + base
                        if stamp[nid2] != gen or gcost[nid2] > cost:
                            gcost[nid2] = cost
                            parent[nid2] = ("hop", node, row, east)
                            stamp[nid2] = gen
                            tick += 1
                            heappush(
                                frontier,
                                (cost + (tr - r) + (tc - ce), tick, nid2, w),
                            )
                if push_north:
                    w = (rn, c, row)
                    if w not in wire_net:
                        nid2 = (rn * nid_cols + c) * N_INPUTS + row
                        cost = g_here + base
                        if stamp[nid2] != gen or gcost[nid2] > cost:
                            gcost[nid2] = cost
                            parent[nid2] = ("hop", node, row, north)
                            stamp[nid2] = gen
                            tick += 1
                            heappush(
                                frontier,
                                (cost + (tr - rn) + (tc - c), tick, nid2, w),
                            )
        raise RoutingError(
            f"net {route.net!r}: no path to cell {target} columns {allowed_cols}"
        )

    def _parent_lookup(self, gen: int):
        """Parent-map accessor over the generation-stamped search grid."""
        parent = self._parent
        stamp = self._stamp
        nid_cols = self._nid_cols

        def lookup(node: tuple[int, int, int]) -> tuple:
            r, c, i = node
            nid = (r * nid_cols + c) * N_INPUTS + i
            if stamp[nid] != gen:  # pragma: no cover - defensive
                raise RoutingError(f"search grid has no parent for {node}")
            return parent[nid]

        return lookup

    # ------------------------------------------------------------------
    # Committing a found path
    # ------------------------------------------------------------------
    def _commit(self, route: NetRoute, came_and_goal) -> int:
        came, goal = came_and_goal
        st = self.state
        path: list[tuple[tuple[int, int, int], tuple]] = []
        node = goal
        while True:
            parent = came(node)
            path.append((node, parent))
            if parent[0] == "hop":
                node = parent[1]
            else:
                break
        for node, parent in reversed(path):
            kind = parent[0]
            if kind == "seed":
                continue
            if kind == "entry":
                st.claim_wire(node, route.net)
                route.wires.append(node)
                route.entry_wire = node
                route.ops.append(("entry", node))
                continue
            if kind == "drive":
                _, row, direction = parent
                src_cell = self.placement.output_cell(
                    self.design.gates[self.design.source_of[route.net]]
                )
                st.add_gate_row(src_cell, row, direction)
                route.ops.append(("drive", node, src_cell, row, direction))
            else:  # hop
                _, prev, row, direction = parent
                st.add_thru_row(
                    (prev[0], prev[1]), route.net, prev[2], row, direction
                )
                route.ops.append(
                    ("thru", node, (prev[0], prev[1]), prev[2], row, direction)
                )
            st.claim_wire(node, route.net)
            route.wires.append(node)
        return goal[2]

    # ------------------------------------------------------------------
    # Output taps
    # ------------------------------------------------------------------
    def _ensure_output_tap(self, route: NetRoute, src_gate: MappedGate | None) -> None:
        """Guarantee the net value is observable on a *driven* wire."""
        driven = [w for w in route.wires if w != route.entry_wire]
        if driven:
            return
        if src_gate is not None:
            cell, rows = self.state.output_candidates(src_gate)
            if self._tap_from(route, cell, rows, in_col=None):
                return
            raise RoutingError(
                f"output net {route.net!r}: no free row/wire to expose it"
            )
        # Primary input feeding an output: pass it through one cell.
        for (cell, owner), in_col in list(self.state.thru_col.items()):
            if owner == route.net:
                if self._tap_from(
                    route, cell, self.state.free_rows(cell), in_col=in_col
                ):
                    return
        # Forward straight from the cell the entry wire lands on (its
        # reader — a sink or feed-through — re-drives it on a spare row).
        if route.entry_wire is not None:
            er, ec, ei = route.entry_wire
            if self._tap_from(
                route, (er, ec), self.state.free_rows((er, ec)), in_col=ei
            ):
                return
        else:
            # No entry exists yet: claim one plus one buffer row.
            for r in range(self.region.row, self.region.row + self.region.n_rows):
                for c in range(self.region.col, self.region.col + self.region.n_cols):
                    cell = (r, c)
                    for i in range(N_INPUTS):
                        entry = (r, c, i)
                        if not self.state.wire_free(entry):
                            continue
                        if not self.state.cell_passable(cell, route.net, i):
                            continue
                        if self._tap_entry(route, cell, entry):
                            return
        raise RoutingError(
            f"output net {route.net!r}: no cell available to expose it"
        )

    def _tap_entry(self, route, cell, entry) -> bool:
        ok = self._tap_from(route, cell, self.state.free_rows(cell), in_col=entry[2])
        if not ok:
            return False
        self.state.claim_wire(entry, route.net)
        route.wires.insert(0, entry)
        route.entry_wire = entry
        route.ops.append(("entry_front", entry))
        return True

    def _tap_from(self, route, cell, rows, in_col) -> bool:
        st = self.state
        for row in rows:
            for direction in (Direction.EAST, Direction.NORTH):
                w = _wire_after(cell, row, direction)
                if st.wire_exists(*w) and st.wire_free(w):
                    if in_col is not None:
                        st.add_thru_row(cell, route.net, in_col, row, direction)
                        route.ops.append(("thru", w, cell, in_col, row, direction))
                    else:
                        st.add_gate_row(cell, row, direction)
                        route.ops.append(("drive", w, cell, row, direction))
                    st.claim_wire(w, route.net)
                    route.wires.append(w)
                    return True
        return False
