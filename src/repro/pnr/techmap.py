"""Stage 1 — technology mapping: netlist IR cells to NAND-cell gates.

The polymorphic cell offers exactly one combinational primitive — the
6-wide NAND row — terminated in a driver that either passes the row value
(BUFFER: the NAND) or complements it (INVERT: the AND), plus the
local-feedback pair idiom for state (paper Fig. 9).  This module lowers an
arbitrary :class:`repro.netlist.Netlist` onto that vocabulary:

* ``nand`` / ``not``       -> a product row with a BUFFER driver;
* ``and`` / ``buf``        -> a product row with an INVERT driver;
* ``or`` / ``nor``         -> De Morgan through shared complement gates;
* ``xor``                  -> the two-product NAND-NAND form;
* ``table``                -> a Quine-McCluskey cover
  (:func:`repro.synth.qm.minimise`) mapped NAND-NAND, exactly the
  :func:`repro.synth.macros.lut_pair` construction but emitted as
  placeable gates instead of a hand-positioned macro;
* ``celement``             -> the 2-cell pair of
  :func:`repro.synth.macros.c_element_pair` (optionally gated by a global
  active-low reset when the IR cell declares ``init=0``);
* ``eventlatch``           -> the 2-cell Sutherland capture-pass pair of
  :func:`repro.synth.macros.ecse_pair`.

Products wider than the cell's 6 input columns are decomposed into AND
trees, so every :class:`MappedGate` fits one NAND row.  Gates whose output
drives nothing (dead logic created by the rewrites) are pruned.

The output is a :class:`MappedDesign` — the unit of work the placer and
router operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.array import ROW_DELAY
from repro.fabric.driver import DRIVER_DELAY, DriverMode
from repro.fabric.nandcell import N_INPUTS
from repro.netlist.ir import (
    AND,
    BUF,
    CELEMENT,
    CONST,
    EVENTLATCH,
    NAND,
    NOR,
    NOT,
    Netlist,
    OR,
    TABLE,
    TRISTATE,
    XOR,
)
from repro.sim.values import X, ZERO

#: Gate kinds the placer/router understand.  ``product`` rows compute the
#: NAND of their input columns; the driver polarity is per-gate.
PRODUCT_NAND = "nand"   # BUFFER driver: output = NAND(inputs)
PRODUCT_AND = "and"     # INVERT driver: output = AND(inputs)
CONST_GATE = "const"    # constant row + driver polarity
PAIR_CELEMENT = "celement"
PAIR_EVENTLATCH = "eventlatch"

#: Fixed input-pin columns of the 2-cell macros (cell A of the pair).
#: ``None`` marks a flexible single-cell gate (the router picks columns).
PAIR_PIN_COLUMNS: dict[str, tuple[int, ...]] = {
    # a, b[, rst_n] — c_element_pair layout, column 2 free for the reset.
    PAIR_CELEMENT: (0, 1, 2),
    # din, req, req_n, ack, ack_n — ecse_pair layout (column 5 is the lfb).
    PAIR_EVENTLATCH: (0, 1, 2, 3, 4),
}

#: Maximum table arity the QM-based lowering will expand.
MAX_TABLE_VARS = 8


class TechMapError(ValueError):
    """The netlist contains something the NAND fabric cannot host."""


@dataclass(frozen=True, slots=True)
class MappedGate:
    """One placeable unit: a NAND row, a constant row, or a 2-cell pair.

    Attributes
    ----------
    name:
        Unique gate name (derived from the source cell).
    kind:
        ``nand`` / ``and`` / ``const`` (single cell) or ``celement`` /
        ``eventlatch`` (a horizontal 2-cell pair with local feedback).
    inputs:
        Source-netlist nets feeding the gate, in pin order.  Single-cell
        gates have de-duplicated inputs and flexible columns; pair gates
        have the fixed pin columns of :data:`PAIR_PIN_COLUMNS`.
    output:
        The net the gate drives.
    value:
        Constant value (``const`` only).
    source_delay:
        The IR delay annotation of the source cell this gate realises
        (1 for helper gates the rewrites introduce).  Survives mapping
        so source-level and fabric-level timing can be compared; the
        physical delay on the fabric is :attr:`fabric_delay`.
    width:
        Cells occupied horizontally (1, or 2 for pairs).
    """

    name: str
    kind: str
    inputs: tuple[str, ...]
    output: str
    value: int | None = None
    source_delay: int = 1

    @property
    def width(self) -> int:
        """Horizontal footprint in cells."""
        return 2 if self.kind in (PAIR_CELEMENT, PAIR_EVENTLATCH) else 1

    @property
    def fabric_delay(self) -> int:
        """Forward delay (sim units) through the gate's fabric form.

        A product or constant gate is one NAND row plus its driver; a
        stateful pair is two rows and two BUFFER drivers (cell A product
        into cell B collector).  These are exactly the delays
        :meth:`repro.fabric.array.CellArray.to_netlist` annotates, so a
        static analysis over mapped gates agrees with event simulation
        of the emitted fabric.  See ``docs/timing-model.md``.
        """
        if self.is_stateful:
            return 2 * (ROW_DELAY + DRIVER_DELAY[DriverMode.BUFFER])
        if self.kind == CONST_GATE:
            mode = DriverMode.BUFFER if self.value == 1 else DriverMode.INVERT
        elif self.kind == PRODUCT_NAND:
            mode = DriverMode.BUFFER
        else:
            mode = DriverMode.INVERT
        return ROW_DELAY + DRIVER_DELAY[mode]

    @property
    def pin_columns(self) -> tuple[int, ...] | None:
        """Fixed input columns (pair macros), or None when flexible."""
        cols = PAIR_PIN_COLUMNS.get(self.kind)
        return None if cols is None else cols[: len(self.inputs)]

    @property
    def is_stateful(self) -> bool:
        """True for the feedback pair macros."""
        return self.kind in (PAIR_CELEMENT, PAIR_EVENTLATCH)


@dataclass
class MappedDesign:
    """A netlist lowered to placeable NAND-cell gates.

    ``inputs`` lists every net the fabric must accept from outside (the
    source netlist's free inputs plus, when any C-element asked for a
    ``init=0`` power-on state, the synthesised global ``reset_net``,
    active low).  ``outputs`` are the source netlist's declared outputs.
    """

    name: str
    gates: dict[str, MappedGate] = field(default_factory=dict)
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    reset_net: str | None = None

    # Derived connectivity, built by _finalise().
    source_of: dict[str, str] = field(default_factory=dict)
    sinks_of: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    @property
    def n_gates(self) -> int:
        """Number of mapped gates."""
        return len(self.gates)

    @property
    def n_cells(self) -> int:
        """Fabric cells the logic will occupy (before routing)."""
        return sum(g.width for g in self.gates.values())

    def has_stateful_gates(self) -> bool:
        """True when the design contains feedback pair macros."""
        return any(g.is_stateful for g in self.gates.values())

    def nets(self) -> list[str]:
        """Every net with a source or a sink, inputs first."""
        seen = dict.fromkeys(self.inputs)
        for g in self.gates.values():
            seen.setdefault(g.output, None)
        return list(seen)

    def _finalise(self) -> None:
        self.source_of = {}
        self.sinks_of = {}
        for g in self.gates.values():
            if g.output in self.source_of:
                raise TechMapError(
                    f"net {g.output!r} is driven by both "
                    f"{self.source_of[g.output]!r} and {g.name!r}"
                )
            self.source_of[g.output] = g.name
        for g in self.gates.values():
            for pin, net in enumerate(g.inputs):
                self.sinks_of.setdefault(net, []).append((g.name, pin))


class _Mapper:
    """Single-use rewriting context for :func:`map_netlist`."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.design = MappedDesign(name=f"{netlist.name}.mapped")
        self._taken_nets = set(netlist.net_names())
        self._taken_gates: set[str] = set()
        self._complements: dict[str, str] = {}
        self._counter = 0

    # -- fresh names ----------------------------------------------------
    def _fresh_net(self, hint: str) -> str:
        while True:
            name = f"{hint}${self._counter}"
            self._counter += 1
            if name not in self._taken_nets:
                self._taken_nets.add(name)
                return name

    def _gate_name(self, hint: str) -> str:
        name = hint
        while name in self._taken_gates:
            name = f"{hint}${self._counter}"
            self._counter += 1
        self._taken_gates.add(name)
        return name

    def _emit(
        self,
        kind: str,
        hint: str,
        inputs: tuple[str, ...],
        output: str,
        value: int | None = None,
        source_delay: int = 1,
    ) -> str:
        name = self._gate_name(hint)
        self.design.gates[name] = MappedGate(
            name=name, kind=kind, inputs=inputs, output=output, value=value,
            source_delay=source_delay,
        )
        return output

    # -- shared sub-structures ------------------------------------------
    def complement(self, net: str) -> str:
        """Net carrying NOT(net), creating (once) a 1-input NAND row."""
        out = self._complements.get(net)
        if out is None:
            out = self._fresh_net(f"{net}.n")
            self._emit(PRODUCT_NAND, f"inv.{net}", (net,), out)
            self._complements[net] = out
        return out

    def reset(self) -> str:
        """The global active-low reset rail (created on first use)."""
        if self.design.reset_net is None:
            self.design.reset_net = self._fresh_net("pnr.rst_n")
        return self.design.reset_net

    def _product(
        self,
        kind: str,
        hint: str,
        inputs: list[str],
        output: str,
        source_delay: int = 1,
    ) -> str:
        """Emit a product gate, splitting inputs wider than one row."""
        ins = list(dict.fromkeys(inputs))
        while len(ins) > N_INPUTS:
            chunk, ins = ins[:N_INPUTS], ins[N_INPUTS:]
            mid = self._fresh_net(f"{output}.w")
            self._emit(PRODUCT_AND, f"{hint}.w", tuple(chunk), mid)
            ins.insert(0, mid)
        return self._emit(kind, hint, tuple(ins), output, source_delay=source_delay)

    # -- per-kind lowering ----------------------------------------------
    def lower_cell(self, cell) -> None:
        kind, name, ins, out = cell.kind, cell.name, list(cell.inputs), cell.output
        d = cell.delay
        if kind == NAND or kind == NOT:
            self._product(PRODUCT_NAND, name, ins, out, source_delay=d)
        elif kind == AND or kind == BUF:
            self._product(PRODUCT_AND, name, ins, out, source_delay=d)
        elif kind == OR:
            self._product(
                PRODUCT_NAND, name, [self.complement(n) for n in ins], out,
                source_delay=d,
            )
        elif kind == NOR:
            self._product(
                PRODUCT_AND, name, [self.complement(n) for n in ins], out,
                source_delay=d,
            )
        elif kind == XOR:
            a, b = ins
            t1 = self._fresh_net(f"{out}.t1")
            t2 = self._fresh_net(f"{out}.t2")
            self._product(PRODUCT_NAND, f"{name}.t1", [a, self.complement(b)], t1)
            self._product(PRODUCT_NAND, f"{name}.t2", [self.complement(a), b], t2)
            self._product(PRODUCT_NAND, name, [t1, t2], out, source_delay=d)
        elif kind == CONST:
            self._emit(CONST_GATE, name, (), out, value=cell.param("value"),
                       source_delay=d)
        elif kind == TABLE:
            self._lower_table(cell)
        elif kind == CELEMENT:
            self._lower_celement(cell)
        elif kind == EVENTLATCH:
            self._lower_eventlatch(cell)
        elif kind == TRISTATE:
            raise TechMapError(
                f"cell {name!r}: tristate drivers have no single-driven "
                "NAND-cell mapping; resolve the bus before place-and-route"
            )
        else:  # pragma: no cover - CELL_KINDS is closed
            raise TechMapError(f"cell {name!r}: unmapped kind {kind!r}")

    def _lower_table(self, cell) -> None:
        from repro.synth.qm import minimise
        from repro.synth.truthtable import TruthTable

        ins, out, name = list(cell.inputs), cell.output, cell.name
        if len(ins) > MAX_TABLE_VARS:
            raise TechMapError(
                f"cell {name!r}: table lowering supports up to "
                f"{MAX_TABLE_VARS} inputs, got {len(ins)}"
            )
        table = TruthTable(len(ins), cell.param("table"))
        cover = minimise(table)
        if not cover:
            self._emit(CONST_GATE, name, (), out, value=0)
            return
        if any(impl.mask == 0 for impl in cover):
            self._emit(CONST_GATE, name, (), out, value=1)
            return
        product_lines = []
        for j, impl in enumerate(cover):
            lits = [
                net if positive else self.complement(net)
                for var, positive in impl.literals(len(ins))
                for net in (ins[var],)
            ]
            p = self._fresh_net(f"{out}.p{j}")
            self._product(PRODUCT_NAND, f"{name}.p{j}", lits, p)
            product_lines.append(p)
        # f = OR(products) = NAND of the product complements.
        self._product(PRODUCT_NAND, name, product_lines, out,
                      source_delay=cell.delay)

    def _check_init(self, cell) -> bool:
        """True when the element wants the global reset (init = 0)."""
        init = cell.param("init", X)
        if init == ZERO:
            return True
        if init == X:
            return False
        raise TechMapError(
            f"cell {cell.name!r}: only init=0 (reset rail) or init=X "
            f"(free-running) map onto the fabric, got init={init!r}"
        )

    def _lower_celement(self, cell) -> None:
        a, b = cell.inputs
        pins = [a, b]
        if self._check_init(cell):
            pins.append(self.reset())
        self._emit(PAIR_CELEMENT, cell.name, tuple(pins), cell.output,
                   source_delay=cell.delay)

    def _lower_eventlatch(self, cell) -> None:
        din, req, ack = cell.inputs
        # init=0 is accepted but needs no rail: no column is left for a
        # reset literal on the capture-pass pair (all six are taken by
        # din/req/req'/ack/ack'/feedback), and none is required — the
        # latch initialises through its transparent phase the first time
        # request and acknowledge agree after the control chain resets.
        self._check_init(cell)
        pins = (din, req, self.complement(req), ack, self.complement(ack))
        self._emit(PAIR_EVENTLATCH, cell.name, pins, cell.output,
                   source_delay=cell.delay)


def map_netlist(netlist: Netlist) -> MappedDesign:
    """Lower a netlist to placeable NAND-cell gates.

    Raises :class:`TechMapError` for constructs the fabric cannot host
    (tristate buses, multi-driven nets, arbitrary power-on inits).
    """
    multi = netlist.multi_driven_nets()
    if multi:
        raise TechMapError(
            f"netlist {netlist.name!r} has multi-driven nets {multi[:4]}; "
            "the NAND fabric routes single-driven nets only"
        )
    mapper = _Mapper(netlist)
    for cell in netlist.cells:
        mapper.lower_cell(cell)
    design = mapper.design
    design.outputs = list(netlist.outputs)
    design.inputs = list(netlist.free_inputs())
    if design.reset_net is not None:
        design.inputs.append(design.reset_net)
    _prune_dead(design)
    design._finalise()
    return design


def _prune_dead(design: MappedDesign) -> None:
    """Drop gates whose output reaches no sink and no declared output."""
    keep_nets = set(design.outputs)
    while True:
        read = set(keep_nets)
        for g in design.gates.values():
            read.update(g.inputs)
        dead = [g.name for g in design.gates.values() if g.output not in read]
        if not dead:
            return
        for name in dead:
            del design.gates[name]
