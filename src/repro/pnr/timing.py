"""Stage 3½ — static timing analysis over the placed-and-routed design.

The paper's performance case is built from per-row NAND delays: every
gate the flow emits is physically one (or, for the stateful pairs, two)
NAND rows terminated in a driver, and every routed hop is one more row.
This module composes exactly those constants — ``ROW_DELAY`` and
``DRIVER_DELAY`` from :mod:`repro.fabric` — into arrival times, required
times, worst slack, and an achievable cycle time for a compiled design.
``docs/timing-model.md`` specifies the model; the summary:

* a product/const gate costs ``ROW_DELAY + DRIVER_DELAY[mode]`` from its
  latest input to each fan-out wire (3 units);
* a routed feed-through hop costs ``ROW_DELAY + DRIVER_DELAY[INVERT]``
  (3 units) per wire — the router's per-net wire counts are the wire
  delay;
* a stateful pair costs two rows and two drivers forward (6 units) and
  acts as a *timing endpoint*: paths are captured at its input pins and
  relaunched from its output, exactly like a register in synchronous STA;
* primary inputs launch at t=0 on their entry wires; primary outputs and
  pair inputs capture.

The cycle time is the worst capture arrival; the default ``target_period``
is the design's **ideal-wire logic depth** (the same analysis with every
wire delay zero), so the reported worst slack is the price of routing.
Per-net criticality (longest path through the net / cycle time) feeds the
timing-driven placer and router — see
:func:`repro.pnr.flow.compile_to_fabric`'s ``timing_driven`` knob.

Quickstart — compile a 4-bit adder and read its timing:

>>> from repro.datapath.adder import ripple_carry_netlist
>>> from repro.pnr import compile_to_fabric
>>> result = compile_to_fabric(ripple_carry_netlist(4), seed=0)
>>> t = result.timing
>>> t.cycle_time >= t.logic_delay > 0        # routing never beats ideal wires
True
>>> t.critical_path[-1].arrival == t.cycle_time
True
>>> 0 >= t.worst_slack == t.target_period - t.cycle_time
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.array import ROW_DELAY
from repro.fabric.driver import DRIVER_DELAY, DriverMode
from repro.fabric.nandcell import Direction
from repro.pnr.place import Placement, gate_levels
from repro.pnr.techmap import MappedDesign

#: Delay of one routed feed-through hop: a single-input NAND row plus its
#: INVERT driver (the buffer the router burns per wire).
HOP_DELAY: int = ROW_DELAY + DRIVER_DELAY[DriverMode.INVERT]


class TimingError(RuntimeError):
    """The design cannot be timed (inconsistent routing state)."""


@dataclass(frozen=True, slots=True)
class PathStep:
    """One traceable segment of the critical path.

    ``kind`` is ``launch`` (a primary input or pair output), ``gate`` /
    ``pair`` (a mapped gate, ``delay`` = its fabric delay), ``wire`` (the
    routed hops carrying a net to the next pin) or ``capture`` (the
    endpoint).  ``cell`` is the grid position when a placement was
    analysed, else ``None``; ``arrival`` is the time the signal leaves
    the segment.
    """

    kind: str
    name: str
    cell: tuple[int, int] | None
    delay: int
    arrival: int


@dataclass
class TimingReport:
    """Static timing of one compiled design.

    ``mode`` records how wire delays were obtained: ``logic`` (zero
    wires), ``placed`` (Manhattan estimates) or ``routed`` (exact per-net
    routed wire counts).  ``arrivals`` maps each net to the time its
    driving wire settles; ``path_through`` to the longest launch-to-
    capture path passing through it; ``slacks`` to ``target_period -
    path_through``; ``criticality`` to ``path_through / cycle_time`` in
    [0, 1] (1.0 on the critical path).
    """

    mode: str
    cycle_time: int
    logic_delay: int
    target_period: int
    worst_slack: int
    endpoint: str
    critical_path: list[PathStep] = field(default_factory=list)
    arrivals: dict[str, int] = field(default_factory=dict)
    path_through: dict[str, int] = field(default_factory=dict)
    slacks: dict[str, int] = field(default_factory=dict)
    criticality: dict[str, float] = field(default_factory=dict)
    #: Capture time of each declared output (launch plus its output-wire
    #: delay) — what a downstream consumer sees.  The sharded flow reads
    #: these to launch inter-array channels (see ``repro.pnr.partition``).
    output_arrivals: dict[str, int] = field(default_factory=dict)

    @property
    def wire_delay(self) -> int:
        """Cycle-time units spent in routed wire, not logic."""
        return self.cycle_time - self.logic_delay

    def format(self) -> str:
        """Multi-line human-readable summary (examples, docs)."""
        lines = [
            f"cycle time {self.cycle_time} units "
            f"(logic {self.logic_delay} + wire {self.wire_delay}), "
            f"worst slack {self.worst_slack:+d} vs target {self.target_period} "
            f"[{self.mode}]",
            f"critical path (endpoint {self.endpoint!r}):",
        ]
        for step in self.critical_path:
            at = "" if step.cell is None else f"  cell {step.cell}"
            lines.append(
                f"  {step.kind:<8} {step.name:<24} +{step.delay:<3d} "
                f"@{step.arrival}{at}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Wire-delay extraction
# ----------------------------------------------------------------------

def _routed_depths(state, route, src_out_cell) -> dict[tuple[int, int, int], int]:
    """Feed-through hop count of every wire in one routed net tree.

    Wires driven by the source gate's own fan-out rows (or by the entry
    point of a primary input) are depth 0; each feed-through row adds 1.
    Hops strictly increase ``r + c``, so processing wires in that order
    guarantees parents are resolved first.
    """
    depth: dict[tuple[int, int, int], int] = {}
    for w in sorted(set(route.wires), key=lambda w: (w[0] + w[1], w)):
        r, c, i = w
        parent = None
        for q, direction in (((r, c - 1), Direction.EAST), ((r - 1, c), Direction.NORTH)):
            if q[0] < 0 or q[1] < 0:
                continue
            thru = state.thru_rows.get(q, {}).get(i)
            if (
                thru is not None
                and thru[1] is direction
                and state.thru_col.get((q, route.net)) == thru[0]
            ):
                parent = (q[0], q[1], thru[0])
                break
            if (
                src_out_cell is not None
                and q == src_out_cell
                and state.gate_rows.get(q, {}).get(i) is direction
            ):
                break  # driven directly by the source gate: depth 0
        if parent is None:
            depth[w] = 0  # gate drive or primary-input entry
        elif parent in depth:
            depth[w] = depth[parent] + 1
        else:  # pragma: no cover - the tree is connected by construction
            raise TimingError(
                f"net {route.net!r}: wire {w} hangs off unresolved {parent}"
            )
    return depth


def _wire_delays(
    design: MappedDesign,
    placement: Placement | None,
    state,
    routes,
) -> tuple[dict[tuple[str, int], int], dict[str, int], str]:
    """Per-sink and per-output wire delays, plus the analysis mode.

    Routed mode counts the exact feed-through hops of each routed tree;
    placed mode estimates hops from Manhattan distance (a wire reaches
    the abutting neighbour for free, every further cell is one hop);
    logic mode prices every wire at zero.
    """
    sink_delay: dict[tuple[str, int], int] = {}
    out_delay: dict[str, int] = {}
    if state is not None and routes is not None:
        placement = placement or state.placement
        for net, route in routes.items():
            src = design.source_of.get(net)
            src_cell = (
                placement.output_cell(design.gates[src]) if src is not None else None
            )
            depth = _routed_depths(state, route, src_cell)
            for (gname, pin), col in route.sink_cols.items():
                cell = placement.input_cell(design.gates[gname])
                sink_delay[(gname, pin)] = (
                    depth.get((cell[0], cell[1], col), 0) * HOP_DELAY
                )
            if net in design.outputs:
                # The exported tap is the first driven wire — the one
                # _build_result records in output_wires and the sharded
                # flow splices into inter-array channels.  Deeper
                # branches of the tree serve internal sinks, whose own
                # pin arrivals already price them.
                driven = [w for w in route.wires if w != route.entry_wire]
                out_delay[net] = (
                    depth.get(driven[0], 0) * HOP_DELAY if driven else 0
                )
        return sink_delay, out_delay, "routed"
    if placement is not None:
        for net, sinks in design.sinks_of.items():
            src = design.source_of.get(net)
            sink_cells = [
                placement.input_cell(design.gates[g]) for g, _ in sinks
            ]
            if src is not None:
                sr, sc = placement.output_cell(design.gates[src])
            else:
                # A primary input enters at the dominance corner of its sinks.
                sr = min((r for r, _ in sink_cells), default=0)
                sc = min((c for _, c in sink_cells), default=0)
            for (gname, pin), (tr, tc) in zip(sinks, sink_cells):
                d = (tr - sr) + (tc - sc)
                hops = max(0, d - 1) if src is not None else d
                sink_delay[(gname, pin)] = hops * HOP_DELAY
        return sink_delay, out_delay, "placed"
    return sink_delay, out_delay, "logic"


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------

def _propagate(design, order, sink_delay, out_delay, input_arrivals=None):
    """Forward pass: launch times, pin arrivals, capture events."""
    input_arrivals = input_arrivals or {}
    launch: dict[str, int] = {
        net: int(input_arrivals.get(net, 0)) for net in design.inputs
    }
    pin_arrival: dict[tuple[str, int], int] = {}
    captures: list[tuple[int, str, str, str | None, int | None]] = []
    for gname in order:
        gate = design.gates[gname]
        arrivals = []
        for pin, net in enumerate(gate.inputs):
            a = launch.get(net, 0) + sink_delay.get((gname, pin), 0)
            pin_arrival[(gname, pin)] = a
            arrivals.append(a)
        if gate.is_stateful:
            for pin, net in enumerate(gate.inputs):
                captures.append((pin_arrival[(gname, pin)], "pair", net, gname, pin))
            launch[gate.output] = gate.fabric_delay
        else:
            launch[gate.output] = (max(arrivals) if arrivals else 0) + gate.fabric_delay
    for net in design.outputs:
        if net in launch:
            captures.append(
                (launch[net] + out_delay.get(net, 0), "output", net, None, None)
            )
    return launch, pin_arrival, captures


def analyze_timing(
    design: MappedDesign,
    placement: Placement | None = None,
    *,
    state=None,
    routes=None,
    target_period: int | None = None,
    input_arrivals: dict[str, int] | None = None,
    output_tails: dict[str, int] | None = None,
) -> TimingReport:
    """Static timing analysis of a mapped (optionally placed/routed) design.

    Parameters
    ----------
    design:
        The mapped design (stage 1 output).
    placement:
        Gate positions; enables Manhattan wire-delay estimates.
    state, routes:
        The router's :class:`repro.pnr.route.RoutingState` and route map;
        together they enable exact per-net routed wire counts (this is
        the mode the flow reports).
    target_period:
        Required cycle time.  Defaults to the design's ideal-wire logic
        depth, so the default worst slack is ``-(wire delay on the
        critical path)`` — the price paid for routing.
    input_arrivals:
        Launch time of each primary input (default 0).  The sharded
        compile flow passes upstream shard capture times plus the
        channel crossing delay here, composing per-shard analyses into
        one system report (see :mod:`repro.pnr.partition`).
    output_tails:
        Extra downstream delay beyond each declared output's capture
        (default 0) — the backward-pass twin of ``input_arrivals``.
        The sharded flow seeds a channel net's tail with the crossing
        delay plus the sink shards' own downstream delay, so per-net
        ``path_through`` / ``slacks`` / ``criticality`` describe the
        whole system, not just the local shard.  Does not affect the
        cycle time or the capture events.

    Returns a :class:`TimingReport`.  Raises
    :class:`repro.pnr.place.PlacementError` if the gate graph has
    feedback (the monotone fabric cannot route it anyway).
    """
    levels = gate_levels(design)
    order = sorted(design.gates, key=lambda n: (levels[n], n))
    sink_delay, out_delay, mode = _wire_delays(design, placement, state, routes)

    launch, pin_arrival, captures = _propagate(
        design, order, sink_delay, out_delay, input_arrivals
    )
    cycle = max((c[0] for c in captures), default=0)
    logic_delay = cycle
    if mode != "logic" or input_arrivals:
        _, _, ideal = _propagate(design, order, {}, {})
        logic_delay = max((c[0] for c in ideal), default=0)
    period = logic_delay if target_period is None else int(target_period)

    # Backward pass: longest downstream delay from each net's launch point.
    tails = output_tails or {}
    downstream: dict[str, int] = {
        net: out_delay.get(net, 0) + tails.get(net, 0)
        for net in design.outputs
    }
    for gname in reversed(order):
        gate = design.gates[gname]
        if gate.is_stateful:
            tail = 0  # paths capture at the pair's pins
        else:
            tail = gate.fabric_delay + downstream.get(gate.output, 0)
        for pin, net in enumerate(gate.inputs):
            cand = sink_delay.get((gname, pin), 0) + tail
            if cand > downstream.get(net, 0):
                downstream[net] = cand

    path_through: dict[str, int] = {}
    slacks: dict[str, int] = {}
    criticality: dict[str, float] = {}
    for net, at in launch.items():
        p = at + downstream.get(net, 0)
        path_through[net] = p
        slacks[net] = period - p
        criticality[net] = min(1.0, p / cycle) if cycle > 0 else 0.0

    steps, endpoint = _trace_critical_path(
        design, placement, launch, pin_arrival, sink_delay, out_delay, captures
    )
    return TimingReport(
        mode=mode,
        cycle_time=cycle,
        logic_delay=logic_delay,
        target_period=period,
        worst_slack=period - cycle,
        endpoint=endpoint,
        critical_path=steps,
        arrivals=launch,
        path_through=path_through,
        slacks=slacks,
        criticality=criticality,
        output_arrivals={
            net: launch[net] + out_delay.get(net, 0)
            for net in design.outputs
            if net in launch
        },
    )


def trace_endpoint(
    design: MappedDesign,
    placement: Placement | None = None,
    *,
    state=None,
    routes=None,
    input_arrivals: dict[str, int] | None = None,
    endpoint: str,
) -> list[PathStep]:
    """The longest path ending at one declared output, as traceable steps.

    Same propagation as :func:`analyze_timing`, but the trace targets
    ``endpoint`` (an output net) instead of the worst capture overall —
    the sharded flow stitches per-shard segments into a cross-array
    critical path with this.  Raises :class:`TimingError` when
    ``endpoint`` is not a reachable declared output.
    """
    levels = gate_levels(design)
    order = sorted(design.gates, key=lambda n: (levels[n], n))
    sink_delay, out_delay, _ = _wire_delays(design, placement, state, routes)
    launch, pin_arrival, _ = _propagate(
        design, order, sink_delay, out_delay, input_arrivals
    )
    if endpoint not in design.outputs or endpoint not in launch:
        raise TimingError(
            f"{endpoint!r} is not a reachable declared output of "
            f"{design.name!r}"
        )
    capture = (
        launch[endpoint] + out_delay.get(endpoint, 0),
        "output", endpoint, None, None,
    )
    steps, _ = _trace_critical_path(
        design, placement, launch, pin_arrival, sink_delay, out_delay, [capture]
    )
    return steps


def _trace_critical_path(
    design, placement, launch, pin_arrival, sink_delay, out_delay, captures
):
    """Walk the worst capture back to its launch point, collecting steps."""
    if not captures:
        return [], ""
    arrival, kind, net, gname, pin = max(captures, key=lambda c: (c[0], c[2]))
    steps: list[PathStep] = []
    if kind == "output":
        endpoint = net
        steps.append(
            PathStep("capture", net, None, out_delay.get(net, 0), arrival)
        )
    else:
        endpoint = f"{gname}[{pin}]"
        cell = (
            placement.input_cell(design.gates[gname]) if placement is not None else None
        )
        steps.append(
            PathStep(
                "capture", endpoint, cell, sink_delay.get((gname, pin), 0), arrival
            )
        )
    current = net
    while True:
        src = design.source_of.get(current)
        if src is None:
            steps.append(PathStep("launch", current, None, 0, launch.get(current, 0)))
            break
        gate = design.gates[src]
        cell = placement.output_cell(gate) if placement is not None else None
        steps.append(
            PathStep(
                "pair" if gate.is_stateful else "gate",
                src,
                cell,
                gate.fabric_delay,
                launch[current],
            )
        )
        if gate.is_stateful or not gate.inputs:
            break
        best_pin = max(
            range(len(gate.inputs)), key=lambda p: pin_arrival[(src, p)]
        )
        prev = gate.inputs[best_pin]
        wire = sink_delay.get((src, best_pin), 0)
        if wire:
            in_cell = placement.input_cell(gate) if placement is not None else None
            steps.append(
                PathStep("wire", prev, in_cell, wire, pin_arrival[(src, best_pin)])
            )
        current = prev
    steps.reverse()
    return steps, endpoint
