"""Stage 2 — placement: mapped gates onto the cell grid.

The fabric's abutment wiring is *monotone*: a row drives its east or
north neighbour only, so a net can reach a consumer only if the consumer
sits in the up-right quadrant of its producer.  Placement therefore has a
hard legality component on top of the usual wirelength objective: every
gate-to-gate edge must be **dominance-compatible** (sink row >= source
row AND sink column >= source column).  A corollary worth knowing: the
longest combinational chain a ``R x C`` region can host is ``R + C - 1``
gates — deep designs need proportionally large arrays.

Two phases, in the spirit of the annealing placers in Kuree/cgra_pnr:

* :func:`initial_placement` — greedy topological seeding.  Gates are
  placed in topological order at the free cell nearest the centroid of
  their placed fan-in, constrained to that fan-in's dominance quadrant —
  so the seed is always legal.
* :func:`anneal_placement` — simulated annealing over single-gate
  relocations confined to each gate's dominance window, with
  half-perimeter wirelength (HPWL) cost; every accepted state stays
  legal by construction and the best state seen wins.

Both operate inside a :class:`repro.fabric.floorplan.Region`, so a design
can be compiled into a carved-out module slot of a shared array.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.fabric.floorplan import Region
from repro.pnr.techmap import MappedDesign, MappedGate


class PlacementError(RuntimeError):
    """The design does not fit the region, or has unroutable feedback."""


@dataclass
class Placement:
    """Gate positions inside a region.

    ``positions`` maps gate name -> (row, col) of the gate's *input* cell;
    a 2-cell pair extends one cell east (its output cell).
    """

    region: Region
    positions: dict[str, tuple[int, int]] = field(default_factory=dict)

    def cells_of(self, gate: MappedGate) -> list[tuple[int, int]]:
        """Grid cells the gate occupies."""
        r, c = self.positions[gate.name]
        return [(r, c + k) for k in range(gate.width)]

    def input_cell(self, gate: MappedGate) -> tuple[int, int]:
        """The cell whose input columns receive the gate's nets."""
        return self.positions[gate.name]

    def output_cell(self, gate: MappedGate) -> tuple[int, int]:
        """The cell whose rows drive the gate's output."""
        r, c = self.positions[gate.name]
        return (r, c + gate.width - 1)


def gate_levels(design: MappedDesign) -> dict[str, int]:
    """Topological level of every gate (0 = fed by primary inputs only).

    Raises :class:`PlacementError` on gate-to-gate feedback: a cycle
    cannot satisfy the monotone east/north dominance constraint (each
    edge would need a strictly-later grid position than the last).  The
    fabric hosts feedback *inside* a cell pair (the lfb lines the
    stateful macros use), not across the routed grid.
    """
    preds: dict[str, set[str]] = {name: set() for name in design.gates}
    succs: dict[str, list[str]] = {name: [] for name in design.gates}
    for g in design.gates.values():
        for net in g.inputs:
            src = design.source_of.get(net)
            if src == g.name:
                # A self-loop is the smallest grid-level cycle: the
                # sink cell would have to dominate itself strictly.
                raise PlacementError(
                    f"gate {g.name!r} reads its own output {net!r}; the "
                    "east/north fabric routes acyclic nets only (close "
                    "loops through the environment or a cell pair's lfb)"
                )
            if src is not None:
                preds[g.name].add(src)
    for name, ps in preds.items():
        for p in ps:
            succs[p].append(name)
    level: dict[str, int] = {}
    ready = [name for name, ps in preds.items() if not ps]
    indeg = {name: len(ps) for name, ps in preds.items()}
    order = []
    while ready:
        name = ready.pop()
        order.append(name)
        level[name] = max(
            (level[p] + 1 for p in preds[name]), default=0
        )
        for s in succs[name]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(order) != len(design.gates):
        stuck = sorted(set(design.gates) - set(order))
        raise PlacementError(
            f"design {design.name!r} has feedback through gates "
            f"{stuck[:6]}; the east/north fabric routes acyclic nets only "
            "(close loops through the environment or a cell pair's lfb)"
        )
    return level


def _edges(design: MappedDesign) -> list[tuple[str, str]]:
    """(source gate, sink gate) for every gate-to-gate connection."""
    out = []
    for g in design.gates.values():
        for net in g.inputs:
            src = design.source_of.get(net)
            if src is not None and src != g.name:
                out.append((src, g.name))
    return out


def dominance_violations(design: MappedDesign, placement: Placement) -> int:
    """Edges whose sink is not in the up-right quadrant of its source."""
    bad = 0
    for src, dst in _edges(design):
        sr, sc = placement.output_cell(design.gates[src])
        tr, tc = placement.input_cell(design.gates[dst])
        if tr < sr or tc < sc:
            bad += 1
    return bad


def net_hpwl(design: MappedDesign, placement: Placement, net: str) -> int:
    """Half-perimeter of one net's bounding box (source + sinks)."""
    sinks = design.sinks_of.get(net, [])
    pts = [placement.input_cell(design.gates[g]) for g, _ in sinks]
    src = design.source_of.get(net)
    if src is not None:
        pts.append(placement.output_cell(design.gates[src]))
    if len(pts) < 2:
        return 0
    rs = [p[0] for p in pts]
    cs = [p[1] for p in pts]
    return (max(rs) - min(rs)) + (max(cs) - min(cs))


def hpwl(design: MappedDesign, placement: Placement) -> int:
    """Total half-perimeter wirelength over all placed nets."""
    return sum(net_hpwl(design, placement, net) for net in design.sinks_of)


def weighted_hpwl(
    design: MappedDesign,
    placement: Placement,
    net_weights: dict[str, float],
) -> float:
    """HPWL with per-net multipliers — the timing-driven objective.

    Weights come from :func:`repro.pnr.timing.analyze_timing` criticality
    (``1 + timing_weight * criticality`` in the flow): nets on or near
    the critical path shrink preferentially, at the cost of slack-rich
    nets stretching.  Unlisted nets weigh 1.0.
    """
    return sum(
        net_hpwl(design, placement, net) * net_weights.get(net, 1.0)
        for net in design.sinks_of
    )


def initial_placement(
    design: MappedDesign,
    region: Region,
    rng: random.Random,
) -> Placement:
    """Greedy legal seeding: topological order, dominance-constrained."""
    capacity = region.cells
    if design.n_cells > capacity:
        raise PlacementError(
            f"design needs {design.n_cells} cells but region "
            f"{region.name!r} offers {capacity}"
        )
    levels = gate_levels(design)
    order = sorted(design.gates, key=lambda n: (levels[n], n))
    placement = Placement(region=region)
    free: set[tuple[int, int]] = {
        (r, c)
        for r in range(region.row, region.row + region.n_rows)
        for c in range(region.col, region.col + region.n_cols)
    }
    mid_row = region.row + region.n_rows // 2
    #: Cells fixed-pin macros depend on for pin delivery (their west and
    #: south neighbours): placing anything there, or making two macros
    #: share one, invites routing contention.
    soft_reserved: set[tuple[int, int]] = set()
    for name in order:
        gate = design.gates[name]
        min_r, min_c = region.row, region.col
        fan_rows, fan_cols = [], []
        for net in gate.inputs:
            src = design.source_of.get(net)
            if src is None or src == name:
                continue
            sr, sc = placement.output_cell(design.gates[src])
            min_r = max(min_r, sr)
            min_c = max(min_c, sc)
            fan_rows.append(sr)
            fan_cols.append(sc)
        want_r = round(sum(fan_rows) / len(fan_rows)) if fan_rows else mid_row
        want_c = (max(fan_cols) + 1) if fan_cols else region.col
        # Gates with many (or fixed-column) input pins need a usable
        # west/south neighbour to deliver those pins from; weight
        # crowded positions accordingly.
        pin_weight = 3 if gate.width == 2 else (1 if len(gate.inputs) >= 3 else 0)
        best, best_cost = None, None
        for (r, c) in free:
            if r < min_r or c < min_c:
                continue
            if gate.width == 2 and (
                (r, c + 1) not in free
                or c + 1 >= region.col + region.n_cols
            ):
                continue
            cost = abs(r - want_r) + abs(c - want_c)
            if pin_weight:
                for feeder in ((r, c - 1), (r - 1, c)):
                    if feeder not in free or feeder in soft_reserved:
                        cost += pin_weight
            for k in range(gate.width):
                if (r, c + k) in soft_reserved:
                    cost += 2
            if best_cost is None or cost < best_cost or (
                cost == best_cost and rng.random() < 0.5
            ):
                best, best_cost = (r, c), cost
        if best is None:
            raise PlacementError(
                f"no legal cell for gate {name!r} (needs row >= {min_r}, "
                f"col >= {min_c}, width {gate.width}) in region "
                f"{region.name!r}"
            )
        placement.positions[name] = best
        for cell in placement.cells_of(gate):
            free.discard(cell)
        if gate.width == 2:
            br, bc = best
            soft_reserved.update({(br, bc - 1), (br - 1, bc)})
    return placement


def anneal_placement(
    design: MappedDesign,
    placement: Placement,
    rng: random.Random,
    steps: int | None = None,
    t_start: float | None = None,
    t_end: float = 0.05,
    net_weights: dict[str, float] | None = None,
) -> Placement:
    """Refine a legal placement by simulated annealing on (weighted) HPWL.

    Moves relocate one gate inside its **dominance window** — the
    rectangle bounded below by its placed fan-ins' output cells and
    above by its fan-outs' input cells — so every accepted state stays
    legal by construction (the greedy seed is legal, and a window move
    cannot break an edge that was satisfied).  Cost is incremental
    HPWL over the nets incident to the moved gate; with ``net_weights``
    each net's half-perimeter is scaled by its weight (the flow passes
    timing criticality here, turning the objective into the
    weighted-HPWL trade-off of :func:`weighted_hpwl`).
    """
    region = placement.region
    names = list(design.gates)
    if len(names) < 2:
        return placement
    if steps is None:
        steps = max(600, 80 * len(names))
    if t_start is None:
        t_start = 0.5 * (region.n_rows + region.n_cols)

    positions = dict(placement.positions)
    state = Placement(region=region, positions=positions)
    occupied: dict[tuple[int, int], str] = {}
    for name in names:
        for cell in state.cells_of(design.gates[name]):
            occupied[cell] = name

    # Nets each gate touches (for incremental cost) and its neighbours.
    incident: dict[str, list[str]] = {name: [] for name in names}
    fanins: dict[str, list[str]] = {name: [] for name in names}
    fanouts: dict[str, list[str]] = {name: [] for name in names}
    for g in design.gates.values():
        incident[g.name].append(g.output)
        for net in dict.fromkeys(g.inputs):
            incident[g.name].append(net)
            src = design.source_of.get(net)
            if src is not None and src != g.name:
                fanins[g.name].append(src)
                fanouts[src].append(g.name)

    def window(name: str) -> tuple[int, int, int, int]:
        gate = design.gates[name]
        lo_r, lo_c = region.row, region.col
        hi_r = region.row + region.n_rows - 1
        hi_c = region.col + region.n_cols - gate.width
        for f in fanins[name]:
            fr, fc = state.output_cell(design.gates[f])
            lo_r, lo_c = max(lo_r, fr), max(lo_c, fc)
        for f in fanouts[name]:
            fr, fc = state.input_cell(design.gates[f])
            hi_r = min(hi_r, fr)
            hi_c = min(hi_c, fc - (gate.width - 1))
        return lo_r, lo_c, hi_r, hi_c

    weights = net_weights or {}

    def incident_cost(name: str) -> float:
        return sum(
            net_hpwl(design, state, net) * weights.get(net, 1.0)
            for net in incident[name]
        )

    best_positions = dict(positions)
    best_delta = 0
    total_delta = 0
    cooling = (t_end / t_start) ** (1.0 / max(1, steps - 1))
    temp = t_start
    for _ in range(steps):
        temp *= cooling
        name = rng.choice(names)
        gate = design.gates[name]
        lo_r, lo_c, hi_r, hi_c = window(name)
        if lo_r > hi_r or lo_c > hi_c:
            continue
        target = (rng.randint(lo_r, hi_r), rng.randint(lo_c, hi_c))
        if target == positions[name]:
            continue
        span = [(target[0], target[1] + k) for k in range(gate.width)]
        if any(occupied.get(cell, name) != name for cell in span):
            continue
        old = positions[name]
        before = incident_cost(name)
        for cell in state.cells_of(gate):
            del occupied[cell]
        positions[name] = target
        d = incident_cost(name) - before
        if d <= 0 or rng.random() < math.exp(-d / max(temp, 1e-9)):
            for cell in state.cells_of(gate):
                occupied[cell] = name
            total_delta += d
            if total_delta < best_delta:
                best_delta = total_delta
                best_positions = dict(positions)
        else:
            positions[name] = old
            for cell in state.cells_of(gate):
                occupied[cell] = name
    return Placement(region=region, positions=best_positions)
