"""Stage 2 — placement: mapped gates onto the cell grid.

The fabric's abutment wiring is *monotone*: a row drives its east or
north neighbour only, so a net can reach a consumer only if the consumer
sits in the up-right quadrant of its producer.  Placement therefore has a
hard legality component on top of the usual wirelength objective: every
gate-to-gate edge must be **dominance-compatible** (sink row >= source
row AND sink column >= source column).  A corollary worth knowing: the
longest combinational chain a ``R x C`` region can host is ``R + C - 1``
gates — deep designs need proportionally large arrays.

Two phases, in the spirit of the annealing placers in Kuree/cgra_pnr:

* :func:`initial_placement` — greedy topological seeding.  Gates are
  placed in topological order at the free cell nearest the centroid of
  their placed fan-in, constrained to that fan-in's dominance quadrant —
  so the seed is always legal.  Candidates are scanned outward from the
  wanted cell in L1 rings (O(found distance²), not O(region cells)) in
  a fixed sorted order, so the seed is bit-reproducible everywhere.
* :func:`anneal_placement` — simulated annealing over single-gate
  relocations confined to each gate's dominance window, with
  half-perimeter wirelength (HPWL) cost; every accepted state stays
  legal by construction and the best state seen wins.  Move costs come
  from :class:`IncrementalHpwl` — a VPR-style cached per-net bounding
  box updated in O(pins of the moved gate) with *exact* deltas, so the
  accept/reject trajectory for a seed is identical to a full recompute
  (see ``docs/performance.md``).

Both operate inside a :class:`repro.fabric.floorplan.Region`, so a design
can be compiled into a carved-out module slot of a shared array.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.fabric.floorplan import Region
from repro.pnr.techmap import MappedDesign, MappedGate


class PlacementError(RuntimeError):
    """The design does not fit the region, or has unroutable feedback."""


@dataclass
class Placement:
    """Gate positions inside a region.

    ``positions`` maps gate name -> (row, col) of the gate's *input* cell;
    a 2-cell pair extends one cell east (its output cell).
    """

    region: Region
    positions: dict[str, tuple[int, int]] = field(default_factory=dict)

    def cells_of(self, gate: MappedGate) -> list[tuple[int, int]]:
        """Grid cells the gate occupies."""
        r, c = self.positions[gate.name]
        return [(r, c + k) for k in range(gate.width)]

    def input_cell(self, gate: MappedGate) -> tuple[int, int]:
        """The cell whose input columns receive the gate's nets."""
        return self.positions[gate.name]

    def output_cell(self, gate: MappedGate) -> tuple[int, int]:
        """The cell whose rows drive the gate's output."""
        r, c = self.positions[gate.name]
        return (r, c + gate.width - 1)


def gate_levels(design: MappedDesign) -> dict[str, int]:
    """Topological level of every gate (0 = fed by primary inputs only).

    Raises :class:`PlacementError` on gate-to-gate feedback: a cycle
    cannot satisfy the monotone east/north dominance constraint (each
    edge would need a strictly-later grid position than the last).  The
    fabric hosts feedback *inside* a cell pair (the lfb lines the
    stateful macros use), not across the routed grid.
    """
    preds: dict[str, set[str]] = {name: set() for name in design.gates}
    succs: dict[str, list[str]] = {name: [] for name in design.gates}
    for g in design.gates.values():
        for net in g.inputs:
            src = design.source_of.get(net)
            if src == g.name:
                # A self-loop is the smallest grid-level cycle: the
                # sink cell would have to dominate itself strictly.
                raise PlacementError(
                    f"gate {g.name!r} reads its own output {net!r}; the "
                    "east/north fabric routes acyclic nets only (close "
                    "loops through the environment or a cell pair's lfb)"
                )
            if src is not None:
                preds[g.name].add(src)
    for name, ps in preds.items():
        for p in ps:
            succs[p].append(name)
    level: dict[str, int] = {}
    ready = [name for name, ps in preds.items() if not ps]
    indeg = {name: len(ps) for name, ps in preds.items()}
    order = []
    while ready:
        name = ready.pop()
        order.append(name)
        level[name] = max(
            (level[p] + 1 for p in preds[name]), default=0
        )
        for s in succs[name]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(order) != len(design.gates):
        stuck = sorted(set(design.gates) - set(order))
        raise PlacementError(
            f"design {design.name!r} has feedback through gates "
            f"{stuck[:6]}; the east/north fabric routes acyclic nets only "
            "(close loops through the environment or a cell pair's lfb)"
        )
    return level


def _edges(design: MappedDesign) -> list[tuple[str, str]]:
    """(source gate, sink gate) for every gate-to-gate connection."""
    out = []
    for g in design.gates.values():
        for net in g.inputs:
            src = design.source_of.get(net)
            if src is not None and src != g.name:
                out.append((src, g.name))
    return out


def dominance_violations(design: MappedDesign, placement: Placement) -> int:
    """Edges whose sink is not in the up-right quadrant of its source."""
    bad = 0
    for src, dst in _edges(design):
        sr, sc = placement.output_cell(design.gates[src])
        tr, tc = placement.input_cell(design.gates[dst])
        if tr < sr or tc < sc:
            bad += 1
    return bad


def net_hpwl(design: MappedDesign, placement: Placement, net: str) -> int:
    """Half-perimeter of one net's bounding box (source + sinks)."""
    sinks = design.sinks_of.get(net, [])
    pts = [placement.input_cell(design.gates[g]) for g, _ in sinks]
    src = design.source_of.get(net)
    if src is not None:
        pts.append(placement.output_cell(design.gates[src]))
    if len(pts) < 2:
        return 0
    rs = [p[0] for p in pts]
    cs = [p[1] for p in pts]
    return (max(rs) - min(rs)) + (max(cs) - min(cs))


def hpwl(design: MappedDesign, placement: Placement) -> int:
    """Total half-perimeter wirelength over all placed nets."""
    return sum(net_hpwl(design, placement, net) for net in design.sinks_of)


def weighted_hpwl(
    design: MappedDesign,
    placement: Placement,
    net_weights: dict[str, float],
) -> float:
    """HPWL with per-net multipliers — the timing-driven objective.

    Weights come from :func:`repro.pnr.timing.analyze_timing` criticality
    (``1 + timing_weight * criticality`` in the flow): nets on or near
    the critical path shrink preferentially, at the cost of slack-rich
    nets stretching.  Unlisted nets weigh 1.0.
    """
    return sum(
        net_hpwl(design, placement, net) * net_weights.get(net, 1.0)
        for net in design.sinks_of
    )


def initial_placement(
    design: MappedDesign,
    region: Region,
    rng: random.Random | None = None,
) -> Placement:
    """Greedy legal seeding: topological order, dominance-constrained.

    For each gate the candidate cells are scanned outward from the
    wanted position in L1 rings, in ascending ``(distance, row, col)``
    order, stopping as soon as no farther ring can beat the best cost —
    O(found distance²) instead of a sweep over every free cell of the
    region.  Cost ties resolve through a platform-stable arithmetic hash
    of ``(gate, row, col)`` — salted with one draw from ``rng`` so retry
    attempts still explore different seeds — rather than a coin flip
    over set-iteration order, so equal-cost candidates spread across the
    region (a lowest-(row, col) tie-break packs deep chains into a
    corner until they jam) while the same ``rng`` seed produces
    bit-identical placements on every platform and run (the Mersenne
    Twister draw is itself platform-stable).  When one tie-break policy
    jams — the greedy is a heuristic; any fixed policy jams on *some*
    design — the seeding restarts with the next policy in a fixed
    ladder, so success and the resulting positions stay deterministic.
    """
    capacity = region.cells
    if design.n_cells > capacity:
        raise PlacementError(
            f"design needs {design.n_cells} cells but region "
            f"{region.name!r} offers {capacity}"
        )
    salt_base = rng.getrandbits(32) if rng is not None else 0
    last: PlacementError | None = None
    for variant in (1, 0, 2, 3):
        try:
            return _seed_once(design, region, variant, salt_base)
        except PlacementError as e:
            last = e
    raise last


def _seed_once(
    design: MappedDesign, region: Region, variant: int, salt_base: int = 0
) -> Placement:
    """One deterministic greedy seeding pass under tie-break ``variant``.

    Variant 1 spreads both axes by hash (the routability-friendly
    default, tried first); variant 0 prefers the smaller column on cost
    ties (conserving the columns deep chains march east through) with
    hash-spread rows; variants 2 and 3 fall back to plain lexicographic
    packing (low-column-first, then low-row-first).
    """
    levels = gate_levels(design)
    order = sorted(design.gates, key=lambda n: (levels[n], n))
    placement = Placement(region=region)
    row0, col0 = region.row, region.col
    row_hi = region.row + region.n_rows - 1
    col_hi = region.col + region.n_cols - 1
    free = np.zeros((row_hi + 1, col_hi + 1), dtype=bool)
    free[row0:, col0:] = True
    mid_row = region.row + region.n_rows // 2
    #: Cells fixed-pin macros depend on for pin delivery (their west and
    #: south neighbours): placing anything there, or making two macros
    #: share one, invites routing contention.
    soft_reserved = np.zeros_like(free)
    #: Input cells of placed pair macros: candidates for further pairs
    #: are repelled from them, since clustered fixed-pin macros starve
    #: the shared west/south delivery cells of rows and columns.
    pair_cells: list[tuple[int, int]] = []

    for name in order:
        gate = design.gates[name]
        width = gate.width
        min_r, min_c = row0, col0
        fan_rows, fan_cols = [], []
        for net in gate.inputs:
            src = design.source_of.get(net)
            if src is None or src == name:
                continue
            sr, sc = placement.output_cell(design.gates[src])
            min_r = max(min_r, sr)
            min_c = max(min_c, sc)
            fan_rows.append(sr)
            fan_cols.append(sc)
        want_r = round(sum(fan_rows) / len(fan_rows)) if fan_rows else mid_row
        want_c = (max(fan_cols) + 1) if fan_cols else region.col
        # Gates with many (or fixed-column) input pins need a usable
        # west/south neighbour to deliver those pins from; weight
        # crowded positions accordingly.
        pin_weight = 3 if width == 2 else (1 if len(gate.inputs) >= 3 else 0)
        lo_r, hi_r = min_r, row_hi
        lo_c, hi_c = min_c, col_hi - (width - 1)
        # Stable per-gate salt for the tie-break mix (not Python's
        # salted str hash — this must agree across runs and platforms).
        salt = salt_base
        for ch in name:
            salt = (salt * 131 + ord(ch)) & 0xFFFFFFFF

        def candidate_cost(r: int, c: int, base: int) -> int | None:
            for k in range(width):
                if not free[r, c + k]:
                    return None
            cost = base
            if pin_weight:
                for fr, fc in ((r, c - 1), (r - 1, c)):
                    if (
                        fr < row0
                        or fc < col0
                        or not free[fr, fc]
                        or soft_reserved[fr, fc]
                    ):
                        cost += pin_weight
            for k in range(width):
                if soft_reserved[r, c + k]:
                    cost += 2
            if width == 2:
                # Pair macros read several fixed pin columns, each
                # delivered on its own row of the west/south neighbour
                # cells — clustered pairs starve that shared capacity,
                # so repel them from each other with a decaying penalty.
                for pr, pc in pair_cells:
                    d = abs(r - pr) + abs(c - pc)
                    if d < 5:
                        cost += 2 * (5 - d)
            return cost

        best, best_key = None, None
        if lo_r <= hi_r and lo_c <= hi_c:
            d_max = max(
                abs(r - want_r) + abs(c - want_c)
                for r in (lo_r, hi_r)
                for c in (lo_c, hi_c)
            )
            for d in range(d_max + 1):
                # Penalties only add, so once a best exists no ring
                # beyond its cost can improve on it.
                if best is not None and d > best_key[0]:
                    break
                for r in range(max(lo_r, want_r - d), min(hi_r, want_r + d) + 1):
                    rem = d - abs(r - want_r)
                    cols = (want_c - rem, want_c + rem) if rem else (want_c,)
                    for c in cols:
                        if not lo_c <= c <= hi_c:
                            continue
                        cost = candidate_cost(r, c, d)
                        if cost is None:
                            continue
                        mix = (
                            (salt ^ (r * 0x9E3779B1) ^ (c * 0x85EBCA77))
                            & 0xFFFFFFFF
                        )
                        if variant == 0:
                            key = (cost, c, mix, r)
                        elif variant == 1:
                            key = (cost, mix, r, c)
                        elif variant == 2:
                            key = (cost, c, r, 0)
                        else:
                            key = (cost, r, c, 0)
                        if best_key is None or key < best_key:
                            best, best_key = (r, c), key
        if best is None:
            raise PlacementError(
                f"no legal cell for gate {name!r} (needs row >= {min_r}, "
                f"col >= {min_c}, width {width}) in region "
                f"{region.name!r}"
            )
        placement.positions[name] = best
        br, bc = best
        free[br, bc:bc + width] = False
        if width == 2:
            pair_cells.append(best)
            if bc - 1 >= col0:
                soft_reserved[br, bc - 1] = True
            if br - 1 >= row0:
                soft_reserved[br - 1, bc] = True
    return placement


class IncrementalHpwl:
    """Cached per-net bounding boxes with exact O(pins of gate) updates.

    The VPR-style structure behind :func:`anneal_placement`: every net
    keeps its bounding box **and the number of pins sitting on each of
    the four edges**, so moving one gate updates each incident net in
    O(1) — unless the move vacates an edge whose pin count drops to
    zero, in which case that net alone is rescanned in O(its pins).
    Deltas are therefore *exact* (not the VPR approximation): the
    accept/reject trajectory under a fixed seed is identical to a full
    recompute, which is what keeps annealed results reproducible.

    Gate positions live in numpy int32 arrays (``rows`` / ``cols``,
    indexed by ``index[name]``); :meth:`propose` prices a move without
    committing, :meth:`commit` applies it, and :attr:`total` always
    equals :func:`weighted_hpwl` of the current state (``hpwl`` when no
    weights were given).
    """

    def __init__(
        self,
        design: MappedDesign,
        placement: Placement,
        net_weights: dict[str, float] | None = None,
    ) -> None:
        self.design = design
        names = list(design.gates)
        self.names = names
        self.index = {n: i for i, n in enumerate(names)}
        n = len(names)
        self.rows = np.zeros(n, dtype=np.int32)
        self.cols = np.zeros(n, dtype=np.int32)
        self.widths = np.zeros(n, dtype=np.int32)
        for i, nm in enumerate(names):
            r, c = placement.positions[nm]
            self.rows[i] = r
            self.cols[i] = c
            self.widths[i] = design.gates[nm].width

        # One pin list per net: (gate index, column offset) — the output
        # pin sits on the gate's east cell, sinks on its input cell.
        # Multiplicity is kept (a pair macro may read a net twice).
        weights = net_weights or {}
        net_names: list[str] = []
        net_id: dict[str, int] = {}
        pins: list[list[tuple[int, int]]] = []

        def nid(net: str) -> int:
            k = net_id.get(net)
            if k is None:
                k = net_id[net] = len(net_names)
                net_names.append(net)
                pins.append([])
            return k

        for g in design.gates.values():
            pins[nid(g.output)].append((self.index[g.name], g.width - 1))
        for net, sinks in design.sinks_of.items():
            k = nid(net)
            for gname, _pin in sinks:
                gi = self.index.get(gname)
                if gi is not None:
                    pins[k].append((gi, 0))
        self.net_names = net_names
        self.net_pins = pins
        self.weight = [float(weights.get(nm, 1.0)) for nm in net_names]

        # Per-gate incident pin occurrences, grouped by net.
        by_gate: list[dict[int, list[int]]] = [{} for _ in range(n)]
        for k, plist in enumerate(pins):
            for gi, off in plist:
                by_gate[gi].setdefault(k, []).append(off)
        self.gate_nets: list[list[tuple[int, tuple[int, ...]]]] = [
            sorted((k, tuple(offs)) for k, offs in d.items()) for d in by_gate
        ]

        m = len(net_names)
        self._bbox: list[tuple[int, int, int, int, int, int, int, int]] = (
            [(0, 0, 0, 0, 0, 0, 0, 0)] * m
        )
        self.total = 0.0
        for k in range(m):
            box = self._scan(k, -1, 0, 0)
            self._bbox[k] = box
            self.total += self.weight[k] * ((box[1] - box[0]) + (box[3] - box[2]))

    # -- internals -------------------------------------------------------
    def _scan(
        self, k: int, moved: int, new_r: int, new_c: int
    ) -> tuple[int, int, int, int, int, int, int, int]:
        """Full bbox + edge-count rescan of net ``k`` (gate ``moved`` at
        its hypothetical new position)."""
        rows, cols = self.rows, self.cols
        rmin = cmin = 1 << 30
        rmax = cmax = -(1 << 30)
        pts = []
        for gi, off in self.net_pins[k]:
            if gi == moved:
                r, c = new_r, new_c + off
            else:
                r, c = int(rows[gi]), int(cols[gi]) + off
            pts.append((r, c))
            if r < rmin:
                rmin = r
            if r > rmax:
                rmax = r
            if c < cmin:
                cmin = c
            if c > cmax:
                cmax = c
        nrmin = nrmax = ncmin = ncmax = 0
        for r, c in pts:
            if r == rmin:
                nrmin += 1
            if r == rmax:
                nrmax += 1
            if c == cmin:
                ncmin += 1
            if c == cmax:
                ncmax += 1
        return (rmin, rmax, cmin, cmax, nrmin, nrmax, ncmin, ncmax)

    def _bbox_after(
        self, k: int, gi: int, offs: tuple[int, ...],
        old_r: int, old_c: int, new_r: int, new_c: int,
    ) -> tuple[int, int, int, int, int, int, int, int]:
        rmin, rmax, cmin, cmax, nrmin, nrmax, ncmin, ncmax = self._bbox[k]
        for off in offs:
            # Remove the old pin point from the edge counts.
            if old_r == rmin:
                nrmin -= 1
            if old_r == rmax:
                nrmax -= 1
            oc = old_c + off
            if oc == cmin:
                ncmin -= 1
            if oc == cmax:
                ncmax -= 1
            if nrmin == 0 or nrmax == 0 or ncmin == 0 or ncmax == 0:
                # The move vacated a bounding edge: rescan this net.
                return self._scan(k, gi, new_r, new_c)
            # Add the new pin point.
            if new_r < rmin:
                rmin, nrmin = new_r, 1
            elif new_r == rmin:
                nrmin += 1
            if new_r > rmax:
                rmax, nrmax = new_r, 1
            elif new_r == rmax:
                nrmax += 1
            nc = new_c + off
            if nc < cmin:
                cmin, ncmin = nc, 1
            elif nc == cmin:
                ncmin += 1
            if nc > cmax:
                cmax, ncmax = nc, 1
            elif nc == cmax:
                ncmax += 1
        return (rmin, rmax, cmin, cmax, nrmin, nrmax, ncmin, ncmax)

    # -- the move API ----------------------------------------------------
    def propose(
        self, gi: int, new_r: int, new_c: int
    ) -> tuple[float, list[tuple[int, tuple]]]:
        """Exact weighted-HPWL delta of moving gate ``gi``; commits nothing.

        Returns ``(delta, updates)``; pass ``updates`` to :meth:`commit`
        to apply the move.
        """
        old_r, old_c = int(self.rows[gi]), int(self.cols[gi])
        delta = 0.0
        updates: list[tuple[int, tuple]] = []
        bbox = self._bbox
        weight = self.weight
        for k, offs in self.gate_nets[gi]:
            old = bbox[k]
            new = self._bbox_after(k, gi, offs, old_r, old_c, new_r, new_c)
            d = ((new[1] - new[0]) + (new[3] - new[2])) - (
                (old[1] - old[0]) + (old[3] - old[2])
            )
            if d:
                delta += weight[k] * d
            updates.append((k, new))
        return delta, updates

    def commit(
        self, gi: int, new_r: int, new_c: int,
        delta: float, updates: list[tuple[int, tuple]],
    ) -> None:
        """Apply a move priced by :meth:`propose`."""
        self.rows[gi] = new_r
        self.cols[gi] = new_c
        for k, box in updates:
            self._bbox[k] = box
        self.total += delta

    def move(self, name: str, position: tuple[int, int]) -> float:
        """Relocate gate ``name``; returns the exact cost delta applied."""
        gi = self.index[name]
        delta, updates = self.propose(gi, *position)
        self.commit(gi, *position, delta, updates)
        return delta


def default_anneal_steps(n_gates: int) -> int:
    """The annealing budget :func:`anneal_placement` uses when unset."""
    return max(600, 80 * n_gates)


def anneal_temperatures(
    steps: int, t_start: float, t_end: float
) -> list[float]:
    """The geometric cooling ladder: ``steps`` temperatures from
    ``t_start`` (used by the very first move) down to ``t_end``."""
    if steps <= 0:
        return []
    cooling = (t_end / t_start) ** (1.0 / max(1, steps - 1))
    temps = [t_start]
    for _ in range(steps - 1):
        temps.append(temps[-1] * cooling)
    return temps


def anneal_placement(
    design: MappedDesign,
    placement: Placement,
    rng: random.Random,
    steps: int | None = None,
    t_start: float | None = None,
    t_end: float = 0.05,
    net_weights: dict[str, float] | None = None,
) -> Placement:
    """Refine a legal placement by simulated annealing on (weighted) HPWL.

    Moves relocate one gate inside its **dominance window** — the
    rectangle bounded below by its placed fan-ins' output cells and
    above by its fan-outs' input cells — so every accepted state stays
    legal by construction (the greedy seed is legal, and a window move
    cannot break an edge that was satisfied).  Cost deltas come from the
    cached :class:`IncrementalHpwl` bounding boxes — exact and O(pins of
    the moved gate) per move; with ``net_weights`` each net's
    half-perimeter is scaled by its weight (the flow passes timing
    criticality here, turning the objective into the weighted-HPWL
    trade-off of :func:`weighted_hpwl`).  Occupancy is a numpy grid, and
    the temperature ladder starts *at* ``t_start`` (the first move is
    judged at the starting temperature, not one cooling step below it).
    """
    region = placement.region
    names = list(design.gates)
    if len(names) < 2:
        return placement
    if steps is None:
        steps = default_anneal_steps(len(names))
    if t_start is None:
        t_start = 0.5 * (region.n_rows + region.n_cols)

    cost = IncrementalHpwl(design, placement, net_weights)
    rows, cols, widths = cost.rows, cost.cols, cost.widths
    occupied = np.full(
        (region.row + region.n_rows, region.col + region.n_cols),
        -1, dtype=np.int32,
    )
    for i in range(len(names)):
        occupied[rows[i], cols[i]:cols[i] + widths[i]] = i

    # Fan-in / fan-out gate indices bounding each gate's legal window.
    fanins: list[list[int]] = [[] for _ in names]
    fanouts: list[list[int]] = [[] for _ in names]
    for g in design.gates.values():
        gi = cost.index[g.name]
        for net in dict.fromkeys(g.inputs):
            src = design.source_of.get(net)
            if src is not None and src != g.name:
                si = cost.index[src]
                fanins[gi].append(si)
                fanouts[si].append(gi)

    row_lo, col_lo = region.row, region.col
    row_hi = region.row + region.n_rows - 1
    col_hi = region.col + region.n_cols - 1

    best_rows = rows.copy()
    best_cols = cols.copy()
    best_total = cost.total
    exp = math.exp
    for temp in anneal_temperatures(steps, t_start, t_end):
        name = rng.choice(names)
        gi = cost.index[name]
        w = int(widths[gi])
        if w == 2:
            # Fixed-pin pair macros stay where the seed spread them:
            # HPWL gains from compacting them are routinely wiped out
            # by the routing congestion their clustering causes.
            continue
        lo_r, lo_c = row_lo, col_lo
        hi_r, hi_c = row_hi, col_hi - (w - 1)
        for f in fanins[gi]:
            fr = int(rows[f])
            fc = int(cols[f]) + int(widths[f]) - 1
            if fr > lo_r:
                lo_r = fr
            if fc > lo_c:
                lo_c = fc
        for f in fanouts[gi]:
            fr = int(rows[f])
            fc = int(cols[f]) - (w - 1)
            if fr < hi_r:
                hi_r = fr
            if fc < hi_c:
                hi_c = fc
        if lo_r > hi_r or lo_c > hi_c:
            continue
        tr = rng.randint(lo_r, hi_r)
        tc = rng.randint(lo_c, hi_c)
        if tr == rows[gi] and tc == cols[gi]:
            continue
        blocked = False
        for k in range(w):
            o = occupied[tr, tc + k]
            if o != -1 and o != gi:
                blocked = True
                break
        if blocked:
            continue
        d, updates = cost.propose(gi, tr, tc)
        if d <= 0 or rng.random() < exp(-d / max(temp, 1e-9)):
            occupied[rows[gi], cols[gi]:cols[gi] + w] = -1
            occupied[tr, tc:tc + w] = gi
            cost.commit(gi, tr, tc, d, updates)
            if cost.total < best_total:
                best_total = cost.total
                best_rows = rows.copy()
                best_cols = cols.copy()
    positions = {
        name: (int(best_rows[i]), int(best_cols[i]))
        for i, name in enumerate(names)
    }
    return Placement(region=region, positions=positions)
