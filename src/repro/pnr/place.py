"""Stage 2 — placement: mapped gates onto the cell grid.

The fabric's abutment wiring is *monotone*: a row drives its east or
north neighbour only, so a net can reach a consumer only if the consumer
sits in the up-right quadrant of its producer.  Placement therefore has a
hard legality component on top of the usual wirelength objective: every
gate-to-gate edge must be **dominance-compatible** (sink row >= source
row AND sink column >= source column).  A corollary worth knowing: the
longest combinational chain a ``R x C`` region can host is ``R + C - 1``
gates — deep designs need proportionally large arrays.

Two phases, in the spirit of the annealing placers in Kuree/cgra_pnr:

* :func:`initial_placement` — greedy topological seeding.  Gates are
  placed in topological order at the free cell nearest the centroid of
  their placed fan-in, constrained to that fan-in's dominance quadrant —
  so the seed is always legal.  Candidates are scanned outward from the
  wanted cell in L1 rings (O(found distance²), not O(region cells)) in
  a fixed sorted order, so the seed is bit-reproducible everywhere.
* :func:`anneal_placement` — simulated annealing over single-gate
  relocations confined to each gate's dominance window, with
  half-perimeter wirelength (HPWL) cost; every accepted state stays
  legal by construction and the best state seen wins.  Move costs come
  from :class:`IncrementalHpwl` — a VPR-style cached per-net bounding
  box updated in O(pins of the moved gate) with *exact* deltas, so the
  accept/reject trajectory for a seed is identical to a full recompute
  (see ``docs/performance.md``).

Both operate inside a :class:`repro.fabric.floorplan.Region`, so a design
can be compiled into a carved-out module slot of a shared array.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.fabric.floorplan import Region
from repro.pnr.parallel import checkpoint, parallel_map, resolve_workers
from repro.pnr.techmap import MappedDesign, MappedGate


class PlacementError(RuntimeError):
    """The design does not fit the region, or has unroutable feedback."""


@dataclass
class Placement:
    """Gate positions inside a region.

    ``positions`` maps gate name -> (row, col) of the gate's *input* cell;
    a 2-cell pair extends one cell east (its output cell).
    """

    region: Region
    positions: dict[str, tuple[int, int]] = field(default_factory=dict)

    def cells_of(self, gate: MappedGate) -> list[tuple[int, int]]:
        """Grid cells the gate occupies."""
        r, c = self.positions[gate.name]
        return [(r, c + k) for k in range(gate.width)]

    def input_cell(self, gate: MappedGate) -> tuple[int, int]:
        """The cell whose input columns receive the gate's nets."""
        return self.positions[gate.name]

    def output_cell(self, gate: MappedGate) -> tuple[int, int]:
        """The cell whose rows drive the gate's output."""
        r, c = self.positions[gate.name]
        return (r, c + gate.width - 1)


def gate_levels(design: MappedDesign) -> dict[str, int]:
    """Topological level of every gate (0 = fed by primary inputs only).

    Raises :class:`PlacementError` on gate-to-gate feedback: a cycle
    cannot satisfy the monotone east/north dominance constraint (each
    edge would need a strictly-later grid position than the last).  The
    fabric hosts feedback *inside* a cell pair (the lfb lines the
    stateful macros use), not across the routed grid.
    """
    preds: dict[str, set[str]] = {name: set() for name in design.gates}
    succs: dict[str, list[str]] = {name: [] for name in design.gates}
    for g in design.gates.values():
        for net in g.inputs:
            src = design.source_of.get(net)
            if src == g.name:
                # A self-loop is the smallest grid-level cycle: the
                # sink cell would have to dominate itself strictly.
                raise PlacementError(
                    f"gate {g.name!r} reads its own output {net!r}; the "
                    "east/north fabric routes acyclic nets only (close "
                    "loops through the environment or a cell pair's lfb)"
                )
            if src is not None:
                preds[g.name].add(src)
    for name, ps in preds.items():
        for p in ps:
            succs[p].append(name)
    level: dict[str, int] = {}
    ready = [name for name, ps in preds.items() if not ps]
    indeg = {name: len(ps) for name, ps in preds.items()}
    order = []
    while ready:
        name = ready.pop()
        order.append(name)
        level[name] = max(
            (level[p] + 1 for p in preds[name]), default=0
        )
        for s in succs[name]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(order) != len(design.gates):
        stuck = sorted(set(design.gates) - set(order))
        raise PlacementError(
            f"design {design.name!r} has feedback through gates "
            f"{stuck[:6]}; the east/north fabric routes acyclic nets only "
            "(close loops through the environment or a cell pair's lfb)"
        )
    return level


def _edges(design: MappedDesign) -> list[tuple[str, str]]:
    """(source gate, sink gate) for every gate-to-gate connection."""
    out = []
    for g in design.gates.values():
        for net in g.inputs:
            src = design.source_of.get(net)
            if src is not None and src != g.name:
                out.append((src, g.name))
    return out


def dominance_violations(design: MappedDesign, placement: Placement) -> int:
    """Edges whose sink is not in the up-right quadrant of its source."""
    bad = 0
    for src, dst in _edges(design):
        sr, sc = placement.output_cell(design.gates[src])
        tr, tc = placement.input_cell(design.gates[dst])
        if tr < sr or tc < sc:
            bad += 1
    return bad


def net_hpwl(design: MappedDesign, placement: Placement, net: str) -> int:
    """Half-perimeter of one net's bounding box (source + sinks)."""
    sinks = design.sinks_of.get(net, [])
    pts = [placement.input_cell(design.gates[g]) for g, _ in sinks]
    src = design.source_of.get(net)
    if src is not None:
        pts.append(placement.output_cell(design.gates[src]))
    if len(pts) < 2:
        return 0
    rs = [p[0] for p in pts]
    cs = [p[1] for p in pts]
    return (max(rs) - min(rs)) + (max(cs) - min(cs))


def hpwl(design: MappedDesign, placement: Placement) -> int:
    """Total half-perimeter wirelength over all placed nets."""
    return sum(net_hpwl(design, placement, net) for net in design.sinks_of)


def weighted_hpwl(
    design: MappedDesign,
    placement: Placement,
    net_weights: dict[str, float],
) -> float:
    """HPWL with per-net multipliers — the timing-driven objective.

    Weights come from :func:`repro.pnr.timing.analyze_timing` criticality
    (``1 + timing_weight * criticality`` in the flow): nets on or near
    the critical path shrink preferentially, at the cost of slack-rich
    nets stretching.  Unlisted nets weigh 1.0.
    """
    return sum(
        net_hpwl(design, placement, net) * net_weights.get(net, 1.0)
        for net in design.sinks_of
    )


def initial_placement(
    design: MappedDesign,
    region: Region,
    rng: random.Random | None = None,
    fixed: dict[str, tuple[int, int]] | None = None,
    blocked: frozenset[tuple[int, int]] | None = None,
    pair_blocked: frozenset[tuple[int, int]] | None = None,
) -> Placement:
    """Greedy legal seeding: topological order, dominance-constrained.

    For each gate the candidate cells are scanned outward from the
    wanted position in L1 rings, in ascending ``(distance, row, col)``
    order, stopping as soon as no farther ring can beat the best cost —
    O(found distance²) instead of a sweep over every free cell of the
    region.  Cost ties resolve through a platform-stable arithmetic hash
    of ``(gate, row, col)`` — salted with one draw from ``rng`` so retry
    attempts still explore different seeds — rather than a coin flip
    over set-iteration order, so equal-cost candidates spread across the
    region (a lowest-(row, col) tie-break packs deep chains into a
    corner until they jam) while the same ``rng`` seed produces
    bit-identical placements on every platform and run (the Mersenne
    Twister draw is itself platform-stable).  When one tie-break policy
    jams — the greedy is a heuristic; any fixed policy jams on *some*
    design — the seeding restarts with the next policy in a fixed
    ladder, so success and the resulting positions stay deterministic.

    ``fixed`` pins gates to known-good positions before the greedy scan
    runs — the warm-start hook behind cross-compile incremental
    recompiles (:func:`repro.pnr.incremental.compile_incremental`):
    surviving gates keep their cached placement and only the delta is
    seeded around them.  Fixed positions are claimed first (overlap or
    out-of-region raises :class:`PlacementError`), and the greedy
    candidates for the remaining gates are additionally bounded by
    their already-placed *fan-outs*, so the combined placement stays
    dominance-legal by construction.

    ``blocked`` cells (dead fabric sites — see
    :mod:`repro.pnr.defects`) are removed from the free grid before
    any gate is claimed, so no gate can seed onto one; ``pair_blocked``
    additionally vetoes 2-cell pair macros *starting* at the named
    cells (a pair's fixed pin columns and internal feedback wires make
    it sensitive to defects a flexible single-cell gate could shrug
    off).  Both are hard constraints: a design that no longer fits the
    surviving cells raises :class:`PlacementError`.
    """
    capacity = region.cells
    if blocked:
        capacity -= sum(
            1
            for r, c in blocked
            if region.row <= r < region.row + region.n_rows
            and region.col <= c < region.col + region.n_cols
        )
    if design.n_cells > capacity:
        raise PlacementError(
            f"design needs {design.n_cells} cells but region "
            f"{region.name!r} offers {capacity}"
        )
    salt_base = rng.getrandbits(32) if rng is not None else 0
    last: PlacementError | None = None
    for variant in (1, 0, 2, 3):
        try:
            return _seed_once(
                design, region, variant, salt_base, fixed,
                blocked=blocked, pair_blocked=pair_blocked,
            )
        except PlacementError as e:
            last = e
    raise last


def _seed_once(
    design: MappedDesign,
    region: Region,
    variant: int,
    salt_base: int = 0,
    fixed: dict[str, tuple[int, int]] | None = None,
    blocked: frozenset[tuple[int, int]] | None = None,
    pair_blocked: frozenset[tuple[int, int]] | None = None,
) -> Placement:
    """One deterministic greedy seeding pass under tie-break ``variant``.

    Variant 1 spreads both axes by hash (the routability-friendly
    default, tried first); variant 0 prefers the smaller column on cost
    ties (conserving the columns deep chains march east through) with
    hash-spread rows; variants 2 and 3 fall back to plain lexicographic
    packing (low-column-first, then low-row-first).  Gates named in
    ``fixed`` are claimed at their given positions before the scan.
    """
    levels = gate_levels(design)
    fixed = fixed or {}
    order = sorted(
        (n for n in design.gates if n not in fixed),
        key=lambda n: (levels[n], n),
    )
    placement = Placement(region=region)
    row0, col0 = region.row, region.col
    row_hi = region.row + region.n_rows - 1
    col_hi = region.col + region.n_cols - 1
    free = np.zeros((row_hi + 1, col_hi + 1), dtype=bool)
    free[row0:, col0:] = True
    if blocked:
        for br, bc in blocked:
            if 0 <= br <= row_hi and 0 <= bc <= col_hi:
                free[br, bc] = False
    pair_blocked = pair_blocked or frozenset()
    mid_row = region.row + region.n_rows // 2
    #: Cells fixed-pin macros depend on for pin delivery (their west and
    #: south neighbours): placing anything there, or making two macros
    #: share one, invites routing contention.
    soft_reserved = np.zeros_like(free)
    #: Input cells of placed pair macros: candidates for further pairs
    #: are repelled from them, since clustered fixed-pin macros starve
    #: the shared west/south delivery cells of rows and columns.
    pair_cells: list[tuple[int, int]] = []

    for name, (fr, fc) in fixed.items():
        gate = design.gates.get(name)
        if gate is None:
            raise PlacementError(f"fixed gate {name!r} is not in the design")
        for k in range(gate.width):
            if not (row0 <= fr <= row_hi and col0 <= fc + k <= col_hi):
                raise PlacementError(
                    f"fixed gate {name!r} at ({fr},{fc}) leaves region "
                    f"{region.name!r}"
                )
            if not free[fr, fc + k]:
                raise PlacementError(
                    f"fixed gate {name!r} overlaps cell ({fr},{fc + k})"
                )
            free[fr, fc + k] = False
        placement.positions[name] = (fr, fc)
        if gate.width == 2:
            pair_cells.append((fr, fc))
            if fc - 1 >= col0:
                soft_reserved[fr, fc - 1] = True
            if fr - 1 >= row0:
                soft_reserved[fr - 1, fc] = True

    for name in order:
        gate = design.gates[name]
        width = gate.width
        min_r, min_c = row0, col0
        fan_rows, fan_cols = [], []
        for net in gate.inputs:
            src = design.source_of.get(net)
            if src is None or src == name:
                continue
            sr, sc = placement.output_cell(design.gates[src])
            min_r = max(min_r, sr)
            min_c = max(min_c, sc)
            fan_rows.append(sr)
            fan_cols.append(sc)
        want_r = round(sum(fan_rows) / len(fan_rows)) if fan_rows else mid_row
        want_c = (max(fan_cols) + 1) if fan_cols else region.col
        # Gates with many (or fixed-column) input pins need a usable
        # west/south neighbour to deliver those pins from; weight
        # crowded positions accordingly.
        pin_weight = 3 if width == 2 else (1 if len(gate.inputs) >= 3 else 0)
        lo_r, hi_r = min_r, row_hi
        lo_c, hi_c = min_c, col_hi - (width - 1)
        if fixed:
            # Warm-started seeding places a gate whose fan-outs may
            # already sit on the grid (they kept their cached cells):
            # the candidate window is bounded above by those sinks, so
            # every edge to a pre-placed consumer stays
            # dominance-compatible.  The cold path never hits this —
            # topological order places fan-outs later.
            for sname, _pin in design.sinks_of.get(gate.output, ()):
                pos = placement.positions.get(sname)
                if pos is None or sname == name:
                    continue
                if pos[0] < hi_r:
                    hi_r = pos[0]
                if pos[1] - (width - 1) < hi_c:
                    hi_c = pos[1] - (width - 1)
            if hi_r < lo_r or hi_c < lo_c:
                raise PlacementError(
                    f"gate {name!r}: no dominance-legal window between its "
                    "fan-ins and pre-placed fan-outs"
                )
        # Stable per-gate salt for the tie-break mix (not Python's
        # salted str hash — this must agree across runs and platforms).
        salt = salt_base
        for ch in name:
            salt = (salt * 131 + ord(ch)) & 0xFFFFFFFF

        def candidate_cost(r: int, c: int, base: int) -> int | None:
            if width == 2 and (r, c) in pair_blocked:
                return None
            for k in range(width):
                if not free[r, c + k]:
                    return None
            cost = base
            if pin_weight:
                for fr, fc in ((r, c - 1), (r - 1, c)):
                    if (
                        fr < row0
                        or fc < col0
                        or not free[fr, fc]
                        or soft_reserved[fr, fc]
                    ):
                        cost += pin_weight
            for k in range(width):
                if soft_reserved[r, c + k]:
                    cost += 2
            if width == 2:
                # Pair macros read several fixed pin columns, each
                # delivered on its own row of the west/south neighbour
                # cells — clustered pairs starve that shared capacity,
                # so repel them from each other with a decaying penalty.
                for pr, pc in pair_cells:
                    d = abs(r - pr) + abs(c - pc)
                    if d < 5:
                        cost += 2 * (5 - d)
            return cost

        best, best_key = None, None
        if lo_r <= hi_r and lo_c <= hi_c:
            d_max = max(
                abs(r - want_r) + abs(c - want_c)
                for r in (lo_r, hi_r)
                for c in (lo_c, hi_c)
            )
            for d in range(d_max + 1):
                # Penalties only add, so once a best exists no ring
                # beyond its cost can improve on it.
                if best is not None and d > best_key[0]:
                    break
                for r in range(max(lo_r, want_r - d), min(hi_r, want_r + d) + 1):
                    rem = d - abs(r - want_r)
                    cols = (want_c - rem, want_c + rem) if rem else (want_c,)
                    for c in cols:
                        if not lo_c <= c <= hi_c:
                            continue
                        cost = candidate_cost(r, c, d)
                        if cost is None:
                            continue
                        mix = (
                            (salt ^ (r * 0x9E3779B1) ^ (c * 0x85EBCA77))
                            & 0xFFFFFFFF
                        )
                        if variant == 0:
                            key = (cost, c, mix, r)
                        elif variant == 1:
                            key = (cost, mix, r, c)
                        elif variant == 2:
                            key = (cost, c, r, 0)
                        else:
                            key = (cost, r, c, 0)
                        if best_key is None or key < best_key:
                            best, best_key = (r, c), key
        if best is None:
            raise PlacementError(
                f"no legal cell for gate {name!r} (needs row >= {min_r}, "
                f"col >= {min_c}, width {width}) in region "
                f"{region.name!r}"
            )
        placement.positions[name] = best
        br, bc = best
        free[br, bc:bc + width] = False
        if width == 2:
            pair_cells.append(best)
            if bc - 1 >= col0:
                soft_reserved[br, bc - 1] = True
            if br - 1 >= row0:
                soft_reserved[br - 1, bc] = True
    return placement


class IncrementalHpwl:
    """Cached per-net bounding boxes with exact O(pins of gate) updates.

    The VPR-style structure behind :func:`anneal_placement`: every net
    keeps its bounding box **and the number of pins sitting on each of
    the four edges**, so moving one gate updates each incident net in
    O(1) — unless the move vacates an edge whose pin count drops to
    zero, in which case that net alone is rescanned in O(its pins).
    Deltas are therefore *exact* (not the VPR approximation): the
    accept/reject trajectory under a fixed seed is identical to a full
    recompute, which is what keeps annealed results reproducible.

    Gate positions live in numpy int32 arrays (``rows`` / ``cols``,
    indexed by ``index[name]``); :meth:`propose` prices a move without
    committing, :meth:`commit` applies it, and :attr:`total` always
    equals :func:`weighted_hpwl` of the current state (``hpwl`` when no
    weights were given).
    """

    def __init__(
        self,
        design: MappedDesign,
        placement: Placement,
        net_weights: dict[str, float] | None = None,
    ) -> None:
        self.design = design
        names = list(design.gates)
        self.names = names
        self.index = {n: i for i, n in enumerate(names)}
        n = len(names)
        self.rows = np.zeros(n, dtype=np.int32)
        self.cols = np.zeros(n, dtype=np.int32)
        self.widths = np.zeros(n, dtype=np.int32)
        for i, nm in enumerate(names):
            r, c = placement.positions[nm]
            self.rows[i] = r
            self.cols[i] = c
            self.widths[i] = design.gates[nm].width

        # One pin list per net: (gate index, column offset) — the output
        # pin sits on the gate's east cell, sinks on its input cell.
        # Multiplicity is kept (a pair macro may read a net twice).
        weights = net_weights or {}
        net_names: list[str] = []
        net_id: dict[str, int] = {}
        pins: list[list[tuple[int, int]]] = []

        def nid(net: str) -> int:
            k = net_id.get(net)
            if k is None:
                k = net_id[net] = len(net_names)
                net_names.append(net)
                pins.append([])
            return k

        for g in design.gates.values():
            pins[nid(g.output)].append((self.index[g.name], g.width - 1))
        for net, sinks in design.sinks_of.items():
            k = nid(net)
            for gname, _pin in sinks:
                gi = self.index.get(gname)
                if gi is not None:
                    pins[k].append((gi, 0))
        self.net_names = net_names
        self.net_pins = pins
        self.weight = [float(weights.get(nm, 1.0)) for nm in net_names]

        # Per-gate incident pin occurrences, grouped by net.
        by_gate: list[dict[int, list[int]]] = [{} for _ in range(n)]
        for k, plist in enumerate(pins):
            for gi, off in plist:
                by_gate[gi].setdefault(k, []).append(off)
        self.gate_nets: list[list[tuple[int, tuple[int, ...]]]] = [
            sorted((k, tuple(offs)) for k, offs in d.items()) for d in by_gate
        ]

        # Bounding boxes + edge pin counts, one row per net:
        # (rmin, rmax, cmin, cmax, nrmin, nrmax, ncmin, ncmax).  A 2-D
        # numpy array rather than a list of tuples so the batched
        # evaluator can gather every candidate's incident boxes in one
        # fancy-index; the scalar path reads rows back as python ints
        # through :meth:`_box`.
        m = len(net_names)
        self._boxes = np.zeros((m, 8), dtype=np.int64)
        self.total = 0.0
        for k in range(m):
            box = self._scan(k, -1, 0, 0)
            self._boxes[k] = box
            self.total += self.weight[k] * ((box[1] - box[0]) + (box[3] - box[2]))

    # -- internals -------------------------------------------------------
    def _box(self, k: int) -> list[int]:
        """Net ``k``'s cached row, as plain python ints."""
        return self._boxes[k].tolist()

    def _scan(
        self, k: int, moved: int, new_r: int, new_c: int
    ) -> tuple[int, int, int, int, int, int, int, int]:
        """Full bbox + edge-count rescan of net ``k`` (gate ``moved`` at
        its hypothetical new position)."""
        rows, cols = self.rows, self.cols
        rmin = cmin = 1 << 30
        rmax = cmax = -(1 << 30)
        pts = []
        for gi, off in self.net_pins[k]:
            if gi == moved:
                r, c = new_r, new_c + off
            else:
                r, c = int(rows[gi]), int(cols[gi]) + off
            pts.append((r, c))
            if r < rmin:
                rmin = r
            if r > rmax:
                rmax = r
            if c < cmin:
                cmin = c
            if c > cmax:
                cmax = c
        nrmin = nrmax = ncmin = ncmax = 0
        for r, c in pts:
            if r == rmin:
                nrmin += 1
            if r == rmax:
                nrmax += 1
            if c == cmin:
                ncmin += 1
            if c == cmax:
                ncmax += 1
        return (rmin, rmax, cmin, cmax, nrmin, nrmax, ncmin, ncmax)

    def _bbox_after(
        self, k: int, gi: int, offs: tuple[int, ...],
        old_r: int, old_c: int, new_r: int, new_c: int,
    ) -> tuple[int, int, int, int, int, int, int, int]:
        rmin, rmax, cmin, cmax, nrmin, nrmax, ncmin, ncmax = self._box(k)
        for off in offs:
            # Remove the old pin point from the edge counts.
            if old_r == rmin:
                nrmin -= 1
            if old_r == rmax:
                nrmax -= 1
            oc = old_c + off
            if oc == cmin:
                ncmin -= 1
            if oc == cmax:
                ncmax -= 1
            if nrmin == 0 or nrmax == 0 or ncmin == 0 or ncmax == 0:
                # The move vacated a bounding edge: rescan this net.
                return self._scan(k, gi, new_r, new_c)
            # Add the new pin point.
            if new_r < rmin:
                rmin, nrmin = new_r, 1
            elif new_r == rmin:
                nrmin += 1
            if new_r > rmax:
                rmax, nrmax = new_r, 1
            elif new_r == rmax:
                nrmax += 1
            nc = new_c + off
            if nc < cmin:
                cmin, ncmin = nc, 1
            elif nc == cmin:
                ncmin += 1
            if nc > cmax:
                cmax, ncmax = nc, 1
            elif nc == cmax:
                ncmax += 1
        return (rmin, rmax, cmin, cmax, nrmin, nrmax, ncmin, ncmax)

    # -- the move API ----------------------------------------------------
    def propose(
        self, gi: int, new_r: int, new_c: int
    ) -> tuple[float, list[tuple[int, tuple]]]:
        """Exact weighted-HPWL delta of moving gate ``gi``; commits nothing.

        Returns ``(delta, updates)``; pass ``updates`` to :meth:`commit`
        to apply the move.
        """
        old_r, old_c = int(self.rows[gi]), int(self.cols[gi])
        delta = 0.0
        updates: list[tuple[int, tuple]] = []
        weight = self.weight
        for k, offs in self.gate_nets[gi]:
            old = self._box(k)
            new = self._bbox_after(k, gi, offs, old_r, old_c, new_r, new_c)
            d = ((new[1] - new[0]) + (new[3] - new[2])) - (
                (old[1] - old[0]) + (old[3] - old[2])
            )
            if d:
                delta += weight[k] * d
            updates.append((k, new))
        return delta, updates

    def commit(
        self, gi: int, new_r: int, new_c: int,
        delta: float, updates: list[tuple[int, tuple]],
    ) -> None:
        """Apply a move priced by :meth:`propose`."""
        self.rows[gi] = new_r
        self.cols[gi] = new_c
        for k, box in updates:
            self._boxes[k] = box
        self.total += delta

    def move(self, name: str, position: tuple[int, int]) -> float:
        """Relocate gate ``name``; returns the exact cost delta applied."""
        gi = self.index[name]
        delta, updates = self.propose(gi, *position)
        self.commit(gi, *position, delta, updates)
        return delta


@dataclass
class BatchEval:
    """A priced batch of candidate moves, ready to commit selectively.

    Produced by :meth:`BatchMoveEvaluator.propose_batch`.  ``deltas[j]``
    is the exact weighted-HPWL delta of candidate ``j`` against the
    state the batch was priced on; :meth:`nets_of` lists the nets that
    pricing read, which is what conflict screening needs: a candidate
    stays commit-safe for as long as none of those nets has been
    touched by an earlier commit from the same batch.
    """

    gis: np.ndarray
    trs: np.ndarray
    tcs: np.ndarray
    deltas: np.ndarray
    #: Entry-slice bounds per candidate into ``ent_net`` / ``new_boxes``.
    bounds: np.ndarray
    ent_net: np.ndarray
    #: Fast-path replacement bbox rows, one per entry.
    new_boxes: np.ndarray
    #: Candidates priced through the scalar fallback: j -> propose updates.
    slow: dict[int, list]

    def nets_of(self, j: int) -> np.ndarray:
        """Net ids candidate ``j``'s pricing depends on."""
        return self.ent_net[self.bounds[j]:self.bounds[j + 1]]


class BatchMoveEvaluator:
    """Vectorized pricing of K single-gate moves against one cache state.

    The numpy companion to :class:`IncrementalHpwl`: candidate moves
    arrive as arrays ``(gis, trs, tcs)`` and all K exact deltas come
    back from one vectorized pass over the cached bbox/edge-count rows.
    The per-pin fast path mirrors :meth:`IncrementalHpwl._bbox_after`
    arithmetic exactly — remove the old pin from the edge counts, slide
    the edge if the new pin extends it.  The cases the scalar code
    rescans (a move vacating a bounding edge whose pin count hits zero)
    are rescanned here too, but vectorized: a per-net pin CSR and
    segmented ``reduceat`` reductions recompute exactly the boxes
    :meth:`IncrementalHpwl._scan` would.  Only gates reading one net
    through several pins (``nand(a, a)`` style — the one-pin update
    does not compose) fall back to the scalar
    :meth:`IncrementalHpwl.propose`.  Deltas are bit-equal to the
    scalar path's (same operands, same accumulation order), which is
    what keeps the annealer's ``cache == scratch`` invariant intact
    under batching.
    """

    def __init__(self, cost: IncrementalHpwl) -> None:
        self.cost = cost
        n = len(cost.names)
        ptr = [0]
        ent_net: list[int] = []
        ent_off: list[int] = []
        slow = np.zeros(n, dtype=bool)
        for gi in range(n):
            for k, offs in cost.gate_nets[gi]:
                if len(offs) > 1:
                    # One net read through several pins of the same
                    # gate: the one-pin edge-count update below does
                    # not compose, price such gates through the scalar
                    # path (they are rare — nand(a, a) style).
                    slow[gi] = True
                for off in offs:
                    ent_net.append(k)
                    ent_off.append(off)
            ptr.append(len(ent_net))
        self.ent_ptr = np.asarray(ptr, dtype=np.int64)
        self.ent_net = np.asarray(ent_net, dtype=np.int64)
        self.ent_off = np.asarray(ent_off, dtype=np.int64)
        self.slow_gate = slow
        self.net_weight = np.asarray(cost.weight, dtype=np.float64)
        self.net_npins = np.asarray(
            [len(p) for p in cost.net_pins], dtype=np.int64
        )
        # Flat per-net pin lists for the vectorized rescan.
        pin_ptr = [0]
        pin_gate: list[int] = []
        pin_off: list[int] = []
        for plist in cost.net_pins:
            for gi, off in plist:
                pin_gate.append(gi)
                pin_off.append(off)
            pin_ptr.append(len(pin_gate))
        self.pin_ptr = np.asarray(pin_ptr, dtype=np.int64)
        self.pin_gate = np.asarray(pin_gate, dtype=np.int64)
        self.pin_off = np.asarray(pin_off, dtype=np.int64)

    def propose_batch(
        self, gis: np.ndarray, trs: np.ndarray, tcs: np.ndarray
    ) -> tuple[np.ndarray, BatchEval]:
        """Exact deltas for K hypothetical moves; commits nothing.

        All candidates are priced against the *current* cache state,
        independently of each other — the caller decides which subset
        to commit (and in what order) via :meth:`commit`.
        """
        cost = self.cost
        gis = np.asarray(gis, dtype=np.int64)
        trs = np.asarray(trs, dtype=np.int64)
        tcs = np.asarray(tcs, dtype=np.int64)
        kk = len(gis)
        starts = self.ent_ptr[gis]
        counts = self.ent_ptr[gis + 1] - starts
        bounds = np.zeros(kk + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        total = int(bounds[-1])
        reps = np.repeat(np.arange(kk, dtype=np.int64), counts)
        eidx = starts[reps] + (np.arange(total, dtype=np.int64) - bounds[reps])
        ks = self.ent_net[eidx]
        off = self.ent_off[eidx]
        g = gis[reps]
        old_r = cost.rows[g].astype(np.int64)
        old_c = cost.cols[g].astype(np.int64) + off
        new_r = trs[reps]
        new_c = tcs[reps] + off

        boxes = cost._boxes[ks]
        rmin, rmax = boxes[:, 0], boxes[:, 1]
        cmin, cmax = boxes[:, 2], boxes[:, 3]
        nrmin, nrmax = boxes[:, 4], boxes[:, 5]
        ncmin, ncmax = boxes[:, 6], boxes[:, 7]
        single = self.net_npins[ks] <= 1

        def lo_edge(old, new, edge, n_on_edge):
            on = old == edge
            rest = n_on_edge - on
            rescan = on & (rest == 0) & (new > edge)
            return (
                np.minimum(edge, new),
                np.where(new < edge, 1, np.where(new == edge, rest + 1, rest)),
                rescan,
            )

        def hi_edge(old, new, edge, n_on_edge):
            on = old == edge
            rest = n_on_edge - on
            rescan = on & (rest == 0) & (new < edge)
            return (
                np.maximum(edge, new),
                np.where(new > edge, 1, np.where(new == edge, rest + 1, rest)),
                rescan,
            )

        n_rmin, c_rmin, s0 = lo_edge(old_r, new_r, rmin, nrmin)
        n_rmax, c_rmax, s1 = hi_edge(old_r, new_r, rmax, nrmax)
        n_cmin, c_cmin, s2 = lo_edge(old_c, new_c, cmin, ncmin)
        n_cmax, c_cmax, s3 = hi_edge(old_c, new_c, cmax, ncmax)
        rescan = (s0 | s1 | s2 | s3) & ~single
        # A net whose only pin is the moved one needs no rescan: its
        # box collapses onto the new point and its hpwl stays zero.
        np.copyto(n_rmin, new_r, where=single)
        np.copyto(n_rmax, new_r, where=single)
        np.copyto(n_cmin, new_c, where=single)
        np.copyto(n_cmax, new_c, where=single)
        for counts_arr in (c_rmin, c_rmax, c_cmin, c_cmax):
            np.copyto(counts_arr, 1, where=single)

        re = np.nonzero(rescan)[0]
        if len(re):
            # Entries that vacated a bounding edge: recompute their
            # nets' boxes from scratch, vectorized over all pins of all
            # rescanned nets at once — the segmented twin of
            # :meth:`IncrementalHpwl._scan`.  (Moves shared with the
            # scalar path hit this with the scalar-measured frequency:
            # small 2-3 pin nets leave a lone pin on an edge often, so
            # keeping the rescan off the scalar path is what makes the
            # batch pass pay.)
            k_re = ks[re]
            g_re = g[re]
            nr_re = new_r[re]
            tc_re = tcs[reps[re]]
            np_re = self.net_npins[k_re]
            b2 = np.zeros(len(re) + 1, dtype=np.int64)
            np.cumsum(np_re, out=b2[1:])
            reps2 = np.repeat(np.arange(len(re), dtype=np.int64), np_re)
            pidx = self.pin_ptr[k_re][reps2] + (
                np.arange(int(b2[-1]), dtype=np.int64) - b2[reps2]
            )
            pg = self.pin_gate[pidx]
            po = self.pin_off[pidx]
            moved = pg == g_re[reps2]
            pr = np.where(moved, nr_re[reps2], cost.rows[pg])
            pc = np.where(moved, tc_re[reps2], cost.cols[pg]) + po
            starts = b2[:-1]
            r_lo = np.minimum.reduceat(pr, starts)
            r_hi = np.maximum.reduceat(pr, starts)
            c_lo = np.minimum.reduceat(pc, starts)
            c_hi = np.maximum.reduceat(pc, starts)
            n_rmin[re] = r_lo
            n_rmax[re] = r_hi
            n_cmin[re] = c_lo
            n_cmax[re] = c_hi
            c_rmin[re] = np.add.reduceat(
                (pr == r_lo[reps2]).astype(np.int64), starts
            )
            c_rmax[re] = np.add.reduceat(
                (pr == r_hi[reps2]).astype(np.int64), starts
            )
            c_cmin[re] = np.add.reduceat(
                (pc == c_lo[reps2]).astype(np.int64), starts
            )
            c_cmax[re] = np.add.reduceat(
                (pc == c_hi[reps2]).astype(np.int64), starts
            )

        span_delta = ((n_rmax - n_rmin) + (n_cmax - n_cmin)) - (
            (rmax - rmin) + (cmax - cmin)
        )
        d_e = self.net_weight[ks] * span_delta
        deltas = np.bincount(reps, weights=d_e, minlength=kk)

        new_boxes = np.empty((total, 8), dtype=np.int64)
        for col, arr in enumerate(
            (n_rmin, n_rmax, n_cmin, n_cmax, c_rmin, c_rmax, c_cmin, c_cmax)
        ):
            new_boxes[:, col] = arr

        slow_c = self.slow_gate[gis]
        slow: dict[int, list] = {}
        for j in np.nonzero(slow_c)[0]:
            d, ups = cost.propose(int(gis[j]), int(trs[j]), int(tcs[j]))
            deltas[j] = d
            slow[int(j)] = ups
        return deltas, BatchEval(
            gis=gis, trs=trs, tcs=tcs, deltas=deltas, bounds=bounds,
            ent_net=ks, new_boxes=new_boxes, slow=slow,
        )

    def commit(self, batch: BatchEval, j: int) -> None:
        """Apply candidate ``j`` through the exact cache update.

        Only valid while none of ``batch.nets_of(j)`` has been touched
        since the batch was priced (the annealer's conflict screen
        guarantees exactly that), so the precomputed boxes and delta
        still describe the live state.
        """
        cost = self.cost
        gi = int(batch.gis[j])
        tr, tc = int(batch.trs[j]), int(batch.tcs[j])
        ups = batch.slow.get(j)
        if ups is not None:
            cost.commit(gi, tr, tc, float(batch.deltas[j]), ups)
            return
        e0, e1 = int(batch.bounds[j]), int(batch.bounds[j + 1])
        cost._boxes[batch.ent_net[e0:e1]] = batch.new_boxes[e0:e1]
        cost.rows[gi] = tr
        cost.cols[gi] = tc
        cost.total += float(batch.deltas[j])


def default_anneal_steps(n_gates: int) -> int:
    """The annealing budget :func:`anneal_placement` uses when unset."""
    return max(600, 80 * n_gates)


def anneal_temperatures(
    steps: int, t_start: float, t_end: float
) -> list[float]:
    """The geometric cooling ladder: ``steps`` temperatures from
    ``t_start`` (used by the very first move) down to ``t_end``."""
    if steps <= 0:
        return []
    cooling = (t_end / t_start) ** (1.0 / max(1, steps - 1))
    temps = [t_start]
    for _ in range(steps - 1):
        temps.append(temps[-1] * cooling)
    return temps


#: Candidate moves priced per vectorized batch when the caller does not
#: choose.  Each batch shares one temperature, so the ladder has
#: ``ceil(steps / batch_moves)`` rungs (floored at
#: :data:`MIN_ANNEAL_RUNGS` when ``steps`` is defaulted); larger
#: batches amortize the numpy pass better but drift further from
#: move-by-move annealing.  768 with the 64-rung floor prices ~5x the
#: scalar move budget in ~2/3 the wall-clock on rca8.
DEFAULT_BATCH_MOVES = 768

#: Minimum temperature rungs for a default-budget batched anneal.  A
#: large batch divided into ``ceil(steps / batch_moves)`` rungs alone
#: would cool in a handful of giant jumps (rca8: 13 rungs) and lose
#: ~25% quality; flooring the ladder keeps temperature resolution and
#: the extra batches are cheap.  Explicit ``steps`` are honoured
#: exactly — the floor applies only when the budget is defaulted.
MIN_ANNEAL_RUNGS = 96

#: Cap on how far a default budget is boosted over
#: :func:`default_anneal_steps`.  Batched moves are ~6x cheaper than
#: scalar ones, so pricing up to 8x the scalar budget still compiles
#: faster; the boost scales with design size (one x per
#: :data:`GATES_PER_BOOST` gates) because dense designs keep improving
#: with extra moves while a few-dozen-gate shard converges within its
#: scalar budget — measurably, 8x budget on an rca16 shard buys
#: nothing, on rca8 it is worth ~10% wirelength.
MAX_BUDGET_BOOST = 8

#: Gates per unit of default-budget boost (see :data:`MAX_BUDGET_BOOST`).
GATES_PER_BOOST = 15

#: Smallest batch the default path shrinks to.  Below this the numpy
#: pass stops amortizing and the scalar loop would be as fast.
MIN_BATCH_MOVES = 64

#: Ratio between adjacent fleet replicas' temperature ladders.  Both
#: ``t_start`` and ``t_end`` scale by ``stagger**i``, so the ratio of
#: adjacent replicas' temperatures is the same at every rung — the
#: replica-exchange criterion stays meaningful through the whole cool.
DEFAULT_STAGGER = 1.6


def _pad_indices(lists: list[list[int]], sentinel: int) -> np.ndarray:
    """Ragged index lists as one padded matrix (``sentinel`` fills)."""
    width = max((len(xs) for xs in lists), default=0)
    mat = np.full((len(lists), width), sentinel, dtype=np.int64)
    for i, xs in enumerate(lists):
        mat[i, :len(xs)] = xs
    return mat


class _AnnealContext:
    """One annealing replica's working state (cache, occupancy, windows).

    Everything :func:`anneal_placement`'s batched path needs, bundled so
    a fleet replica can be rebuilt from shipped positions inside a
    worker process: the exact :class:`IncrementalHpwl` cache, the
    occupancy grid, padded fan-in/fan-out matrices for vectorized
    dominance windows, and best-state tracking.
    """

    def __init__(
        self,
        design: MappedDesign,
        placement: Placement,
        net_weights: dict[str, float] | None = None,
        blocked: frozenset[tuple[int, int]] | None = None,
    ) -> None:
        region = placement.region
        self.region = region
        self.cost = IncrementalHpwl(design, placement, net_weights)
        cost = self.cost
        names = cost.names
        rows, cols, widths = cost.rows, cost.cols, cost.widths
        self.occupied = np.full(
            (region.row + region.n_rows, region.col + region.n_cols),
            -1, dtype=np.int32,
        )
        # Dead sites (defect maps) are marked with a -2 sentinel: the
        # draw() validity mask and the commit screen both accept only
        # empty (-1) or self-occupied targets, so every move onto a
        # blocked cell is rejected for free — no extra mask lookups on
        # the hot path.
        if blocked:
            nr, nc = self.occupied.shape
            for br, bc in blocked:
                if 0 <= br < nr and 0 <= bc < nc:
                    self.occupied[br, bc] = -2
        for i in range(len(names)):
            self.occupied[rows[i], cols[i]:cols[i] + widths[i]] = i

        # Fan-in / fan-out gate indices bounding each gate's legal window.
        fanins: list[list[int]] = [[] for _ in names]
        fanouts: list[list[int]] = [[] for _ in names]
        for g in design.gates.values():
            gi = cost.index[g.name]
            for net in dict.fromkeys(g.inputs):
                src = design.source_of.get(net)
                if src is not None and src != g.name:
                    si = cost.index[src]
                    fanins[gi].append(si)
                    fanouts[si].append(gi)
        n = len(names)
        # Only 1-wide gates move (pair macros stay where the seed
        # spread them — compacting them trades HPWL for congestion).
        self.movable = np.nonzero(widths == 1)[0].astype(np.int64)
        self.fi = _pad_indices(fanins, n)
        self.fo = _pad_indices(fanouts, n)
        self.evaluator = BatchMoveEvaluator(cost)
        self.row_lo, self.col_lo = region.row, region.col
        self.row_hi = region.row + region.n_rows - 1
        self.col_hi = region.col + region.n_cols - 1
        self.best_rows = rows.copy()
        self.best_cols = cols.copy()
        self.best_total = cost.total
        self._touched = [0] * len(cost.net_names)
        self._batch_id = 0
        # Scratch for the window gathers: positions extended by one
        # sentinel slot (index n) the padded fan-in/fan-out matrices
        # point at; refreshed per batch, never reallocated.
        big = 1 << 30
        self._rows_max = np.full(n + 1, -1, dtype=np.int64)
        self._ocol_max = np.full(n + 1, -1, dtype=np.int64)
        self._rows_min = np.full(n + 1, big, dtype=np.int64)
        self._cols_min = np.full(n + 1, big, dtype=np.int64)
        self._w1 = (widths - 1).astype(np.int64)

    def draw(
        self, gen: np.random.Generator, k: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """K candidate (gate, target) pairs plus their validity mask.

        Dominance windows are computed vectorized from the padded
        fan-in/fan-out matrices: the window floor is the max over
        fan-in output cells, the ceiling the min over fan-out input
        cells (sentinel rows fall back to the region bounds).  Exactly
        ``k`` gate draws, ``2k`` target draws are consumed whatever the
        masks say, so the rng stream is data-independent.
        """
        cost = self.cost
        rows, cols = cost.rows, cost.cols
        pick = self.movable[gen.integers(0, len(self.movable), k)]
        big = 1 << 30
        n = len(rows)
        rows_max = self._rows_max
        ocol_max = self._ocol_max
        rows_min = self._rows_min
        cols_min = self._cols_min
        rows_max[:n] = rows
        rows_min[:n] = rows
        cols_min[:n] = cols
        ocol_max[:n] = cols
        ocol_max[:n] += self._w1
        fi = self.fi[pick]
        fo = self.fo[pick]
        lo_r = np.maximum(self.row_lo, rows_max[fi].max(axis=1, initial=-1))
        lo_c = np.maximum(self.col_lo, ocol_max[fi].max(axis=1, initial=-1))
        hi_r = np.minimum(self.row_hi, rows_min[fo].min(axis=1, initial=big))
        hi_c = np.minimum(self.col_hi, cols_min[fo].min(axis=1, initial=big))
        valid = (lo_r <= hi_r) & (lo_c <= hi_c)
        trs = gen.integers(lo_r, np.maximum(lo_r, hi_r) + 1)
        tcs = gen.integers(lo_c, np.maximum(lo_c, hi_c) + 1)
        valid &= (trs != rows[pick]) | (tcs != cols[pick])
        occ = self.occupied[trs, tcs]
        valid &= (occ == -1) | (occ == pick)
        return pick, trs, tcs, valid

    def run_batches(
        self,
        temps: list[float],
        gen: np.random.Generator,
        batch_moves: int,
        move_log: list | None = None,
    ) -> dict[str, int]:
        """Anneal one batch of ``batch_moves`` candidates per rung.

        Every batch prices its candidates in one vectorized pass, then
        Metropolis-accepts greedily in draw order under a conflict
        screen: a candidate is skipped when any net its pricing read
        was touched by an earlier commit of the same batch (which also
        covers stale dominance windows — a moved fan-in/fan-out always
        shares a net with the gate), or when its target cell was
        claimed meanwhile.  Commits go through the exact cache update,
        so ``cost.total`` tracks a from-scratch recompute bit-for-bit.
        """
        evaluated = accepted = 0
        if not len(self.movable):
            return {"evaluated": 0, "accepted": 0, "batches": 0}
        cost = self.cost
        evaluator = self.evaluator
        occupied = self.occupied
        rows, cols = cost.rows, cost.cols
        names = cost.names
        touched = self._touched
        for temp in temps:
            # Cooperative cancellation: a service deadline cancels
            # between temperature rungs (one batch is bounded work).
            checkpoint()
            self._batch_id += 1
            bid = self._batch_id
            pick, trs, tcs, valid = self.draw(gen, batch_moves)
            u = gen.random(batch_moves)
            evaluated += batch_moves
            idx = np.nonzero(valid)[0]
            if not len(idx):
                continue
            deltas, batch = evaluator.propose_batch(
                pick[idx], trs[idx], tcs[idx]
            )
            bar = np.exp(-np.maximum(deltas, 0.0) / max(temp, 1e-9))
            accept = (deltas <= 0.0) | (u[idx] < bar)
            acc_idx = np.nonzero(accept)[0]
            if not len(acc_idx):
                continue
            # The accept/commit pass is scalar by nature; python-list
            # views of the batch arrays keep it off numpy's per-element
            # overhead.  Committed candidates touch pairwise-disjoint
            # nets (the conflict screen guarantees it), so their cache
            # writes commute — they are collected and applied in one
            # vectorized scatter at the end of the rung, with only the
            # occupancy grid and the running total updated in-loop.
            gis_l = batch.gis.tolist()
            trs_l = batch.trs.tolist()
            tcs_l = batch.tcs.tolist()
            bounds_l = batch.bounds.tolist()
            ents_l = batch.ent_net.tolist()
            deltas_l = batch.deltas.tolist()
            slow = batch.slow
            moved_g: list[int] = []
            moved_r: list[int] = []
            moved_c: list[int] = []
            moved_e: list[int] = []
            for j in acc_idx.tolist():
                e0, e1 = bounds_l[j], bounds_l[j + 1]
                nets = ents_l[e0:e1]
                clean = True
                for k in nets:
                    if touched[k] == bid:
                        clean = False
                        break
                if not clean:
                    continue
                gi = gis_l[j]
                tr, tc = trs_l[j], tcs_l[j]
                o = occupied[tr, tc]
                if o != -1 and o != gi:
                    continue
                occupied[rows[gi], cols[gi]] = -1
                occupied[tr, tc] = gi
                ups = slow.get(j)
                if ups is not None:
                    cost.commit(gi, tr, tc, deltas_l[j], ups)
                else:
                    moved_g.append(gi)
                    moved_r.append(tr)
                    moved_c.append(tc)
                    moved_e.extend(range(e0, e1))
                    cost.total += deltas_l[j]
                for k in nets:
                    touched[k] = bid
                accepted += 1
                if move_log is not None:
                    move_log.append((names[gi], (tr, tc), deltas_l[j]))
            if moved_g:
                rows[moved_g] = moved_r
                cols[moved_g] = moved_c
                sel = np.asarray(moved_e, dtype=np.int64)
                cost._boxes[batch.ent_net[sel]] = batch.new_boxes[sel]
            if cost.total < self.best_total:
                self.best_total = cost.total
                self.best_rows = rows.copy()
                self.best_cols = cols.copy()
        return {
            "evaluated": evaluated,
            "accepted": accepted,
            "batches": len(temps),
        }

    def derive_t_start(
        self, accept_target: float, samples: int, seed: int
    ) -> float:
        """A ``t_start`` matching an acceptance target on this landscape.

        Prices ``samples`` random in-window moves against the current
        state (committing nothing) and returns the temperature at which
        a mean-sized uphill move is accepted with ``accept_target``
        probability: ``t = mean(uphill deltas) / ln(1 / target)``.
        Deterministic in ``seed``; falls back to 1.0 when the sample
        finds no uphill move (already frozen landscapes).
        """
        if not len(self.movable):
            return 1.0
        gen = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((seed, 0x715A27)))
        )
        pick, trs, tcs, valid = self.draw(gen, samples)
        idx = np.nonzero(valid)[0]
        if not len(idx):
            return 1.0
        deltas, _ = self.evaluator.propose_batch(pick[idx], trs[idx], tcs[idx])
        uphill = deltas[deltas > 0]
        if not len(uphill):
            return 1.0
        target = min(max(accept_target, 1e-3), 0.999)
        return float(uphill.mean() / -math.log(target))

    def positions(self) -> dict[str, tuple[int, int]]:
        rows, cols = self.cost.rows, self.cost.cols
        return {
            name: (int(rows[i]), int(cols[i]))
            for i, name in enumerate(self.cost.names)
        }

    def best_positions(self) -> dict[str, tuple[int, int]]:
        return {
            name: (int(self.best_rows[i]), int(self.best_cols[i]))
            for i, name in enumerate(self.cost.names)
        }

    def best_placement(self) -> Placement:
        return Placement(region=self.region, positions=self.best_positions())


def derive_t_start(
    design: MappedDesign,
    placement: Placement,
    net_weights: dict[str, float] | None = None,
    *,
    accept_target: float = 0.5,
    samples: int = 256,
    seed: int = 0,
    blocked: frozenset[tuple[int, int]] | None = None,
) -> float:
    """Sample-derived starting temperature for ``anneal_placement``.

    See :meth:`_AnnealContext.derive_t_start`: the returned temperature
    accepts a mean-sized uphill move with probability ``accept_target``
    on *this* design/placement/weights landscape — which is what lets
    the timing-driven ladder re-derive a fresh ``t_start`` per rung
    instead of reusing a constant tuned for rung 0.
    """
    ctx = _AnnealContext(design, placement, net_weights, blocked=blocked)
    return ctx.derive_t_start(accept_target, samples, seed)


def _replica_round(payload: dict) -> dict:
    """One fleet replica advancing one exchange round (a pool task).

    Pure function of its payload: rebuilds the annealing state from the
    shipped positions, runs the round's slice of the replica's
    temperature ladder with the shipped numpy bit-generator state, and
    returns the advanced state.  Everything in and out is picklable and
    nothing depends on which worker (or how many) ran it — the fleet's
    byte-identical-for-any-worker-count guarantee rests on that.
    """
    placement = Placement(
        region=payload["region"], positions=dict(payload["positions"])
    )
    ctx = _AnnealContext(
        payload["design"], placement, payload["net_weights"],
        blocked=payload.get("blocked"),
    )
    gen = np.random.Generator(np.random.PCG64())
    gen.bit_generator.state = payload["rng_state"]
    counters = ctx.run_batches(
        payload["temps"], gen, payload["batch_moves"]
    )
    return {
        "positions": ctx.positions(),
        "rng_state": gen.bit_generator.state,
        "total": float(ctx.cost.total),
        "best_total": float(ctx.best_total),
        "best_positions": ctx.best_positions(),
        "counters": counters,
    }


def _temper_fleet(
    design: MappedDesign,
    placement: Placement,
    net_weights: dict[str, float] | None,
    *,
    master: int,
    n_batches: int,
    batch_moves: int,
    t_start: float,
    t_end: float,
    replicas: int,
    workers: int | None,
    exchange_rounds: int,
    stagger: float,
    stats: dict | None,
    blocked: frozenset[tuple[int, int]] | None = None,
) -> Placement:
    """Parallel-tempering over ``replicas`` staggered-temperature copies.

    Replica ``i`` cools through its own geometric ladder scaled by
    ``stagger**i`` (both endpoints, so adjacent replicas keep a constant
    temperature ratio at every rung).  The ladders are cut into
    ``exchange_rounds`` synchronized rounds; each round every replica
    advances independently (fanned onto a process pool via
    :func:`repro.pnr.parallel.parallel_map`), then adjacent pairs —
    even pairs on even rounds, odd pairs on odd, the standard
    checkerboard — swap *placements* with the Metropolis exchange
    criterion ``min(1, exp((1/T_i - 1/T_j) * (E_i - E_j)))`` drawn from
    a dedicated exchange rng.  Exchange decisions depend only on the
    round-barrier results and a seed-derived rng, never on pool
    scheduling, so results are byte-identical for any worker count.
    The best weighted-HPWL state seen by any replica in any round wins.
    """
    region = placement.region
    ladders = [
        anneal_temperatures(
            n_batches, t_start * stagger**i, t_end * stagger**i
        )
        for i in range(replicas)
    ]
    rounds = max(1, min(exchange_rounds, n_batches))
    seg = [(r * n_batches) // rounds for r in range(rounds + 1)]
    positions = [dict(placement.positions) for _ in range(replicas)]
    rng_states = []
    for i in range(replicas):
        gen = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((master, i)))
        )
        rng_states.append(gen.bit_generator.state)
    totals = [0.0] * replicas
    best_total = math.inf
    best_positions = dict(placement.positions)
    xrng = random.Random(master ^ 0x7E0F1EE7)
    counters = {"evaluated": 0, "accepted": 0, "batches": 0}
    exchange_attempts = exchange_accepted = 0
    for r in range(rounds):
        payloads = [
            {
                "design": design,
                "region": region,
                "positions": positions[i],
                "net_weights": net_weights,
                "temps": ladders[i][seg[r]:seg[r + 1]],
                "rng_state": rng_states[i],
                "batch_moves": batch_moves,
                "blocked": blocked,
            }
            for i in range(replicas)
        ]
        outs = parallel_map(_replica_round, payloads, workers, processes=True)
        for i, out in enumerate(outs):
            positions[i] = out["positions"]
            rng_states[i] = out["rng_state"]
            totals[i] = out["total"]
            for key in counters:
                counters[key] += out["counters"][key]
            if out["best_total"] < best_total:
                best_total = out["best_total"]
                best_positions = out["best_positions"]
        if r + 1 < rounds:
            for i in range(r % 2, replicas - 1, 2):
                t_i = ladders[i][seg[r + 1] - 1]
                t_j = ladders[i + 1][seg[r + 1] - 1]
                d = (1.0 / t_i - 1.0 / t_j) * (totals[i] - totals[i + 1])
                exchange_attempts += 1
                if d >= 0 or xrng.random() < math.exp(d):
                    positions[i], positions[i + 1] = (
                        positions[i + 1], positions[i]
                    )
                    totals[i], totals[i + 1] = totals[i + 1], totals[i]
                    exchange_accepted += 1
    if stats is not None:
        stats.update(counters)
        stats.update(
            replicas=replicas,
            workers=resolve_workers(replicas, workers),
            rounds=rounds,
            exchange_attempts=exchange_attempts,
            exchange_accepted=exchange_accepted,
        )
    return Placement(region=region, positions=best_positions)


def anneal_placement(
    design: MappedDesign,
    placement: Placement,
    rng: random.Random,
    steps: int | None = None,
    t_start: float | None = None,
    t_end: float = 0.05,
    net_weights: dict[str, float] | None = None,
    *,
    batch_moves: int | None = None,
    replicas: int = 1,
    workers: int | None = 0,
    exchange_rounds: int = 4,
    temperature_stagger: float = DEFAULT_STAGGER,
    t_start_accept: float | None = None,
    stats: dict | None = None,
    move_log: list | None = None,
    blocked: frozenset[tuple[int, int]] | None = None,
) -> Placement:
    """Refine a legal placement by simulated annealing on (weighted) HPWL.

    Moves relocate one gate inside its **dominance window** — the
    rectangle bounded below by its placed fan-ins' output cells and
    above by its fan-outs' input cells — so every accepted state stays
    legal by construction (the greedy seed is legal, and a window move
    cannot break an edge that was satisfied).  Cost deltas come from the
    cached :class:`IncrementalHpwl` bounding boxes — exact, so the
    trajectory for a seed is identical to a full recompute; with
    ``net_weights`` each net's half-perimeter is scaled by its weight
    (the flow passes timing criticality here, turning the objective into
    the weighted-HPWL trade-off of :func:`weighted_hpwl`).

    By default candidates are priced ``batch_moves`` at a time through
    the vectorized :class:`BatchMoveEvaluator` — one temperature rung
    per batch, Metropolis acceptance applied greedily in draw order
    under a conflict screen (see :meth:`_AnnealContext.run_batches`).
    ``batch_moves=0`` selects the legacy scalar loop: one
    ``rng``-driven move per rung, the exact pre-batching trajectory,
    kept as the debugging reference.

    ``replicas=N > 1`` runs a **parallel-tempering fleet**: N copies at
    staggered temperatures (ratio ``temperature_stagger`` between
    neighbours), synchronized at ``exchange_rounds`` round barriers
    where adjacent-temperature pairs may swap placements under the
    Metropolis exchange criterion; ``workers`` sizes the process pool
    the replicas fan out on (``None`` auto-selects up to the CPU count,
    ``0``/``1`` run serially) and never affects results — fleets are
    byte-identical for any worker count.  ``replicas=1, workers=0`` is
    the plain single-replica path with no pool at all.

    ``t_start`` defaults to ``0.5 * (rows + cols)``; passing
    ``t_start_accept`` instead derives it from the landscape via
    :func:`derive_t_start` (the timing-driven ladder re-derives one per
    rung this way).  ``stats``, when given a dict, receives evaluated/
    accepted move counts and fleet exchange counters; ``move_log``
    (batched paths only) collects ``(gate, target, delta)`` per commit
    for replay-style testing.
    """
    region = placement.region
    names = list(design.gates)
    if stats is not None:
        stats.update(
            evaluated=0, accepted=0, batches=0, replicas=replicas,
            workers=1, rounds=0, exchange_attempts=0, exchange_accepted=0,
        )
    if len(names) < 2:
        return placement
    default_budget = steps is None
    if steps is None:
        steps = default_anneal_steps(len(names))
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    auto_batch = batch_moves is None
    if batch_moves is None:
        batch_moves = DEFAULT_BATCH_MOVES
    if batch_moves == 0:
        if replicas != 1:
            raise ValueError(
                "the scalar path (batch_moves=0) is single-replica; "
                "use batch_moves > 0 with replicas > 1"
            )
        if t_start is None:
            t_start = 0.5 * (region.n_rows + region.n_cols)
        return _anneal_scalar(
            design, placement, rng, steps, t_start, t_end, net_weights,
            stats=stats, blocked=blocked,
        )

    # One draw seeds every numpy generator of the batched/fleet paths,
    # so the whole anneal is a function of the caller's rng state.
    master = rng.getrandbits(64)
    if t_start is None:
        if t_start_accept is not None:
            t_start = derive_t_start(
                design, placement, net_weights,
                accept_target=t_start_accept, seed=master, blocked=blocked,
            )
        else:
            t_start = 0.5 * (region.n_rows + region.n_cols)
    if default_budget:
        # Size-scaled budget boost (see MAX_BUDGET_BOOST), with the
        # batch shrunk so the cooling ladder keeps ~MIN_ANNEAL_RUNGS
        # rungs even at small budgets — a handful of giant rungs loses
        # the temperature resolution annealing quality rides on.
        boost = min(MAX_BUDGET_BOOST, max(1, len(names) // GATES_PER_BOOST))
        budget = boost * steps
        if auto_batch:
            batch_moves = min(
                batch_moves,
                max(MIN_BATCH_MOVES, -(-budget // MIN_ANNEAL_RUNGS)),
            )
        n_batches = max(
            -(-steps // batch_moves),
            min(MIN_ANNEAL_RUNGS, -(-budget // batch_moves)),
        )
    else:
        n_batches = max(1, -(-steps // batch_moves))
    if replicas == 1:
        ctx = _AnnealContext(design, placement, net_weights, blocked=blocked)
        gen = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((master, 0)))
        )
        temps = anneal_temperatures(n_batches, t_start, t_end)
        counters = ctx.run_batches(temps, gen, batch_moves, move_log=move_log)
        if stats is not None:
            stats.update(counters)
            stats.update(workers=1, rounds=1)
        return ctx.best_placement()
    return _temper_fleet(
        design, placement, net_weights,
        master=master, n_batches=n_batches, batch_moves=batch_moves,
        t_start=t_start, t_end=t_end, replicas=replicas, workers=workers,
        exchange_rounds=exchange_rounds, stagger=temperature_stagger,
        stats=stats, blocked=blocked,
    )


def _anneal_scalar(
    design: MappedDesign,
    placement: Placement,
    rng: random.Random,
    steps: int,
    t_start: float,
    t_end: float,
    net_weights: dict[str, float] | None,
    stats: dict | None = None,
    blocked: frozenset[tuple[int, int]] | None = None,
) -> Placement:
    """The legacy one-move-per-rung annealer (``batch_moves=0``).

    Bit-for-bit the pre-batching trajectory: same ``rng`` draw
    sequence, same windows, same accept rule — kept as the exact serial
    debugging reference the batched path is tested against.
    """
    region = placement.region
    names = list(design.gates)
    cost = IncrementalHpwl(design, placement, net_weights)
    rows, cols, widths = cost.rows, cost.cols, cost.widths
    occupied = np.full(
        (region.row + region.n_rows, region.col + region.n_cols),
        -1, dtype=np.int32,
    )
    if blocked:
        nrr, ncc = occupied.shape
        for br, bc in blocked:
            if 0 <= br < nrr and 0 <= bc < ncc:
                occupied[br, bc] = -2
    for i in range(len(names)):
        occupied[rows[i], cols[i]:cols[i] + widths[i]] = i

    # Fan-in / fan-out gate indices bounding each gate's legal window.
    fanins: list[list[int]] = [[] for _ in names]
    fanouts: list[list[int]] = [[] for _ in names]
    for g in design.gates.values():
        gi = cost.index[g.name]
        for net in dict.fromkeys(g.inputs):
            src = design.source_of.get(net)
            if src is not None and src != g.name:
                si = cost.index[src]
                fanins[gi].append(si)
                fanouts[si].append(gi)

    row_lo, col_lo = region.row, region.col
    row_hi = region.row + region.n_rows - 1
    col_hi = region.col + region.n_cols - 1

    best_rows = rows.copy()
    best_cols = cols.copy()
    best_total = cost.total
    evaluated = accepted = 0
    exp = math.exp
    for temp in anneal_temperatures(steps, t_start, t_end):
        # Cooperative cancellation, amortised: one TLS read per 256
        # moves keeps the scalar hot loop at its measured move rate.
        if not evaluated & 0xFF:
            checkpoint()
        evaluated += 1
        name = rng.choice(names)
        gi = cost.index[name]
        w = int(widths[gi])
        if w == 2:
            # Fixed-pin pair macros stay where the seed spread them:
            # HPWL gains from compacting them are routinely wiped out
            # by the routing congestion their clustering causes.
            continue
        lo_r, lo_c = row_lo, col_lo
        hi_r, hi_c = row_hi, col_hi - (w - 1)
        for f in fanins[gi]:
            fr = int(rows[f])
            fc = int(cols[f]) + int(widths[f]) - 1
            if fr > lo_r:
                lo_r = fr
            if fc > lo_c:
                lo_c = fc
        for f in fanouts[gi]:
            fr = int(rows[f])
            fc = int(cols[f]) - (w - 1)
            if fr < hi_r:
                hi_r = fr
            if fc < hi_c:
                hi_c = fc
        if lo_r > hi_r or lo_c > hi_c:
            continue
        tr = rng.randint(lo_r, hi_r)
        tc = rng.randint(lo_c, hi_c)
        if tr == rows[gi] and tc == cols[gi]:
            continue
        blocked = False
        for k in range(w):
            o = occupied[tr, tc + k]
            if o != -1 and o != gi:
                blocked = True
                break
        if blocked:
            continue
        d, updates = cost.propose(gi, tr, tc)
        if d <= 0 or rng.random() < exp(-d / max(temp, 1e-9)):
            occupied[rows[gi], cols[gi]:cols[gi] + w] = -1
            occupied[tr, tc:tc + w] = gi
            cost.commit(gi, tr, tc, d, updates)
            accepted += 1
            if cost.total < best_total:
                best_total = cost.total
                best_rows = rows.copy()
                best_cols = cols.copy()
    if stats is not None:
        stats.update(
            evaluated=evaluated, accepted=accepted, batches=evaluated,
            workers=1, rounds=1,
        )
    positions = {
        name: (int(best_rows[i]), int(best_cols[i]))
        for i, name in enumerate(names)
    }
    return Placement(region=region, positions=positions)
