"""Multi-array sharding: one netlist compiled across chiplet cell arrays.

The paper's Section 4.1 page-size argument caps a single monotone array:
a combinational chain of ``d`` gates needs ``rows + cols - 1 >= d``, so
designs deeper than one array simply cannot compile.  This module lifts
that ceiling by *sharding*: the tech-mapped design is partitioned into
an acyclic sequence of sub-designs, each placed and routed onto its own
:class:`repro.fabric.array.CellArray` with the existing stages, and the
nets crossing shard boundaries become explicit
:class:`repro.fabric.channel.InterArrayChannel` objects — a boundary-
port cell driving an observable wire on the source array, a crossing
delay, and a primary-input entry wire on each sink array.

Partitioning is contiguous-by-levels seeding refined by a **min-cut**
pass (an inlined Dinic max-flow — the boundary graphs are a few hundred
nodes, small enough that a dependency-free solver beats a general
library by an order of magnitude) at every shard boundary: gates near the
boundary may migrate between the two adjacent shards wherever that
narrows the channel waist, with infinite-capacity closure edges keeping
the shard graph acyclic by construction.

Because the shard graph is acyclic, simulation composes by staged
evaluation: :class:`repro.netlist.BatchBackend` sweeps each shard's
fabric netlist independently (bit-parallel, one pass per shard) and
stitches channel values between stages —
:meth:`ShardedPnrResult.evaluate_batch`.  The same system flattens to a
single IR netlist (:meth:`ShardedPnrResult.to_netlist`) for the event
backend, and :meth:`ShardedPnrResult.verify` proves equivalence against
the source netlist on both.  See ``docs/sharding.md``.

Quickstart — a 9-gate chain split across two arrays:

>>> from repro.netlist import Netlist
>>> nl = Netlist("chain")
>>> prev = nl.add_input("a")
>>> for k in range(8):
...     prev = nl.add("not", f"g{k}", [prev], f"n{k}")
>>> _ = nl.add("buf", "out", [prev], nl.add_output("y"))
>>> res = compile_sharded(nl, n_shards=2, seed=0)
>>> res.stats.n_shards, len(res.channels)
(2, 1)
>>> res.verify(n_vectors=32, event_vectors=2)["ok"]
True
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.fabric.array import CellArray
from repro.fabric.channel import CHANNEL_DELAY, InterArrayChannel
from repro.netlist.backends import BatchBackend, EventBackend, ShardStage, evaluate_staged
from repro.netlist.ir import Netlist
from repro.pnr.flow import (
    PnrError,
    PnrResult,
    VerificationError,
    _compile_mapped,
    _settle_compare,
    _sweep_equivalence,
    result_from_blob,
    result_to_blob,
    suggest_side,
)
from repro.pnr.parallel import parallel_map
from repro.pnr.place import PlacementError, gate_levels
from repro.pnr.techmap import (
    CONST_GATE,
    MappedDesign,
    PAIR_CELEMENT,
    PAIR_EVENTLATCH,
    PRODUCT_AND,
    PRODUCT_NAND,
    TechMapError,
    map_netlist,
)
from repro.pnr.timing import PathStep, TimingReport, analyze_timing, trace_endpoint
from repro.sim.values import X, ZERO


class PartitionError(PnrError):
    """The design cannot be partitioned as requested."""


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------

@dataclass
class Partition:
    """An acyclic assignment of mapped gates to shards.

    ``assignment`` maps every gate to its shard index; shard indices are
    a topological order of the shard graph (every net crosses from a
    lower to a strictly higher index).  ``shards`` holds the per-shard
    sub-:class:`MappedDesign`s (cut nets appear as extra inputs /
    outputs); ``cut_nets`` maps each crossing net to its source shard
    and the ascending tuple of sink shards.
    """

    design: MappedDesign
    n_shards: int
    assignment: dict[str, int]
    shards: list[MappedDesign] = field(default_factory=list)
    cut_nets: dict[str, tuple[int, tuple[int, ...]]] = field(default_factory=dict)

    @property
    def cut_size(self) -> int:
        """Total channel crossings (a net entering 2 shards counts 2)."""
        return sum(len(sinks) for _, sinks in self.cut_nets.values())

    def shard_of(self, gate: str) -> int:
        """Shard index hosting ``gate``."""
        return self.assignment[gate]


def _topo_order(design: MappedDesign) -> list[str]:
    levels = gate_levels(design)
    return sorted(design.gates, key=lambda n: (levels[n], n))


def _initial_chunks(
    design: MappedDesign, order: list[str], n_shards: int
) -> dict[str, int]:
    """Contiguous topological chunks of roughly equal cell count."""
    total = sum(design.gates[g].width for g in order)
    target = total / n_shards
    assignment: dict[str, int] = {}
    cum = 0.0
    s = 0
    count_in_s = 0
    for idx, g in enumerate(order):
        remaining = len(order) - idx
        if (
            s < n_shards - 1
            and count_in_s > 0
            and (cum >= target * (s + 1) or remaining <= n_shards - 1 - s)
        ):
            s += 1
            count_in_s = 0
        assignment[g] = s
        count_in_s += 1
        cum += design.gates[g].width
    return assignment


def _cut_size_of(design: MappedDesign, assignment: dict[str, int]) -> int:
    """Channel crossings of an assignment (net x sink-shard pairs)."""
    total = 0
    for net, sinks in design.sinks_of.items():
        src = design.source_of.get(net)
        if src is None:
            continue
        total += len({assignment[g] for g, _ in sinks} - {assignment[src]})
    return total


#: "Infinite" capacity for closure/pinning edges: larger than any
#: possible cut (one unit per net), so these edges are never saturated.
_FLOW_INF = 1 << 30


def _min_cut_source_side(
    n_nodes: int, edges: list[tuple[int, int, int]], s: int, t: int
) -> set[int]:
    """Nodes on the source side of a minimum s-t cut (Dinic max-flow).

    ``edges`` are directed ``(u, v, capacity)`` triples.  Deterministic:
    the flow and the returned side depend only on the edge order.
    """
    # Adjacency of mutable [to, residual, reverse-index] triples.
    adj: list[list[list[int]]] = [[] for _ in range(n_nodes)]
    for u, v, cap in edges:
        adj[u].append([v, cap, len(adj[v])])
        adj[v].append([u, 0, len(adj[u]) - 1])
    while True:
        level = [-1] * n_nodes
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for e in adj[u]:
                if e[1] > 0 and level[e[0]] < 0:
                    level[e[0]] = level[u] + 1
                    queue.append(e[0])
        if level[t] < 0:
            break
        # Iterative blocking-flow DFS (windows can be hundreds of gates
        # deep — no recursion-limit surprises).
        it = [0] * n_nodes
        path: list[list[int]] = []
        u = s
        while True:
            if u == t:
                pushed = min(e[1] for e in path)
                for e in path:
                    e[1] -= pushed
                    adj[e[0]][e[2]][1] += pushed
                path = []
                u = s
                continue
            advanced = False
            while it[u] < len(adj[u]):
                e = adj[u][it[u]]
                if e[1] > 0 and level[e[0]] == level[u] + 1:
                    path.append(e)
                    u = e[0]
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            if u == s:
                break  # the level graph is saturated: next BFS phase
            # Dead end: prune the node and retreat one edge (the pruned
            # level makes the predecessor's iterator skip this edge).
            level[u] = -1
            path.pop()
            u = path[-1][0] if path else s
    seen = {s}
    stack = [s]
    while stack:
        u = stack.pop()
        for e in adj[u]:
            if e[1] > 0 and e[0] not in seen:
                seen.add(e[0])
                stack.append(e[0])
    return seen


def _bisect_window(
    design: MappedDesign,
    window: list[str],
    k: int,
    pin: int,
) -> dict[str, int] | None:
    """One min-cut bisection of ``window`` into shards ``k`` / ``k+1``.

    Builds the classic net-splitting flow network — one unit of capacity
    per net a window gate sources, infinite-capacity closure edges from
    each reader back to its source so no cut can ever orient a net
    backwards — with the topologically earliest / latest ``pin`` gates
    pinned to their shard, and lets :func:`_min_cut_source_side` find
    the narrowest channel waist in between.
    """
    s_pinned = set(window[:pin])
    t_pinned = set(window[-pin:])
    wset = set(window)
    # Node ids: 0 = s, 1 = t, gates and nets numbered on first use.
    ids: dict[tuple[str, str], int] = {}

    def nid(kind: str, name: str) -> int:
        key = (kind, name)
        i = ids.get(key)
        if i is None:
            i = ids[key] = len(ids) + 2
        return i

    edges: list[tuple[int, int, int]] = []
    for g in window:
        if g in s_pinned:
            edges.append((0, nid("g", g), _FLOW_INF))
        if g in t_pinned:
            edges.append((nid("g", g), 1, _FLOW_INF))
    for gname in window:
        net = design.gates[gname].output
        readers = sorted(
            {r for r, _ in design.sinks_of.get(net, []) if r in wset}
        )
        if not readers:
            continue
        edges.append((nid("g", gname), nid("n", net), 1))
        for r in readers:
            edges.append((nid("n", net), nid("g", r), _FLOW_INF))
            # Closure: a reader on the source side forces its source
            # there too, so the cut can never orient the net backwards.
            edges.append((nid("g", r), nid("g", gname), _FLOW_INF))
    if not s_pinned or not t_pinned:
        return None
    s_side = _min_cut_source_side(len(ids) + 2, edges, 0, 1)
    return {
        g: (k if ids.get(("g", g), -1) in s_side else k + 1) for g in window
    }


def _side_fits(
    design: MappedDesign,
    window: list[str],
    candidate: dict[str, int],
    max_side: int,
) -> bool:
    """Placement-aware fit check: would both candidate sides still
    compile onto a ``max_side`` x ``max_side`` array?

    Estimates each side's required array with the same
    :func:`repro.pnr.flow.suggest_side` heuristic the per-shard flow
    uses — longest chain *within the side* (one topological DP over the
    window) plus its cell count — so the min-cut refinement never trades
    crossings for a shard the placer cannot host.
    """
    for side in (min(candidate.values()), max(candidate.values())):
        depth: dict[str, int] = {}
        cells = 0
        stateful = False
        deepest = 0
        for g in window:  # ``window`` is topologically ordered
            if candidate.get(g) != side:
                continue
            gate = design.gates[g]
            cells += gate.width
            stateful = stateful or gate.is_stateful
            d = 1
            for net in gate.inputs:
                src = design.source_of.get(net)
                if src is not None and candidate.get(src) == side:
                    sd = depth.get(src)
                    if sd is not None and sd + 1 > d:
                        d = sd + 1
            depth[g] = d
            if d > deepest:
                deepest = d
        if cells and suggest_side(deepest, cells, stateful) > max_side:
            return False
    return True


def _refine_boundary(
    design: MappedDesign,
    order: list[str],
    assignment: dict[str, int],
    k: int,
    max_side: int | None = None,
) -> None:
    """Min-cut refinement of the boundary between shards ``k`` and ``k+1``.

    Tries the bisection under several pin widths — looser pins give the
    max-flow more room to pull late-read gates (e.g. a level-0
    complement whose only readers sit far downstream) across the
    boundary, tighter pins guarantee balance — and keeps the candidate
    with the fewest total crossings among those whose smaller side
    still holds a quarter of the window's cells (and, when the flow
    compiles under an array-side cap, whose sides both still *fit* that
    cap by the placement-aware :func:`_side_fits` estimate).
    """
    window = [g for g in order if assignment[g] in (k, k + 1)]
    if len(window) < 4:
        return
    cells = {g: design.gates[g].width for g in window}
    window_cells = sum(cells.values())
    best: dict[str, int] | None = None
    best_cut = _cut_size_of(design, assignment)
    for num, den in ((1, 8), (1, 4), (3, 8)):
        pin = max(1, (num * len(window)) // den)
        candidate = _bisect_window(design, window, k, pin)
        if candidate is None:
            continue
        low = sum(c for g, c in cells.items() if candidate[g] == k)
        if not window_cells // 4 <= low <= window_cells - window_cells // 4:
            continue
        if max_side is not None and not _side_fits(
            design, window, candidate, max_side
        ):
            continue
        trial = dict(assignment)
        trial.update(candidate)
        cut = _cut_size_of(design, trial)
        if cut < best_cut:
            best, best_cut = candidate, cut
    if best is not None:
        assignment.update(best)


def _check_acyclic(design: MappedDesign, assignment: dict[str, int]) -> None:
    for g in design.gates.values():
        for net in g.inputs:
            src = design.source_of.get(net)
            if src is not None and assignment[src] > assignment[g.name]:
                raise PartitionError(
                    f"partition is cyclic: {src!r} (shard {assignment[src]}) "
                    f"feeds {g.name!r} (shard {assignment[g.name]})"
                )


def _subdesigns(
    design: MappedDesign, assignment: dict[str, int], n_shards: int
) -> tuple[list[MappedDesign], dict[str, tuple[int, tuple[int, ...]]]]:
    """Per-shard sub-designs plus the cut-net map."""
    cut: dict[str, tuple[int, tuple[int, ...]]] = {}
    for net, sinks in design.sinks_of.items():
        src = design.source_of.get(net)
        if src is None:
            continue
        src_shard = assignment[src]
        sink_shards = tuple(
            sorted({assignment[g] for g, _ in sinks} - {src_shard})
        )
        if sink_shards:
            cut[net] = (src_shard, sink_shards)
    # Declared outputs with no driving gate are input passthroughs; they
    # ride in shard 0 (any shard would do — they occupy no gate).
    passthrough = [n for n in design.outputs if n not in design.source_of]

    shards: list[MappedDesign] = []
    for i in range(n_shards):
        gates = {
            name: g for name, g in design.gates.items() if assignment[name] == i
        }
        read = {net for g in gates.values() for net in g.inputs}
        produced = {g.output for g in gates.values()}
        sub = MappedDesign(name=f"{design.name}.s{i}", gates=gates)
        sub.inputs = [n for n in design.inputs if n in read]
        if i == 0:
            sub.inputs += [n for n in passthrough if n not in sub.inputs]
        # Incoming channels, in first-read order for determinism.
        for g in gates.values():
            for net in g.inputs:
                if (
                    net in cut
                    and cut[net][0] != i
                    and net not in sub.inputs
                ):
                    sub.inputs.append(net)
        sub.outputs = [n for n in design.outputs if n in produced]
        if i == 0:
            sub.outputs += [n for n in passthrough if n not in sub.outputs]
        for g in gates.values():
            net = g.output
            if net in cut and cut[net][0] == i and net not in sub.outputs:
                sub.outputs.append(net)
        if design.reset_net is not None and design.reset_net in sub.inputs:
            sub.reset_net = design.reset_net
        sub._finalise()
        shards.append(sub)
    return shards, cut


def partition_design(
    design: MappedDesign,
    n_shards: int,
    *,
    refine: bool = True,
    max_side: int | None = None,
) -> Partition:
    """Split a mapped design into ``n_shards`` acyclic shards.

    Seeds with contiguous chunks of the topological order (balanced by
    cell count — chunking a topological order makes the shard graph
    acyclic for free), then runs the min-cut refinement over every
    adjacent boundary; with ``max_side`` set, refinement only accepts
    cuts whose sides still fit a ``max_side``-capped array by the
    placement-aware estimate.  Raises :class:`PartitionError` when the
    request is impossible (more shards than gates).
    """
    if n_shards < 1:
        raise PartitionError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > max(1, design.n_gates):
        raise PartitionError(
            f"cannot split {design.n_gates} gates into {n_shards} shards"
        )
    order = _topo_order(design)
    assignment = _initial_chunks(design, order, n_shards)
    if refine and n_shards > 1:
        for k in range(n_shards - 1):
            _refine_boundary(design, order, assignment, k, max_side=max_side)
    _check_acyclic(design, assignment)
    shards, cut = _subdesigns(design, assignment, n_shards)
    if design.n_gates and any(not s.gates for s in shards):
        raise PartitionError(
            f"refinement emptied a shard of {design.name!r}"
        )  # pragma: no cover - pinning keeps every shard populated
    return Partition(
        design=design,
        n_shards=n_shards,
        assignment=assignment,
        shards=shards,
        cut_nets=cut,
    )


def shard_source_netlist(sub: MappedDesign) -> Netlist:
    """A sub-design re-expressed in the netlist IR.

    Mapped gates translate one-to-one (``nand`` rows back to ``nand``
    cells, pairs back to ``celement`` / ``eventlatch``), so each shard
    carries an independently verifiable reference netlist — this is
    what the per-shard :class:`repro.pnr.flow.PnrResult.source` holds.
    """
    nl = Netlist(sub.name)
    for net in sub.inputs:
        nl.add_input(net)
    for g in sub.gates.values():
        if g.kind == PRODUCT_NAND:
            nl.add("nand", g.name, list(g.inputs), g.output, delay=g.source_delay)
        elif g.kind == PRODUCT_AND:
            nl.add("and", g.name, list(g.inputs), g.output, delay=g.source_delay)
        elif g.kind == CONST_GATE:
            nl.add("const", g.name, [], g.output, delay=g.source_delay,
                   value=g.value)
        elif g.kind == PAIR_CELEMENT:
            # A 3rd pin is the synthesised active-low reset — that is
            # the fabric realisation of init=0.
            init = ZERO if len(g.inputs) == 3 else X
            nl.add("celement", g.name, list(g.inputs[:2]), g.output,
                   delay=g.source_delay, init=init)
        elif g.kind == PAIR_EVENTLATCH:
            din, req, _rn, ack, _an = g.inputs
            nl.add("eventlatch", g.name, [din, req, ack], g.output,
                   delay=g.source_delay)
        else:  # pragma: no cover - kinds are closed
            raise PartitionError(f"gate {g.name!r}: unknown kind {g.kind!r}")
    for net in sub.outputs:
        nl.add_output(net)
    return nl


# ----------------------------------------------------------------------
# The sharded result
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ShardedPnrStats:
    """Aggregate quality numbers of a sharded compile."""

    n_shards: int
    n_gates: int
    cut_nets: int
    #: Channel crossings: a net fanning into two shards counts twice.
    cut_size: int
    wirelength: int
    cells_logic: int
    cells_route: int
    max_array_side: int
    cycle_time: int = 0
    logic_delay: int = 0
    worst_slack: int = 0

    @property
    def cells_used(self) -> int:
        """Cells configured across every shard array."""
        return self.cells_logic + self.cells_route


@dataclass
class ShardedPnrResult:
    """One design compiled across several chiplet arrays.

    ``shards[i]`` is an ordinary :class:`repro.pnr.flow.PnrResult` — its
    array, bitstream, placement and per-shard timing all behave exactly
    as in the single-array flow (each shard's ``source`` is the
    sub-design re-expressed in the IR, so combinational shards even
    verify individually).  ``channels`` carries the inter-array wiring;
    ``timing`` is the composed system report (per-shard critical paths
    plus channel crossing delays).
    """

    source: Netlist
    design: MappedDesign
    partition: Partition
    shards: list[PnrResult]
    channels: list[InterArrayChannel]
    stats: ShardedPnrStats
    timing: TimingReport | None = None

    @property
    def n_shards(self) -> int:
        """Number of chiplet arrays."""
        return len(self.shards)

    @property
    def arrays(self) -> list[CellArray]:
        """The configured per-shard arrays."""
        return [s.array for s in self.shards]

    @property
    def input_wires(self) -> dict[str, dict[int, str]]:
        """Source input net -> {shard index: entry wire} (fan-out shards)."""
        chan = {c.net for c in self.channels}
        out: dict[str, dict[int, str]] = {}
        for i, shard in enumerate(self.shards):
            for net, wire in shard.input_wires.items():
                if net not in chan:
                    out.setdefault(net, {})[i] = wire
        return out

    @property
    def output_wires(self) -> dict[str, tuple[int, str]]:
        """Source output net -> (owning shard, observable wire)."""
        out: dict[str, tuple[int, str]] = {}
        for net in self.design.outputs:
            src = self.design.source_of.get(net)
            i = self.partition.assignment[src] if src is not None else 0
            wire = self.shards[i].output_wires.get(net)
            if wire is not None:
                out[net] = (i, wire)
        return out

    @property
    def reset_wires(self) -> dict[int, str]:
        """Per-shard active-low reset entry wires (stateful shards only)."""
        return {
            i: s.reset_wire
            for i, s in enumerate(self.shards)
            if s.reset_wire is not None
        }

    # -- simulation hooks ----------------------------------------------
    def stages(self) -> list[ShardStage]:
        """The staged-evaluation pipeline: one stage per shard.

        External names are source-design nets, so
        :func:`repro.netlist.evaluate_staged` stitches channel values
        between shards automatically.
        """
        return [
            ShardStage(
                netlist=shard.fabric_netlist().netlist,
                input_map=dict(shard.input_wires),
                output_map=dict(shard.output_wires),
            )
            for shard in self.shards
        ]

    def evaluate_batch(self, stimuli, outputs=None) -> dict[str, np.ndarray]:
        """Bit-parallel evaluation, one independent sweep per shard.

        ``stimuli`` and the result are keyed by *source-design* net
        names; channel values are stitched between shards.  Only
        meaningful for combinational designs (stateful shards would
        reset between vectors).
        """
        if outputs is None:
            outputs = list(self.output_wires)
        return evaluate_staged(
            self.stages(), stimuli, outputs=outputs, backend=BatchBackend()
        )

    def to_netlist(self) -> Netlist:
        """The whole system flattened to one IR netlist.

        Every shard's configured array is lowered and instantiated under
        a ``shard{i}`` prefix with its entry wires bound to source-design
        net names; each channel becomes a ``buf`` of the crossing delay.
        Drive and observe source-level net names on either backend.
        """
        merged = Netlist(f"{self.source.name}.x{self.n_shards}")
        for net in self.design.inputs:
            merged.add_input(net)
        for i, shard in enumerate(self.shards):
            fn = shard.fabric_netlist()
            bindings = {wire: net for net, wire in shard.input_wires.items()}
            merged.instantiate(fn.netlist, f"shard{i}", bindings=bindings)
        for ch in self.channels:
            ch.splice(
                merged, f"shard{ch.source_shard}.{ch.source_wire}", ch.net
            )
        chan_nets = {c.net for c in self.channels}
        for net in self.design.outputs:
            if net not in chan_nets and net not in self.design.inputs:
                owner = self.output_wires.get(net)
                if owner is not None:
                    i, wire = owner
                    merged.add("buf", f"out.{net}", [f"shard{i}.{wire}"], net)
            merged.add_output(net)
        return merged

    def to_bitstreams(self) -> list:
        """Per-shard configuration bitstreams, shard order."""
        return [s.to_bitstream() for s in self.shards]

    def to_blob(self) -> bytes:
        """Versioned byte serialisation; see
        :func:`repro.pnr.flow.result_to_blob`."""
        return result_to_blob(self)

    @classmethod
    def from_blob(cls, blob: bytes) -> ShardedPnrResult:
        """Decode :meth:`to_blob` output (``ValueError`` on anything else)."""
        result = result_from_blob(blob)
        if not isinstance(result, cls):
            raise ValueError(
                f"blob holds {type(result).__name__}, not {cls.__name__}"
            )
        return result

    # -- equivalence ----------------------------------------------------
    def verify(
        self,
        n_vectors: int = 1024,
        seed: int = 0,
        event_vectors: int = 16,
    ) -> dict[str, object]:
        """Prove the sharded system matches its source netlist.

        Batch path: each shard swept independently with stitched channel
        values (:meth:`evaluate_batch`).  Event path: the flattened
        :meth:`to_netlist` replayed on the reference scheduler.  Both
        compared against the source netlist's response; raises
        :class:`repro.pnr.flow.VerificationError` on the first mismatch.
        """
        if self.design.has_stateful_gates():
            raise VerificationError(
                "random-vector equivalence needs a combinational design; "
                "drive the stateful shards with event sequences instead"
            )
        out_map = self.output_wires
        if not out_map:
            raise VerificationError("the source netlist declares no outputs")
        src_inputs = [
            n for n in self.design.inputs if n != self.design.reset_net
        ]
        if not src_inputs:
            return self._verify_constant()
        out_names = list(out_map)

        def run_event(stimuli):
            merged = self.to_netlist()
            ev_stim = dict(stimuli)
            zeros = np.zeros(len(next(iter(stimuli.values()))), dtype=np.uint8)
            for name in merged.free_inputs():
                ev_stim.setdefault(name, zeros)
            return EventBackend().evaluate(merged, ev_stim, outputs=out_names)

        n_batch, n_event = _sweep_equivalence(
            self.source, src_inputs, out_names,
            lambda stimuli: self.evaluate_batch(stimuli, outputs=out_names),
            run_event, n_vectors, seed, event_vectors,
        )
        return {
            "vectors_batch": n_batch,
            "vectors_event": n_event,
            "outputs": len(out_map),
            "shards": self.n_shards,
            "ok": True,
        }

    def _verify_constant(self) -> dict[str, object]:
        _settle_compare(
            self.source,
            self.to_netlist(),
            [(net, net, "") for net in self.output_wires],
        )
        return {
            "vectors_batch": 0,
            "vectors_event": 1,
            "outputs": len(self.output_wires),
            "shards": self.n_shards,
            "ok": True,
        }


# ----------------------------------------------------------------------
# The sharded compile flow
# ----------------------------------------------------------------------

def _estimate_side(design: MappedDesign, n_shards: int) -> int:
    """Predicted per-shard array side (``suggest_side`` over 1/n of the design)."""
    depth = max(gate_levels(design).values(), default=0) + 1
    return suggest_side(
        math.ceil(depth / n_shards),
        math.ceil(design.n_cells / n_shards),
        design.has_stateful_gates(),
    )


def _resolve_channels(
    partition: Partition, results: list[PnrResult]
) -> list[InterArrayChannel]:
    channels = []
    for net in sorted(partition.cut_nets):
        src, sinks = partition.cut_nets[net]
        src_res = results[src]
        route = src_res.routes.get(net)
        src_wire_name = src_res.output_wires.get(net)
        if route is None or src_wire_name is None:
            raise PnrError(
                f"channel net {net!r} has no observable wire on shard {src}"
            )
        # output_wires[net] is wire_name(*driven[0]) — see _build_result.
        driven = [w for w in route.wires if w != route.entry_wire]
        source_cell = None
        if driven and src_res.routing_state is not None:
            source_cell = src_res.routing_state.driver_cell_of(driven[0])
        sink_wires = {}
        for t in sinks:
            entry = results[t].input_wires.get(net)
            if entry is None:
                raise PnrError(
                    f"channel net {net!r} has no entry wire on shard {t}"
                )
            sink_wires[t] = entry
        channels.append(
            InterArrayChannel(
                net=net,
                source_shard=src,
                sink_shards=sinks,
                source_wire=src_wire_name,
                sink_wires=sink_wires,
                source_cell=source_cell,
                delay=CHANNEL_DELAY,
            )
        )
    return channels


def _system_timing(
    design: MappedDesign,
    partition: Partition,
    results: list[PnrResult],
    channels: list[InterArrayChannel],
    target_period: int | None,
) -> TimingReport:
    """Compose per-shard routed STA into one system report.

    Two sweeps over the shard DAG.  Forward: each shard is analysed
    with its channel nets launching at the upstream shard's capture
    time plus the crossing delay, so the worst capture anywhere is the
    system cycle time.  Backward: each shard is re-analysed with its
    outgoing channels' *tails* — the crossing delay plus the sink
    shards' own downstream delay — seeded into the backward pass, so
    per-net ``path_through`` (and the slacks/criticality derived from
    it) measure the true launch-to-final-capture path across every
    boundary, not just the local shard.  The critical path is stitched
    back across channels with :func:`repro.pnr.timing.trace_endpoint`.
    """
    ideal = analyze_timing(design)
    logic_delay = ideal.cycle_time
    period = logic_delay if target_period is None else int(target_period)
    by_net = {ch.net: ch for ch in channels}
    n = len(results)
    # Forward sweep: system-level input arrivals per shard.
    reports: list[TimingReport] = []
    arrivals_in: list[dict[str, int]] = []
    for i, res in enumerate(results):
        in_arr = {
            ch.net: reports[ch.source_shard].output_arrivals[ch.net] + ch.delay
            for ch in channels
            if i in ch.sink_shards
        }
        arrivals_in.append(in_arr)
        reports.append(
            analyze_timing(
                res.design, res.placement,
                state=res.routing_state, routes=res.routes,
                target_period=period, input_arrivals=in_arr or None,
            )
        )
    # Backward sweep: system-level downstream tails per shard (sinks
    # come after their source, so reverse order resolves every tail).
    for i in range(n - 1, -1, -1):
        tails = {}
        for ch in channels:
            if ch.source_shard != i:
                continue
            tails[ch.net] = max(
                ch.delay
                + reports[t].path_through[ch.net]
                - reports[t].arrivals[ch.net]
                for t in ch.sink_shards
            )
        if not tails:
            continue
        res = results[i]
        reports[i] = analyze_timing(
            res.design, res.placement,
            state=res.routing_state, routes=res.routes,
            target_period=period, input_arrivals=arrivals_in[i] or None,
            output_tails=tails,
        )
    worst = max(range(n), key=lambda i: (reports[i].cycle_time, -i))
    cycle = reports[worst].cycle_time
    steps = list(reports[worst].critical_path)
    # Stitch upstream shard segments in front of every channel launch.
    while steps and steps[0].kind == "launch" and steps[0].name in by_net:
        ch = by_net[steps[0].name]
        src = ch.source_shard
        up = trace_endpoint(
            results[src].design, results[src].placement,
            state=results[src].routing_state, routes=results[src].routes,
            input_arrivals=arrivals_in[src] or None, endpoint=ch.net,
        )
        crossing = PathStep(
            "channel", ch.net, None, ch.delay, steps[0].arrival
        )
        steps = up + [crossing] + steps[1:]
    merged: dict[str, dict] = {
        "arrivals": {}, "path_through": {}, "output_arrivals": {},
    }
    for rep in reports:
        for key in merged:
            for net, v in getattr(rep, key).items():
                if v > merged[key].get(net, float("-inf")):
                    merged[key][net] = v
    # Slack and criticality derive from the *system* path and cycle (a
    # channel net appears in two shard reports; its path_through is the
    # backward-swept source-side value, the larger of the two).
    path_through = merged["path_through"]
    slacks = {net: period - p for net, p in path_through.items()}
    criticality = {
        net: min(1.0, p / cycle) if cycle > 0 else 0.0
        for net, p in path_through.items()
    }
    return TimingReport(
        mode="sharded",
        cycle_time=cycle,
        logic_delay=logic_delay,
        target_period=period,
        worst_slack=period - cycle,
        endpoint=f"shard{worst}:{reports[worst].endpoint}",
        critical_path=steps,
        arrivals=merged["arrivals"],
        path_through=path_through,
        slacks=slacks,
        criticality=criticality,
        output_arrivals=merged["output_arrivals"],
    )


def _compile_shards(
    partition: Partition,
    *,
    seed: int,
    anneal_steps: int | None,
    max_attempts: int,
    timing_driven: bool,
    timing_weight: float,
    target_period: int | None,
    max_side: int | None,
    workers: int | None,
    replicas: int = 1,
) -> list[PnrResult]:
    """Compile every shard of a partition, concurrently when asked.

    Per-shard place/route/time/emit are fully independent — each shard
    has its own sub-design, seed (``seed + 101 * i``), RNG, array and
    routing state — so they fan out through
    :func:`repro.pnr.parallel.parallel_map` on a thread pool
    (``workers=None`` auto-sizes it to ``min(shards, cpu_count)``;
    ``0``/``1`` compile serially).  A shard's ``replicas``-wide
    annealing fleet runs serially inside its pool slot — the shard
    fan-out already owns the machine's parallelism.  Results are
    returned in shard order and are bit-identical for any worker
    count; the first shard failure propagates as
    :class:`repro.pnr.flow.PnrError`.
    """

    def compile_one(item: tuple[int, MappedDesign]) -> PnrResult:
        i, sub = item
        return _compile_mapped(
            sub, shard_source_netlist(sub),
            seed=seed + 101 * i, anneal_steps=anneal_steps,
            max_attempts=max_attempts, timing_driven=timing_driven,
            timing_weight=timing_weight, target_period=target_period,
            max_side=max_side, replicas=replicas, workers=0,
        )

    return parallel_map(compile_one, enumerate(partition.shards), workers)


def compile_sharded(
    netlist: Netlist,
    n_shards: int | None = None,
    *,
    max_side: int | None = None,
    seed: int = 0,
    anneal_steps: int | None = None,
    max_attempts: int = 6,
    timing_driven: bool = False,
    timing_weight: float = 2.0,
    target_period: int | None = None,
    refine: bool = True,
    workers: int | None = None,
    replicas: int = 1,
) -> ShardedPnrResult:
    """Compile one netlist across several chiplet cell arrays.

    Either pass an explicit ``n_shards``, or pass ``max_side`` (the
    largest array a chiplet offers) and let the flow pick the smallest
    shard count whose per-shard arrays fit — growing it further when a
    shard still fails to place/route under the cap.  ``workers`` sets
    the ``concurrent.futures`` pool width for the independent per-shard
    compiles; the default ``None`` auto-selects ``min(shards,
    os.cpu_count())``, ``0``/``1`` compile serially (the exact
    debugging path), and results are bit-identical for any worker
    count.  ``replicas > 1`` anneals a parallel-tempering fleet per
    shard (serially inside that shard's pool slot).  All other knobs
    match :func:`repro.pnr.flow.compile_to_fabric` and apply per
    shard.

    Returns a :class:`ShardedPnrResult`; raises
    :class:`repro.pnr.flow.PnrError` (or :class:`PartitionError`) when
    the design cannot be mapped, partitioned, or compiled.
    """
    if n_shards is None and max_side is None:
        raise PnrError("compile_sharded needs n_shards or max_side")
    try:
        design = map_netlist(netlist)
        gate_levels(design)  # fail fast on grid-level feedback
    except (TechMapError, PlacementError) as e:
        raise PnrError(f"cannot compile {netlist.name!r}: {e}") from e
    max_shards = max(1, design.n_gates)  # a gateless passthrough still ships
    if n_shards is None:
        n0 = 1
        while n0 < max_shards and _estimate_side(design, n0) > max_side:
            n0 += 1
    else:
        if not 1 <= n_shards <= max_shards:
            raise PartitionError(
                f"n_shards must be in 1..{max_shards}, got {n_shards}"
            )
        n0 = n_shards
    auto = n_shards is None
    last_error: Exception | None = None
    grow_budget = 8
    n_hi = min(max_shards, n0 + grow_budget)
    for n in range(n0, n_hi + 1):
        partition = partition_design(design, n, refine=refine, max_side=max_side)
        try:
            results = _compile_shards(
                partition, seed=seed, anneal_steps=anneal_steps,
                max_attempts=max_attempts, timing_driven=timing_driven,
                timing_weight=timing_weight, target_period=target_period,
                max_side=max_side, workers=workers, replicas=replicas,
            )
        except PnrError as e:
            last_error = e
            if auto:
                continue  # more shards -> smaller shards -> may fit
            raise
        channels = _resolve_channels(partition, results)
        timing = _system_timing(
            design, partition, results, channels, target_period
        )
        stats = ShardedPnrStats(
            n_shards=n,
            n_gates=design.n_gates,
            cut_nets=len(channels),
            cut_size=partition.cut_size,
            wirelength=sum(r.stats.wirelength for r in results),
            cells_logic=sum(r.stats.cells_logic for r in results),
            cells_route=sum(r.stats.cells_route for r in results),
            max_array_side=max(r.array.n_rows for r in results),
            cycle_time=timing.cycle_time,
            logic_delay=timing.logic_delay,
            worst_slack=timing.worst_slack,
        )
        return ShardedPnrResult(
            source=netlist,
            design=design,
            partition=partition,
            shards=results,
            channels=channels,
            stats=stats,
            timing=timing,
        )
    raise PnrError(
        f"could not compile {netlist.name!r} across chiplets of side "
        f"<= {max_side}: {last_error}"
    ) from last_error
