"""Automatic place-and-route: any netlist onto the polymorphic fabric.

The compile path the paper implies but never spells out — "the same
components can be used interchangeably for logic and interconnection"
(Section 4) — realised as four stages over the backend-neutral IR:

1. **tech-map** (:mod:`repro.pnr.techmap`): IR cells to NAND-row gates
   and stateful cell pairs;
2. **place** (:mod:`repro.pnr.place`): greedy seeding plus simulated
   annealing under the fabric's monotone east/north dominance rule;
3. **route** (:mod:`repro.pnr.route`): A* maze routing that burns blank
   cells as feed-throughs, with rip-up-and-retry;
4. **emit** (:mod:`repro.pnr.emit`): validated ``CellConfig`` frames on
   a :class:`repro.fabric.array.CellArray`, ready for bitstream
   serialisation and either simulation backend.

Entry points: :func:`compile_to_fabric` (one call, returns a
:class:`PnrResult` with the configured array and pin map) and
:func:`verify_equivalence` (random-vector proof against the source
netlist on both backends).  See ``docs/compile-flow.md``.
"""

from repro.pnr.emit import EmitError, emit_design
from repro.pnr.flow import (
    PnrError,
    PnrResult,
    PnrStats,
    VerificationError,
    compile_to_fabric,
    suggest_array,
    verify_equivalence,
)
from repro.pnr.place import (
    Placement,
    PlacementError,
    anneal_placement,
    dominance_violations,
    gate_levels,
    hpwl,
    initial_placement,
)
from repro.pnr.route import NetRoute, Router, RoutingError, RoutingState
from repro.pnr.techmap import (
    MappedDesign,
    MappedGate,
    TechMapError,
    map_netlist,
)

__all__ = [
    "EmitError",
    "emit_design",
    "PnrError",
    "PnrResult",
    "PnrStats",
    "VerificationError",
    "compile_to_fabric",
    "suggest_array",
    "verify_equivalence",
    "Placement",
    "PlacementError",
    "anneal_placement",
    "dominance_violations",
    "gate_levels",
    "hpwl",
    "initial_placement",
    "NetRoute",
    "Router",
    "RoutingError",
    "RoutingState",
    "MappedDesign",
    "MappedGate",
    "TechMapError",
    "map_netlist",
]
