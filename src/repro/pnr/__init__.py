"""Automatic place-and-route: any netlist onto the polymorphic fabric.

The compile path the paper implies but never spells out — "the same
components can be used interchangeably for logic and interconnection"
(Section 4) — realised as four stages over the backend-neutral IR:

1. **tech-map** (:mod:`repro.pnr.techmap`): IR cells to NAND-row gates
   and stateful cell pairs;
2. **place** (:mod:`repro.pnr.place`): deterministic ring-scan seeding
   plus simulated annealing over cached incremental delta-HPWL bounding
   boxes, under the fabric's monotone east/north dominance rule —
   candidates priced in vectorized batches, optionally as a
   parallel-tempering replica fleet fanned out through
   :mod:`repro.pnr.parallel`;
3. **route** (:mod:`repro.pnr.route`): A* maze routing on one reusable
   generation-stamped search grid, burning blank cells as
   feed-throughs, with journal-replay rip-up-and-retry (see
   ``docs/performance.md``);
4. **timing** (:mod:`repro.pnr.timing`): static timing analysis over
   the routed design — worst slack, critical path, achievable cycle
   time — whose criticality weights drive the optional timing-driven
   place/route loop (``compile_to_fabric(..., timing_driven=True)``);
5. **emit** (:mod:`repro.pnr.emit`): validated ``CellConfig`` frames on
   a :class:`repro.fabric.array.CellArray`, ready for bitstream
   serialisation and either simulation backend.

Entry points: :func:`compile_to_fabric` (one call, returns a
:class:`PnrResult` with the configured array, pin map and
:class:`TimingReport`) and :func:`verify_equivalence` (random-vector
proof against the source netlist on both backends).  See
``docs/compile-flow.md`` and ``docs/timing-model.md``.
"""

from repro.pnr.defects import (
    DefectMap,
    DefectViolation,
    RepairFallback,
    assert_defect_clean,
    defect_violations,
    pair_blocked_cells,
    repair_for_die,
    sample_defect_map,
    sample_die,
)
from repro.pnr.emit import EmitError, emit_design
from repro.pnr.flow import (
    RESULT_BLOB_VERSION,
    PnrError,
    PnrResult,
    PnrStats,
    VerificationError,
    compile_to_fabric,
    result_from_blob,
    result_to_blob,
    suggest_array,
    suggest_side,
    verify_equivalence,
)
from repro.pnr.incremental import (
    DesignDelta,
    IncrementalFallback,
    compile_incremental,
    design_delta,
)
from repro.pnr.parallel import TaskPool, parallel_map, resolve_workers
from repro.pnr.place import (
    BatchMoveEvaluator,
    IncrementalHpwl,
    Placement,
    PlacementError,
    anneal_placement,
    anneal_temperatures,
    default_anneal_steps,
    derive_t_start,
    dominance_violations,
    gate_levels,
    hpwl,
    initial_placement,
    weighted_hpwl,
)
from repro.pnr.partition import (
    Partition,
    PartitionError,
    ShardedPnrResult,
    ShardedPnrStats,
    compile_sharded,
    partition_design,
    shard_source_netlist,
)
from repro.pnr.route import NetRoute, Router, RoutingError, RoutingState
from repro.pnr.techmap import (
    MappedDesign,
    MappedGate,
    TechMapError,
    map_netlist,
)
from repro.pnr.timing import (
    HOP_DELAY,
    PathStep,
    TimingReport,
    analyze_timing,
    trace_endpoint,
)

__all__ = [
    "DefectMap",
    "DefectViolation",
    "RepairFallback",
    "assert_defect_clean",
    "defect_violations",
    "pair_blocked_cells",
    "repair_for_die",
    "sample_defect_map",
    "sample_die",
    "EmitError",
    "emit_design",
    "PnrError",
    "PnrResult",
    "PnrStats",
    "RESULT_BLOB_VERSION",
    "VerificationError",
    "compile_to_fabric",
    "result_from_blob",
    "result_to_blob",
    "suggest_array",
    "suggest_side",
    "verify_equivalence",
    "DesignDelta",
    "IncrementalFallback",
    "compile_incremental",
    "design_delta",
    "BatchMoveEvaluator",
    "IncrementalHpwl",
    "Placement",
    "PlacementError",
    "anneal_placement",
    "anneal_temperatures",
    "default_anneal_steps",
    "derive_t_start",
    "dominance_violations",
    "TaskPool",
    "parallel_map",
    "resolve_workers",
    "gate_levels",
    "hpwl",
    "initial_placement",
    "weighted_hpwl",
    "HOP_DELAY",
    "PathStep",
    "TimingReport",
    "analyze_timing",
    "trace_endpoint",
    "Partition",
    "PartitionError",
    "ShardedPnrResult",
    "ShardedPnrStats",
    "compile_sharded",
    "partition_design",
    "shard_source_netlist",
    "NetRoute",
    "Router",
    "RoutingError",
    "RoutingState",
    "MappedDesign",
    "MappedGate",
    "TechMapError",
    "map_netlist",
]
