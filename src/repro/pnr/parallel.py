"""Deterministic fan-out helpers shared by the PnR parallel paths.

Two consumers, one contract: the sharded flow
(:func:`repro.pnr.partition.compile_sharded`) fans independent
per-shard compiles onto a *thread* pool, and the placer fleet
(:func:`repro.pnr.place.anneal_placement` with ``replicas > 1``) fans
annealing-replica rounds onto a *process* pool.  Both demand the same
property: **results must be byte-identical for any worker count**, so
the helpers here never let pool scheduling leak into results — tasks
are mapped in submission order and returned in submission order
(``Executor.map`` semantics), and the serial path is the plain list
comprehension.

``workers`` convention (used across the compile flow):

* ``None`` — auto: one worker per item, capped at ``os.cpu_count()``;
* ``0`` or ``1`` — serial, no pool at all (the exact debugging path:
  everything runs on the calling thread, tracebacks stay flat);
* ``N > 1`` — a pool of at most ``N`` workers.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

__all__ = ["parallel_map", "resolve_workers"]


def resolve_workers(n_items: int, workers: int | None) -> int:
    """The effective pool width for ``n_items`` independent tasks.

    ``None`` auto-selects ``min(n_items, os.cpu_count())``; ``0`` and
    ``1`` both mean serial (0 reads as "no pool", the debugging
    convention); anything larger is capped at ``n_items`` — a wider
    pool would only hold idle workers.

    >>> resolve_workers(4, 1)
    1
    >>> resolve_workers(4, 0)
    1
    >>> resolve_workers(4, 16)
    4
    """
    if n_items <= 1:
        return 1
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), n_items))


def parallel_map(
    fn: Callable,
    items: Iterable,
    workers: int | None = None,
    *,
    processes: bool = False,
) -> list:
    """``[fn(x) for x in items]``, optionally on an executor pool.

    Results come back in item order whatever the pool width, and the
    first exception propagates (remaining futures are drained by the
    executor's context manager) — so callers observe serial semantics.
    With ``processes=True`` the map runs on a
    :class:`~concurrent.futures.ProcessPoolExecutor` (``fn`` and every
    item must be picklable: use module-level functions); otherwise a
    thread pool, which suffices when the work releases the GIL or the
    caller only wants overlap of independent pure-Python compiles.
    """
    items = list(items) if not isinstance(items, Sequence) else items
    n_workers = resolve_workers(len(items), workers)
    if n_workers <= 1:
        return [fn(item) for item in items]
    pool_cls = ProcessPoolExecutor if processes else ThreadPoolExecutor
    with pool_cls(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))
