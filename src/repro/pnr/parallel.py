"""Deterministic fan-out helpers shared by the PnR parallel paths.

Three consumers, one contract: the sharded flow
(:func:`repro.pnr.partition.compile_sharded`) fans independent
per-shard compiles onto a *thread* pool, the placer fleet
(:func:`repro.pnr.place.anneal_placement` with ``replicas > 1``) fans
annealing-replica rounds onto a *process* pool, and the compile
service (:class:`repro.service.CompileService`) runs whole jobs —
including the persisted store's deserialise-on-hit IO, which must not
block the submitting thread — on a long-lived :class:`TaskPool`.  All
demand the same property: **results must be byte-identical for any
worker count**, so
the helpers here never let pool scheduling leak into results — tasks
are mapped in submission order and returned in submission order
(``Executor.map`` semantics), and the serial path is the plain list
comprehension.

``workers`` convention (used across the compile flow):

* ``None`` — auto: one worker per item, capped at ``os.cpu_count()``;
* ``0`` or ``1`` — serial, no pool at all (the exact debugging path:
  everything runs on the calling thread, tracebacks stay flat);
* ``N > 1`` — a pool of at most ``N`` workers.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

__all__ = ["TaskPool", "parallel_map", "resolve_workers"]


def resolve_workers(n_items: int, workers: int | None) -> int:
    """The effective pool width for ``n_items`` independent tasks.

    ``None`` auto-selects ``min(n_items, os.cpu_count())``; ``0`` and
    ``1`` both mean serial (0 reads as "no pool", the debugging
    convention); anything larger is capped at ``n_items`` — a wider
    pool would only hold idle workers.

    >>> resolve_workers(4, 1)
    1
    >>> resolve_workers(4, 0)
    1
    >>> resolve_workers(4, 16)
    4
    """
    if n_items <= 1:
        return 1
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), n_items))


def parallel_map(
    fn: Callable,
    items: Iterable,
    workers: int | None = None,
    *,
    processes: bool = False,
) -> list:
    """``[fn(x) for x in items]``, optionally on an executor pool.

    Results come back in item order whatever the pool width, and the
    first exception propagates (remaining futures are drained by the
    executor's context manager) — so callers observe serial semantics.
    With ``processes=True`` the map runs on a
    :class:`~concurrent.futures.ProcessPoolExecutor` (``fn`` and every
    item must be picklable: use module-level functions); otherwise a
    thread pool, which suffices when the work releases the GIL or the
    caller only wants overlap of independent pure-Python compiles.
    """
    items = list(items) if not isinstance(items, Sequence) else items
    n_workers = resolve_workers(len(items), workers)
    if n_workers <= 1:
        return [fn(item) for item in items]
    pool_cls = ProcessPoolExecutor if processes else ThreadPoolExecutor
    with pool_cls(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))


class TaskPool:
    """A persistent submit-style worker pool under the same convention.

    :func:`parallel_map` tears its pool down after one batch; a served
    system (:class:`repro.service.CompileService`) wants workers that
    outlive individual jobs.  ``TaskPool`` wraps a long-lived
    :class:`~concurrent.futures.ThreadPoolExecutor` behind the repo's
    ``workers`` convention — and in serial mode (``workers`` 0/1 when
    only one job would run anyway) it runs the callable **inline on the
    calling thread** and hands back an already-resolved
    :class:`~concurrent.futures.Future`, so the debugging path has flat
    tracebacks and zero threads, while callers keep one code shape.

    Determinism note: the pool only decides *when and where* a job
    runs, never what it computes — every job submitted by the compile
    service is a pure function of its inputs, so results are identical
    for any ``workers`` value (proven in ``tests/test_service.py``).

    >>> with TaskPool(workers=0) as pool:
    ...     pool.submit(lambda a, b: a + b, 2, 3).result()
    5
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(0, int(workers))
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers > 1
            else None
        )

    @property
    def serial(self) -> bool:
        """True when jobs run inline on the submitting thread."""
        return self._pool is None

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Run ``fn(*args, **kwargs)``; returns its Future."""
        if self._pool is not None:
            return self._pool.submit(fn, *args, **kwargs)
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as e:  # noqa: BLE001 - futures carry any error
            future.set_exception(e)
        return future

    def close(self) -> None:
        """Finish outstanding jobs and release the worker threads."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> TaskPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
