"""Deterministic fan-out helpers shared by the PnR parallel paths.

Three consumers, one contract: the sharded flow
(:func:`repro.pnr.partition.compile_sharded`) fans independent
per-shard compiles onto a *thread* pool, the placer fleet
(:func:`repro.pnr.place.anneal_placement` with ``replicas > 1``) fans
annealing-replica rounds onto a *process* pool, and the compile
service (:class:`repro.service.CompileService`) runs whole jobs —
including the persisted store's deserialise-on-hit IO, which must not
block the submitting thread — on a long-lived :class:`TaskPool`.  All
demand the same property: **results must be byte-identical for any
worker count**, so
the helpers here never let pool scheduling leak into results — tasks
are mapped in submission order and returned in submission order
(``Executor.map`` semantics), and the serial path is the plain list
comprehension.

``workers`` convention (used across the compile flow):

* ``None`` — auto: one worker per item, capped at ``os.cpu_count()``;
* ``0`` or ``1`` — serial, no pool at all (the exact debugging path:
  everything runs on the calling thread, tracebacks stay flat);
* ``N > 1`` — a pool of at most ``N`` workers.

This module also hosts the **resilience primitives** the serving stack
builds on (see ``docs/resilience.md``), placed here because both the
PnR loops and the service need them without an import cycle:

* **cooperative deadlines** — :func:`deadline_scope` installs a
  thread-local :class:`Deadline`; the long loops of the compile flow
  (anneal rungs, per-net routing, repair waves) call :func:`checkpoint`
  so a stuck compile raises :class:`CompileTimeout` promptly instead of
  hanging its pool slot.  With no deadline installed a checkpoint is a
  thread-local read — effectively free;
* **failure taxonomy** — :class:`TransientFault` (worth retrying:
  worker loss, injected IO trouble) vs everything else (deterministic
  compile errors, timeouts — retrying those only repeats them);
* **fault injection hook** — :func:`fault_point` marks the named
  places faults can be injected (:data:`FAULT_POINTS`).  With no plan
  active (:func:`inject_faults`) it returns immediately; an active
  plan (:class:`repro.service.resilience.FaultPlan`, duck-typed here)
  may raise, stall, or transform the bytes passing through the point;
* **crash-isolated workers** — :class:`ProcessWorkerPool` runs jobs in
  subprocesses and reports a dead worker as :class:`WorkerCrash` after
  respawning the pool, so one crashing compile can never take the
  service down with it.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "FAULT_POINTS",
    "CompileTimeout",
    "Deadline",
    "ProcessWorkerPool",
    "TaskPool",
    "TransientFault",
    "WorkerCrash",
    "WorkerLost",
    "active_fault_plan",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
    "fault_point",
    "inject_faults",
    "parallel_map",
    "resolve_workers",
    "sleep_checked",
]


# ---------------------------------------------------------------------------
# Failure taxonomy
# ---------------------------------------------------------------------------
class CompileTimeout(TimeoutError):
    """A compile exceeded its deadline and was cooperatively cancelled.

    Raised by :func:`checkpoint` from inside the anneal/route/repair
    loops.  Deliberately **not** transient: re-running the same compile
    under the same deadline would only time out again, so the retry
    policy never retries it (note ``TimeoutError`` *is* an ``OSError``
    subclass — the transient classifier special-cases this).
    """


class TransientFault(RuntimeError):
    """A fault worth retrying: the operation may succeed if repeated.

    The root of the *transient* side of the failure taxonomy (worker
    loss, injected store IO trouble).  Deterministic compile errors
    (:class:`repro.pnr.flow.PnrError` and friends) are deliberately
    outside this hierarchy — retrying them only repeats them.
    """


class WorkerCrash(TransientFault):
    """A worker died mid-job (a real subprocess death, or injected).

    Transient: the job itself may be fine — the supervisor respawns the
    worker and resubmits the job exactly once.
    """


class WorkerLost(TransientFault):
    """A job's worker died and the one respawn-resubmission died too.

    What the supervisor settles waiting futures with after the
    resubmission budget is spent — a waiter never hangs on a dead
    worker.
    """


# ---------------------------------------------------------------------------
# Cooperative deadlines
# ---------------------------------------------------------------------------
_TLS = threading.local()


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget, checked cooperatively via :func:`checkpoint`."""

    expires_at: float  # time.monotonic() timestamp
    seconds: float     # the budget it was created with (for messages)

    @classmethod
    def after(cls, seconds: float) -> Deadline:
        return cls(expires_at=time.monotonic() + seconds, seconds=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def check(self) -> None:
        """Raise :class:`CompileTimeout` when the budget is spent."""
        if self.remaining() <= 0.0:
            raise CompileTimeout(
                f"compile exceeded its {self.seconds:g}s deadline"
            )


def current_deadline() -> Deadline | None:
    """The innermost active deadline of this thread, if any."""
    return getattr(_TLS, "deadline", None)


@contextmanager
def deadline_scope(seconds: float | None):
    """Install a thread-local deadline for the duration of the block.

    ``None`` installs nothing (the common, zero-cost case).  Scopes
    nest by keeping whichever deadline expires first, so an outer
    budget can never be stretched by an inner one.

    >>> with deadline_scope(None) as dl:
    ...     dl is None, current_deadline() is None
    (True, True)
    >>> with deadline_scope(60.0) as dl:
    ...     checkpoint()            # plenty of budget: no-op
    ...     round(dl.seconds, 1)
    60.0
    """
    if seconds is None:
        yield None
        return
    prev = getattr(_TLS, "deadline", None)
    deadline = Deadline.after(seconds)
    if prev is not None and prev.expires_at < deadline.expires_at:
        deadline = prev
    _TLS.deadline = deadline
    try:
        yield deadline
    finally:
        _TLS.deadline = prev


def checkpoint() -> None:
    """Raise :class:`CompileTimeout` if this thread's deadline expired.

    Threaded into the compile flow's loops (anneal temperature rungs,
    per-net routing, ripple-release and repair waves) at a granularity
    of milliseconds, so a deadline-exceeding compile surfaces well
    inside the contract's 2x-deadline bound.  With no deadline
    installed this is one thread-local read.
    """
    deadline = getattr(_TLS, "deadline", None)
    if deadline is not None:
        deadline.check()


def sleep_checked(seconds: float) -> None:
    """Sleep in small slices, honouring the active deadline throughout.

    Backoff delays and injected stalls both sleep through here, so a
    stall can never carry a compile silently past its deadline — the
    checkpoint inside the loop raises :class:`CompileTimeout` at the
    budget, not after the full sleep.
    """
    end = time.monotonic() + seconds
    while True:
        checkpoint()
        remaining = end - time.monotonic()
        if remaining <= 0.0:
            return
        time.sleep(min(remaining, 0.01))


# ---------------------------------------------------------------------------
# Fault injection hook
# ---------------------------------------------------------------------------
#: The registry of named fault points: every place the serving stack
#: lets a :class:`repro.service.resilience.FaultPlan` inject trouble.
#: An unregistered name passed to :func:`fault_point` under an active
#: plan is an error — the registry is the documented failure surface
#: (see ``docs/resilience.md``), not a stringly free-for-all.
FAULT_POINTS: dict[str, str] = {
    "service.submit": "admission: before a submission is accounted",
    "service.run": "a compile job beginning execution on its worker",
    "service.settle": "a finished job about to settle its futures",
    "store.publish": "blob bytes entering ArtifactStore.put (corruptible)",
    "store.publish.stage": "blob staged to the temp file, before os.replace",
    "store.publish.commit": "blob renamed into place, before the dir fsync",
    "store.load": "blob bytes leaving disk in ArtifactStore.get (corruptible)",
    "store.evict": "an over-budget blob about to be evicted",
    "pool.worker": "a pool worker picking up a submitted job",
    "repair.wave": "one escalation wave of repair_for_die",
}

#: The active fault plan (process-global; ``None`` = every
#: :func:`fault_point` is a no-op).  Duck-typed: anything with a
#: ``fire(point, token, data)`` method qualifies.
_ACTIVE_PLAN = None


@contextmanager
def inject_faults(plan):
    """Activate a fault plan for the duration of the block.

    One plan at a time, process-wide — chaos runs exercise one seeded
    plan against the whole stack, and the tokens passed at each point
    keep its decisions deterministic under any thread interleaving.
    """
    global _ACTIVE_PLAN
    if _ACTIVE_PLAN is not None:
        raise RuntimeError("a fault plan is already active")
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = None


def fault_point(point: str, token: str = "", data=None):
    """Offer the active fault plan a chance to misbehave here.

    Returns ``data`` (possibly transformed by a ``corrupt`` fault); may
    raise or stall according to the plan.  With no active plan this is
    one global read and an immediate return — the zero-overhead
    contract production code relies on.

    ``token`` names *this visit* (a key digest, a wave number, a job
    sequence number) so a plan's decisions are a pure function of
    ``(plan, point, token)`` — deterministic across runs, threads and
    processes.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return data
    if point not in FAULT_POINTS:
        raise ValueError(f"unregistered fault point {point!r}")
    return plan.fire(point, token, data)


def active_fault_plan():
    """The fault plan currently installed, or ``None``.

    The service ships this into its crash-isolated subprocess workers
    so injected faults fire *inside* the worker too — a plan is plain
    picklable data, unlike the context manager that installed it.
    """
    return _ACTIVE_PLAN


def resolve_workers(n_items: int, workers: int | None) -> int:
    """The effective pool width for ``n_items`` independent tasks.

    ``None`` auto-selects ``min(n_items, os.cpu_count())``; ``0`` and
    ``1`` both mean serial (0 reads as "no pool", the debugging
    convention); anything larger is capped at ``n_items`` — a wider
    pool would only hold idle workers.

    >>> resolve_workers(4, 1)
    1
    >>> resolve_workers(4, 0)
    1
    >>> resolve_workers(4, 16)
    4
    """
    if n_items <= 1:
        return 1
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), n_items))


def parallel_map(
    fn: Callable,
    items: Iterable,
    workers: int | None = None,
    *,
    processes: bool = False,
) -> list:
    """``[fn(x) for x in items]``, optionally on an executor pool.

    Results come back in item order whatever the pool width, and the
    first exception propagates (remaining futures are drained by the
    executor's context manager) — so callers observe serial semantics.
    With ``processes=True`` the map runs on a
    :class:`~concurrent.futures.ProcessPoolExecutor` (``fn`` and every
    item must be picklable: use module-level functions); otherwise a
    thread pool, which suffices when the work releases the GIL or the
    caller only wants overlap of independent pure-Python compiles.
    """
    items = list(items) if not isinstance(items, Sequence) else items
    if _ACTIVE_PLAN is not None and not processes:
        # (process maps ship module-level functions to workers that do
        # not share this process's active plan — they stay fault-free)
        # Fire the worker fault point once per item, indexed by the
        # item's submission position — the same tokens whatever the
        # worker count, so chaos plans stay worker-invariant.  (Bound
        # only under an active plan: the production path is untouched.)
        inner = fn

        def fn(pair, _inner=inner):  # noqa: F811 - deliberate shadow
            i, item = pair
            fault_point("pool.worker", token=f"map:{i}")
            return _inner(item)

        items = list(enumerate(items))
    n_workers = resolve_workers(len(items), workers)
    if n_workers <= 1:
        return [fn(item) for item in items]
    pool_cls = ProcessPoolExecutor if processes else ThreadPoolExecutor
    with pool_cls(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))


class TaskPool:
    """A persistent submit-style worker pool under the same convention.

    :func:`parallel_map` tears its pool down after one batch; a served
    system (:class:`repro.service.CompileService`) wants workers that
    outlive individual jobs.  ``TaskPool`` wraps a long-lived
    :class:`~concurrent.futures.ThreadPoolExecutor` behind the repo's
    ``workers`` convention — and in serial mode (``workers`` 0/1 when
    only one job would run anyway) it runs the callable **inline on the
    calling thread** and hands back an already-resolved
    :class:`~concurrent.futures.Future`, so the debugging path has flat
    tracebacks and zero threads, while callers keep one code shape.

    Determinism note: the pool only decides *when and where* a job
    runs, never what it computes — every job submitted by the compile
    service is a pure function of its inputs, so results are identical
    for any ``workers`` value (proven in ``tests/test_service.py``).

    >>> with TaskPool(workers=0) as pool:
    ...     pool.submit(lambda a, b: a + b, 2, 3).result()
    5
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(0, int(workers))
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers > 1
            else None
        )
        self._closed = False
        self._seq = 0
        self._seq_lock = threading.Lock()

    @property
    def serial(self) -> bool:
        """True when jobs run inline on the submitting thread."""
        return self._pool is None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; further submits raise."""
        return self._closed

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Run ``fn(*args, **kwargs)``; returns its Future.

        Raises ``RuntimeError`` after :meth:`close` — a closed pool
        must refuse work loudly, never accept a job whose future could
        silently hang.  Under an active fault plan every job passes the
        ``pool.worker`` fault point (token = submission sequence
        number) before running, so injected worker deaths surface as
        the job future's exception — the supervisor layers above turn
        that into a respawn-and-resubmit.
        """
        if self._closed:
            raise RuntimeError(
                "TaskPool is closed; jobs can no longer be submitted"
            )
        if _ACTIVE_PLAN is not None:
            with self._seq_lock:
                token = str(self._seq)
                self._seq += 1
            inner = fn

            def fn(*a, _inner=inner, _token=token, **kw):  # noqa: F811
                fault_point("pool.worker", token=_token)
                return _inner(*a, **kw)

        if self._pool is not None:
            return self._pool.submit(fn, *args, **kwargs)
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as e:  # noqa: BLE001 - futures carry any error
            future.set_exception(e)
        return future

    def close(self) -> None:
        """Drain outstanding jobs, then release the worker threads.

        Every already-submitted future settles (completed, or failed
        with its job's exception) before this returns — a waiter can
        never hang on a closed pool.  Idempotent.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> TaskPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessWorkerPool:
    """Crash-isolated workers: each job runs in a supervised subprocess.

    The thread-backed :class:`TaskPool` shares one interpreter — a
    compile that segfaults (or is killed by an injected fault) takes
    the whole service with it.  ``ProcessWorkerPool`` runs jobs on a
    :class:`~concurrent.futures.ProcessPoolExecutor` instead: a worker
    death breaks only that executor, which is torn down and **respawned**
    for the next job, and the death is reported to the caller as
    :class:`WorkerCrash` (transient — the supervisor resubmits the job
    exactly once).  ``fn`` and its arguments must be picklable
    module-level callables, the usual process-pool contract.

    >>> pool = ProcessWorkerPool(workers=1)
    >>> pool.run(max, 2, 3)
    3
    >>> pool.close()
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self.restarts = 0
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    def run(self, fn: Callable, *args):
        """Run ``fn(*args)`` in a worker subprocess, blocking for the result.

        The job's own exceptions propagate as raised.  A worker that
        dies mid-job (``BrokenProcessPool``) respawns the pool and
        raises :class:`WorkerCrash` instead — the caller decides
        whether to resubmit.
        """
        if self._closed:
            raise RuntimeError(
                "ProcessWorkerPool is closed; jobs can no longer run"
            )
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            future = self._pool.submit(fn, *args)
        try:
            return future.result()
        except BrokenProcessPool as e:
            with self._lock:
                broken, self._pool = self._pool, None
                if broken is not None:
                    broken.shutdown(wait=False)
                self.restarts += 1
            raise WorkerCrash("process worker died mid-job") from e

    def close(self) -> None:
        """Release the worker processes (idempotent)."""
        self._closed = True
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> ProcessWorkerPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
