"""Cross-compile incremental recompiles: edit, re-place the delta, replay.

PR 5 taught the compile flow to reuse its own work *within* one
compile — warm-started re-anneals and route-journal replays across the
timing-driven ladder rungs and rip-up passes.  This module lifts that
machinery **across compile boundaries**: given a cached
:class:`repro.pnr.flow.PnrResult` and an edited netlist,
:func:`compile_incremental`

1. tech-maps the edited netlist and diffs the mapped gates against the
   cached design (:func:`design_delta` — gates match by name and must
   agree on kind, pins, output and parameters);
2. **keeps the cached placement** for every surviving gate and seeds
   only the delta around it (:func:`repro.pnr.place.initial_placement`
   with ``fixed=``, whose candidate windows are bounded by pre-placed
   fan-outs so the combined placement stays dominance-legal) — no
   re-anneal;
3. routes with the cached result's routes as **warm journals**: any net
   whose endpoint gates are untouched, unmoved, and whose pin lists are
   unchanged replays its committed claim journal verbatim
   (:meth:`repro.pnr.route.Router.route_design`), and only the
   disturbed nets pay for an A* search;
4. re-times, re-emits and re-verifies exactly like a cold compile.

When the edit is too large (``max_delta_frac``), the region cannot host
the grown design, or the delta placement/routing jams,
:class:`IncrementalFallback` is raised — the compile service catches it
and falls back to a full cold compile, so the delta path can only ever
trade wall-clock, never correctness.

The incremental result is **deterministic** (a pure function of the
edited netlist, the cached result and the seed — byte-identical across
runs and worker counts) but not, in general, byte-identical to a cold
compile of the edited netlist: the cold path re-anneals from scratch
while the delta path deliberately keeps the cached placement.  It is
held to the same bar on every axis that matters: dual-backend
equivalence against the edited source, and quality within the
regression gate of the cold compile (proven in
``tests/test_pnr_incremental.py``).  See ``docs/compile-service.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fabric.array import CellArray
from repro.netlist.ir import Netlist
from repro.pnr.emit import emit_design
from repro.pnr.flow import PnrError, PnrResult, _build_result
from repro.pnr.parallel import checkpoint
from repro.pnr.place import (
    PlacementError,
    dominance_violations,
    gate_levels,
    initial_placement,
)
from repro.pnr.route import Router, RoutingError
from repro.pnr.techmap import MappedDesign, TechMapError, map_netlist
from repro.pnr.timing import analyze_timing

__all__ = [
    "DesignDelta",
    "IncrementalFallback",
    "compile_incremental",
    "design_delta",
    "ripple_release_placement",
]

#: Largest fraction of the cached design's gates the delta may touch
#: (changed + added + removed) before the delta path declines: past
#: this point re-placing the delta greedily costs quality the anneal
#: would have bought back, and the replay fraction is too small to pay
#: for skipping it.
DEFAULT_MAX_DELTA_FRAC = 0.25

#: How much of the design the dominance ripple (see
#: :func:`compile_incremental`) may unfix before falling back: released
#: gates are re-seeded greedily without an anneal, so past this point
#: the "incremental" compile would mostly be a worse cold compile.
DEFAULT_RELEASE_BUDGET_FRAC = 0.5


class IncrementalFallback(PnrError):
    """The delta path declined this edit; compile cold instead.

    Raised *before* any work is wasted (delta too large, region too
    small, sharded base) or when the warm placement/routing jams — the
    message says which.  :meth:`repro.service.CompileService` catches
    this and falls back to :func:`repro.pnr.flow.compile_to_fabric`
    (edit-session steps record the escalation, so a "too big" edit in
    a chain is provable, never silent).  When the decline happened
    *after* diffing, ``delta`` carries the :class:`DesignDelta` that
    provoked it — the proof of *why* (e.g. ``delta.frac`` past the
    budget); it is ``None`` for pre-diff declines (sharded or
    unmappable base).
    """

    def __init__(self, message: str, *, delta: DesignDelta | None = None):
        super().__init__(message)
        self.delta = delta


@dataclass(frozen=True)
class DesignDelta:
    """The gate-level diff between two mapped designs.

    Gates are matched **by name**; a gate counts as ``changed`` when
    any of its kind, input pins, output net, constant value or source
    delay differ.  ``frac`` is the edit size relative to the base
    design — the fallback predicate of the delta path.
    """

    added: frozenset[str]
    removed: frozenset[str]
    changed: frozenset[str]
    n_base: int

    @property
    def touched(self) -> frozenset[str]:
        """Gates of the *new* design that need placing: added + changed."""
        return self.added | self.changed

    @property
    def n_edits(self) -> int:
        """Total gate-level edit size (added + removed + changed)."""
        return len(self.added) + len(self.removed) + len(self.changed)

    @property
    def frac(self) -> float:
        """Edit size relative to the base design's gate count."""
        return self.n_edits / max(1, self.n_base)


def _gate_signature(gate) -> tuple:
    return (gate.kind, gate.inputs, gate.output, gate.value, gate.source_delay)


def design_delta(base: MappedDesign, new: MappedDesign) -> DesignDelta:
    """Diff two mapped designs gate-by-gate (matched by name)."""
    added = frozenset(new.gates) - frozenset(base.gates)
    removed = frozenset(base.gates) - frozenset(new.gates)
    changed = frozenset(
        name
        for name in frozenset(base.gates) & frozenset(new.gates)
        if _gate_signature(base.gates[name]) != _gate_signature(new.gates[name])
    )
    return DesignDelta(
        added=added, removed=removed, changed=changed, n_base=base.n_gates
    )


def _connectivity_moved(
    base: MappedDesign, new: MappedDesign, touched: frozenset[str]
) -> set[str]:
    """Gates whose nets must re-search rather than replay.

    Beyond the touched gates themselves, any net whose *pin list*
    changed (a sink gained, lost, or re-pinned — e.g. an edit rewired
    one input of an otherwise-identical gate) must not replay its old
    journal: the replay would re-claim input columns at cells that no
    longer read the net, and the emitted product rows would pick those
    stale landings up.  Marking every endpoint of such nets as "moved"
    makes :meth:`Router._warm_eligible` veto the replay.
    """
    moved = set(touched)
    nets = set(base.sinks_of) | set(new.sinks_of)
    for net in nets:
        b_sinks = base.sinks_of.get(net, [])
        n_sinks = new.sinks_of.get(net, [])
        if b_sinks == n_sinks and base.source_of.get(net) == new.source_of.get(net):
            continue
        for gname, _pin in list(b_sinks) + list(n_sinks):
            moved.add(gname)
        for design in (base, new):
            src = design.source_of.get(net)
            if src is not None:
                moved.add(src)
    return moved


def ripple_release_placement(
    design: MappedDesign,
    region,
    base_positions: dict[str, tuple[int, int]],
    displaced: frozenset[str] | set[str],
    *,
    seed: int,
    release_budget_frac: float = DEFAULT_RELEASE_BUDGET_FRAC,
    n_edits: int | None = None,
    n_base: int | None = None,
    blocked: frozenset[tuple[int, int]] | None = None,
    pair_blocked: frozenset[tuple[int, int]] | None = None,
):
    """Warm greedy placement with a budgeted dominance ripple release.

    The shared engine behind :func:`compile_incremental` and
    :func:`repro.pnr.defects.repair_for_die`: every surviving gate (in
    ``base_positions`` but not ``displaced``) keeps its cached cell via
    ``initial_placement(fixed=...)`` and only the displaced set is
    greedily re-seeded.  An edit (or a defect) can leave a displaced
    gate with *no* dominance-legal cell between its frozen fan-ins and
    fan-outs — each release wave then unfixes the fan-out gates of
    everything released so far and retries the (cheap) greedy seed, up
    to ``release_budget_frac`` of the design — past that, the warm
    placement would be mostly greedy anyway, so
    :class:`IncrementalFallback` is raised and the caller compiles
    cold.  ``blocked`` / ``pair_blocked`` thread straight into
    :func:`initial_placement` (dead sites of a defect map).

    ``n_edits`` / ``n_base`` parameterize the budget accounting (the
    delta path counts removed gates too); they default to the displaced
    count and the design's gate count.
    """
    displaced = set(displaced)
    n_edits = len(displaced) if n_edits is None else n_edits
    n_base = design.n_gates if n_base is None else n_base
    released: set[str] = set(displaced)
    last_jam: PlacementError | None = None
    for _wave in range(8):
        # Cooperative cancellation: a service deadline cancels between
        # ripple waves.
        checkpoint()
        if len(released - displaced) + n_edits > max(
            1, int(release_budget_frac * n_base)
        ):
            raise IncrementalFallback(
                f"release ripple grew past {release_budget_frac:.0%} of the "
                f"design ({len(released)} gates)"
            ) from last_jam
        fixed = {
            name: base_positions[name]
            for name in design.gates
            if name in base_positions and name not in released
        }
        try:
            return initial_placement(
                design, region, random.Random(seed ^ 0x1C4E), fixed=fixed,
                blocked=blocked, pair_blocked=pair_blocked,
            )
        except PlacementError as e:
            last_jam = e
            grow = set()
            for gname in released:
                g = design.gates.get(gname)
                if g is None:
                    continue
                for sname, _pin in design.sinks_of.get(g.output, ()):
                    grow.add(sname)
            if grow <= released:
                raise IncrementalFallback(f"delta placement jammed: {e}") from e
            released |= grow
    raise IncrementalFallback(
        f"delta placement jammed: {last_jam}"
    ) from last_jam


def compile_incremental(
    netlist: Netlist,
    base: PnrResult,
    *,
    max_delta_frac: float = DEFAULT_MAX_DELTA_FRAC,
    release_budget_frac: float = DEFAULT_RELEASE_BUDGET_FRAC,
    target_period: int | None = None,
    seed: int = 0,
) -> PnrResult:
    """Recompile an edited netlist against a cached result.

    Parameters
    ----------
    netlist:
        The edited design.
    base:
        A previously compiled :class:`PnrResult` of a *similar* design
        (same gate names for the surviving logic).  Sharded results are
        not accepted — raise-and-fallback keeps the delta path simple.
    max_delta_frac:
        Fallback threshold on :attr:`DesignDelta.frac`.
    release_budget_frac:
        Cap on the fraction of gates the dominance ripple may unfix
        before the delta path gives up (see the release loop below).
    target_period, seed:
        As in :func:`repro.pnr.flow.compile_to_fabric`; the seed only
        feeds the greedy seeding's tie-break salt for the delta gates.

    Returns a fresh :class:`PnrResult` on a new array of the cached
    shape.  Raises :class:`IncrementalFallback` when the edit cannot
    (or should not) take the delta path, and plain :class:`PnrError`
    when the netlist is not compilable at all.
    """
    if not isinstance(base, PnrResult):
        raise IncrementalFallback(
            "incremental recompile needs a single-array PnrResult base; "
            f"got {type(base).__name__}"
        )
    try:
        design = map_netlist(netlist)
        gate_levels(design)  # fail fast on grid-level feedback
    except (TechMapError, PlacementError) as e:
        raise PnrError(f"cannot compile {netlist.name!r}: {e}") from e

    delta = design_delta(base.design, design)
    if delta.frac > max_delta_frac:
        raise IncrementalFallback(
            f"delta touches {delta.n_edits} of {delta.n_base} gates "
            f"({delta.frac:.0%} > {max_delta_frac:.0%})",
            delta=delta,
        )
    region = base.region
    if design.n_cells > region.cells:
        raise IncrementalFallback(
            f"edited design needs {design.n_cells} cells but the cached "
            f"region offers {region.cells}",
            delta=delta,
        )
    shape = (base.array.n_rows, base.array.n_cols)

    # Ripple release: an edit can rewire a gate so that no cell is
    # dominance-compatible with *both* its new fan-ins and its frozen
    # fan-outs (the monotone east/north rule means an edit that pulls a
    # gate east pushes its downstream cone east too).  The shared
    # :func:`ripple_release_placement` engine unfixes the fan-out cone
    # one wave at a time up to the release budget, or falls back.
    placement = ripple_release_placement(
        design, region, base.placement.positions, delta.touched,
        seed=seed, release_budget_frac=release_budget_frac,
        n_edits=delta.n_edits, n_base=delta.n_base,
    )
    if dominance_violations(design, placement):
        raise IncrementalFallback("warm placement violates dominance")

    moved = _connectivity_moved(base.design, design, delta.touched)
    moved.update(
        name
        for name, pos in placement.positions.items()
        if base.placement.positions.get(name, pos) != pos
    )
    try:
        router = Router(
            design, placement, shape, region, rng=random.Random(seed),
            warm_routes=base.routes, warm_moved=moved,
        )
        routes = router.route_design(strict=True)
    except (PlacementError, RoutingError) as e:
        raise IncrementalFallback(f"delta routing jammed: {e}") from e

    target = CellArray(*shape)
    report = analyze_timing(
        design, placement, state=router.state, routes=routes,
        target_period=target_period,
    )
    counts = emit_design(target, router.state)
    return _build_result(
        netlist, design, target, region, placement, routes, counts,
        n_routable=len(router.routable_nets()),
        report=report,
        state=router.state,
    )
