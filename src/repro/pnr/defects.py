"""Per-die defect maps and warm-started repair (defect-adaptive compiles).

The paper's central manufacturability argument is that a molecular-scale
fabric will *not* yield perfect dies: the architecture earns its area
only if the compiler can route around each die's defects.  This module
is that story's compiler half:

* :class:`DefectMap` — one die's dead cells, dead wire segments and
  stuck configuration rows, samplable from the device variation models
  (:func:`sample_die`) or from explicit per-resource probabilities
  (:func:`sample_defect_map`), with a content digest for cache keys.
* **Defect-aware compiles** — ``compile_to_fabric(...,
  defect_map=...)`` hard-blocks dead cells in placement (seed
  exclusion, anneal move rejection via the blocked-site sentinel, and
  a pair-start veto for macros whose pins or internal lines would land
  on dead wires), pre-claims dead wires in the router's occupancy so
  both fresh A* searches and warm journal replays avoid them, masks
  stuck rows out of the row allocator, and proves the emitted
  configuration clean (:func:`assert_defect_clean`) before returning.
* :func:`repair_for_die` — the killer path: reuse one **golden**
  (defect-free) compile across a fleet of distinct defective dies.
  Every gate not touching a defect keeps its golden cell, every net
  not crossing a defect replays its golden route journal; only the
  displaced gates re-seed (:func:`ripple_release_placement`) and only
  the disturbed nets re-search.  When the die is too broken for the
  warm path, :class:`RepairFallback` is raised — the compile service
  catches it and compiles that die cold with the defect map, so repair
  can only ever trade wall-clock, never correctness.

The repaired result is **deterministic** (a pure function of the golden
result, the defect map and the seed) and is held to the same bar as any
compile: dual-backend equivalence against the source netlist and a
proven defect-clean bitstream (``tests/test_pnr_defects.py``).  Like
the incremental path it is *not* byte-identical to a cold defect-aware
compile — the cold path re-anneals while repair deliberately keeps the
golden placement.  See ``docs/defect-tolerance.md``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

import numpy as np

from repro.arch.montecarlo import cell_fail_probability, strict_margin_cell_yield
from repro.fabric.array import CellArray
from repro.fabric.nandcell import N_INPUTS, N_ROWS
from repro.pnr.emit import emit_design
from repro.pnr.flow import PnrError, PnrResult, _build_result
from repro.pnr.incremental import (
    DEFAULT_RELEASE_BUDGET_FRAC,
    IncrementalFallback,
    ripple_release_placement,
)
from repro.pnr.parallel import checkpoint, fault_point
from repro.pnr.place import PlacementError, dominance_violations
from repro.pnr.route import PAIR_INTERNAL_ROWS, Router, RoutingError
from repro.pnr.techmap import PAIR_PIN_COLUMNS
from repro.pnr.timing import analyze_timing

__all__ = [
    "DefectMap",
    "DefectViolation",
    "RepairFallback",
    "assert_defect_clean",
    "defect_violations",
    "pair_blocked_cells",
    "repair_for_die",
    "sample_defect_map",
    "sample_die",
]


class DefectViolation(PnrError):
    """An emitted configuration programs a defective resource."""


class RepairFallback(PnrError):
    """The warm repair path declined this die; compile it cold instead.

    Raised when the golden result cannot seed a repair (wrong shape,
    sharded base), when too much of the design is displaced, or when
    the warm placement/routing jams on this die's defects — the message
    says which.  :meth:`repro.service.CompileService.submit_for_die`
    catches this and falls back to a full defect-aware
    :func:`repro.pnr.flow.compile_to_fabric`.
    """


#: Highest wire index a pair macro consumes: the union of the pair pin
#: columns (cell A inputs) and the internal product lines driven into
#: cell B covers wires 0..4 — wire 5 is never pair-reserved.
_PAIR_WIRE_SPAN = max(
    max(max(cols) for cols in PAIR_PIN_COLUMNS.values()),
    max(PAIR_INTERNAL_ROWS.values()) - 1,
) + 1


@dataclass(frozen=True)
class DefectMap:
    """One die's manufacturing defects, in fabric coordinates.

    Attributes
    ----------
    n_rows, n_cols:
        The die's array shape.  A defect map names concrete resources,
        so it pins the array shape of every compile that uses it.
    dead_cells:
        ``(r, c)`` cells that must stay blank — no logic, no
        feed-through, no pair membership.
    dead_wires:
        ``(r, c, i)`` abutment wire segments that must never be driven
        or read (boundary wires with ``r == n_rows`` / ``c == n_cols``
        are legal entries: a broken output pad).
    stuck_rows:
        ``(r, c, row)`` configuration rows whose bits cannot be trusted
        to hold a programmed crosspoint — the row allocator masks them.

    The map is immutable and order-free: collections normalise to
    frozensets of int tuples, and :meth:`digest` is content-addressed,
    so two maps with the same defects hash identically regardless of
    how they were built.
    """

    n_rows: int
    n_cols: int
    dead_cells: frozenset = field(default_factory=frozenset)
    dead_wires: frozenset = field(default_factory=frozenset)
    stuck_rows: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.n_rows < 1 or self.n_cols < 1:
            raise ValueError(
                f"defect map needs a positive shape, got "
                f"{self.n_rows}x{self.n_cols}"
            )
        cells = frozenset((int(r), int(c)) for r, c in self.dead_cells)
        wires = frozenset((int(r), int(c), int(i)) for r, c, i in self.dead_wires)
        stuck = frozenset((int(r), int(c), int(j)) for r, c, j in self.stuck_rows)
        object.__setattr__(self, "dead_cells", cells)
        object.__setattr__(self, "dead_wires", wires)
        object.__setattr__(self, "stuck_rows", stuck)
        for r, c in cells:
            if not (0 <= r < self.n_rows and 0 <= c < self.n_cols):
                raise ValueError(f"dead cell ({r},{c}) outside the die")
        for r, c, i in wires:
            if not (
                0 <= r <= self.n_rows
                and 0 <= c <= self.n_cols
                and 0 <= i < N_INPUTS
            ):
                raise ValueError(f"dead wire ({r},{c},{i}) outside the die")
        for r, c, j in stuck:
            if not (
                0 <= r < self.n_rows and 0 <= c < self.n_cols and 0 <= j < N_ROWS
            ):
                raise ValueError(f"stuck row ({r},{c},{j}) outside the die")

    @property
    def shape(self) -> tuple[int, int]:
        """The die's ``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def n_defects(self) -> int:
        """Total defective resources of all three kinds."""
        return len(self.dead_cells) + len(self.dead_wires) + len(self.stuck_rows)

    @property
    def is_clean(self) -> bool:
        """True for a perfect die."""
        return self.n_defects == 0

    def digest(self) -> str:
        """Content-addressed hex digest — the die's cache-key component.

        Two maps describing the same defects on the same shape digest
        identically; any added, removed or moved defect changes it.
        """
        h = hashlib.sha256()
        h.update(b"defect-map-v1")
        h.update(f"|{self.n_rows}x{self.n_cols}".encode())
        for tag, items in (
            ("c", sorted(self.dead_cells)),
            ("w", sorted(self.dead_wires)),
            ("s", sorted(self.stuck_rows)),
        ):
            for t in items:
                h.update(f"|{tag}{t}".encode())
        return h.hexdigest()


def sample_defect_map(
    n_rows: int,
    n_cols: int,
    *,
    cell_fail: float = 0.0,
    wire_fail: float = 0.0,
    stuck_fail: float = 0.0,
    seed: int = 0,
) -> DefectMap:
    """Draw one die from independent per-resource failure probabilities.

    Each cell, wire segment and configuration row fails as an
    independent Bernoulli trial.  Deterministic per seed — seed ``k``
    is die ``k`` of the lot.
    """
    for name, p in (
        ("cell_fail", cell_fail),
        ("wire_fail", wire_fail),
        ("stuck_fail", stuck_fail),
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {p!r}")
    rng = np.random.default_rng(seed)
    cells = rng.random((n_rows, n_cols)) < cell_fail
    wires = rng.random((n_rows + 1, n_cols + 1, N_INPUTS)) < wire_fail
    stuck = rng.random((n_rows, n_cols, N_ROWS)) < stuck_fail
    return DefectMap(
        n_rows=n_rows,
        n_cols=n_cols,
        dead_cells=frozenset(
            (int(r), int(c)) for r, c in np.argwhere(cells)
        ),
        dead_wires=frozenset(
            (int(r), int(c), int(i)) for r, c, i in np.argwhere(wires)
        ),
        stuck_rows=frozenset(
            (int(r), int(c), int(j)) for r, c, j in np.argwhere(stuck)
        ),
    )


def sample_die(
    n_rows: int,
    n_cols: int,
    *,
    sigma_vt: float,
    seed: int = 0,
    wire_fail_frac: float = 0.25,
) -> DefectMap:
    """Draw one die from the device variation models at ``sigma_vt``.

    Ties the defect sampler to the paper's Section 3 manufacturability
    models: a cell is dead with the analytic margin-failure probability
    (:func:`repro.arch.montecarlo.cell_fail_probability`), a
    configuration row is stuck with the config-margin failure rate
    (the complement of
    :func:`repro.arch.montecarlo.strict_margin_cell_yield`), and a wire
    segment fails at ``wire_fail_frac`` of the cell rate (wires are a
    fraction of a cell's device count).  Deterministic per seed.
    """
    if not 0.0 <= wire_fail_frac <= 1.0:
        raise ValueError(f"wire_fail_frac must be in [0, 1], got {wire_fail_frac!r}")
    cell_fail = cell_fail_probability(sigma_vt)
    return sample_defect_map(
        n_rows,
        n_cols,
        cell_fail=cell_fail,
        wire_fail=wire_fail_frac * cell_fail,
        stuck_fail=1.0 - strict_margin_cell_yield(sigma_vt),
        seed=seed,
    )


def pair_blocked_cells(defect_map: DefectMap) -> frozenset:
    """Cells where a two-cell pair macro must not *start*.

    Pair macros bypass the router for their fixed pin columns and
    internal product lines (claimed at placement time, see
    :mod:`repro.pnr.route`), so the defect veto must happen at
    placement: a pair starting at ``(r, c)`` reads wires ``(r, c,
    pin)`` into cell A, drives internal lines ``(r, c+1, row)`` into
    cell B, and programs rows in both cells.  Any dead wire with index
    below the pair span therefore vetoes pair starts at its own cell
    (pin wire) and at the cell to its west (internal line), and any
    stuck row vetoes both the same way — conservative for celement
    (which spans 3 of the 5 lines) but pairs are rare, and a vetoed
    start only costs the placer one candidate cell.

    Dead *cells* are not included: :func:`initial_placement`'s blocked
    grid already excludes them for both pair cells.
    """
    vetoed: set[tuple[int, int]] = set()
    for r, c, i in defect_map.dead_wires:
        if i < _PAIR_WIRE_SPAN:
            vetoed.add((r, c))
            vetoed.add((r, c - 1))
    for r, c, _row in defect_map.stuck_rows:
        vetoed.add((r, c))
        vetoed.add((r, c - 1))
    return frozenset((r, c) for r, c in vetoed if c >= 0)


def defect_violations(array: CellArray, defect_map: DefectMap) -> list[str]:
    """Every way a configured array touches a defect (empty = clean).

    Mirrors the wire model the router's existing-configuration scan
    uses: a non-blank cell on a dead site, a used row that is stuck, a
    driven abutment wire that is dead (a cell drives east onto
    ``(r, c+1, row)``, north onto ``(r+1, c, row)``), or an
    ABUT-selected active column reading a dead wire ``(r, c, col)``.
    A violation can only happen *at* a defect coordinate, so the scan
    is O(defects), not O(cells) — repair proves fifty dies clean
    without fifty full-array sweeps.
    """
    from repro.fabric.driver import DriverMode
    from repro.fabric.nandcell import Direction, InputSource

    def cell_at(r: int, c: int):
        if 0 <= r < array.n_rows and 0 <= c < array.n_cols:
            return array.cell(r, c)
        return None

    violations: list[str] = []
    for r, c in sorted(defect_map.dead_cells):
        cfg = cell_at(r, c)
        if cfg is not None and not cfg.is_blank():
            violations.append(f"dead cell ({r},{c}) is configured")
    for r, c, row in sorted(defect_map.stuck_rows):
        cfg = cell_at(r, c)
        if cfg is not None and row in cfg.used_rows():
            violations.append(f"cell ({r},{c}) programs stuck row {row}")
    for r, c, i in sorted(defect_map.dead_wires):
        # Who could drive wire (r, c, i): the west neighbour's row i
        # driver configured EAST, or the south neighbour's configured
        # NORTH (the array's two-driver abutment rule).
        west = cell_at(r, c - 1)
        if (
            west is not None
            and west.drivers[i] is not DriverMode.OFF
            and west.directions[i] is Direction.EAST
        ):
            violations.append(
                f"cell ({r},{c - 1}) row {i} drives dead wire ({r},{c},{i})"
            )
        south = cell_at(r - 1, c)
        if (
            south is not None
            and south.drivers[i] is not DriverMode.OFF
            and south.directions[i] is Direction.NORTH
        ):
            violations.append(
                f"cell ({r - 1},{c}) row {i} drives dead wire ({r},{c},{i})"
            )
        # Who could read it: cell (r, c)'s column i, when ABUT-selected
        # and active in any used row's product.
        reader = cell_at(r, c)
        if (
            reader is not None
            and not reader.is_blank()
            and reader.input_select[i] is InputSource.ABUT
            and any(i in reader.active_columns(row) for row in reader.used_rows())
        ):
            violations.append(
                f"cell ({r},{c}) reads dead wire ({r},{c},{i})"
            )
    return violations


def assert_defect_clean(array: CellArray, defect_map: DefectMap) -> None:
    """Raise :class:`DefectViolation` if the array programs a defect."""
    violations = defect_violations(array, defect_map)
    if violations:
        shown = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise DefectViolation(f"configuration touches defects: {shown}{more}")


def _displaced_gates(golden: PnrResult, defect_map: DefectMap) -> set[str]:
    """Golden gates that cannot keep their cells on this die."""
    pair_vetoed = pair_blocked_cells(defect_map)
    displaced: set[str] = set()
    for name, gate in golden.design.gates.items():
        cells = golden.placement.cells_of(gate)
        if any(cell in defect_map.dead_cells for cell in cells):
            displaced.add(name)
        elif gate.width == 2 and golden.placement.positions[name] in pair_vetoed:
            displaced.add(name)
    return displaced


def repair_for_die(
    golden: PnrResult,
    defect_map: DefectMap,
    *,
    target_period: int | None = None,
    seed: int = 0,
    release_budget_frac: float = DEFAULT_RELEASE_BUDGET_FRAC,
    stats: dict | None = None,
) -> PnrResult:
    """Adapt a golden compile to one defective die, reusing its work.

    Parameters
    ----------
    golden:
        A previously compiled, defect-free :class:`PnrResult` of the
        design (typically the service's cached golden compile).
    defect_map:
        This die's defects; its shape must match the golden array.
    target_period, seed:
        As in :func:`repro.pnr.flow.compile_to_fabric`; the seed feeds
        only the displaced gates' greedy re-seed and the router.
    release_budget_frac:
        Cap on the fraction of gates the dominance ripple may unfix
        before the warm path gives up (see
        :func:`repro.pnr.incremental.ripple_release_placement`).
    stats:
        Optional dict the repair fills with its reuse accounting:
        ``displaced`` / ``moved`` gate counts and the router's
        ``replayed`` / ``searched`` net counts.

    Every golden gate whose cells avoid the defects keeps its exact
    cell; every net whose endpoints did not move and whose journal
    does not cross a defect replays verbatim.  Returns a fresh
    :class:`PnrResult` on a new array of the golden shape, proven
    defect-clean.  Raises :class:`RepairFallback` when this die needs
    a cold defect-aware compile instead — never a silently degraded
    result.
    """
    if not isinstance(golden, PnrResult):
        raise RepairFallback(
            f"repair needs a single-array PnrResult golden compile; "
            f"got {type(golden).__name__}"
        )
    shape = (golden.array.n_rows, golden.array.n_cols)
    if shape != defect_map.shape:
        raise RepairFallback(
            f"defect map is for a {defect_map.shape[0]}x"
            f"{defect_map.shape[1]} die but the golden array is "
            f"{shape[0]}x{shape[1]}"
        )
    design = golden.design
    displaced = _displaced_gates(golden, defect_map)
    # Escalation loop: keeping the golden placement can leave a net
    # with no defect-free path even though a cold compile would have
    # annealed around the defects.  Each wave re-seeds the endpoint
    # gates of whatever nets stayed stuck (a fresh dominance window
    # usually opens a path); the ripple's release budget bounds how
    # much of the design may move before falling back.
    failed: list[str] = []
    for wave in range(5):
        # Cooperative cancellation between escalation waves, plus the
        # repair path's fault point: a chaos plan can fail or stall any
        # wave of any die (the token carries die digest + wave).
        checkpoint()
        fault_point("repair.wave", token=f"{defect_map.digest()[:12]}:{wave}")
        if not displaced:
            # Nothing to re-place: the golden placement IS the repaired
            # placement (and was already proven dominance-legal), so the
            # die only pays for re-routing its defect-crossing nets.
            placement = golden.placement
        else:
            try:
                placement = ripple_release_placement(
                    design,
                    golden.region,
                    golden.placement.positions,
                    displaced,
                    # Re-salt per wave: a jammed wave's greedy re-seed
                    # must not repeat the same candidate choices with a
                    # slightly larger displaced set, or escalation never
                    # explores.
                    seed=seed + 7919 * wave,
                    release_budget_frac=release_budget_frac,
                    blocked=defect_map.dead_cells,
                    pair_blocked=pair_blocked_cells(defect_map),
                )
            except IncrementalFallback as e:
                raise RepairFallback(f"repair placement declined: {e}") from e
            except PlacementError as e:
                raise RepairFallback(f"repair placement jammed: {e}") from e
            if dominance_violations(design, placement):
                raise RepairFallback("repaired placement violates dominance")

        moved = set(displaced)
        moved.update(
            name
            for name, pos in placement.positions.items()
            if golden.placement.positions.get(name, pos) != pos
        )
        router = Router(
            design,
            placement,
            shape,
            golden.region,
            rng=random.Random(seed),
            warm_routes=golden.routes,
            warm_moved=moved,
            defects=defect_map,
        )
        routes = router.route_design(strict=False)
        failed = [n for n in router.routable_nets() if n not in routes]
        if not failed:
            break
        frontier = set()
        for net in failed:
            src = design.source_of.get(net)
            if src is not None:
                frontier.add(src)
            for gname, _pin in design.sinks_of.get(net, ()):
                frontier.add(gname)
        frontier = {g for g in frontier if g in design.gates}
        grow = frontier - displaced
        while not grow and frontier:
            # The stuck net's own endpoints already moved: widen the
            # dominance window by releasing their graph neighbours (and
            # theirs, if need be) so the next re-seed can shift the
            # congested neighbourhood, not just the endpoints.
            ring = set()
            for gname in frontier:
                g = design.gates[gname]
                for sname, _pin in design.sinks_of.get(g.output, ()):
                    ring.add(sname)
                for net_in in g.inputs:
                    src = design.source_of.get(net_in)
                    if src is not None:
                        ring.add(src)
            ring = {g for g in ring if g in design.gates}
            grow = ring - displaced
            if ring <= frontier:
                break
            frontier |= ring
        if not grow:
            break
        displaced |= grow
    if failed:
        raise RepairFallback(
            f"repair routing jammed on this die: {failed[:6]} "
            f"(of {len(failed)}) stayed unroutable"
        )

    target = CellArray(*shape)
    report = analyze_timing(
        design, placement, state=router.state, routes=routes,
        target_period=target_period,
    )
    counts = emit_design(target, router.state)
    try:
        assert_defect_clean(target, defect_map)
    except DefectViolation as e:
        raise RepairFallback(f"repair emitted onto a defect: {e}") from e
    if stats is not None:
        stats.update(
            displaced=len(displaced),
            moved=len(moved),
            replayed=router.n_replayed,
            searched=router.n_searched,
        )
    return _build_result(
        golden.source, design, target, golden.region, placement, routes,
        counts,
        n_routable=len(router.routable_nets()),
        report=report,
        state=router.state,
    )
