"""The compile flow: netlist in, configured + verified + timed fabric out.

:func:`compile_to_fabric` chains the stages — tech-map
(:mod:`repro.pnr.techmap`), place (:mod:`repro.pnr.place`), route
(:mod:`repro.pnr.route`), timing analysis (:mod:`repro.pnr.timing`),
emit (:mod:`repro.pnr.emit`) — with seeded retry: a failed routing
attempt re-places with a different annealing seed (and, when the array
is flow-owned, a larger grid) before giving up.  Every result carries a
:class:`repro.pnr.timing.TimingReport`; with ``timing_driven=True`` the
flow additionally re-places with criticality-weighted HPWL and re-routes
critical nets first, keeping whichever candidate achieves the shorter
cycle time (so timing-driven compiles never lose to wirelength-only
ones).  See ``docs/compile-flow.md`` and ``docs/timing-model.md``.

:func:`verify_equivalence` closes the loop for combinational designs:
the configured array is lowered back to the netlist IR and swept with
random vectors on the bit-parallel :class:`repro.netlist.BatchBackend`
and (a subset, they are slower) on the reference
:class:`repro.netlist.EventBackend`, against the source netlist's
response.  Designs that placed stateful pairs are exercised by driving
event-level sequences instead (see ``examples/pnr_adder.py`` and the
micropipeline tests).
"""

from __future__ import annotations

import math
import pickle
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.pnr.partition import ShardedPnrResult

import numpy as np

from repro.arch.area import AreaBreakdown, routed_area_breakdown
from repro.fabric.array import CellArray, wire_name
from repro.fabric.floorplan import Region
from repro.netlist.backends import BatchBackend, EventBackend
from repro.netlist.ir import Netlist
from repro.pnr.emit import emit_design
from repro.pnr.parallel import checkpoint
from repro.pnr.place import (
    Placement,
    PlacementError,
    anneal_placement,
    default_anneal_steps,
    gate_levels,
    hpwl,
    initial_placement,
)
from repro.pnr.route import NetRoute, Router, RoutingError, RoutingState
from repro.pnr.techmap import MappedDesign, TechMapError, map_netlist
from repro.pnr.timing import TimingReport, analyze_timing


#: Version of the serialised-result envelope produced by
#: :meth:`PnrResult.to_blob` / ``ShardedPnrResult.to_blob``.  Bump it
#: whenever a field of the result (or anything it transitively pickles)
#: changes meaning — old blobs then fail :func:`result_from_blob`'s tag
#: check instead of deserialising into nonsense.  The persisted
#: artifact store keys on content hashes, not on this; the version only
#: guards *decoding*.
RESULT_BLOB_VERSION = 1

_BLOB_TAG = "repro.pnr.result"


def result_to_blob(result) -> bytes:
    """Serialise a compiled result to a self-describing byte blob.

    The payload is a versioned envelope around a pickle — pickling is
    faithful here because every field of a result is plain data (arrays,
    dicts, dataclasses; no sockets, locks or lambdas), and the repo's
    determinism contract makes it byte-stable: one round-trip through
    ``result_from_blob`` reproduces identical bitstreams, and
    re-serialising the round-tripped result reproduces the identical
    blob (pinned in ``tests/test_service_store.py``).
    """
    kind = type(result).__name__
    return pickle.dumps(
        (_BLOB_TAG, RESULT_BLOB_VERSION, kind, result),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def result_from_blob(blob: bytes):
    """Decode :func:`result_to_blob` output; raises ``ValueError`` on
    anything that is not a current-version result envelope."""
    try:
        payload = pickle.loads(blob)
    except Exception as e:
        raise ValueError(f"undecodable result blob: {e}") from e
    if (
        not isinstance(payload, tuple)
        or len(payload) != 4
        or payload[0] != _BLOB_TAG
    ):
        raise ValueError("not a repro.pnr result blob")
    _, version, kind, result = payload
    if version != RESULT_BLOB_VERSION:
        raise ValueError(
            f"result blob version {version} != {RESULT_BLOB_VERSION}"
        )
    if type(result).__name__ != kind:
        raise ValueError(
            f"result blob claims {kind} but holds {type(result).__name__}"
        )
    return result


class PnrError(RuntimeError):
    """The design could not be compiled onto the fabric."""


class VerificationError(AssertionError):
    """The configured array disagrees with its source netlist."""


@dataclass(frozen=True, slots=True)
class PnrStats:
    """Placement/routing quality numbers (the bench records these)."""

    n_source_cells: int
    n_gates: int
    cells_logic: int
    cells_route: int
    wirelength: int
    hpwl: int
    routed_nets: int
    total_nets: int
    region_cells: int
    area: AreaBreakdown
    #: Achieved cycle time / worst slack / ideal-wire bound, from the
    #: routed static timing analysis (see ``docs/timing-model.md``).
    cycle_time: int = 0
    worst_slack: int = 0
    logic_delay: int = 0

    @property
    def cells_used(self) -> int:
        """Cells configured, logic plus interconnect."""
        return self.cells_logic + self.cells_route

    @property
    def utilisation(self) -> float:
        """Configured fraction of the placement region."""
        return self.cells_used / self.region_cells if self.region_cells else 0.0

    @property
    def routing_overhead(self) -> float:
        """Cells burned as wire per cell of logic (paper Section 4)."""
        return self.cells_route / self.cells_logic if self.cells_logic else 0.0

    @property
    def routed_fraction(self) -> float:
        """Nets fully routed (1.0 for a strict compile)."""
        return self.routed_nets / self.total_nets if self.total_nets else 1.0


@dataclass
class PnrResult:
    """A compiled design: the configured array plus its pin mapping.

    ``input_wires`` / ``output_wires`` map *source netlist* net names to
    fabric wire names — drive and observe those on any backend.  When
    the design contained C-elements asking for a 0 power-on state,
    ``reset_wire`` names the active-low rail to pulse first.
    """

    source: Netlist
    design: MappedDesign
    array: CellArray
    region: Region
    placement: Placement
    routes: dict[str, NetRoute]
    input_wires: dict[str, str]
    output_wires: dict[str, str]
    reset_wire: str | None
    stats: PnrStats
    #: Routed static timing: worst slack, critical path, cycle time.
    timing: TimingReport | None = None
    #: The router's final occupancy bookkeeping — kept so downstream
    #: passes (the sharded flow's system timing re-analysis, channel
    #: port-cell attribution) can re-derive exact wire delays.
    routing_state: RoutingState | None = None

    def fabric_netlist(self):
        """The configured array lowered to the IR.

        Lowered afresh on each call: the array may have gained other
        regions' configuration since this result was built.
        """
        return self.array.to_netlist()

    def to_bitstream(self):
        """Serialise the configured array (header + frames + CRC)."""
        return self.array.to_bitstream()

    def verify(self, **kwargs):
        """Random-vector equivalence sweep; see :func:`verify_equivalence`."""
        return verify_equivalence(self, **kwargs)

    def to_blob(self) -> bytes:
        """Versioned byte serialisation; see :func:`result_to_blob`."""
        return result_to_blob(self)

    @classmethod
    def from_blob(cls, blob: bytes) -> PnrResult:
        """Decode :meth:`to_blob` output (``ValueError`` on anything else)."""
        result = result_from_blob(blob)
        if not isinstance(result, cls):
            raise ValueError(
                f"blob holds {type(result).__name__}, not {cls.__name__}"
            )
        return result


def suggest_side(depth: int, cells: int, stateful: bool, slack: int = 2) -> int:
    """Array side comfortably hosting ``depth`` levels over ``cells`` cells.

    The one sizing heuristic behind both :func:`suggest_array` and the
    sharded flow's per-shard estimate: the greedy placer advances
    roughly one column per level and ratchets rows upward at
    reconvergence, so budget a full side for the depth (not just half
    of the ``rows + cols - 1`` poset bound) and 3 cells per gate for
    routing room.  Stateful pairs pin their input columns, which costs
    extra delivery room around them.
    """
    side = max(
        depth + 2,
        math.ceil(math.sqrt(3 * max(1, cells))) + 1,
        4,
    ) + slack
    if stateful:
        side += 2
    return side


def suggest_array(netlist_or_design, slack: int = 2) -> CellArray:
    """A square array comfortably sized for a design.

    Sizing must respect both capacity (3 cells per gate leaves routing
    room) and the monotone-dataflow depth bound: a chain of ``d`` gates
    needs ``rows + cols - 1 >= d``.
    """
    design = (
        netlist_or_design
        if isinstance(netlist_or_design, MappedDesign)
        else map_netlist(netlist_or_design)
    )
    depth = max(gate_levels(design).values(), default=0) + 1
    side = suggest_side(
        depth, design.n_cells, design.has_stateful_gates(), slack
    )
    return CellArray(side, side)


def compile_to_fabric(
    netlist: Netlist,
    array: CellArray | None = None,
    *,
    region: Region | None = None,
    seed: int = 0,
    anneal_steps: int | None = None,
    max_attempts: int = 6,
    timing_driven: bool = False,
    timing_weight: float = 2.0,
    target_period: int | None = None,
    shards: int | None = None,
    max_side: int | None = None,
    workers: int | None = None,
    replicas: int = 1,
    defect_map=None,
) -> PnrResult | ShardedPnrResult:
    """Place and route a netlist onto a cell array.

    Parameters
    ----------
    netlist:
        The design, in the backend-neutral IR.  Combinational kinds map
        to product rows; ``celement`` / ``eventlatch`` map to the
        stateful cell pairs; tristate buses are rejected.
    array:
        Target array.  ``None`` lets the flow size one with
        :func:`suggest_array` (and grow it on retries).
    region:
        Restrict placement and routing to a floorplan region (the whole
        array when ``None``) — cells there must be blank.
    seed, anneal_steps, max_attempts:
        Determinism and effort knobs; each retry reseeds the annealer.
    timing_driven:
        Run the timing feedback loop: analyse the wirelength-driven
        candidate, re-anneal with per-net criticality weights
        (``1 + timing_weight * criticality`` scaling each net's HPWL)
        and criticality-aware routing, and keep whichever candidate
        achieves the shorter cycle time.  The result's cycle time is
        therefore never worse than the HPWL-only compile's.
    timing_weight:
        Timing/wirelength trade-off knob: 0 reduces the weighted
        objective to plain HPWL; larger values shrink critical nets
        more aggressively at the expense of total wirelength.
    target_period:
        Required cycle time for slack reporting (default: the design's
        ideal-wire logic depth — see :mod:`repro.pnr.timing`).
    shards, max_side:
        Multi-array sharding.  ``shards=N > 1`` partitions the design
        across N chiplet arrays and returns a
        :class:`repro.pnr.partition.ShardedPnrResult` instead; with
        ``max_side`` set the shard count is chosen automatically (and
        a single array is still used when the design fits one of at
        most ``max_side`` x ``max_side`` cells).  Incompatible with an
        explicit ``array`` / ``region``.  See ``docs/sharding.md``.
    workers:
        Width of the ``concurrent.futures`` pool the flow's independent
        tasks fan out on: per-shard compiles for sharded runs, and the
        annealing replicas when ``replicas > 1``.  ``None`` (the
        default) auto-selects one worker per task capped at the CPU
        count; ``0``/``1`` run everything serially on the calling
        thread.  Results are bit-identical regardless of the worker
        count — parallelism is a wall-clock knob only.
    replicas:
        ``N > 1`` anneals N parallel-tempering replicas at staggered
        temperatures with periodic Metropolis exchanges, keeping the
        best placement found by any replica (see
        :func:`repro.pnr.place.anneal_placement`).  Composes with
        sharding: each shard's compile anneals its own N-replica fleet
        (serially, inside the shard's pool slot).  ``replicas=1``
        (default) is the single-replica path.
    defect_map:
        A :class:`repro.pnr.defects.DefectMap` describing one die's
        dead cells, dead wire segments and stuck configuration rows.
        Placement hard-blocks the dead cells (seed exclusion, anneal
        move rejection, pair-start veto), routing pre-claims the dead
        wires and treats dead cells as impassable, and the emitted
        configuration is proven clean against the map before the result
        is returned (see ``docs/defect-tolerance.md``).  The map names
        a concrete die, so it fixes the array shape: auto-sizing is
        disabled (retries reseed only) and an explicit ``array`` must
        match ``defect_map.shape``.  Incompatible with sharding.

    Returns a :class:`PnrResult` (with a routed
    :class:`repro.pnr.timing.TimingReport` under ``.timing``), or a
    :class:`repro.pnr.partition.ShardedPnrResult` when ``shards`` /
    ``max_side`` requested a sharded compile; raises :class:`PnrError`
    when the design cannot be mapped, placed or routed.
    """
    if shards is not None or max_side is not None:
        if array is not None or region is not None:
            raise PnrError(
                "sharded compiles size their own per-shard arrays; "
                "drop the array/region arguments"
            )
        if defect_map is not None:
            raise PnrError(
                "a defect map names one concrete die; sharded compiles "
                "span several arrays — compile each shard for its die"
            )
        from repro.pnr.partition import compile_sharded

        return compile_sharded(
            netlist, n_shards=shards, max_side=max_side, seed=seed,
            anneal_steps=anneal_steps, max_attempts=max_attempts,
            timing_driven=timing_driven, timing_weight=timing_weight,
            target_period=target_period, workers=workers,
            replicas=replicas,
        )
    try:
        design = map_netlist(netlist)
        gate_levels(design)  # fail fast on grid-level feedback
    except (TechMapError, PlacementError) as e:
        raise PnrError(f"cannot compile {netlist.name!r}: {e}") from e
    return _compile_mapped(
        design, netlist, array=array, region=region, seed=seed,
        anneal_steps=anneal_steps, max_attempts=max_attempts,
        timing_driven=timing_driven, timing_weight=timing_weight,
        target_period=target_period, replicas=replicas, workers=workers,
        defect_map=defect_map,
    )


def _compile_mapped(
    design: MappedDesign,
    netlist: Netlist,
    *,
    array: CellArray | None = None,
    region: Region | None = None,
    seed: int = 0,
    anneal_steps: int | None = None,
    max_attempts: int = 6,
    timing_driven: bool = False,
    timing_weight: float = 2.0,
    target_period: int | None = None,
    max_side: int | None = None,
    replicas: int = 1,
    workers: int | None = 0,
    defect_map=None,
) -> PnrResult:
    """The place/route/time/emit retry ladder over a mapped design.

    The shared engine behind :func:`compile_to_fabric` (which tech-maps
    first) and the sharded flow (which partitions a mapped design and
    compiles each shard here, ``max_side`` capping the auto-sized
    per-shard arrays).
    """
    auto_array = array is None
    if defect_map is not None:
        if array is not None and (array.n_rows, array.n_cols) != defect_map.shape:
            raise PnrError(
                f"defect map is for a {defect_map.shape[0]}x"
                f"{defect_map.shape[1]} die but the array is "
                f"{array.n_rows}x{array.n_cols}"
            )
        from repro.pnr.defects import pair_blocked_cells

        blocked = defect_map.dead_cells
        pair_blocked = pair_blocked_cells(defect_map)
    else:
        blocked = None
        pair_blocked = None
    if auto_array:
        depth = max(gate_levels(design).values(), default=0) + 1
        stateful = design.has_stateful_gates()
    last_error: Exception | None = None
    for attempt in range(max_attempts):
        # Cooperative cancellation: a service deadline cancels between
        # attempts (and inside each attempt's anneal/route loops).
        checkpoint()
        if auto_array:
            if defect_map is not None:
                # The defect map names a concrete die, so its shape IS
                # the array shape — retries reseed the annealer instead
                # of growing the grid.
                shape = defect_map.shape
                target = None
            else:
                # Size without building: a CellArray is only constructed
                # once placement and routing succeed (failed attempts and
                # sizing probes never pay for cell allocation).
                side = suggest_side(
                    depth, design.n_cells, stateful, slack=2 + 2 * attempt
                )
                if max_side is not None and side > max_side:
                    # The cap wins: retries re-seed the annealer instead
                    # of growing the grid.
                    side = max_side
                target = None
                shape = (side, side)
        else:
            target = array
            shape = (array.n_rows, array.n_cols)
        reg = region or Region("pnr", 0, 0, *shape)
        if target is not None:
            _check_region(target, reg)
        elif (
            reg.row + reg.n_rows > shape[0] or reg.col + reg.n_cols > shape[1]
        ):
            # An explicit region must fit the auto-sized array — the
            # same contract _check_region enforces for explicit arrays.
            raise PnrError(
                f"region {reg.name!r} exceeds the {shape[0]}x{shape[1]} array"
            )
        rng = random.Random(seed + 7919 * attempt)
        try:
            placement = initial_placement(
                design, reg, rng, blocked=blocked, pair_blocked=pair_blocked,
            )
            # Annealing compacts for wirelength, which can cost
            # routability on congested designs — alternate attempts fall
            # back to the (sparser) greedy seed.
            if attempt % 2 == 0:
                placement = anneal_placement(
                    design, placement, rng, steps=anneal_steps,
                    replicas=replicas, workers=workers, blocked=blocked,
                )
            router = Router(
                design, placement, shape, reg, rng=rng, array=target,
                defects=defect_map,
            )
            routes = router.route_design(strict=True)
        except (PlacementError, RoutingError) as e:
            last_error = e
            continue
        if target is None:
            target = CellArray(*shape)
        report = analyze_timing(
            design, placement, state=router.state, routes=routes,
            target_period=target_period,
        )
        if timing_driven:
            placement, router, routes, report = _timing_driven_candidate(
                design, target, reg, placement, router, routes, report,
                seed=seed + 7919 * attempt, anneal_steps=anneal_steps,
                timing_weight=timing_weight, target_period=target_period,
                defects=defect_map,
            )
        counts = emit_design(target, router.state)
        if defect_map is not None:
            # The construction above guarantees cleanliness; this check
            # is the proof the contract demands (a DefectViolation here
            # is a flow bug, not a retryable placement jam).
            from repro.pnr.defects import assert_defect_clean

            assert_defect_clean(target, defect_map)
        return _build_result(
            netlist, design, target, reg, placement, routes, counts,
            n_routable=len(router.routable_nets()),
            report=report,
            state=router.state,
        )
    raise PnrError(
        f"could not compile {netlist.name!r} after {max_attempts} attempts: "
        f"{last_error}"
    ) from last_error


#: Acceptance probability the weight-ladder rungs derive their starting
#: temperature from: cool enough that a warm-started refinement mostly
#: descends, warm enough to hop out of shallow minima.
_RUNG_T_ACCEPT = 0.2


def _timing_driven_candidate(
    design, target, reg, placement, router, routes, report,
    *, seed, anneal_steps, timing_weight, target_period, defects=None,
):
    """Re-place/route under criticality weights; keep the fastest result.

    The baseline candidate is the wirelength-only compile.  Each
    challenger **warm-starts** from the best placement so far: a short,
    cool anneal (a fraction of the full budget, its ``t_start``
    re-derived per rung from the :data:`_RUNG_T_ACCEPT` acceptance
    target against that rung's weighted landscape) with every net's
    HPWL scaled by
    ``1 + w * criticality`` (criticality from the best report so far) —
    refining the previous rung's answer instead of re-annealing from the
    greedy seed.  Routing reuses the previous rung's work too: nets none
    of whose endpoints moved replay their committed route journal, and
    only the disturbed nets are searched again (see
    :meth:`repro.pnr.route.Router.route_design`).  Annealing is
    stochastic, so a short ladder of weights around ``timing_weight`` is
    tried rather than a single shot.  The candidate with the shortest
    cycle time (wirelength breaking ties) wins, so ``timing_driven=True``
    can only match or improve the HPWL-only cycle time.
    """
    best = (placement, router, routes, report)
    best_wl = sum(r.wirelength for r in routes.values())
    if anneal_steps is not None:
        rung_steps = anneal_steps
    else:
        rung_steps = max(200, default_anneal_steps(len(design.gates)) // 8)
    # Two rungs: the requested weight and an aggressive one.  (The old
    # engine also tried 0.5x, but each rung re-annealed from scratch —
    # warm-started rungs refine the same placement, so the middle rung
    # stopped earning its wall-clock.)
    for trial, w in enumerate((timing_weight, 2.0 * timing_weight)):
        if w <= 0:
            continue
        checkpoint()
        b_placement, _, b_routes, b_report = best
        weights = {
            net: 1.0 + w * crit for net, crit in b_report.criticality.items()
        }
        rng = random.Random(seed ^ (0x5EED71 + trial))
        # Each rung cools from its own landscape: t_start is re-derived
        # from the acceptance target against *this* rung's weighted
        # objective and warm placement, rather than one region-sized
        # constant shared by every rung (which overheated cool rungs —
        # a warm-started refinement wants low acceptance, and the right
        # temperature for that depends on the weights in play).
        t_placement = anneal_placement(
            design, b_placement, rng, steps=rung_steps,
            net_weights=weights, t_start_accept=_RUNG_T_ACCEPT,
            blocked=defects.dead_cells if defects is not None else None,
        )
        moved = {
            name
            for name, pos in t_placement.positions.items()
            if b_placement.positions[name] != pos
        }
        if not moved and trial > 0:
            # The cool rung accepted nothing: routing would replay the
            # best candidate verbatim (its critical nets were already
            # re-searched on the rung that produced it).
            continue
        try:
            t_router = Router(
                design, t_placement, (target.n_rows, target.n_cols), reg,
                rng=rng, array=target, net_criticality=b_report.criticality,
                warm_routes=b_routes, warm_moved=moved, defects=defects,
            )
            t_routes = t_router.route_design(strict=True)
        except (PlacementError, RoutingError):
            continue
        t_report = analyze_timing(
            design, t_placement, state=t_router.state, routes=t_routes,
            target_period=target_period,
        )
        t_wl = sum(r.wirelength for r in t_routes.values())
        if (t_report.cycle_time, t_wl) < (best[3].cycle_time, best_wl):
            best = (t_placement, t_router, t_routes, t_report)
            best_wl = t_wl
        else:
            # A warm-started rung that could not improve the best
            # candidate means the placement is at a local optimum for
            # this criticality profile — a stronger weight on the same
            # start almost never changes that, so stop climbing.
            break
    return best


def _check_region(array: CellArray, region: Region) -> None:
    if (
        region.row + region.n_rows > array.n_rows
        or region.col + region.n_cols > array.n_cols
    ):
        raise PnrError(
            f"region {region.name!r} exceeds the {array.n_rows}x"
            f"{array.n_cols} array"
        )
    for r in range(region.row, region.row + region.n_rows):
        for c in range(region.col, region.col + region.n_cols):
            if not array.cell(r, c).is_blank():
                raise PnrError(
                    f"region {region.name!r} overlaps configured cell ({r},{c})"
                )


def _build_result(
    netlist, design, array, region, placement, routes, counts, n_routable,
    report=None, state=None,
) -> PnrResult:
    input_wires = {}
    for net in design.inputs:
        route = routes.get(net)
        if route is not None and route.entry_wire is not None:
            input_wires[net] = wire_name(*route.entry_wire)
    output_wires = {}
    for net in design.outputs:
        route = routes.get(net)
        if route is None:
            continue
        driven = [w for w in route.wires if w != route.entry_wire]
        if driven:
            output_wires[net] = wire_name(*driven[0])
    wirelength = sum(r.wirelength for r in routes.values())
    stats = PnrStats(
        n_source_cells=netlist.n_cells,
        n_gates=design.n_gates,
        cells_logic=counts["cells_logic"],
        cells_route=counts["cells_route"],
        wirelength=wirelength,
        hpwl=hpwl(design, placement),
        routed_nets=len(routes),
        total_nets=n_routable,
        region_cells=region.cells,
        area=routed_area_breakdown(counts["cells_logic"], counts["cells_route"]),
        cycle_time=report.cycle_time if report else 0,
        worst_slack=report.worst_slack if report else 0,
        logic_delay=report.logic_delay if report else 0,
    )
    return PnrResult(
        source=netlist,
        design=design,
        array=array,
        region=region,
        placement=placement,
        routes=routes,
        input_wires=input_wires,
        output_wires=output_wires,
        reset_wire=(
            input_wires.get(design.reset_net) if design.reset_net else None
        ),
        stats=stats,
        timing=report,
        routing_state=state,
    )


def _compare_vectors(stage, net, where, expected, got) -> None:
    if not np.array_equal(expected, got):
        bad = int(np.argmax(expected != got))
        raise VerificationError(
            f"{stage} mismatch on {net!r}{where} at vector {bad}: "
            f"expected {expected[bad]}, got {got[bad]}"
        )


def _sweep_equivalence(
    source: Netlist,
    input_nets,
    out_names,
    run_batch,
    run_event,
    n_vectors: int,
    seed: int,
    event_vectors: int,
    describe=lambda net: "",
) -> tuple[int, int]:
    """The shared random-vector equivalence sweep.

    Drives ``n_vectors`` seeded random vectors through the source
    netlist (batch reference) and through ``run_batch`` /
    ``run_event`` — callables returning ``{source net: values}`` for
    whatever realisation is under test (a configured array, a sharded
    system) — raising :class:`VerificationError` on the first
    mismatch.  ``describe(net)`` decorates messages (e.g. with the
    fabric wire).  Returns ``(n_vectors, n_event)``.
    """
    rng = np.random.default_rng(seed)
    stimuli = {
        name: rng.integers(0, 2, size=n_vectors, dtype=np.uint8)
        for name in input_nets
    }
    expected = BatchBackend().evaluate(source, stimuli, outputs=list(out_names))
    got = run_batch(stimuli)
    for net in out_names:
        _compare_vectors("batch", net, describe(net), expected[net], got[net])
    n_event = min(event_vectors, n_vectors)
    if n_event:
        ev = run_event({k: v[:n_event] for k, v in stimuli.items()})
        for net in out_names:
            _compare_vectors(
                "event", net, describe(net), expected[net][:n_event], ev[net]
            )
    return n_vectors, n_event


def _settle_compare(source: Netlist, realised: Netlist, pairs) -> None:
    """Constant-design path: quiesce both netlists, compare each output.

    ``pairs`` is ``(source net, observed net, message suffix)`` —
    the batch sweep needs at least one stimulus net, so designs with no
    primary inputs settle on the event scheduler instead.
    """
    ref = EventBackend().elaborate(source)
    fab = EventBackend().elaborate(realised)
    ref.run_to_quiescence(max_time=10_000)
    fab.run_to_quiescence(max_time=10_000)
    for net, observed, where in pairs:
        if ref.value(net) != fab.value(observed):
            raise VerificationError(
                f"constant mismatch on {net!r}{where}: "
                f"expected {ref.value(net)}, got {fab.value(observed)}"
            )


def verify_equivalence(
    result: PnrResult,
    n_vectors: int = 1024,
    seed: int = 0,
    event_vectors: int = 16,
) -> dict[str, object]:
    """Prove the configured array matches its source netlist.

    Sweeps ``n_vectors`` random input vectors through the source netlist
    and the lowered fabric on the batch backend, then replays the first
    ``event_vectors`` of them on the event backend (reference
    semantics).  Only combinational designs qualify — stateful pairs
    need sequence-level testbenches.  Raises
    :class:`VerificationError` on the first mismatch.
    """
    if result.design.has_stateful_gates():
        raise VerificationError(
            "random-vector equivalence needs a combinational design; "
            "drive the stateful fabric with event sequences instead"
        )
    if not result.output_wires:
        raise VerificationError("the source netlist declares no outputs")
    src_inputs = result.design.inputs
    if not src_inputs:
        return _verify_constant_design(result)
    fabric = result.fabric_netlist().netlist
    wires = list(result.output_wires.values())

    def fabric_stimuli(stimuli):
        fab_stimuli = {
            result.input_wires[name]: bits
            for name, bits in stimuli.items()
            if name in result.input_wires
        }
        # On a shared array the lowered netlist includes every region;
        # tie free inputs that are not ours low so the sweep stays
        # two-valued.
        zeros = np.zeros(len(next(iter(stimuli.values()))), dtype=np.uint8)
        for name in fabric.free_inputs():
            fab_stimuli.setdefault(name, zeros)
        return fab_stimuli

    def run_on(backend):
        def run(stimuli):
            got = backend.evaluate(fabric, fabric_stimuli(stimuli), outputs=wires)
            return {net: got[w] for net, w in result.output_wires.items()}
        return run

    n_batch, n_event = _sweep_equivalence(
        result.source, src_inputs, list(result.output_wires),
        run_on(BatchBackend()), run_on(EventBackend()),
        n_vectors, seed, event_vectors,
        describe=lambda net: f" (wire {result.output_wires[net]})",
    )
    return {
        "vectors_batch": n_batch,
        "vectors_event": n_event,
        "outputs": len(result.output_wires),
        "ok": True,
    }


def _verify_constant_design(result: PnrResult) -> dict[str, object]:
    """Verify a design with no primary inputs (constants only)."""
    _settle_compare(
        result.source,
        result.fabric_netlist().netlist,
        [
            (net, wire, f" (wire {wire})")
            for net, wire in result.output_wires.items()
        ],
    )
    return {
        "vectors_batch": 0,
        "vectors_event": 1,
        "outputs": len(result.output_wires),
        "ok": True,
    }
