"""Stage 4 — emission: routing state to concrete cell configurations.

Turns the bookkeeping of :class:`repro.pnr.route.RoutingState` into
validated :class:`repro.fabric.nandcell.CellConfig` objects installed on
a :class:`repro.fabric.array.CellArray`.  The emitted array is ordinary
fabric state: it serialises through :mod:`repro.fabric.bitstream`, lowers
through :meth:`CellArray.to_netlist`, and simulates on either netlist
backend — nothing downstream knows the configuration came from an
automatic flow rather than a hand-placed macro.

Emission rules (all derived from the Fig. 4/5 tables):

* a ``nand`` gate is one product row per fan-out branch with a BUFFER
  driver; an ``and`` gate the same rows with INVERT drivers;
* a ``const`` gate is a constant-1 row (all crosspoints FORCE_OFF) whose
  driver polarity selects the emitted value;
* a feed-through row is a single-input product with an INVERT driver — a
  non-inverting buffer.  Feed-through rows land on blank cells *and* on
  the spare rows of placed logic cells (one cell, logic plus wire);
* the stateful pairs replay :func:`repro.synth.macros.c_element_pair` /
  :func:`repro.synth.macros.ecse_pair` cell-for-cell, with the optional
  reset literal folded into every product of the C-element.
"""

from __future__ import annotations

from repro.fabric.array import CellArray
from repro.fabric.driver import DriverMode
from repro.fabric.nandcell import CellConfig, InputSource, LfbPartner
from repro.pnr.route import RoutingState
from repro.pnr.techmap import (
    CONST_GATE,
    MappedGate,
    PAIR_CELEMENT,
    PAIR_EVENTLATCH,
    PRODUCT_AND,
    PRODUCT_NAND,
)


class EmitError(RuntimeError):
    """The routing state is incomplete or inconsistent for emission."""


def emit_design(array: CellArray, state: RoutingState) -> dict[str, int]:
    """Install every placed gate and feed-through row on ``array``.

    Returns ``{"cells_logic": ..., "cells_route": ...}`` where
    ``cells_route`` counts cells burned *purely* as interconnect (shared
    logic/route cells count as logic).  All touched cells must be blank
    beforehand (checked by the flow layer).
    """
    design = state.design
    placement = state.placement
    configs: dict[tuple[int, int], CellConfig] = {}
    n_logic = 0
    for gate in design.gates.values():
        in_cell = placement.input_cell(gate)
        out_cell = placement.output_cell(gate)
        out_rows = state.gate_rows.get(out_cell, {})
        if gate.kind in (PRODUCT_NAND, PRODUCT_AND):
            configs[in_cell] = _emit_product(state, gate, in_cell, out_rows)
        elif gate.kind == CONST_GATE:
            configs[in_cell] = _emit_const(gate, out_rows)
        elif gate.kind == PAIR_CELEMENT:
            configs[in_cell], configs[out_cell] = _emit_celement(
                state, gate, in_cell, out_rows
            )
        elif gate.kind == PAIR_EVENTLATCH:
            configs[in_cell], configs[out_cell] = _emit_eventlatch(
                state, gate, in_cell, out_rows
            )
        else:  # pragma: no cover - kinds are closed
            raise EmitError(f"gate {gate.name!r}: unknown kind {gate.kind!r}")
        n_logic += gate.width
    n_route = 0
    for cell, rows in state.thru_rows.items():
        cfg = configs.get(cell)
        if cfg is None:
            cfg = CellConfig()
            configs[cell] = cfg
            n_route += 1
        for row, (in_col, direction) in rows.items():
            if cfg.drivers[row] is not DriverMode.OFF:
                raise EmitError(
                    f"cell {cell}: row {row} claimed by both logic and routing"
                )
            cfg.set_product(row, [in_col])
            cfg.drivers[row] = DriverMode.INVERT  # NAND + INVERT = buffer
            cfg.directions[row] = direction
    for (r, c), cfg in configs.items():
        array.set_cell(r, c, cfg)
    return {"cells_logic": n_logic, "cells_route": n_route}


def _input_columns(state: RoutingState, gate: MappedGate, in_cell) -> list[int]:
    """The columns the router assigned to the gate's input nets."""
    assign = state.col_assign.get(in_cell, {})
    by_net: dict[str, int] = {}
    for col, net in assign.items():
        by_net.setdefault(net, col)
    cols = []
    for net in gate.inputs:
        col = by_net.get(net)
        if col is None:
            raise EmitError(
                f"gate {gate.name!r}: input net {net!r} was never routed "
                f"to cell {in_cell} (partial routing?)"
            )
        cols.append(col)
    return cols


def _emit_product(state, gate: MappedGate, in_cell, out_rows) -> CellConfig:
    cols = sorted(set(_input_columns(state, gate, in_cell)))
    if not out_rows:
        raise EmitError(f"gate {gate.name!r}: no output row was committed")
    cfg = CellConfig()
    mode = DriverMode.BUFFER if gate.kind == PRODUCT_NAND else DriverMode.INVERT
    for row, direction in out_rows.items():
        cfg.set_product(row, cols)
        cfg.drivers[row] = mode
        cfg.directions[row] = direction
    return cfg


def _emit_const(gate: MappedGate, out_rows) -> CellConfig:
    if not out_rows:
        raise EmitError(f"gate {gate.name!r}: no output row was committed")
    cfg = CellConfig()
    mode = DriverMode.BUFFER if gate.value == 1 else DriverMode.INVERT
    for row, direction in out_rows.items():
        cfg.set_constant(row, 1)  # the row reads 1; the driver sets polarity
        cfg.drivers[row] = mode
        cfg.directions[row] = direction
    return cfg


def _pair_outputs(gate: MappedGate, cfg: CellConfig, out_rows) -> CellConfig:
    """Replicate the collector row onto every fan-out row of cell B."""
    if not out_rows:
        raise EmitError(f"gate {gate.name!r}: no output row was committed")
    for row, direction in out_rows.items():
        if row != 0:
            cfg.crosspoints[row] = list(cfg.crosspoints[0])
        cfg.drivers[row] = DriverMode.BUFFER
        cfg.directions[row] = direction
    return cfg


def _emit_celement(state, gate: MappedGate, in_cell, out_rows):
    """c = a.b + a.c + b.c, optionally gated by the reset literal."""
    cols = _input_columns(state, gate, in_cell)  # a, b[, rst_n] at 0, 1[, 2]
    has_reset = len(gate.inputs) == 3
    a_col, b_col = cols[0], cols[1]
    extra = [cols[2]] if has_reset else []
    a = CellConfig()
    a.lfb_partner = LfbPartner.EAST
    a.input_select[5] = InputSource.LFB0  # c, from the collector's tap
    for row, product in enumerate(([a_col, b_col], [a_col, 5], [b_col, 5])):
        a.set_product(row, sorted(set(product + extra)))
        a.drivers[row] = DriverMode.BUFFER
    b = CellConfig()
    b.set_product(0, [0, 1, 2])
    b.lfb_taps[0] = 0
    return a, _pair_outputs(gate, b, out_rows)


def _emit_eventlatch(state, gate: MappedGate, in_cell, out_rows):
    """z = R.A.D + R'.A'.D + R.A'.z + R'.A.z + D.z (paper Fig. 12)."""
    d, r, rn, k, kn = _input_columns(state, gate, in_cell)
    a = CellConfig()
    a.lfb_partner = LfbPartner.EAST
    a.input_select[5] = InputSource.LFB0  # z, from the collector's tap
    for row, product in enumerate(
        ([r, k, d], [rn, kn, d], [r, kn, 5], [rn, k, 5], [d, 5])
    ):
        a.set_product(row, sorted(set(product)))
        a.drivers[row] = DriverMode.BUFFER
    b = CellConfig()
    b.set_product(0, [0, 1, 2, 3, 4])
    b.lfb_taps[0] = 0
    return a, _pair_outputs(gate, b, out_rows)
