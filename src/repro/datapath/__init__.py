"""Datapath generators: ripple-carry adders, accumulators, bit-serial units.

The concrete realisations of the paper's Fig. 10 datapath example and the
Section 4 serial-versus-parallel argument.
"""

from repro.datapath.accumulator import Accumulator
from repro.datapath.adder import AdderPorts, RippleCarryAdder, ripple_carry_netlist
from repro.datapath.multiplier import (
    MultiplierCost,
    ShiftAddMultiplier,
    array_multiplier_cost,
    bit_serial_cost,
    shift_add_cost,
    style_comparison,
)
from repro.datapath.bitserial import (
    AdderTiming,
    BitSerialAdder,
    CELL_PITCH_LAMBDA,
    bit_serial_timing,
    crossover_width,
    ripple_timing,
)

__all__ = [
    "Accumulator",
    "AdderPorts",
    "RippleCarryAdder",
    "ripple_carry_netlist",
    "MultiplierCost",
    "ShiftAddMultiplier",
    "array_multiplier_cost",
    "bit_serial_cost",
    "shift_add_cost",
    "style_comparison",
    "AdderTiming",
    "BitSerialAdder",
    "CELL_PITCH_LAMBDA",
    "bit_serial_timing",
    "crossover_width",
    "ripple_timing",
]
