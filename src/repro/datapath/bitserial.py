"""Bit-serial arithmetic and the serial-versus-parallel trade (Section 4).

The paper argues that once interconnect delay dominates, "alternative
techniques such as bit-serial arithmetic ... may offer equivalent or
better performance".  This module provides:

* a cycle-accurate :class:`BitSerialAdder` model (one full-adder slice plus
  a carry flip-flop, processing one bit per clock);
* first-order timing models for both adder styles under a technology node,
  built on :mod:`repro.util.technology`:

  - ripple-carry: one long combinational evaluation whose wire component
    grows with the carry chain's physical length;
  - bit-serial: n short cycles whose critical path is a single slice.

* :func:`crossover_width` — the operand width where bit-serial overtakes
  ripple-carry at a node, the paper's qualitative claim made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.technology import TechnologyNode


class BitSerialAdder:
    """Cycle-accurate serial adder: LSB-first, one bit per clock."""

    def __init__(self) -> None:
        self._carry = 0
        self.cycles = 0

    def reset(self) -> None:
        """Clear the carry register."""
        self._carry = 0

    def step(self, a_bit: int, b_bit: int) -> int:
        """Process one bit pair; returns the sum bit."""
        if a_bit not in (0, 1) or b_bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {a_bit!r}, {b_bit!r}")
        total = a_bit + b_bit + self._carry
        self._carry = total >> 1
        self.cycles += 1
        return total & 1

    @property
    def carry(self) -> int:
        """Current carry register contents."""
        return self._carry

    def add(self, a: int, b: int, n_bits: int) -> int:
        """Add two n-bit numbers serially; returns the (n+1)-bit sum."""
        if a < 0 or b < 0:
            raise ValueError("operands must be non-negative")
        if max(a, b) >= (1 << n_bits):
            raise ValueError(f"operands must fit in {n_bits} bits")
        self.reset()
        out = 0
        for k in range(n_bits):
            out |= self.step((a >> k) & 1, (b >> k) & 1) << k
        out |= self._carry << n_bits
        return out


#: Physical pitch of one fabric cell in lambda (the paper: a cell pair in
#: under 400 lambda^2, i.e. a cell is ~14x14 lambda).
CELL_PITCH_LAMBDA = 14.0

#: Effective per-hop resistance (ohm) of an unbuffered carry path — the
#: pass-transistor / low-drive regime the paper's Section 1 predicts for
#: nano-scale devices ("reduced fanout (i.e. low drive), low gain").  The
#: ripple chain is modelled as an n-section RC ladder with this hop
#: resistance; its Elmore delay grows quadratically in n.
R_HOP_OHM = 10_000.0

#: Fixed load per hop beyond the wire itself (driver diffusion + gate input).
C_HOP_FIXED_FF = 0.1


@dataclass(frozen=True, slots=True)
class AdderTiming:
    """First-order latency model outputs (all in ps)."""

    style: str
    n_bits: int
    total_ps: float
    cycle_ps: float
    n_cycles: int


def _hop_capacitance_ff(node: TechnologyNode) -> float:
    """Capacitance (fF) of one carry hop: a 3-cell span of wire plus load."""
    span_um = 3 * CELL_PITCH_LAMBDA * node.lambda_nm * 1e-3
    return node.wire_c_ff_per_um * span_um + C_HOP_FIXED_FF


def ripple_timing(n_bits: int, node: TechnologyNode) -> AdderTiming:
    """Ripple-carry: logic per slice plus an unbuffered RC carry ladder.

    The carry path is an n-section ladder of hop resistance
    :data:`R_HOP_OHM` and per-hop capacitance from the node's wire model;
    its Elmore delay is 0.5 * n^2 * R * C — quadratic in width.  This is
    the regime in which the paper (citing Agarwal [42]) argues fast-carry
    hardware loses its value.
    """
    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    logic_ps = n_bits * 2.0 * node.gate_delay_ps
    c_hop_f = _hop_capacitance_ff(node) * 1e-15
    ladder_ps = 0.5 * n_bits**2 * R_HOP_OHM * c_hop_f * 1e12
    total = logic_ps + ladder_ps
    return AdderTiming("ripple", n_bits, total, total, 1)


def bit_serial_timing(n_bits: int, node: TechnologyNode) -> AdderTiming:
    """Bit-serial: n short cycles of one actively-driven slice + register.

    The cycle time is local — independent of operand width — which is why
    serial wins once unbuffered long paths get expensive.
    """
    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    cycle = 4.0 * node.gate_delay_ps  # two NAND levels + register
    return AdderTiming("serial", n_bits, n_bits * cycle, cycle, n_bits)


def crossover_width(node: TechnologyNode, max_bits: int = 4096) -> int | None:
    """Smallest width where bit-serial beats ripple-carry, or None."""
    for n in range(1, max_bits + 1):
        if bit_serial_timing(n, node).total_ps < ripple_timing(n, node).total_ps:
            return n
    return None
