"""Accumulator block (paper Fig. 10, right half): adder + register column.

Each bit pairs a full-adder slice with an edge-triggered D flip-flop; the
flip-flop output loops back as the adder's A operand.  On every rising
clock edge the accumulator adds its B input to the running total:

    ACC <- ACC + B

The sum-to-register and register-to-operand paths are west/south folds and
use :meth:`repro.core.platform.PolymorphicPlatform.connect` (see that
module's docstring for why the fold is an explicit modelled route).
"""

from __future__ import annotations

from repro.core.platform import PolymorphicPlatform
from repro.datapath.adder import RippleCarryAdder, full_adder_gates, half_adder_gates
from repro.synth.macros import dff_pair


def accumulator_step_netlist(n_bits: int):
    """The combinational core of one accumulate step, in the netlist IR.

    Computes ``nxt = acc + b`` — the adder cone between the register
    column's Q outputs and its D inputs (the register itself stays in
    the environment, exactly as :class:`Accumulator` holds it in DFF
    pairs).  Inputs ``acc{k}`` / ``b{k}``; outputs ``nxt{k}`` plus the
    overflow carry ``c{n_bits}``.  This is the accumulator's entry in
    the PnR scale benchmarks: its reported critical path is the ripple
    chain that bounds the accumulate clock period.
    """
    from repro.netlist.ir import Netlist

    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    nl = Netlist(f"acc{n_bits}_step")
    carry = None
    for k in range(n_bits):
        a = nl.add_input(f"acc{k}")
        b = nl.add_input(f"b{k}")
        out = nl.add_output(f"nxt{k}")
        cout = f"c{n_bits}" if k == n_bits - 1 else None
        if carry is None:
            _, carry = half_adder_gates(nl, f"fa{k}", a, b, sum_net=out,
                                        carry_net=cout)
        else:
            _, carry = full_adder_gates(nl, f"fa{k}", a, b, carry,
                                        sum_net=out, carry_net=cout)
    nl.add_output(carry)
    return nl


class Accumulator:
    """An n-bit accumulate-on-clock datapath on the polymorphic fabric."""

    #: Columns per register site: DFF pair (2 cells) + 1 isolation gap.
    COLS_PER_DFF = 3

    def __init__(self, n_bits: int) -> None:
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = int(n_bits)
        adder_cols = RippleCarryAdder.CELLS_PER_BIT * n_bits
        # Adder, one gap column, then DFF sites.
        total_cols = adder_cols + 1 + self.COLS_PER_DFF * n_bits
        self.platform = PolymorphicPlatform(1, total_cols)
        self.adder = RippleCarryAdder(n_bits, platform=self.platform)
        self._dff_ports = []
        for k in range(n_bits):
            col = adder_cols + 1 + self.COLS_PER_DFF * k
            placed = self.platform.place(dff_pair(with_reset=True), 0, col)
            self._dff_ports.append(placed)
        self._wire_folds()
        self._t = 0
        self._clk = 0

    def _wire_folds(self) -> None:
        p = self.platform
        for k in range(self.n_bits):
            dff = self._dff_ports[k]
            # Sum bit k -> register D input.
            p.connect(self.adder.ports.s[k], dff.inputs["d"])
            # Register Q -> adder operand A (both polarities).
            p.connect(dff.outputs["q"], self.adder.ports.a[k])
            p.connect(dff.outputs["q_n"], self.adder.ports.a_n[k])

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def reset(self, settle: int = 500) -> None:
        """Assert and release the asynchronous clear; ACC <- 0."""
        p = self.platform
        for dff in self._dff_ports:
            p.drive_bit(dff.inputs["rst_n"], 0)
            p.drive_bit(dff.inputs["clk"], 0)
            p.drive_bit(dff.inputs["clk_n"], 1)
        p.drive_bit(self.adder.ports.cin, 0)
        p.drive_bit(self.adder.ports.cin_n, 1)
        self._advance(settle)
        for dff in self._dff_ports:
            p.drive_bit(dff.inputs["rst_n"], 1)
        self._advance(settle)
        self._clk = 0

    def set_operand(self, b: int, settle: int = 500) -> None:
        """Present B on the adder's second operand."""
        if not 0 <= b < (1 << self.n_bits):
            raise ValueError(f"b must fit in {self.n_bits} bits, got {b!r}")
        p = self.platform
        for k in range(self.n_bits):
            bit = (b >> k) & 1
            p.drive_bit(self.adder.ports.b[k], bit)
            p.drive_bit(self.adder.ports.b_n[k], 1 - bit)
        self._advance(settle)

    def clock_pulse(self, settle: int = 500) -> None:
        """One rising+falling clock edge: ACC <- ACC + B."""
        p = self.platform
        for dff in self._dff_ports:
            p.drive_bit(dff.inputs["clk"], 1)
            p.drive_bit(dff.inputs["clk_n"], 0)
        self._advance(settle)
        for dff in self._dff_ports:
            p.drive_bit(dff.inputs["clk"], 0)
            p.drive_bit(dff.inputs["clk_n"], 1)
        self._advance(settle)

    def accumulate(self, b: int) -> int:
        """Add ``b`` into the accumulator and return the new value."""
        self.set_operand(b)
        self.clock_pulse()
        return self.value()

    def value(self) -> int:
        """Current accumulator contents (register outputs)."""
        total = 0
        for k, dff in enumerate(self._dff_ports):
            total |= self.platform.bit(dff.outputs["q"]) << k
        return total

    def _advance(self, dt: int) -> None:
        self._t += dt
        self.platform.run(self._t)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def cells_used(self) -> int:
        """Fabric cells configured for the whole accumulator."""
        return self.platform.array.used_cells()

    def cells_per_bit(self) -> float:
        """Cells per accumulated bit (adder slice + register)."""
        return self.cells_used() / self.n_bits
