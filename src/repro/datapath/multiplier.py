"""Shift-add multiplier built from the accumulator block.

An extension exercising composition of the Fig. 10 datapath: an n x n
multiplier as n accumulate steps of conditionally-added, pre-shifted
partial products.  The partial-product gating and shifting are performed
by the host (they are trivial operand staging), while every addition runs
on the fabric accumulator — so the arithmetic path being validated is
entirely the paper's cell-pair adder.

Also provides the first-order cost/latency comparison of the three
multiplier styles the paper's serial-versus-parallel discussion implies:
full array, shift-add (this class), and fully bit-serial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datapath.accumulator import Accumulator
from repro.datapath.adder import RippleCarryAdder
from repro.datapath.bitserial import bit_serial_timing, ripple_timing
from repro.util.technology import TechnologyNode


class ShiftAddMultiplier:
    """n x n -> 2n-bit multiplier on a fabric accumulator."""

    def __init__(self, n_bits: int) -> None:
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = int(n_bits)
        # The accumulator holds the full 2n-bit running product.
        self.accumulator = Accumulator(2 * n_bits)

    def multiply(self, a: int, b: int) -> int:
        """Compute a * b with one fabric accumulation per set bit of b."""
        limit = 1 << self.n_bits
        if not 0 <= a < limit or not 0 <= b < limit:
            raise ValueError(
                f"operands must fit in {self.n_bits} bits, got {a!r}, {b!r}"
            )
        self.accumulator.reset()
        for k in range(self.n_bits):
            if (b >> k) & 1:
                self.accumulator.accumulate(a << k)
        return self.accumulator.value()

    def cells_used(self) -> int:
        """Fabric cells configured (the 2n-bit accumulator)."""
        return self.accumulator.cells_used()


@dataclass(frozen=True, slots=True)
class MultiplierCost:
    """First-order cost/latency of one multiplier organisation."""

    style: str
    n_bits: int
    cells: int
    latency_ps: float


def array_multiplier_cost(n_bits: int, node: TechnologyNode) -> MultiplierCost:
    """Combinational array multiplier: n^2 adder slices, 2n-slice critical path."""
    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    cells = n_bits * n_bits * RippleCarryAdder.CELLS_PER_BIT
    latency = ripple_timing(2 * n_bits, node).total_ps
    return MultiplierCost("array", n_bits, cells, latency)


def shift_add_cost(n_bits: int, node: TechnologyNode) -> MultiplierCost:
    """Shift-add: one 2n-bit accumulator reused n times."""
    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    cells = 2 * n_bits * (RippleCarryAdder.CELLS_PER_BIT + 2)  # + register pair
    per_add = ripple_timing(2 * n_bits, node).total_ps + 4.0 * node.gate_delay_ps
    return MultiplierCost("shift-add", n_bits, cells, n_bits * per_add)


def bit_serial_cost(n_bits: int, node: TechnologyNode) -> MultiplierCost:
    """Fully bit-serial: one slice, n^2 cycles."""
    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    cells = RippleCarryAdder.CELLS_PER_BIT + 2
    cycle = bit_serial_timing(1, node).cycle_ps
    return MultiplierCost("bit-serial", n_bits, cells, n_bits * n_bits * cycle)


def style_comparison(n_bits: int, node: TechnologyNode) -> list[MultiplierCost]:
    """All three organisations, for the area-time trade report."""
    return [
        array_multiplier_cost(n_bits, node),
        shift_add_cost(n_bits, node),
        bit_serial_cost(n_bits, node),
    ]


def array_multiplier_netlist(n_bits: int):
    """A pure-IR combinational n x n array multiplier.

    The gate-level form of :func:`array_multiplier_cost`'s organisation:
    n^2 AND partial products reduced by rows of ripple-carry adders.
    Inputs ``a{k}`` / ``b{k}``; outputs ``p{0}`` .. ``p{2n-1}``.  This is
    the scale-benchmark workload the PnR flow compiles (wirelength and
    cycle time versus array side — see ``benchmarks/bench_pnr.py``);
    contrast with :class:`ShiftAddMultiplier`, which reuses one fabric
    accumulator serially instead.
    """
    from repro.datapath.adder import full_adder_gates, half_adder_gates
    from repro.netlist.ir import Netlist

    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    n = int(n_bits)
    nl = Netlist(f"mul{n}")
    a = [nl.add_input(f"a{k}") for k in range(n)]
    b = [nl.add_input(f"b{k}") for k in range(n)]
    pp = {
        (i, j): nl.add("and", f"pp{i}_{j}", [a[j], b[i]], f"pp{i}_{j}")
        for i in range(n)
        for j in range(n)
    }
    # Row-by-row ripple reduction: acc holds the running sum per weight.
    acc = {j: pp[(0, j)] for j in range(n)}
    for i in range(1, n):
        carry = None
        for j in range(n):
            w = i + j
            x, y = pp[(i, j)], acc.get(w)
            name = f"fa{i}_{j}"
            if y is None and carry is None:
                acc[w] = x
            elif y is None:
                acc[w], carry = half_adder_gates(nl, name, x, carry)
            elif carry is None:
                acc[w], carry = half_adder_gates(nl, name, x, y)
            else:
                acc[w], carry = full_adder_gates(nl, name, x, y, carry)
        if carry is not None:
            acc[i + n] = carry
    for w in range(2 * n):
        out = nl.add_output(f"p{w}")
        if w in acc:
            nl.add("buf", f"out{w}", [acc[w]], out)
        else:  # the top bit of a 1x1 product is constant 0
            nl.add("const", f"out{w}", [], out, value=0)
    return nl
