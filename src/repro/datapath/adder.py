"""Ripple-carry adder generator (paper Fig. 10, left half).

Chains :func:`repro.synth.macros.full_adder_slice` bits east-to-west... in
fabric terms: bit k occupies columns ``3k .. 3k+2`` of one array row.  The
carry ripples automatically through the abutment — the slice's ``cout`` /
``cout'`` leave on east lines 4/5, exactly the columns the next slice
expects ``cin`` / ``cin'`` on, reproducing the paper's *"two horizontal
connections between adjacent cells ... transfer the ripple carry between
bits"*.  Sums exit on the north edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.platform import PolymorphicPlatform
from repro.fabric.array import wire_name
from repro.synth.macros import full_adder_slice


@dataclass(frozen=True, slots=True)
class AdderPorts:
    """Resolved wire names of a placed ripple-carry adder.

    All lists are LSB-first.
    """

    a: list[str]
    a_n: list[str]
    b: list[str]
    b_n: list[str]
    cin: str
    cin_n: str
    s: list[str]
    cout: str
    cout_n: str


class RippleCarryAdder:
    """An n-bit ripple-carry adder configured on a polymorphic platform."""

    #: Cells per bit: product plane + carry collector + sum/ripple cell.
    CELLS_PER_BIT = 3
    #: Product terms per bit in the first-level plane (the paper's five).
    TERMS_PER_BIT = 5

    def __init__(self, n_bits: int, platform: PolymorphicPlatform | None = None) -> None:
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = int(n_bits)
        self.platform = platform or PolymorphicPlatform(1, self.CELLS_PER_BIT * n_bits)
        self.ports = self._build()

    def _build(self) -> AdderPorts:
        a, a_n, b, b_n, s = [], [], [], [], []
        first_cin = first_cin_n = last_cout = last_cout_n = ""
        for k in range(self.n_bits):
            placed = self.platform.place(full_adder_slice(), 0, self.CELLS_PER_BIT * k)
            a.append(placed.inputs["a"])
            a_n.append(placed.inputs["a_n"])
            b.append(placed.inputs["b"])
            b_n.append(placed.inputs["b_n"])
            s.append(placed.outputs["s"])
            if k == 0:
                first_cin = placed.inputs["cin"]
                first_cin_n = placed.inputs["cin_n"]
            last_cout = placed.outputs["cout"]
            last_cout_n = placed.outputs["cout_n"]
        return AdderPorts(
            a=a, a_n=a_n, b=b, b_n=b_n,
            cin=first_cin, cin_n=first_cin_n,
            s=s, cout=last_cout, cout_n=last_cout_n,
        )

    # ------------------------------------------------------------------
    # Functional interface
    # ------------------------------------------------------------------
    def apply(self, a: int, b: int, cin: int = 0, settle: int = 400) -> None:
        """Drive the operands and let the ripple settle."""
        self._check_operand("a", a)
        self._check_operand("b", b)
        if cin not in (0, 1):
            raise ValueError(f"cin must be 0 or 1, got {cin!r}")
        p = self.platform
        for k in range(self.n_bits):
            abit = (a >> k) & 1
            bbit = (b >> k) & 1
            p.drive_bit(self.ports.a[k], abit)
            p.drive_bit(self.ports.a_n[k], 1 - abit)
            p.drive_bit(self.ports.b[k], bbit)
            p.drive_bit(self.ports.b_n[k], 1 - bbit)
        p.drive_bit(self.ports.cin, cin)
        p.drive_bit(self.ports.cin_n, 1 - cin)
        p.settle(settle)

    def result(self) -> tuple[int, int]:
        """(sum, carry-out) currently on the outputs."""
        total = 0
        for k, wire in enumerate(self.ports.s):
            total |= self.platform.bit(wire) << k
        return total, self.platform.bit(self.ports.cout)

    def add(self, a: int, b: int, cin: int = 0) -> int:
        """Convenience: apply, settle, and return the full integer sum."""
        self.apply(a, b, cin)
        s, cout = self.result()
        return s | (cout << self.n_bits)

    def add_batch(self, a_values, b_values, cin_values=None) -> np.ndarray:
        """Add N operand pairs in one bit-parallel pass.

        The adder's netlist is a pure combinational cone, so the platform
        routes this through :class:`repro.netlist.BatchBackend`: all N
        vectors are packed into uint64 lanes and the ripple evaluates
        once per gate, not once per stimulus.  Returns the (n+1)-bit sums.
        """
        a = np.asarray(a_values, dtype=np.int64)
        b = np.asarray(b_values, dtype=np.int64)
        if a.shape != b.shape or a.ndim != 1:
            raise ValueError("a_values and b_values must be equal-length 1-D")
        cin = (
            np.zeros_like(a)
            if cin_values is None
            else np.asarray(cin_values, dtype=np.int64)
        )
        if cin.shape != a.shape:
            raise ValueError("cin_values must match the operand shape")
        limit = 1 << self.n_bits
        if a.min(initial=0) < 0 or b.min(initial=0) < 0 or cin.min(initial=0) < 0:
            raise ValueError("operands must be non-negative")
        if a.max(initial=0) >= limit or b.max(initial=0) >= limit:
            raise ValueError(f"operands must fit in {self.n_bits} bits")
        if cin.max(initial=0) > 1:
            raise ValueError("cin values must be 0/1")
        stimuli: dict[str, np.ndarray] = {}
        for k in range(self.n_bits):
            abit = ((a >> k) & 1).astype(np.uint8)
            bbit = ((b >> k) & 1).astype(np.uint8)
            stimuli[self.ports.a[k]] = abit
            stimuli[self.ports.a_n[k]] = 1 - abit
            stimuli[self.ports.b[k]] = bbit
            stimuli[self.ports.b_n[k]] = 1 - bbit
        cbit = (cin & 1).astype(np.uint8)
        stimuli[self.ports.cin] = cbit
        stimuli[self.ports.cin_n] = 1 - cbit
        wires = list(self.ports.s) + [self.ports.cout]
        res = self.platform.evaluate_batch(stimuli, outputs=wires)
        total = np.zeros_like(a)
        for k, wire in enumerate(self.ports.s):
            total |= res[wire].astype(np.int64) << k
        total |= res[self.ports.cout].astype(np.int64) << self.n_bits
        return total

    def _check_operand(self, name: str, value: int) -> None:
        if not 0 <= value < (1 << self.n_bits):
            raise ValueError(
                f"{name} must fit in {self.n_bits} bits, got {value!r}"
            )

    # ------------------------------------------------------------------
    # Accounting (Fig. 10 claims)
    # ------------------------------------------------------------------
    def cells_used(self) -> int:
        """Fabric cells configured (3 per bit: see module docstring)."""
        return self.platform.array.used_cells()

    def carry_wire(self, k: int) -> str:
        """The ripple-carry wire between bit k and bit k+1 (for tracing)."""
        if not 0 <= k < self.n_bits:
            raise ValueError(f"k must be 0..{self.n_bits - 1}, got {k}")
        return wire_name(0, self.CELLS_PER_BIT * (k + 1), 4)


def full_adder_gates(nl, name: str, x, y, cin, sum_net=None, carry_net=None):
    """(sum, carry) of three bits as IR gates — the rca/multiplier cell.

    Nets are named under ``name``; ``sum_net`` / ``carry_net`` redirect
    the results onto caller-owned nets (e.g. declared outputs).  Shared
    by the array multiplier and accumulator-step generators.
    """
    t = nl.add("xor", f"{name}.x1", [x, y], f"{name}.t")
    s = nl.add("xor", f"{name}.x2", [t, cin], sum_net or f"{name}.s")
    ab = nl.add("and", f"{name}.a1", [x, y], f"{name}.ab")
    tc = nl.add("and", f"{name}.a2", [t, cin], f"{name}.tc")
    co = nl.add("or", f"{name}.o", [ab, tc], carry_net or f"{name}.co")
    return s, co


def half_adder_gates(nl, name: str, x, y, sum_net=None, carry_net=None):
    """(sum, carry) of two bits as IR gates; see :func:`full_adder_gates`."""
    s = nl.add("xor", f"{name}.x", [x, y], sum_net or f"{name}.s")
    co = nl.add("and", f"{name}.a", [x, y], carry_net or f"{name}.co")
    return s, co


def ripple_carry_netlist(n_bits: int):
    """A pure-IR ripple-carry adder (no fabric placement).

    The gate-level description the PnR flow compiles in the tests and
    benches: per bit, two XORs for the sum and the AND/AND/OR majority
    for the carry.  Inputs ``a{k}`` / ``b{k}`` / ``cin``; outputs
    ``s{k}`` and the final carry ``c{n_bits}``.  Contrast with
    :class:`RippleCarryAdder`, which instantiates the hand-mapped
    Fig. 10 slice directly on an array.
    """
    from repro.netlist.ir import Netlist

    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    nl = Netlist(f"rca{n_bits}")
    carry = nl.add_input("cin")
    for k in range(n_bits):
        a, b = nl.add_input(f"a{k}"), nl.add_input(f"b{k}")
        _, carry = full_adder_gates(
            nl, f"fa{k}", a, b, carry,
            sum_net=nl.add_output(f"s{k}"), carry_net=f"c{k+1}",
        )
    nl.add_output(carry)
    return nl
