"""Experiment report tables: the benches' common output format.

Every benchmark regenerates one of the paper's figures or in-text claims
and prints a small table of paper-value versus measured-value rows.  This
module keeps the formatting in one place so ``bench_output.txt`` and
EXPERIMENTS.md stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Row:
    """One comparison row.

    Attributes
    ----------
    quantity:
        What is being compared (e.g. "config bits per block").
    paper:
        The paper's stated value, as printed text.
    measured:
        Our measured/derived value.
    verdict:
        "match", "shape-match", or "deviation" plus optional detail.
    """

    quantity: str
    paper: str
    measured: str
    verdict: str = "match"


@dataclass
class ExperimentReport:
    """A titled collection of comparison rows."""

    experiment: str
    title: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, quantity: str, paper: str, measured: str, verdict: str = "match") -> None:
        """Append a comparison row."""
        self.rows.append(Row(quantity, paper, measured, verdict))

    def note(self, text: str) -> None:
        """Append a free-text note (modelling caveats, substitutions)."""
        self.notes.append(text)

    def render(self) -> str:
        """Fixed-width table for terminal / log output."""
        header = f"== {self.experiment}: {self.title} =="
        cols = ("quantity", "paper", "measured", "verdict")
        widths = [len(c) for c in cols]
        for r in self.rows:
            widths[0] = max(widths[0], len(r.quantity))
            widths[1] = max(widths[1], len(r.paper))
            widths[2] = max(widths[2], len(r.measured))
            widths[3] = max(widths[3], len(r.verdict))
        lines = [header]
        fmt = "  {0:<{w0}}  {1:<{w1}}  {2:<{w2}}  {3:<{w3}}"
        lines.append(fmt.format(*cols, w0=widths[0], w1=widths[1], w2=widths[2], w3=widths[3]))
        lines.append("  " + "-" * (sum(widths) + 6))
        for r in self.rows:
            lines.append(
                fmt.format(
                    r.quantity, r.paper, r.measured, r.verdict,
                    w0=widths[0], w1=widths[1], w2=widths[2], w3=widths[3],
                )
            )
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)

    def all_match(self) -> bool:
        """True when no row records a deviation."""
        return all(r.verdict != "deviation" for r in self.rows)
