"""High-level platform API: place, compile, stimulate, observe.

:class:`PolymorphicPlatform` owns a :class:`repro.fabric.array.CellArray`,
offers macro placement and routing, compiles to the event simulator and
wraps stimulus/observation.

One modelling liberty is made explicit here: :meth:`connect` inserts an
ideal buffered connection between two fabric wires *after* compilation.
The physical fabric's drivers are bidirectionally configurable (the Fig. 8
arrows show potential I/O in all four directions), so folded routes —
an accumulator's sum feeding back to its own operand column, a serial
adder's carry loop — exist in hardware as ordinary configured paths.  Our
compiled model fixes dataflow to east/north to keep the wiring acyclic, so
west/south fold-backs are modelled as explicit buffer gates, counted and
reported as ``folded_routes``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.fabric.array import CellArray, CompiledFabric, elaborate_fabric
from repro.netlist.backends import BatchBackend, SimBackend
from repro.netlist.ir import Netlist
from repro.sim.limits import SimLimits
from repro.sim.primitives import BufGate, NotGate
from repro.sim.scheduler import Simulator
from repro.sim.values import ONE, ZERO
from repro.sim.waveform import TraceSet
from repro.synth.macros import Macro, PlacedMacro, place


@dataclass(frozen=True, slots=True)
class PlatformStats:
    """Resource usage snapshot of a compiled platform.

    Attributes
    ----------
    n_cells_used:
        Non-blank fabric cells.
    n_gates:
        Simulator gates the fabric lowered to.
    n_leaf_devices:
        Configured leaf cells (area proxy).
    folded_routes:
        Ideal west/south connections inserted via :meth:`connect`.
    config_bits:
        Total configuration storage (128 bits per cell, used or not —
        exactly the paper's accounting).
    """

    n_cells_used: int
    n_gates: int
    n_leaf_devices: int
    folded_routes: int
    config_bits: int


class PolymorphicPlatform:
    """A configurable array plus its compiled simulation."""

    def __init__(self, n_rows: int, n_cols: int, limits: SimLimits | None = None) -> None:
        self.array = CellArray(n_rows, n_cols)
        self.limits = limits or SimLimits()
        self._fabric: CompiledFabric | None = None
        self._folded = 0
        self._folds: list[tuple[str, str, str, bool]] = []  # (name, src, dst, invert)
        self._placements: list[PlacedMacro] = []

    # ------------------------------------------------------------------
    # Configuration phase
    # ------------------------------------------------------------------
    def place(self, macro: Macro, row: int, col: int) -> PlacedMacro:
        """Place a macro; only legal before compilation."""
        self._require_uncompiled()
        placed = place(macro, self.array, row, col)
        self._placements.append(placed)
        return placed

    def load_bitstream(self, bits) -> None:
        """Replace the whole configuration from a serialised bitstream."""
        self._require_uncompiled()
        clone = CellArray.from_bitstream(bits)
        if (clone.n_rows, clone.n_cols) != (self.array.n_rows, self.array.n_cols):
            raise ValueError(
                f"bitstream shape {clone.n_rows}x{clone.n_cols} does not match "
                f"platform {self.array.n_rows}x{self.array.n_cols}"
            )
        self.array = clone

    def _require_uncompiled(self) -> None:
        if self._fabric is not None:
            raise RuntimeError(
                "platform already compiled; configuration is frozen "
                "(create a new platform to reconfigure)"
            )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledFabric:
        """Lower the array to a netlist and elaborate it (idempotent).

        Folded routes recorded before compilation become ordinary netlist
        cells, so they are visible to every backend — not just the event
        simulator.
        """
        if self._fabric is None:
            fn = self.array.to_netlist()
            for name, src, dst, invert in self._folds:
                fn.netlist.add("not" if invert else "buf", name, [src], dst)
            self._fabric = elaborate_fabric(fn, limits=self.limits)
        return self._fabric

    @property
    def sim(self) -> Simulator:
        """The simulator (compiles on first access)."""
        return self.compile().sim

    @property
    def netlist(self) -> Netlist:
        """The backend-neutral IR of the design (compiles on first access)."""
        fabric = self.compile()
        assert fabric.netlist is not None
        return fabric.netlist

    def connect(self, src_wire: str, dst_wire: str, invert: bool = False) -> None:
        """Insert an ideal folded route from one wire to another.

        See the module docstring for why this exists.  The connection is a
        1-delay buffer (or inverter) driving ``dst_wire``.  Before
        compilation the fold is recorded into the netlist; afterwards it
        is patched into both the netlist and the live simulator.
        """
        name = f"fold{self._folded}[{src_wire}->{dst_wire}]"
        self._folds.append((name, src_wire, dst_wire, invert))
        self._folded += 1
        if self._fabric is not None:
            self.netlist.add("not" if invert else "buf", name, [src_wire], dst_wire)
            sim = self._fabric.sim
            src, dst = sim.net(src_wire), sim.net(dst_wire)
            gate_cls = NotGate if invert else BufGate
            sim.add(gate_cls(name, [src], dst))

    def evaluate_batch(
        self,
        stimuli: Mapping[str, Sequence[int]],
        outputs: Sequence[str] | None = None,
        backend: SimBackend | None = None,
    ) -> dict[str, np.ndarray]:
        """Evaluate N stimulus vectors against the compiled design.

        Defaults to the bit-parallel :class:`BatchBackend` (with automatic
        event fallback for designs outside the two-valued combinational
        model).  ``outputs`` defaults to the fabric's primary outputs.
        """
        backend = backend or BatchBackend(self.limits)
        if outputs is None:
            outputs = self.compile().output_wires
        return backend.evaluate(self.netlist, stimuli, outputs=outputs)

    # ------------------------------------------------------------------
    # Stimulus and observation
    # ------------------------------------------------------------------
    def drive(self, wire: str, value: int, at: int | None = None) -> None:
        """Drive a fabric wire externally (testbench stimulus)."""
        self.sim.drive(wire, value, at=at)

    def drive_bit(self, wire: str, bit: int, at: int | None = None) -> None:
        """Drive a wire with a Python 0/1."""
        self.drive(wire, ONE if bit else ZERO, at=at)

    def value(self, wire: str) -> int:
        """Current 4-valued level on a wire."""
        return self.sim.value(wire)

    def bit(self, wire: str) -> int:
        """Current value as a Python 0/1; raises on X/Z."""
        v = self.value(wire)
        if v == ONE:
            return 1
        if v == ZERO:
            return 0
        from repro.sim.values import format_value

        raise ValueError(f"wire {wire!r} is {format_value(v)}, not a clean bit")

    def run(self, until: int) -> None:
        """Advance simulation time."""
        self.sim.run(until=until)

    def settle(self, dt: int = 100) -> None:
        """Advance by ``dt`` — enough for small macros to quiesce."""
        self.sim.run(until=self.sim.now + dt)

    def trace(self, *wires: str) -> None:
        """Record transitions on wires (before or after stimulus)."""
        self.sim.trace(*wires)

    def traces(self) -> TraceSet:
        """All recorded waveforms."""
        return TraceSet(self.sim)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self) -> PlatformStats:
        """Resource usage of the compiled design."""
        fabric = self.compile()
        return PlatformStats(
            n_cells_used=self.array.used_cells(),
            n_gates=fabric.n_gates,
            n_leaf_devices=self.array.leaf_count(),
            folded_routes=self._folded,
            config_bits=self.array.n_rows * self.array.n_cols * 128,
        )
