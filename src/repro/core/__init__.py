"""Public high-level API: the platform object and experiment reporting."""

from repro.core.platform import PlatformStats, PolymorphicPlatform
from repro.core.report import ExperimentReport, Row

__all__ = ["PlatformStats", "PolymorphicPlatform", "ExperimentReport", "Row"]
