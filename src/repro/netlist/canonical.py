"""Canonical content hashing for netlists.

:func:`canonical_hash` digests a :class:`repro.netlist.ir.Netlist` into
a hex string that depends only on the *circuit* — the DAG of cell kinds,
parameters, delays and port structure — and not on how the netlist
object happens to be spelled:

* **insertion-order invariant** — adding the same cells in any order
  produces the same hash (the digest is built over the dependency
  structure, not the construction sequence);
* **name invariant** — bijectively renaming cells and internal nets
  (including renaming declared ports *in place*, keeping their
  declaration order) leaves the hash unchanged, because every net is
  identified by the structure that computes it and every declared port
  by its position;
* **pin-permutation invariant for commutative kinds** — swapping the
  inputs of a ``nand``/``and``/``or``/``nor``/``xor``/``celement``
  keeps the hash (those functions are symmetric); positional kinds
  (``table``, ``tristate``, ``eventlatch``) hash their pins in order;
* **content complete** — cell kinds, ``params`` (constant values, truth
  tables, power-on inits), declared delays, dead logic, and the
  input/output port lists all feed the digest, so *distinct* designs
  get distinct hashes (up to SHA-256 collisions).

This is the cache key of the compile service
(:mod:`repro.service`): two clients submitting the same circuit under
different spellings coalesce onto one compiled artifact.

Two caveats, both documented contract rather than accident:

* a free net that is read but neither driven nor declared as an input
  port has no structure to identify it, so it hashes **by name** —
  declare your inputs if you want spelling-independence for them;
* netlists with feedback (cyclic at the cell level) fall back to a
  Weisfeiler–Lehman-style iterative refinement: still deterministic
  and order/name-invariant, but two non-isomorphic cyclic designs are
  only distinguished up to WL refinement power (acyclic designs — the
  only ones the compile flow accepts — use the exact DAG digest).

>>> from repro.netlist import Netlist
>>> a = Netlist("x")
>>> _ = a.add("and", "g1", [a.add_input("p"), a.add_input("q")], a.add_output("y"))
>>> b = Netlist("renamed")
>>> _ = b.add("and", "k9", [b.add_input("u"), b.add_input("v")], b.add_output("out"))
>>> canonical_hash(a) == canonical_hash(b)
True
>>> c = Netlist("different")
>>> _ = c.add("or", "g1", [c.add_input("p"), c.add_input("q")], c.add_output("y"))
>>> canonical_hash(a) == canonical_hash(c)
False
"""

from __future__ import annotations

import hashlib

from repro.netlist.ir import (
    AND,
    CELEMENT,
    NAND,
    NOR,
    Netlist,
    OR,
    XOR,
    CyclicNetlistError,
)

__all__ = ["canonical_hash", "CANONICAL_HASH_VERSION"]

#: Bump when the digest construction changes: hashes are only
#: comparable within one version (the version feeds the digest).
CANONICAL_HASH_VERSION = 1

#: Kinds whose function is symmetric in its inputs: their pin digests
#: are sorted, so pin permutations hash identically.
_COMMUTATIVE: frozenset[str] = frozenset((NAND, AND, OR, NOR, XOR, CELEMENT))


def _h(*parts: str) -> str:
    """SHA-256 over length-prefixed parts (no concatenation ambiguity)."""
    m = hashlib.sha256()
    for p in parts:
        b = p.encode("utf-8")
        m.update(str(len(b)).encode("ascii"))
        m.update(b":")
        m.update(b)
    return m.hexdigest()


def _params_token(cell) -> str:
    """A canonical, order-independent rendering of ``cell.params``."""
    items = sorted((str(k), repr(v)) for k, v in cell.params.items())
    return ";".join(f"{k}={v}" for k, v in items)


def _cell_digest(cell, in_digests: list[str]) -> str:
    if cell.kind in _COMMUTATIVE:
        in_digests = sorted(in_digests)
    return _h(
        "cell", cell.kind, str(cell.delay), _params_token(cell), *in_digests
    )


def _seed_digests(netlist: Netlist) -> dict[str, str]:
    """Structural identity of nets that no cell computes."""
    seeds: dict[str, str] = {}
    for i, port in enumerate(netlist.inputs):
        seeds[port] = _h("in", str(i))
    for name in netlist.free_inputs():
        # Undeclared free nets have no structure and no position: they
        # are identified by name (see the module docstring).
        seeds.setdefault(name, _h("freename", name))
    return seeds


def _net_digest_from_drivers(
    netlist: Netlist, net: str, cell_digest: dict[str, str], seed: str | None
) -> str:
    parts = sorted(cell_digest[d.name] for d in netlist.drivers_of(net))
    if seed is not None:
        # A declared input that is *also* driven keeps its port identity.
        parts.append(seed)
    return _h("net", *parts)


def _digest_acyclic(netlist: Netlist) -> tuple[dict[str, str], dict[str, str]]:
    """Exact DAG digests: one pass in topological order."""
    seeds = _seed_digests(netlist)
    net_digest: dict[str, str] = {}
    cell_digest: dict[str, str] = {}

    def resolve(net: str) -> str:
        d = net_digest.get(net)
        if d is None:
            # Either free (seeded) or all of its drivers already hashed
            # (topological order guarantees drivers precede readers).
            if netlist.drivers_of(net):
                d = _net_digest_from_drivers(
                    netlist, net, cell_digest, seeds.get(net)
                )
            else:
                d = seeds.get(net) or _h("freename", net)
            net_digest[net] = d
        return d

    for cell in netlist.topo_order():
        cell_digest[cell.name] = _cell_digest(
            cell, [resolve(n) for n in cell.inputs]
        )
    for net in netlist.net_names():
        if net not in net_digest:
            if netlist.drivers_of(net):
                net_digest[net] = _net_digest_from_drivers(
                    netlist, net, cell_digest, seeds.get(net)
                )
            else:
                net_digest[net] = seeds.get(net) or _h("freename", net)
    return net_digest, cell_digest


def _digest_cyclic(netlist: Netlist) -> tuple[dict[str, str], dict[str, str]]:
    """WL-style refinement for netlists with feedback.

    Labels start from the same seeds as the exact path and refine until
    the label multiset stabilises (bounded by the cell count): cyclic
    netlists cannot be compiled anyway, but they must still hash
    deterministically and order/name-invariantly.
    """
    seeds = _seed_digests(netlist)
    net_digest = {
        net: seeds.get(net, _h("net0")) for net in netlist.net_names()
    }
    cell_digest = {c.name: _h("cell0", c.kind) for c in netlist.cells}
    cells = netlist.cells
    for _ in range(max(1, len(cells))):
        new_cells = {
            c.name: _cell_digest(c, [net_digest[n] for n in c.inputs])
            for c in cells
        }
        new_nets: dict[str, str] = {}
        for net in netlist.net_names():
            if netlist.drivers_of(net):
                new_nets[net] = _net_digest_from_drivers(
                    netlist, net, new_cells, seeds.get(net)
                )
            else:
                new_nets[net] = net_digest[net]
        if new_cells == cell_digest and new_nets == net_digest:
            break
        cell_digest, net_digest = new_cells, new_nets
    return net_digest, cell_digest


def canonical_hash(netlist: Netlist) -> str:
    """The order- and name-invariant content hash of a netlist.

    Returns a 64-char hex SHA-256 digest.  See the module docstring for
    the exact invariances; the compile service keys its result cache on
    ``(canonical_hash(netlist), compile options)``.
    """
    try:
        netlist.topo_order()
    except CyclicNetlistError:
        net_digest, cell_digest = _digest_cyclic(netlist)
    else:
        net_digest, cell_digest = _digest_acyclic(netlist)
    return _h(
        "netlist",
        str(CANONICAL_HASH_VERSION),
        "inputs",
        str(len(netlist.inputs)),
        "outputs",
        *[net_digest[o] for o in netlist.outputs],
        "cells",
        *sorted(cell_digest.values()),
    )
