"""Backend-neutral netlist intermediate representation.

The build-once / evaluate-many layer between the structural generators
(fabric compiler, macro library, micropipeline builder, datapath
generators) and the simulation engines.  A design is described **as
data** — a :class:`Netlist` of :class:`Cell` records over named nets —
and then handed to any :class:`SimBackend`:

* :class:`EventBackend` — the reference engine: elaborates the netlist
  onto the 4-valued inertial-delay event scheduler
  (:mod:`repro.sim.scheduler`), one stimulus vector at a time;
* :class:`BatchBackend` — a numpy bit-parallel two-valued levelized
  evaluator that packs N stimulus vectors into uint64 lanes and sweeps
  combinational cones in topological order, falling back to the event
  engine for netlists that touch tristate, feedback or X/Z stimulus.

Quickstart — build a design once, evaluate many vectors at once:

>>> from repro.netlist import BatchBackend, Netlist
>>> nl = Netlist("demo")
>>> a, b = nl.add_input("a"), nl.add_input("b")
>>> _ = nl.add("nand", "g1", [a, b], "n1")
>>> _ = nl.add("not", "g2", ["n1"], nl.add_output("y"))   # y = a AND b
>>> out = BatchBackend().evaluate(
...     nl, {"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]})
>>> out["y"].tolist()
[0, 0, 0, 1]

The same netlist elaborates unchanged onto the event engine when the
4-valued timeline matters:

>>> from repro.netlist import EventBackend
>>> sim = EventBackend().elaborate(nl)
>>> sim.drive("a", 1); sim.drive("b", 1)
>>> _ = sim.run_to_quiescence(max_time=100)
>>> sim.value("y")
1

Downstream, :func:`repro.pnr.compile_to_fabric` places and routes any
such netlist onto a :class:`repro.fabric.array.CellArray` — see
``docs/compile-flow.md`` for that flow.  See ARCHITECTURE.md for the
layer diagram.
"""

from repro.netlist.canonical import CANONICAL_HASH_VERSION, canonical_hash
from repro.netlist.backends import (
    BackendError,
    BatchBackend,
    EventBackend,
    ShardStage,
    SimBackend,
    evaluate_staged,
)
from repro.netlist.ir import (
    BATCH_KINDS,
    CELL_KINDS,
    STATEFUL_KINDS,
    Cell,
    CyclicNetlistError,
    NetRef,
    Netlist,
    NetlistError,
    with_fault_points,
)
from repro.sim.limits import DEFAULT_LIMITS, SimLimits

__all__ = [
    "CANONICAL_HASH_VERSION",
    "canonical_hash",
    "BackendError",
    "BatchBackend",
    "EventBackend",
    "ShardStage",
    "SimBackend",
    "evaluate_staged",
    "BATCH_KINDS",
    "CELL_KINDS",
    "STATEFUL_KINDS",
    "Cell",
    "CyclicNetlistError",
    "NetRef",
    "Netlist",
    "NetlistError",
    "with_fault_points",
    "DEFAULT_LIMITS",
    "SimLimits",
]
