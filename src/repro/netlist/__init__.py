"""Backend-neutral netlist intermediate representation.

The build-once / evaluate-many layer between the structural generators
(fabric compiler, macro library, micropipeline builder, datapath
generators) and the simulation engines.  A design is described **as
data** — a :class:`Netlist` of :class:`Cell` records over named nets —
and then handed to any :class:`SimBackend`:

* :class:`EventBackend` — the reference engine: elaborates the netlist
  onto the 4-valued inertial-delay event scheduler
  (:mod:`repro.sim.scheduler`), one stimulus vector at a time;
* :class:`BatchBackend` — a numpy bit-parallel two-valued levelized
  evaluator that packs N stimulus vectors into uint64 lanes and sweeps
  combinational cones in topological order, falling back to the event
  engine for netlists that touch tristate, feedback or X/Z stimulus.

See ARCHITECTURE.md for the layer diagram and a worked example.
"""

from repro.netlist.backends import (
    BackendError,
    BatchBackend,
    EventBackend,
    SimBackend,
)
from repro.netlist.ir import (
    BATCH_KINDS,
    CELL_KINDS,
    STATEFUL_KINDS,
    Cell,
    CyclicNetlistError,
    NetRef,
    Netlist,
    NetlistError,
    with_fault_points,
)
from repro.sim.limits import DEFAULT_LIMITS, SimLimits

__all__ = [
    "BackendError",
    "BatchBackend",
    "EventBackend",
    "SimBackend",
    "BATCH_KINDS",
    "CELL_KINDS",
    "STATEFUL_KINDS",
    "Cell",
    "CyclicNetlistError",
    "NetRef",
    "Netlist",
    "NetlistError",
    "with_fault_points",
    "DEFAULT_LIMITS",
    "SimLimits",
]
