"""The netlist intermediate representation.

A :class:`Netlist` is a flat, ordered collection of :class:`Cell` records
over string-named nets.  It carries no evaluation state whatsoever — the
same netlist can be elaborated onto the event scheduler, compiled into a
bit-parallel batch program, transformed (fault injection, flattening) or
serialised, without rebuilding the design.

Cell kinds mirror the primitive vocabulary of
:mod:`repro.sim.primitives`; per-kind extras (a constant value, a truth
table, a power-on init) travel in ``Cell.params``.  Hierarchy is handled
by *flattening at construction time*: :meth:`Netlist.instantiate` copies a
sub-netlist into the parent under a prefix, splicing its ports onto parent
nets — the fabric's abutment wiring and the macro library both build on
this.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any


class NetlistError(ValueError):
    """Malformed netlist construction or use."""


class CyclicNetlistError(NetlistError):
    """A topological order was requested for a netlist with feedback."""


# ----------------------------------------------------------------------
# Cell kinds
# ----------------------------------------------------------------------

NAND = "nand"
AND = "and"
OR = "or"
NOR = "nor"
XOR = "xor"
NOT = "not"
BUF = "buf"
CONST = "const"
TABLE = "table"
TRISTATE = "tristate"
CELEMENT = "celement"
EVENTLATCH = "eventlatch"

#: Every legal cell kind.
CELL_KINDS: frozenset[str] = frozenset(
    (NAND, AND, OR, NOR, XOR, NOT, BUF, CONST, TABLE, TRISTATE, CELEMENT, EVENTLATCH)
)

#: Kinds that hold internal state (power-on init, capture/pass semantics).
STATEFUL_KINDS: frozenset[str] = frozenset((CELEMENT, EVENTLATCH))

#: Two-valued combinational kinds the batch evaluator can execute directly.
BATCH_KINDS: frozenset[str] = frozenset((NAND, AND, OR, NOR, XOR, NOT, BUF, CONST, TABLE))

#: Fixed input arity per kind; ``None`` means variadic (n >= 0).
_ARITY: dict[str, int | None] = {
    NAND: None,
    AND: None,
    OR: None,
    NOR: None,
    XOR: 2,
    NOT: 1,
    BUF: 1,
    CONST: 0,
    TABLE: None,
    TRISTATE: 2,
    CELEMENT: 2,
    EVENTLATCH: 3,
}


@dataclass(frozen=True, slots=True)
class NetRef:
    """A lightweight handle to a named net inside one netlist."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Cell:
    """One primitive instance: kind, input nets, output net, delay, params.

    ``params`` carries kind-specific extras:

    * ``const``      — ``value`` (0/1);
    * ``table``      — ``table`` (tuple of 0/1, length 2**n_inputs);
    * ``tristate``   — ``inverting`` (bool, default False);
    * ``celement`` / ``eventlatch`` — ``init`` (a 4-valued sim value).
    """

    name: str
    kind: str
    inputs: tuple[str, ...]
    output: str
    delay: int = 1
    params: Mapping[str, Any] = field(default_factory=dict)

    def param(self, key: str, default: Any = None) -> Any:
        """Fetch a kind-specific parameter."""
        return self.params.get(key, default)


def _net_name(net: NetRef | str) -> str:
    return net.name if isinstance(net, NetRef) else str(net)


class Netlist:
    """An ordered, backend-neutral gate-level design description.

    The public construction API is four calls:

    * :meth:`add_input` / :meth:`add_output` declare the ports;
    * :meth:`add` appends one primitive cell and returns a
      :class:`NetRef` to its output, so designs thread naturally;
    * :meth:`instantiate` flattens a sub-netlist in under a prefix.

    A netlist holds no evaluation state — hand it to
    :class:`repro.netlist.EventBackend` or
    :class:`repro.netlist.BatchBackend` to run it, or to
    :func:`repro.pnr.compile_to_fabric` to place and route it onto a
    cell array.

    >>> nl = Netlist("mux2")
    >>> a, b, s = nl.add_input("a"), nl.add_input("b"), nl.add_input("s")
    >>> sn = nl.add("not", "i0", [s], "s_n")
    >>> t0 = nl.add("and", "g0", [a, sn], "t0")
    >>> t1 = nl.add("and", "g1", [b, s], "t1")
    >>> _ = nl.add("or", "g2", [t0, t1], nl.add_output("y"))
    >>> nl.n_cells, nl.free_inputs()
    (4, ['a', 'b', 's'])
    >>> order = [c.name for c in nl.topo_order()]
    >>> order.index("g0") > order.index("i0")   # fan-in comes first
    True
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = str(name)
        self._cells: dict[str, Cell] = {}
        self._nets: dict[str, NetRef] = {}
        self._drivers: dict[str, list[str]] = {}
        self._readers: dict[str, list[str]] = {}
        #: Declared primary input / output port names (order preserved).
        self.inputs: list[str] = []
        self.outputs: list[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def net(self, name: NetRef | str) -> NetRef:
        """Register (or fetch) the net called ``name``."""
        key = _net_name(name)
        ref = self._nets.get(key)
        if ref is None:
            ref = NetRef(key)
            self._nets[key] = ref
            self._drivers[key] = []
            self._readers[key] = []
        return ref

    def add_input(self, name: NetRef | str) -> NetRef:
        """Declare a primary input port."""
        ref = self.net(name)
        if ref.name not in self.inputs:
            self.inputs.append(ref.name)
        return ref

    def add_output(self, name: NetRef | str) -> NetRef:
        """Declare a primary output port."""
        ref = self.net(name)
        if ref.name not in self.outputs:
            self.outputs.append(ref.name)
        return ref

    def add(
        self,
        kind: str,
        name: str,
        inputs: list[NetRef | str] | tuple[NetRef | str, ...],
        output: NetRef | str,
        delay: int = 1,
        **params: Any,
    ) -> NetRef:
        """Append a cell; returns a ref to its output net.

        ``kind`` is one of :data:`CELL_KINDS`; ``inputs`` and ``output``
        accept net names or :class:`NetRef` handles (nets are registered
        on first use, so there is no separate wire-declaration step).
        Kind-specific extras travel in ``params`` — ``value=`` for
        ``const``, ``table=`` for ``table``, ``init=`` for the stateful
        kinds.  Arity, ``value`` and ``table`` are validated here, at
        construction time; ``init`` is interpreted by whatever consumes
        the netlist (backends, the PnR tech-mapper).
        """
        if kind not in CELL_KINDS:
            raise NetlistError(f"unknown cell kind {kind!r}")
        if name in self._cells:
            raise NetlistError(f"duplicate cell name {name!r}")
        if delay < 1:
            raise NetlistError(f"cell {name!r}: delay must be >= 1, got {delay}")
        ins = tuple(_net_name(n) for n in inputs)
        arity = _ARITY[kind]
        if arity is not None and len(ins) != arity:
            raise NetlistError(
                f"cell {name!r}: kind {kind!r} needs {arity} inputs, got {len(ins)}"
            )
        if kind == CONST:
            if params.get("value") not in (0, 1):
                raise NetlistError(
                    f"cell {name!r}: const needs value=0/1, got {params.get('value')!r}"
                )
        if kind == TABLE:
            table = tuple(int(bool(b)) for b in params.get("table", ()))
            if len(table) != (1 << len(ins)):
                raise NetlistError(
                    f"cell {name!r}: table needs {1 << len(ins)} entries for "
                    f"{len(ins)} inputs, got {len(table)}"
                )
            params["table"] = table
        out = self.net(output)
        cell = Cell(
            name=name, kind=kind, inputs=ins, output=out.name,
            delay=int(delay), params=dict(params),
        )
        self._cells[name] = cell
        for n in ins:
            self.net(n)
            self._readers[n].append(name)
        self._drivers[out.name].append(name)
        return out

    def instantiate(
        self,
        sub: "Netlist",
        prefix: str,
        bindings: Mapping[str, NetRef | str] | None = None,
    ) -> dict[str, NetRef]:
        """Flatten ``sub`` into this netlist under ``prefix``.

        ``bindings`` maps sub-netlist port names (declared inputs/outputs)
        to parent nets; unbound ports and internal nets are copied as
        ``{prefix}.{net}``.  Returns the port-name -> parent-net mapping,
        so callers can wire up the instance.
        """
        bindings = dict(bindings or {})
        ports = list(sub.inputs) + [p for p in sub.outputs if p not in sub.inputs]
        unknown = set(bindings) - set(ports)
        if unknown:
            raise NetlistError(
                f"instantiate {sub.name!r}: bindings for non-port nets {sorted(unknown)}"
            )
        rename: dict[str, str] = {}
        for net in sub._nets:
            if net in bindings:
                rename[net] = _net_name(bindings[net])
            else:
                rename[net] = f"{prefix}.{net}"
        for cell in sub.cells:
            self.add(
                cell.kind,
                f"{prefix}.{cell.name}",
                [rename[n] for n in cell.inputs],
                rename[cell.output],
                delay=cell.delay,
                **dict(cell.params),
            )
        return {p: self.net(rename[p]) for p in ports}

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def cells(self) -> list[Cell]:
        """All cells, in insertion order."""
        return list(self._cells.values())

    @property
    def n_cells(self) -> int:
        """Number of cells."""
        return len(self._cells)

    def cell(self, name: str) -> Cell:
        """Fetch a cell by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise NetlistError(f"no cell named {name!r}") from None

    def net_names(self) -> list[str]:
        """All registered nets, in registration order."""
        return list(self._nets)

    def drivers_of(self, net: NetRef | str) -> list[Cell]:
        """Cells driving ``net``."""
        return [self._cells[c] for c in self._drivers.get(_net_name(net), ())]

    def readers_of(self, net: NetRef | str) -> list[Cell]:
        """Cells with ``net`` among their inputs."""
        return [self._cells[c] for c in self._readers.get(_net_name(net), ())]

    def free_inputs(self) -> list[str]:
        """Nets that are read (or exported) but driven by no cell.

        These are the nets a stimulus must supply; declared input ports
        come first, in declaration order.
        """
        seen: list[str] = []
        for n in self.inputs:
            if not self._drivers[n]:
                seen.append(n)
        for n, drvs in self._drivers.items():
            if drvs or n in seen:
                continue
            if self._readers[n] or n in self.outputs:
                seen.append(n)
        return seen

    def multi_driven_nets(self) -> list[str]:
        """Nets with more than one driver (tristate bus candidates)."""
        return [n for n, d in self._drivers.items() if len(d) > 1]

    def kind_counts(self) -> dict[str, int]:
        """Histogram of cell kinds (area/composition statistics)."""
        out: dict[str, int] = {}
        for c in self._cells.values():
            out[c.kind] = out.get(c.kind, 0) + 1
        return out

    def has_stateful_cells(self) -> bool:
        """True when any cell holds internal state."""
        return any(c.kind in STATEFUL_KINDS for c in self._cells.values())

    def topo_order(self) -> list[Cell]:
        """Cells sorted so every cell follows the drivers of its inputs.

        Raises :class:`CyclicNetlistError` on combinational feedback.
        """
        indeg: dict[str, int] = {}
        dependents: dict[str, list[str]] = {c: [] for c in self._cells}
        for cell in self._cells.values():
            preds = {
                d.name
                for n in cell.inputs
                for d in self.drivers_of(n)
                if d.name != cell.name
            }
            indeg[cell.name] = len(preds)
            for p in preds:
                dependents[p].append(cell.name)
        ready = [c for c in self._cells if indeg[c] == 0]
        order: list[Cell] = []
        while ready:
            name = ready.pop()
            order.append(self._cells[name])
            for d in dependents[name]:
                indeg[d] -= 1
                if indeg[d] == 0:
                    ready.append(d)
        if len(order) != len(self._cells):
            stuck = sorted(c for c, k in indeg.items() if k > 0)
            raise CyclicNetlistError(
                f"netlist {self.name!r} has feedback through cells {stuck[:8]}"
            )
        return order

    def arrival_times(self) -> dict[str, int]:
        """Worst-case settle time of every net under the declared delays.

        Longest-path (static timing) propagation: a free input arrives
        at 0, and every cell contributes its inertial ``delay`` on top
        of its latest input.  Multi-driven nets take the worst driver.
        This is the IR-level view of the model in
        ``docs/timing-model.md``; on a netlist lowered from a configured
        fabric it bounds (and, for a fully exercised path, equals) the
        event scheduler's settle time.  Raises
        :class:`CyclicNetlistError` on feedback.

        >>> nl = Netlist("chain")
        >>> a = nl.add_input("a")
        >>> _ = nl.add("not", "g1", [a], "b", delay=2)
        >>> _ = nl.add("not", "g2", ["b"], nl.add_output("y"), delay=3)
        >>> nl.arrival_times()["y"]
        5
        """
        arrival: dict[str, int] = {n: 0 for n in self.free_inputs()}
        for cell in self.topo_order():
            at = (
                max((arrival.get(n, 0) for n in cell.inputs), default=0)
                + cell.delay
            )
            if at > arrival.get(cell.output, 0):
                arrival[cell.output] = at
        return arrival

    def critical_path(self, output: str | None = None) -> list[Cell]:
        """Cells on the longest delay path, launch to capture.

        ``output`` selects the endpoint net (default: the worst-arrival
        declared output, or the worst net overall when no outputs are
        declared).  Returns the driving cells in path order — the
        IR-level delay-metadata accessor behind the PnR timing report's
        critical-path trace.
        """
        arrival = self.arrival_times()
        if output is None:
            candidates = [n for n in self.outputs if n in arrival] or list(arrival)
            if not candidates:
                return []
            output = max(candidates, key=lambda n: arrival[n])
        path: list[Cell] = []
        net = output
        while True:
            drivers = [
                c for c in self.drivers_of(net)
                if max((arrival.get(n, 0) for n in c.inputs), default=0) + c.delay
                == arrival.get(net, 0)
            ]
            if not drivers:
                break
            cell = drivers[0]
            path.append(cell)
            if not cell.inputs:
                break
            net = max(cell.inputs, key=lambda n: arrival.get(n, 0))
        path.reverse()
        return path

    def is_combinational(self) -> bool:
        """True when the batch evaluator can execute this netlist directly:
        two-valued kinds only, single-driven nets, no feedback."""
        if not all(c.kind in BATCH_KINDS for c in self._cells.values()):
            return False
        if self.multi_driven_nets():
            return False
        try:
            self.topo_order()
        except CyclicNetlistError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist({self.name!r}: {self.n_cells} cells, "
            f"{len(self._nets)} nets)"
        )


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------

def with_fault_points(
    netlist: Netlist,
    nets: list[str] | None = None,
    prefix: str = "fault",
) -> tuple[Netlist, list[str]]:
    """Rewrite a netlist with an XOR fault-injection point on each net.

    Every selected single-driven net ``n`` becomes ``n = n__raw XOR
    fault_i`` where ``n__raw`` is the original driver's output and
    ``fault_i`` a fresh primary input.  Driving all fault inputs 0
    reproduces the original function; a 1 flips that net — the standard
    functional fault model the Monte-Carlo yield analysis samples over.

    ``nets`` defaults to every single-driven cell output.  Returns the
    rewritten netlist and the fault input names (in net order).
    """
    multi = set(netlist.multi_driven_nets())
    if nets is None:
        targets = [
            c.output for c in netlist.cells if c.output not in multi
        ]
        # Preserve order but drop duplicates (one fault point per net).
        targets = list(dict.fromkeys(targets))
    else:
        targets = []
        for n in dict.fromkeys(nets):  # one fault point per net
            if n in multi:
                raise NetlistError(
                    f"cannot place a fault point on multi-driven net {n!r}"
                )
            if not netlist.drivers_of(n):
                raise NetlistError(
                    f"cannot place a fault point on undriven net {n!r}"
                )
            targets.append(n)
    target_set = set(targets)
    out = Netlist(name=f"{netlist.name}+faults")
    for cell in netlist.cells:
        dest = (
            f"{cell.output}__raw" if cell.output in target_set else cell.output
        )
        out.add(
            cell.kind, cell.name, list(cell.inputs), dest,
            delay=cell.delay, **dict(cell.params),
        )
    fault_names: list[str] = []
    for i, n in enumerate(targets):
        f = f"{prefix}[{i}]"
        out.add_input(f)
        out.add(XOR, f"{prefix}[{i}].xor", [f"{n}__raw", f], n)
        fault_names.append(f)
    for p in netlist.inputs:
        out.add_input(p)
    for p in netlist.outputs:
        out.add_output(p)
    return out, fault_names
