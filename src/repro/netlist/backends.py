"""Pluggable simulation backends over the netlist IR.

Two engines implement the :class:`SimBackend` protocol:

* :class:`EventBackend` — reference semantics.  Elaborates the netlist
  onto :class:`repro.sim.scheduler.Simulator` (4-valued, inertial delay,
  tristate resolution) and evaluates stimulus vectors one at a time.
  This is byte-for-byte the engine the seed repo drove directly; the
  netlist layer only decouples *building* a design from *running* it.
* :class:`BatchBackend` — throughput semantics.  Compiles a combinational
  netlist into a levelized bit-parallel program: N stimulus vectors are
  packed into ``ceil(N/64)`` uint64 lane words per net and every cell is
  one (or a few) vectorised bitwise ops, evaluated in topological order.
  Netlists the two-valued model cannot express — tristate drivers,
  multi-driven nets, feedback, stateful cells, X/Z stimulus — fall back
  transparently to the event engine, so callers always get an answer
  with reference semantics.

Both backends thread the same :class:`repro.sim.limits.SimLimits` through
to the scheduler, so the oscillation guard fires identically no matter
which engine a design reaches.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.netlist.ir import (
    AND,
    BATCH_KINDS,
    BUF,
    CELEMENT,
    CONST,
    CyclicNetlistError,
    EVENTLATCH,
    NAND,
    NOR,
    NOT,
    Netlist,
    NetlistError,
    OR,
    TABLE,
    TRISTATE,
    XOR,
    Cell,
)
from repro.sim.limits import SimLimits
from repro.sim.primitives import (
    AndGate,
    BufGate,
    CElementGate,
    ConstGate,
    EventLatchGate,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    TableGate,
    TristateGate,
    XorGate,
)
from repro.sim.scheduler import Gate, Simulator
from repro.sim.values import ONE, X


class BackendError(RuntimeError):
    """A backend was asked to execute a netlist it cannot express."""


@runtime_checkable
class SimBackend(Protocol):
    """What every simulation engine offers: batched vector evaluation.

    ``stimuli`` maps free-input net names to equal-length sequences of
    logic values; the result maps each requested output net to a numpy
    array of the same length.
    """

    name: str

    def evaluate(
        self,
        netlist: Netlist,
        stimuli: Mapping[str, Sequence[int]],
        outputs: Sequence[str] | None = None,
        limits: SimLimits | None = None,
    ) -> dict[str, np.ndarray]: ...


def _resolve_outputs(netlist: Netlist, outputs: Sequence[str] | None) -> list[str]:
    if outputs is not None:
        return list(outputs)
    if not netlist.outputs:
        raise NetlistError(
            f"netlist {netlist.name!r} declares no output ports; "
            "pass outputs=[...] explicitly"
        )
    return list(netlist.outputs)


def _normalise_stimuli(
    stimuli: Mapping[str, Sequence[int]],
) -> tuple[dict[str, np.ndarray], int]:
    if not stimuli:
        raise NetlistError("stimuli must cover at least one input net")
    arrays: dict[str, np.ndarray] = {}
    n = -1
    for name, vals in stimuli.items():
        arr = np.atleast_1d(np.asarray(vals, dtype=np.uint8))
        if arr.ndim != 1:
            raise NetlistError(f"stimulus for {name!r} must be 1-D")
        if n < 0:
            n = arr.shape[0]
        elif arr.shape[0] != n:
            raise NetlistError(
                f"stimulus length mismatch: {name!r} has {arr.shape[0]}, "
                f"expected {n}"
            )
        arrays[name] = arr
    return arrays, n


# ----------------------------------------------------------------------
# Event backend
# ----------------------------------------------------------------------

def _build_gate(cell: Cell, sim: Simulator) -> Gate:
    """Lower one IR cell onto a scheduler primitive."""
    ins = [sim.net(n) for n in cell.inputs]
    out = sim.net(cell.output)
    kind, name, delay = cell.kind, cell.name, cell.delay
    if kind == NAND:
        return NandGate(name, ins, out, delay=delay)
    if kind == AND:
        return AndGate(name, ins, out, delay=delay)
    if kind == OR:
        return OrGate(name, ins, out, delay=delay)
    if kind == NOR:
        return NorGate(name, ins, out, delay=delay)
    if kind == XOR:
        return XorGate(name, ins, out, delay=delay)
    if kind == NOT:
        return NotGate(name, ins, out, delay=delay)
    if kind == BUF:
        return BufGate(name, ins, out, delay=delay)
    if kind == CONST:
        return ConstGate(name, out, cell.param("value"), delay=delay)
    if kind == TABLE:
        return TableGate(name, ins, out, cell.param("table"), delay=delay)
    if kind == TRISTATE:
        return TristateGate(
            name, ins, out, delay=delay, inverting=bool(cell.param("inverting", False))
        )
    if kind == CELEMENT:
        return CElementGate(name, ins, out, delay=delay, init=cell.param("init", X))
    if kind == EVENTLATCH:
        return EventLatchGate(name, ins, out, delay=delay, init=cell.param("init", X))
    raise BackendError(f"no scheduler lowering for cell kind {kind!r}")


class EventBackend:
    """Reference backend: the 4-valued inertial-delay event scheduler."""

    name = "event"

    def __init__(self, limits: SimLimits | None = None) -> None:
        self.limits = limits or SimLimits()

    def elaborate(self, netlist: Netlist, sim: Simulator | None = None) -> Simulator:
        """Instantiate every net and cell of ``netlist`` on a simulator."""
        sim = sim if sim is not None else Simulator(limits=self.limits)
        for net in netlist.net_names():
            sim.net(net)
        for cell in netlist.cells:
            sim.add(_build_gate(cell, sim))
        return sim

    def evaluate(
        self,
        netlist: Netlist,
        stimuli: Mapping[str, Sequence[int]],
        outputs: Sequence[str] | None = None,
        limits: SimLimits | None = None,
    ) -> dict[str, np.ndarray]:
        """Evaluate N stimulus vectors, one event simulation at a time.

        Combinational netlists reuse one elaborated simulator across
        vectors; anything stateful is re-elaborated per vector so every
        vector sees power-on conditions (the batch backend's semantics).
        Output values are 4-valued sim codes (0, 1, X=2, Z=3).
        """
        limits = limits or self.limits
        out_names = _resolve_outputs(netlist, outputs)
        arrays, n = _normalise_stimuli(stimuli)
        reusable = not netlist.has_stateful_cells()
        if reusable:
            try:
                netlist.topo_order()
            except CyclicNetlistError:
                reusable = False
        results = {o: np.zeros(n, dtype=np.uint8) for o in out_names}
        sim: Simulator | None = None
        for k in range(n):
            if sim is None or not reusable:
                sim = Simulator(limits=limits)
                self.elaborate(netlist, sim)
            for name, arr in arrays.items():
                sim.drive(name, int(arr[k]))
            sim.run_to_quiescence(max_time=sim.now + limits.max_time)
            for o in out_names:
                results[o][k] = sim.value(o)
        return results


# ----------------------------------------------------------------------
# Batch backend
# ----------------------------------------------------------------------

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _pack(bits: np.ndarray, n_words: int) -> np.ndarray:
    """0/1 vector -> little-endian uint64 lane words."""
    packed = np.packbits(bits, bitorder="little")
    buf = np.zeros(n_words * 8, dtype=np.uint8)
    buf[: packed.shape[0]] = packed
    return buf.view(np.uint64)

def _unpack(words: np.ndarray, n: int) -> np.ndarray:
    """uint64 lane words -> 0/1 vector of length n."""
    return np.unpackbits(words.view(np.uint8), bitorder="little")[:n]


class BatchProgram:
    """A combinational netlist compiled to a levelized lane-word sweep."""

    def __init__(self, netlist: Netlist, order: list[Cell] | None = None) -> None:
        self.netlist = netlist
        self.order = netlist.topo_order() if order is None else order
        self.free_inputs = set(netlist.free_inputs())

    def run(
        self,
        stimuli: Mapping[str, Sequence[int]],
        outputs: Sequence[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Evaluate all stimulus vectors in one bit-parallel sweep."""
        arrays, n = _normalise_stimuli(stimuli)
        return self.run_arrays(arrays, n, outputs)

    def run_arrays(
        self,
        arrays: Mapping[str, np.ndarray],
        n: int,
        outputs: Sequence[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Like :meth:`run`, for stimuli already normalised to arrays."""
        out_names = _resolve_outputs(self.netlist, outputs)
        missing = self.free_inputs - set(arrays)
        if missing:
            raise BackendError(
                f"stimuli missing free inputs: {sorted(missing)[:8]}"
            )
        n_words = (n + 63) // 64
        words: dict[str, np.ndarray] = {
            name: _pack(arr, n_words) for name, arr in arrays.items()
        }
        for cell in self.order:
            words[cell.output] = self._eval_cell(cell, words, n_words)
        return {o: _unpack(self._word(o, words, n_words), n) for o in out_names}

    def _word(
        self, net: str, words: dict[str, np.ndarray], n_words: int
    ) -> np.ndarray:
        w = words.get(net)
        if w is None:
            raise BackendError(f"net {net!r} has no driver and no stimulus")
        return w

    def _eval_cell(
        self, cell: Cell, words: dict[str, np.ndarray], n_words: int
    ) -> np.ndarray:
        ins = [self._word(n, words, n_words) for n in cell.inputs]
        kind = cell.kind
        if kind in (NAND, AND):
            if not ins:
                # Fabric convention: an empty NAND row rests pulled-up.
                acc = np.full(n_words, _ALL_ONES if kind == NAND else 0, dtype=np.uint64)
                return acc
            acc = ins[0].copy()
            for w in ins[1:]:
                acc &= w
            return ~acc if kind == NAND else acc
        if kind in (OR, NOR):
            acc = np.zeros(n_words, dtype=np.uint64)
            for w in ins:
                acc |= w
            return ~acc if kind == NOR else acc
        if kind == XOR:
            return ins[0] ^ ins[1]
        if kind == NOT:
            return ~ins[0]
        if kind == BUF:
            return ins[0].copy()
        if kind == CONST:
            fill = _ALL_ONES if cell.param("value") else np.uint64(0)
            return np.full(n_words, fill, dtype=np.uint64)
        if kind == TABLE:
            table = cell.param("table")
            acc = np.zeros(n_words, dtype=np.uint64)
            for idx, bit in enumerate(table):
                if not bit:
                    continue
                term = np.full(n_words, _ALL_ONES, dtype=np.uint64)
                for k, w in enumerate(ins):
                    term &= w if (idx >> k) & 1 else ~w
                acc |= term
            return acc
        raise BackendError(f"batch evaluator cannot execute kind {kind!r}")


class BatchBackend:
    """Numpy bit-parallel two-valued levelized evaluator.

    ``evaluate`` transparently falls back to the event backend whenever
    the netlist (tristate, feedback, stateful cells, multi-driven nets)
    or the stimulus (X/Z values, driven nets) leaves the two-valued
    combinational model; ``compile`` is the strict entry point that
    raises instead.
    """

    name = "batch"

    def __init__(
        self,
        limits: SimLimits | None = None,
        fallback: EventBackend | None = None,
    ) -> None:
        self.limits = limits or SimLimits()
        self.fallback = fallback or EventBackend(self.limits)

    def supports(self, netlist: Netlist) -> tuple[bool, str]:
        """Can this netlist run bit-parallel?  Returns (ok, reason)."""
        try:
            self.compile(netlist)
        except BackendError as e:
            return False, str(e)
        return True, ""

    def compile(self, netlist: Netlist) -> BatchProgram:
        """Compile to a reusable program; raises on unsupported netlists."""
        bad = sorted({c.kind for c in netlist.cells} - BATCH_KINDS)
        if bad:
            raise BackendError(
                f"netlist {netlist.name!r} is not batch-evaluable: "
                f"unsupported cell kinds {bad}"
            )
        multi = netlist.multi_driven_nets()
        if multi:
            raise BackendError(
                f"netlist {netlist.name!r} is not batch-evaluable: "
                f"multi-driven nets {multi[:4]}"
            )
        try:
            order = netlist.topo_order()
        except CyclicNetlistError as e:
            raise BackendError(
                f"netlist {netlist.name!r} is not batch-evaluable: {e}"
            ) from None
        return BatchProgram(netlist, order=order)

    def evaluate(
        self,
        netlist: Netlist,
        stimuli: Mapping[str, Sequence[int]],
        outputs: Sequence[str] | None = None,
        limits: SimLimits | None = None,
    ) -> dict[str, np.ndarray]:
        """Bit-parallel evaluation with automatic event-backend fallback."""
        try:
            program = self.compile(netlist)
        except BackendError:
            program = None
        if program is not None:
            arrays, n = _normalise_stimuli(stimuli)
            two_valued = all(np.all(a <= ONE) for a in arrays.values())
            driven = any(netlist.drivers_of(name) for name in arrays)
            if two_valued and not driven:
                try:
                    return program.run_arrays(arrays, n, outputs)
                except BackendError:
                    pass  # e.g. an uncovered free input: X semantics needed
        fb = self.fallback if limits is None else EventBackend(limits)
        return fb.evaluate(netlist, stimuli, outputs, limits=limits)


# ----------------------------------------------------------------------
# Staged (sharded) evaluation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardStage:
    """One stage of a staged evaluation: a netlist plus its value plumbing.

    ``input_map`` maps *external value names* (the shared namespace the
    stages communicate through — source-design net names in the sharded
    compile flow) to the stage netlist's stimulus nets; ``output_map``
    maps external names to the stage nets whose values they export.
    Free inputs of the stage netlist not covered by ``input_map`` are
    tied low, matching the equivalence-sweep convention.
    """

    netlist: Netlist
    input_map: Mapping[str, str]
    output_map: Mapping[str, str]


def evaluate_staged(
    stages: Sequence[ShardStage],
    stimuli: Mapping[str, Sequence[int]],
    outputs: Sequence[str] | None = None,
    backend: "SimBackend | None" = None,
) -> dict[str, np.ndarray]:
    """Evaluate a pipeline of netlists, stitching values between stages.

    Each stage is evaluated *independently* on ``backend`` (default: a
    :class:`BatchBackend`), in order; values a stage exports become
    available to every later stage's ``input_map``.  This is the
    simulation model of multi-array sharding: one shard per stage, the
    inter-array channels realised purely as value hand-off — so N
    stimulus vectors sweep each shard bit-parallel exactly once.

    Returns the external-name -> array mapping for ``outputs`` (default:
    everything any stage exported).  Raises :class:`BackendError` when a
    stage needs a value no earlier stage produced and the caller did not
    supply.
    """
    backend = backend or BatchBackend()
    arrays, n = _normalise_stimuli(stimuli)
    values: dict[str, np.ndarray] = dict(arrays)
    zeros = np.zeros(n, dtype=np.uint8)
    exported: list[str] = []
    for k, stage in enumerate(stages):
        stim: dict[str, np.ndarray] = {}
        for ext, net in stage.input_map.items():
            if ext not in values:
                raise BackendError(
                    f"stage {k} ({stage.netlist.name!r}) needs {ext!r} "
                    "before any stage produced it"
                )
            stim[net] = values[ext]
        for net in stage.netlist.free_inputs():
            stim.setdefault(net, zeros)
        got = backend.evaluate(
            stage.netlist, stim, outputs=list(stage.output_map.values())
        )
        for ext, net in stage.output_map.items():
            values[ext] = got[net]
            exported.append(ext)
    if outputs is None:
        outputs = list(dict.fromkeys(exported))
    missing = [o for o in outputs if o not in values]
    if missing:
        raise BackendError(f"no stage produced outputs {missing[:4]}")
    return {o: values[o] for o in outputs}
