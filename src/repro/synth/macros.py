"""Macro library: the paper's circuit examples as placeable cell clusters.

Every macro is a :class:`Macro` — a small dict of relative cell positions
to :class:`CellConfig` plus named input/output ports expressed as relative
wire coordinates.  :func:`place` drops a macro onto a
:class:`repro.fabric.array.CellArray` and resolves the ports to concrete
wire names for the testbench / platform layer.

The library reproduces, cell for cell, the paper's Section 4 structures:

* :func:`complement_cell`      — the "interconnect" cell of Fig. 9 that
  develops complemented input columns;
* :func:`lut_pair`             — the 2-cell product-plane/collector LUT
  ("pairs of cells ... a small LUT with 6 inputs, 6 outputs and 6
  product-terms");
* :func:`d_latch_pair`         — level-triggered (transparent) latch;
* :func:`dff_pair`             — rising-edge D flip-flop as a two-state
  fundamental-mode machine (m, q), using both lfb lines of the pair —
  the Fig. 9 flip-flop, with optional asynchronous reset;
* :func:`c_element_pair`       — Muller C-element (Section 4.1 equation);
* :func:`ecse_pair`            — Sutherland's event-controlled storage
  element (Fig. 12);
* :func:`full_adder_slice`     — the Fig. 10 adder bit: **five product
  terms** {(ab)', (a.cin)', (b.cin)', (a.b.cin)', a+b+cin} in the product
  plane, carry and both carry polarities collected in the second cell,
  sum finished in a third (the accumulator-side plane), with the ripple
  carry leaving on two lines exactly as the paper describes;
* :func:`feedthrough_cell`     — straight routing (the fabric as wire).

Column/line conventions are documented per macro; all data flows east,
with the sum of the adder slice exiting north.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.array import CellArray, wire_name
from repro.fabric.driver import DriverMode
from repro.fabric.nandcell import (
    CellConfig,
    Direction,
    InputSource,
    LfbPartner,
    N_ROWS,
)
from repro.synth.qm import Implicant
from repro.synth.truthtable import TruthTable


@dataclass
class Macro:
    """A placeable cluster of configured cells.

    Attributes
    ----------
    name:
        Macro family name (diagnostics).
    cells:
        Mapping (dr, dc) -> CellConfig, relative to the placement origin.
    inputs / outputs:
        Port name -> (dr, dc, line): the wire ``w[r+dr][c+dc][line]``.
    notes:
        Free-text record of the mapping decisions (kept for ARCHITECTURE.md
        cross-reference).
    """

    name: str
    cells: dict[tuple[int, int], CellConfig] = field(default_factory=dict)
    inputs: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    outputs: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    notes: str = ""

    @property
    def n_cells(self) -> int:
        """Cells the macro occupies."""
        return len(self.cells)

    def product_term_count(self) -> int:
        """NAND rows configured as products across the macro."""
        return sum(
            1
            for cfg in self.cells.values()
            for r in range(N_ROWS)
            if cfg.row_kind(r) == "nand"
        )


@dataclass
class PlacedMacro:
    """A macro bound to an array position with resolved wire names."""

    macro: Macro
    row: int
    col: int
    inputs: dict[str, str]
    outputs: dict[str, str]


def place(macro: Macro, array: CellArray, row: int, col: int) -> PlacedMacro:
    """Install a macro's cells at (row, col) and resolve its ports."""
    for (dr, dc), cfg in macro.cells.items():
        array.set_cell(row + dr, col + dc, cfg)
    ins = {
        name: wire_name(row + dr, col + dc, line)
        for name, (dr, dc, line) in macro.inputs.items()
    }
    outs = {
        name: wire_name(row + dr, col + dc, line)
        for name, (dr, dc, line) in macro.outputs.items()
    }
    return PlacedMacro(macro=macro, row=row, col=col, inputs=ins, outputs=outs)


def macro_netlist(macro: Macro):
    """Lower a macro, placed alone at the origin, to the netlist IR.

    Returns ``(netlist, inputs, outputs)`` where the port dicts map the
    macro's port names to concrete wire names — the build-once handle the
    batch backend (truth-table extraction, Monte-Carlo fault sweeps)
    consumes without ever touching the event simulator.
    """
    n_rows = 1 + max(dr for dr, _ in macro.cells)
    n_cols = 1 + max(dc for _, dc in macro.cells)
    array = CellArray(n_rows, n_cols)
    placed = place(macro, array, 0, 0)
    fn = array.to_netlist()
    return fn.netlist, dict(placed.inputs), dict(placed.outputs)


def full_adder_testbench():
    """The Fig. 10 adder slice plus its exhaustive legal testbench.

    Returns ``(netlist, stimulus, golden)``: the slice's netlist, the 8
    complement-consistent (a, b, cin) input patterns keyed by wire name,
    and the expected sum/carry responses — the fixture the functional
    Monte-Carlo yield sweep and the backend-equivalence checks share.
    """
    import numpy as np

    nl, ins, outs = macro_netlist(full_adder_slice())
    idx = np.arange(8)
    a, b, cin = idx & 1, (idx >> 1) & 1, (idx >> 2) & 1
    stimulus = {
        ins["a"]: a, ins["a_n"]: 1 - a,
        ins["b"]: b, ins["b_n"]: 1 - b,
        ins["cin"]: cin, ins["cin_n"]: 1 - cin,
    }
    total = a + b + cin
    golden = {
        outs["s"]: (total & 1).astype(np.uint8),
        outs["cout"]: (total >> 1).astype(np.uint8),
    }
    return nl, stimulus, golden


# ----------------------------------------------------------------------
# Routing / complement generation
# ----------------------------------------------------------------------

def feedthrough_cell(lines: dict[int, int] | None = None, invert: bool = False) -> Macro:
    """A cell routing input lines to output lines (the fabric as wire).

    ``lines`` maps input column -> output row/line (default: identity on
    all six).  Non-inverting by default (NAND row + INVERT driver).
    """
    lines = dict(lines) if lines is not None else {i: i for i in range(6)}
    cfg = CellConfig()
    for col, out_line in lines.items():
        cfg.set_product(out_line, [col])
        cfg.drivers[out_line] = DriverMode.BUFFER if invert else DriverMode.INVERT
    m = Macro(name="feedthrough", cells={(0, 0): cfg})
    for col in lines:
        m.inputs[f"in{col}"] = (0, 0, col)
    for col, out_line in lines.items():
        m.outputs[f"out{out_line}"] = (0, 1, out_line)
    m.notes = "single-input NAND rows as buffers; paper Section 4 feed-through"
    return m


def complement_cell(n_vars: int = 3) -> Macro:
    """The Fig. 9 interconnect cell: raw inputs -> true/complement columns.

    Inputs arrive on columns 0..n_vars-1; outputs leave east as
    ``line 2k = x_k`` and ``line 2k+1 = NOT x_k``.
    """
    if not 1 <= n_vars <= 3:
        raise ValueError(f"complement_cell supports 1..3 variables, got {n_vars}")
    cfg = CellConfig()
    m = Macro(name=f"complement{n_vars}", cells={(0, 0): cfg})
    for k in range(n_vars):
        cfg.set_product(2 * k, [k])
        cfg.drivers[2 * k] = DriverMode.INVERT  # NAND+INVERT = true value
        cfg.set_product(2 * k + 1, [k])
        cfg.drivers[2 * k + 1] = DriverMode.BUFFER  # NAND = complement
        m.inputs[f"x{k}"] = (0, 0, k)
        m.outputs[f"x{k}"] = (0, 1, 2 * k)
        m.outputs[f"x{k}_n"] = (0, 1, 2 * k + 1)
    m.notes = "develops complemented columns; paper Fig. 9 'interconnect' cell"
    return m


# ----------------------------------------------------------------------
# Combinational logic: the LUT pair
# ----------------------------------------------------------------------

def _literal_column(var: int, positive: bool) -> int:
    """Column of a literal under the complemented-column convention."""
    return 2 * var + (0 if positive else 1)


def lut_pair(cover: list[Implicant], n_vars: int = 3) -> Macro:
    """Product plane + collector implementing an SOP cover (<= 6 products).

    Cell (0,0): one NAND row per product over the complemented-column
    convention (line 2k = x_k, line 2k+1 = x_k'), drivers BUFFER (passing
    the product complements east).  Cell (0,1): collector row 0 = NAND of
    the product lines = the SOP; row 1 duplicates it with an INVERT driver
    so both output polarities leave east (lines 0 and 1).
    """
    if not 1 <= n_vars <= 3:
        raise ValueError(f"lut_pair supports 1..3 variables, got {n_vars}")
    if len(cover) > N_ROWS:
        raise ValueError(
            f"cover has {len(cover)} products; a cell pair offers {N_ROWS}"
        )
    a = CellConfig()
    b = CellConfig()
    m = Macro(name=f"lut{n_vars}", cells={(0, 0): a, (0, 1): b})
    for k in range(n_vars):
        m.inputs[f"x{k}"] = (0, 0, 2 * k)
        m.inputs[f"x{k}_n"] = (0, 0, 2 * k + 1)

    if not cover:
        # Constant 0: a single constant-0 collector row.
        b.set_constant(0, 0)
        b.set_constant(1, 1)
    else:
        product_lines = []
        for j, impl in enumerate(cover):
            lits = impl.literals(n_vars)
            if impl.mask == 0:
                # Constant-1 product: its complement line must be 0.
                a.set_constant(j, 0)
            else:
                a.set_product(j, [_literal_column(v, pos) for v, pos in lits])
            a.drivers[j] = DriverMode.BUFFER
            product_lines.append(j)
        b.set_product(0, product_lines)
        b.crosspoints[1] = list(b.crosspoints[0])  # duplicate row for f'
    b.drivers[0] = DriverMode.BUFFER  # f
    b.drivers[1] = DriverMode.INVERT  # f'
    m.outputs["f"] = (0, 2, 0)
    m.outputs["f_n"] = (0, 2, 1)
    m.notes = (
        "NAND-NAND two-level mapping; pairs of cells = 6-input/6-term LUT "
        "(paper Section 4)"
    )
    return m


def lut_pair_from_table(table: TruthTable) -> Macro:
    """Convenience: exact-minimise a truth table and map it."""
    from repro.synth.qm import minimise

    return lut_pair(minimise(table), table.n_vars)


# ----------------------------------------------------------------------
# Storage elements (two-level SOP with pair feedback)
# ----------------------------------------------------------------------

def d_latch_pair() -> Macro:
    """Transparent-high D latch: q+ = G.D + G'.q + D.q.

    Cell A columns: 0 = D, 1 = G, 2 = G' (all abutment; complements come
    from an upstream complement cell), column 5 = q via the pair's lfb0.
    Cell B: collector (row 0 = q), tapped onto lfb0; Q leaves east.
    """
    a = CellConfig()
    a.lfb_partner = LfbPartner.EAST
    a.input_select[5] = InputSource.LFB0
    a.set_product(0, [0, 1])  # D.G
    a.set_product(1, [2, 5])  # G'.q
    a.set_product(2, [0, 5])  # D.q   (the hazard-killing consensus term)
    for r in range(3):
        a.drivers[r] = DriverMode.BUFFER
    b = CellConfig()
    b.set_product(0, [0, 1, 2])
    b.lfb_taps[0] = 0
    b.drivers[0] = DriverMode.BUFFER
    m = Macro(name="d_latch", cells={(0, 0): a, (0, 1): b})
    m.inputs = {"d": (0, 0, 0), "g": (0, 0, 1), "g_n": (0, 0, 2)}
    m.outputs = {"q": (0, 2, 0)}
    m.notes = "level-triggered latch in one cell pair (paper Section 4)"
    return m


def dff_pair(with_reset: bool = False) -> Macro:
    """Rising-edge D flip-flop: the Fig. 9 storage element, 2 cells.

    Fundamental-mode master-slave with state variables (m, q):

        m+ = C'.D + C.m + D.m
        q+ = C.m  + C'.q + m.q

    Cell A columns: 0 = D, 1 = R' (active-low reset; tied off when unused),
    2 = m (lfb0 of the east cell), 3 = q (lfb1), 4 = CLK, 5 = CLK'.
    Five shared product rows (C.m serves both equations); cell B collects
    m (row 0) and q (row 1) and taps them onto its lfb lines — the exact
    budget of the pair's two local feedback lines.  Q and Q' leave east on
    lines 1 and 2.
    """
    a = CellConfig()
    a.lfb_partner = LfbPartner.EAST
    a.input_select[2] = InputSource.LFB0  # m
    a.input_select[3] = InputSource.LFB1  # q
    products = [
        [0, 5],  # C'.D
        [4, 2],  # C.m   (shared by master and slave)
        [0, 2],  # D.m
        [5, 3],  # C'.q
        [2, 3],  # m.q
    ]
    for r, cols in enumerate(products):
        if with_reset:
            cols = cols + [1]
        a.set_product(r, cols)
        a.drivers[r] = DriverMode.BUFFER
    b = CellConfig()
    b.set_product(0, [0, 1, 2])  # m = C'.D + C.m + D.m
    b.set_product(1, [1, 3, 4])  # q = C.m + C'.q + m.q
    b.crosspoints[2] = list(b.crosspoints[1])  # duplicate q row for Q'
    b.lfb_taps[0] = 0
    b.lfb_taps[1] = 1
    b.drivers[0] = DriverMode.BUFFER  # m (observability)
    b.drivers[1] = DriverMode.BUFFER  # Q
    b.drivers[2] = DriverMode.INVERT  # Q'
    m = Macro(name="dff_r" if with_reset else "dff", cells={(0, 0): a, (0, 1): b})
    m.inputs = {
        "d": (0, 0, 0),
        "clk": (0, 0, 4),
        "clk_n": (0, 0, 5),
    }
    if with_reset:
        m.inputs["rst_n"] = (0, 0, 1)
    m.outputs = {"m": (0, 2, 0), "q": (0, 2, 1), "q_n": (0, 2, 2)}
    m.notes = (
        "edge-triggered D-FF as two-state async FSM in one pair, using both "
        "lfb lines (paper Fig. 9: 'standard asynchronous state machine "
        "techniques')"
    )
    return m


def c_element_pair() -> Macro:
    """Muller C-element: c = a.b + a.c + b.c (paper Section 4.1).

    Cell A columns: 0 = a, 1 = b, 5 = c (lfb0 of the east cell).
    """
    a = CellConfig()
    a.lfb_partner = LfbPartner.EAST
    a.input_select[5] = InputSource.LFB0
    a.set_product(0, [0, 1])  # a.b
    a.set_product(1, [0, 5])  # a.c
    a.set_product(2, [1, 5])  # b.c
    for r in range(3):
        a.drivers[r] = DriverMode.BUFFER
    b = CellConfig()
    b.set_product(0, [0, 1, 2])
    b.lfb_taps[0] = 0
    b.drivers[0] = DriverMode.BUFFER
    m = Macro(name="c_element", cells={(0, 0): a, (0, 1): b})
    m.inputs = {"a": (0, 0, 0), "b": (0, 0, 1)}
    m.outputs = {"c": (0, 2, 0)}
    m.notes = "C-element per the paper's equation; one cell pair"
    return m


def ecse_pair() -> Macro:
    """Event-controlled storage element (paper Fig. 12), one cell pair.

    Two-phase capture/pass semantics: transparent while the request and
    acknowledge phases agree, holding while they differ.

        z+ = R.A.DIN + R'.A'.DIN + R.A'.z + R'.A.z + DIN.z

    Cell A columns: 0 = DIN, 1 = R, 2 = R', 3 = A, 4 = A',
    5 = z (lfb0 of the east cell).
    """
    a = CellConfig()
    a.lfb_partner = LfbPartner.EAST
    a.input_select[5] = InputSource.LFB0
    products = [
        [1, 3, 0],  # R.A.DIN
        [2, 4, 0],  # R'.A'.DIN
        [1, 4, 5],  # R.A'.z
        [2, 3, 5],  # R'.A.z
        [0, 5],     # DIN.z (consensus)
    ]
    for r, cols in enumerate(products):
        a.set_product(r, cols)
        a.drivers[r] = DriverMode.BUFFER
    b = CellConfig()
    b.set_product(0, [0, 1, 2, 3, 4])
    b.lfb_taps[0] = 0
    b.drivers[0] = DriverMode.BUFFER
    m = Macro(name="ecse", cells={(0, 0): a, (0, 1): b})
    m.inputs = {
        "din": (0, 0, 0),
        "req": (0, 0, 1),
        "req_n": (0, 0, 2),
        "ack": (0, 0, 3),
        "ack_n": (0, 0, 4),
    }
    m.outputs = {"z": (0, 2, 0)}
    m.notes = "Sutherland capture-pass storage on one pair (paper Fig. 12)"
    return m


# ----------------------------------------------------------------------
# Datapath: the Fig. 10 full-adder slice
# ----------------------------------------------------------------------

def full_adder_slice() -> Macro:
    """One ripple-carry adder bit in **five product terms** (paper Fig. 10).

    Cell A (product plane), columns 0 = a, 1 = a', 2 = b, 3 = b',
    4 = cin, 5 = cin'; rows (the five terms):

        t0 = (a.b)'   t1 = (a.cin)'   t2 = (b.cin)'
        t3 = (a.b.cin)'               t4 = (a'.b'.cin')' = a + b + cin

    Cell B collects the carry and forwards the sum ingredients:
    row 0 = NAND(t0,t1,t2) = cout (BUFFER east, line 0);
    row 1 = NOT cout via its own lfb0 (BUFFER east, line 1 = cout');
    row 3 = a.b.cin re-derived from t3 (INVERT east, line 3 = (a.b.cin)');
    row 4 = a+b+cin forwarded from t4 (INVERT east, line 4).

    Cell S finishes the sum and forwards the ripple:
    row 0 = NAND(cout', a+b+cin) = u (internal, on S's lfb0);
    row 1 = NAND(u, (a.b.cin)') = cout'.(a+b+cin) + a.b.cin = **s**
    (driven NORTH, line 1); rows 4/5 forward cout / cout' east — "the two
    horizontal connections between adjacent cells ... transfer the ripple
    carry between bits".
    """
    a = CellConfig()
    a.set_product(0, [0, 2])        # (a.b)'
    a.set_product(1, [0, 4])        # (a.cin)'
    a.set_product(2, [2, 4])        # (b.cin)'
    a.set_product(3, [0, 2, 4])     # (a.b.cin)'
    a.set_product(4, [1, 3, 5])     # (a'.b'.cin')' = a+b+cin
    for r in range(5):
        a.drivers[r] = DriverMode.BUFFER

    b = CellConfig()
    b.lfb_partner = LfbPartner.SELF
    b.input_select[5] = InputSource.LFB0  # own row 0 = cout
    b.set_product(0, [0, 1, 2])  # cout = ab + a.cin + b.cin
    b.lfb_taps[0] = 0
    b.set_product(1, [5])        # NAND(cout) = cout'
    b.set_product(3, [3])        # NAND((a.b.cin)') = a.b.cin
    b.set_product(4, [4])        # NAND(a+b+cin) = (a+b+cin)'
    b.drivers[0] = DriverMode.BUFFER   # line 0: cout
    b.drivers[1] = DriverMode.BUFFER   # line 1: cout'
    b.drivers[3] = DriverMode.INVERT   # line 3: (a.b.cin)'
    b.drivers[4] = DriverMode.INVERT   # line 4: a+b+cin

    s = CellConfig()
    s.lfb_partner = LfbPartner.SELF
    s.input_select[5] = InputSource.LFB0  # own row 0 = u
    s.set_product(0, [1, 4])     # u = NAND(cout', a+b+cin)
    s.lfb_taps[0] = 0
    s.set_product(1, [5, 3])     # s = NAND(u, (a.b.cin)')
    s.directions[1] = Direction.NORTH
    s.drivers[1] = DriverMode.BUFFER
    s.set_product(4, [0])        # cout forward: NAND(cout) then INVERT
    s.drivers[4] = DriverMode.INVERT
    s.set_product(5, [1])        # cout' forward
    s.drivers[5] = DriverMode.INVERT

    m = Macro(
        name="full_adder",
        cells={(0, 0): a, (0, 1): b, (0, 2): s},
    )
    m.inputs = {
        "a": (0, 0, 0),
        "a_n": (0, 0, 1),
        "b": (0, 0, 2),
        "b_n": (0, 0, 3),
        "cin": (0, 0, 4),
        "cin_n": (0, 0, 5),
    }
    m.outputs = {
        "s": (1, 2, 1),       # north
        "cout": (0, 3, 4),    # east, line 4
        "cout_n": (0, 3, 5),  # east, line 5
    }
    m.notes = (
        "five-term shared-product full adder (paper Fig. 10); ripple carry "
        "leaves on two east lines; sum exits north"
    )
    return m
