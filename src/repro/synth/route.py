"""Minimal routing helpers: the fabric used as pure interconnect.

The paper's Section 4 emphasises that "the same components can be used
interchangeably for logic and interconnection".  This module provides the
interconnect side: straight east-going channels of feed-through cells, a
networkx shortest-path router over the cell grid for multi-segment routes,
and cost accounting (cells and leaf devices burned on routing — the
quantity traded against logic in the paper's area argument).
"""

from __future__ import annotations

import networkx as nx

from repro.fabric.array import CellArray
from repro.fabric.driver import DriverMode
from repro.fabric.nandcell import CellConfig, Direction, N_ROWS


def straight_channel(
    array: CellArray,
    row: int,
    col_start: int,
    col_end: int,
    lines: list[int],
) -> int:
    """Configure cells [col_start, col_end) as an east-going channel.

    Each cell passes the given lines through non-inverted.  Cells must be
    blank (routing never clobbers logic).  Returns the number of cells
    configured.
    """
    if col_end <= col_start:
        raise ValueError(f"col range must be increasing, got {col_start}..{col_end}")
    if not lines:
        raise ValueError("need at least one line to route")
    for line in lines:
        if not 0 <= line < N_ROWS:
            raise ValueError(
                f"line index must be 0..{N_ROWS - 1}, got {line} "
                f"(a cell has {N_ROWS} abutment lines)"
            )
    if len(set(lines)) != len(lines):
        raise ValueError(f"duplicate line indices in {lines}")
    for c in range(col_start, col_end):
        cfg = array.cell(row, c)
        if not cfg.is_blank():
            raise ValueError(
                f"cell ({row},{c}) is already configured; refusing to route over logic"
            )
        new = CellConfig()
        for line in lines:
            new.set_product(line, [line])
            new.drivers[line] = DriverMode.INVERT  # NAND+INVERT = buffer
        array.set_cell(row, c, new)
    return col_end - col_start


def grid_route(
    array: CellArray,
    src: tuple[int, int],
    dst: tuple[int, int],
    line: int,
) -> list[tuple[int, int]]:
    """Route one line from cell ``src`` to cell ``dst`` through blank cells.

    Movement is restricted to the fabric's dataflow directions (east and
    north).  Each visited cell is configured as a feed-through on ``line``
    (east- or north-driving as the path requires).  Returns the path.

    Raises ``ValueError`` when no monotone blank path exists.
    """
    if not 0 <= line < N_ROWS:
        raise ValueError(
            f"line index must be 0..{N_ROWS - 1}, got {line} "
            f"(a cell has {N_ROWS} abutment lines)"
        )
    (r0, c0), (r1, c1) = src, dst
    if r1 < r0 or c1 < c0:
        raise ValueError(
            f"route must go east/north: {src} -> {dst} moves south or west"
        )
    g = nx.DiGraph()
    for r in range(r0, r1 + 1):
        for c in range(c0, c1 + 1):
            if (r, c) != src and not array.cell(r, c).is_blank():
                continue
            if c + 1 <= c1 and ((r, c + 1) == dst or array.cell(r, min(c + 1, c1)).is_blank()):
                g.add_edge((r, c), (r, c + 1))
            if r + 1 <= r1 and ((r + 1, c) == dst or array.cell(min(r + 1, r1), c).is_blank()):
                g.add_edge((r, c), (r + 1, c))
    try:
        path = nx.shortest_path(g, src, dst)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise ValueError(f"no blank east/north path from {src} to {dst}") from None
    # Configure every hop except the destination as a feed-through.
    for (r, c), (nr, nc) in zip(path, path[1:]):
        cfg = array.cell(r, c)
        if not cfg.is_blank() and (r, c) != src:
            raise ValueError(f"cell ({r},{c}) became non-blank mid-route")
        new = CellConfig() if (r, c) != src else cfg
        new.set_product(line, [line])
        new.drivers[line] = DriverMode.INVERT
        new.directions[line] = Direction.EAST if nc > c else Direction.NORTH
        array.set_cell(r, c, new)
    return path


def route_reaches(array: CellArray, src_wire: str, dst_wire: str) -> bool:
    """Verify a configured route by traversing the lowered netlist.

    Lowers the array to the backend-neutral IR and walks cell fanout from
    ``src_wire``; True when ``dst_wire`` is reachable.  This checks what
    the configuration *actually* connects — a router bug that drops a
    feed-through shows up here without running any simulation.
    """
    nl = array.to_netlist().netlist
    if src_wire not in nl.net_names():
        return False
    frontier = [src_wire]
    visited = {src_wire}
    while frontier:
        net = frontier.pop()
        if net == dst_wire:
            return True
        for cell in nl.readers_of(net):
            if cell.output not in visited:
                visited.add(cell.output)
                frontier.append(cell.output)
    return dst_wire in visited


def routing_cost(path: list[tuple[int, int]]) -> dict[str, int]:
    """Cells and leaf devices consumed by a route (area accounting)."""
    cells = max(0, len(path) - 1)
    # One feed-through = 6 crosspoints of one row + 1 driver.
    return {"cells": cells, "leaf_devices": cells * 7}
