"""Hazard-free synthesis for asynchronous (fundamental-mode) state machines.

The paper (Section 4) maps flip-flops, latches and the asynchronous
building blocks onto the NAND fabric using "standard asynchronous state
machine techniques".  For fundamental-mode circuits built from two-level
SOP logic with feedback, the classic requirement (Unger; Hauck [44]) is
that every single-input-change transition *within the ON-set* be covered
by a single product term — otherwise the cover has a static-1 hazard whose
glitch can corrupt the state.

:func:`hazard_free_cover` takes a next-state function, minimises it
exactly, then adds consensus products until every adjacent ON-set pair is
jointly covered.  :class:`FlowTable` provides a tiny fundamental-mode
stepper used to validate state machines (stability, transition, and race
checks) before they are mapped onto cells.

Canned equations for the paper's storage elements live here too; they are
what :mod:`repro.synth.macros` lays onto the fabric:

* transparent D latch:  q+ = G.D + G'.q + D.q
* rising-edge D flip-flop (master-slave):
  m+ = C'.D + C.m + D.m;  q+ = C.m + C'.q + m.q
* Muller C-element:      c+ = a.b + a.c + b.c
* event-controlled storage element (Fig. 12, two-phase capture/pass):
  z+ = (r XNOR a).din + (r XOR a).z + din.z
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synth.qm import Implicant, cover_is_correct, minimise
from repro.synth.truthtable import TruthTable


def _expand_to_prime(impl: Implicant, table: TruthTable) -> Implicant:
    """Grow an implicant to a prime implicant of the function."""
    n = table.n_vars
    current = impl
    changed = True
    while changed:
        changed = False
        for k in range(n):
            bit = 1 << k
            if not current.mask & bit:
                continue
            candidate = Implicant(current.mask & ~bit, current.value & ~bit)
            # Candidate must stay inside the ON-set.
            ok = all(
                table.outputs[m]
                for m in range(1 << n)
                if candidate.covers(m)
            )
            if ok:
                current = candidate
                changed = True
    return current


def hazard_free_cover(table: TruthTable) -> list[Implicant]:
    """Minimum cover augmented to be free of static-1 hazards.

    For every pair of adjacent ON-set minterms (Hamming distance one) not
    covered by a common product, a consensus implicant containing both is
    added (expanded to a prime).  The result still computes the function
    exactly (checked) and needs no extra literals at the second NAND level.
    """
    cover = minimise(table)
    n = table.n_vars
    ones = table.minterms()
    one_set = set(ones)
    for m in ones:
        for k in range(n):
            m2 = m ^ (1 << k)
            if m2 < m or m2 not in one_set:
                continue
            if any(p.covers(m) and p.covers(m2) for p in cover):
                continue
            # Consensus: the cube containing exactly {m, m2}, grown prime.
            seed = Implicant(((1 << n) - 1) & ~(1 << k), m & ~(1 << k))
            cover.append(_expand_to_prime(seed, table))
    if not cover_is_correct(table, cover):
        raise RuntimeError("hazard-free augmentation broke the cover; internal error")
    return cover


def has_shared_cover(cover: list[Implicant], m1: int, m2: int) -> bool:
    """True when one product covers both minterms (hazard-freedom witness)."""
    return any(p.covers(m1) and p.covers(m2) for p in cover)


def count_sic_hazards(table: TruthTable, cover: list[Implicant]) -> int:
    """Number of single-input-change ON-set transitions left uncovered."""
    n = table.n_vars
    ones = set(table.minterms())
    bad = 0
    for m in ones:
        for k in range(n):
            m2 = m ^ (1 << k)
            if m2 > m and m2 in ones and not has_shared_cover(cover, m, m2):
                bad += 1
    return bad


@dataclass(frozen=True, slots=True)
class FlowTable:
    """Fundamental-mode stepper for a set of next-state functions.

    Variables are ordered: inputs first (``n_inputs`` of them, LSB first in
    minterm encoding), then state variables.  ``next_state[j]`` is the
    excitation function of state variable j over (inputs, state).
    """

    n_inputs: int
    next_state: tuple[TruthTable, ...]

    def __post_init__(self) -> None:
        n_total = self.n_inputs + len(self.next_state)
        for j, t in enumerate(self.next_state):
            if t.n_vars != n_total:
                raise ValueError(
                    f"next_state[{j}] has {t.n_vars} vars, expected {n_total}"
                )

    @property
    def n_state(self) -> int:
        """Number of state variables."""
        return len(self.next_state)

    def _index(self, inputs: tuple[int, ...], state: tuple[int, ...]) -> int:
        idx = 0
        for k, b in enumerate(inputs):
            idx |= b << k
        for j, b in enumerate(state):
            idx |= b << (self.n_inputs + j)
        return idx

    def excite(self, inputs: tuple[int, ...], state: tuple[int, ...]) -> tuple[int, ...]:
        """One application of the excitation functions."""
        if len(inputs) != self.n_inputs or len(state) != self.n_state:
            raise ValueError("inputs/state arity mismatch")
        idx = self._index(inputs, state)
        return tuple(int(t.outputs[idx]) for t in self.next_state)

    def is_stable(self, inputs: tuple[int, ...], state: tuple[int, ...]) -> bool:
        """True when the state reproduces itself under these inputs."""
        return self.excite(inputs, state) == tuple(state)

    def settle(
        self,
        inputs: tuple[int, ...],
        state: tuple[int, ...],
        max_steps: int = 64,
    ) -> tuple[int, ...]:
        """Iterate the excitation to a stable state (fundamental mode).

        Raises ``RuntimeError`` on an oscillation (no stability within
        ``max_steps``) — the flow-table analogue of a critical race.
        """
        cur = tuple(state)
        for _ in range(max_steps):
            nxt = self.excite(inputs, cur)
            if nxt == cur:
                return cur
            cur = nxt
        raise RuntimeError(
            f"state machine does not settle under inputs {inputs} from {state}"
        )

    def has_critical_race(self, inputs: tuple[int, ...], state: tuple[int, ...]) -> bool:
        """Check one multi-bit excitation step for order dependence.

        If more than one state bit wants to change, every order of applying
        single-bit changes must reach the same final stable state.
        """
        target = self.excite(inputs, state)
        changing = [j for j in range(self.n_state) if target[j] != state[j]]
        if len(changing) <= 1:
            return False
        finals = set()
        for j in changing:
            inter = list(state)
            inter[j] = target[j]
            finals.add(self.settle(inputs, tuple(inter)))
        return len(finals) > 1


# ----------------------------------------------------------------------
# Canned storage-element equations (variable order noted per function)
# ----------------------------------------------------------------------

def d_latch_table() -> TruthTable:
    """q+ over (D, G, q): transparent-high D latch with consensus D.q."""
    return TruthTable.from_function(3, lambda d, g, q: (g and d) or (not g and q) or (d and q))


def dff_master_table() -> TruthTable:
    """m+ over (D, C, m): master stage of the rising-edge flip-flop."""
    return TruthTable.from_function(3, lambda d, c, m: ((not c) and d) or (c and m) or (d and m))


def dff_slave_table() -> TruthTable:
    """q+ over (m, C, q): slave stage of the rising-edge flip-flop."""
    return TruthTable.from_function(3, lambda m, c, q: (c and m) or ((not c) and q) or (m and q))


def c_element_table() -> TruthTable:
    """c+ over (a, b, c): the paper's Muller C-element equation."""
    return TruthTable.from_function(3, lambda a, b, c: (a and b) or (a and c) or (b and c))


def ecse_table() -> TruthTable:
    """z+ over (din, r, a, z): Sutherland's event-controlled storage element.

    Transparent when the request and acknowledge phases agree (two-phase
    idle), opaque (holding) when they differ; the din.z consensus removes
    the hand-off hazard.
    """
    def f(din, r, a, z):
        transparent = r == a
        return (transparent and din) or ((not transparent) and z) or (din and z)

    return TruthTable.from_function(4, f)
