"""Exact two-level minimisation: Quine-McCluskey with Petrick's method.

The NAND plane of a polymorphic cell pair offers at most six product terms
(Section 4: "a small LUT with 6 inputs, 6 outputs and 6 product-terms"), so
minimising the product count of every mapped function matters much more
here than in a LUT-based FPGA flow.  Functions in this fabric are small
(<= 6 literals), well inside exact minimisation territory.

A product term is an :class:`Implicant` — (mask, value) over the input
variables: variable k is *cared about* when mask bit k is 1 and must then
equal the value bit.  The minimiser returns a minimum-cardinality prime
cover (exact, via Petrick's method with memoised expansion).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.synth.truthtable import TruthTable


@dataclass(frozen=True, slots=True)
class Implicant:
    """A product term over n variables as a (mask, value) pair.

    ``mask`` bit k set means variable k appears in the product; ``value``
    bit k gives its required polarity (only meaningful under the mask).
    """

    mask: int
    value: int

    def covers(self, minterm: int) -> bool:
        """True when the product term contains the minterm."""
        return (minterm & self.mask) == (self.value & self.mask)

    def literals(self, n_vars: int) -> list[tuple[int, bool]]:
        """(variable, positive?) pairs of the product, ascending variable."""
        out = []
        for k in range(n_vars):
            if (self.mask >> k) & 1:
                out.append((k, bool((self.value >> k) & 1)))
        return out

    def n_literals(self) -> int:
        """Number of literals in the product."""
        return bin(self.mask).count("1")

    def to_string(self, names: list[str] | None = None) -> str:
        """Readable form like ``a.b'.d``."""
        parts = []
        k = 0
        m = self.mask
        while m:
            if m & 1:
                name = names[k] if names else f"x{k}"
                parts.append(name if (self.value >> k) & 1 else name + "'")
            m >>= 1
            k += 1
        return ".".join(parts) if parts else "1"


def prime_implicants(table: TruthTable) -> list[Implicant]:
    """All prime implicants of the function, by iterative pairwise merging."""
    n = table.n_vars
    full_mask = (1 << n) - 1
    ones = set(table.minterms())
    if not ones:
        return []
    if len(ones) == 1 << n:
        return [Implicant(mask=0, value=0)]  # the constant-1 product
    # Level 0: minterms as implicants.
    current = {Implicant(full_mask, m) for m in ones}
    primes: set[Implicant] = set()
    while current:
        merged: set[Implicant] = set()
        used: set[Implicant] = set()
        grouped = sorted(current, key=lambda i: (i.mask, bin(i.value & i.mask).count("1")))
        for a, b in combinations(grouped, 2):
            if a.mask != b.mask:
                continue
            diff = (a.value ^ b.value) & a.mask
            if diff and (diff & (diff - 1)) == 0:  # differ in exactly one var
                merged.add(Implicant(a.mask & ~diff, a.value & ~diff))
                used.add(a)
                used.add(b)
        primes |= current - used
        current = merged
    return sorted(primes, key=lambda i: (i.mask, i.value))


def _petrick_cover(minterms: list[int], primes: list[Implicant]) -> list[Implicant]:
    """Minimum-cardinality cover via Petrick's method (product of sums).

    Represents partial covers as frozensets of prime indices and expands
    the POS one minterm at a time, pruning dominated partials.
    """
    partials: set[frozenset[int]] = {frozenset()}
    for m in minterms:
        options = [k for k, p in enumerate(primes) if p.covers(m)]
        if not options:
            raise RuntimeError(f"no prime covers minterm {m}; internal error")
        expanded: set[frozenset[int]] = set()
        for partial in partials:
            if any(k in partial for k in options):
                expanded.add(partial)
            else:
                for k in options:
                    expanded.add(partial | {k})
        # Prune supersets: a partial dominated by a subset can never win.
        pruned: set[frozenset[int]] = set()
        for cand in sorted(expanded, key=len):
            if not any(prev < cand for prev in pruned):
                pruned.add(cand)
        partials = pruned
    best = min(
        partials,
        key=lambda s: (len(s), sum(primes[k].n_literals() for k in s)),
    )
    return [primes[k] for k in sorted(best)]


def minimise(table: TruthTable) -> list[Implicant]:
    """Minimum SOP cover of the function (exact).

    Returns an empty list for the constant-0 function and the empty-mask
    implicant for constant 1.  Secondary objective: fewest total literals.
    """
    ones = table.minterms()
    if not ones:
        return []
    primes = prime_implicants(table)
    # Essential primes first: minterms covered by exactly one prime.
    essential: set[int] = set()
    for m in ones:
        covering = [k for k, p in enumerate(primes) if p.covers(m)]
        if len(covering) == 1:
            essential.add(covering[0])
    covered = {
        m for m in ones if any(primes[k].covers(m) for k in essential)
    }
    remaining = [m for m in ones if m not in covered]
    chosen = [primes[k] for k in sorted(essential)]
    if remaining:
        # Petrick over the leftover minterms with non-essential primes too.
        chosen += _petrick_cover(remaining, primes)
        # Deduplicate while preserving order.
        seen: set[Implicant] = set()
        unique = []
        for p in chosen:
            if p not in seen:
                seen.add(p)
                unique.append(p)
        chosen = unique
    return chosen


def cover_to_table(n_vars: int, cover: list[Implicant]) -> TruthTable:
    """Evaluate an SOP cover back into a truth table (verification)."""
    import numpy as np

    idx = np.arange(1 << n_vars)
    acc = np.zeros(1 << n_vars, dtype=np.uint8)
    for p in cover:
        acc |= ((idx & p.mask) == (p.value & p.mask)).astype(np.uint8)
    return TruthTable(n_vars, acc)


def cover_is_correct(table: TruthTable, cover: list[Implicant]) -> bool:
    """True when the cover computes exactly the function."""
    return cover_to_table(table.n_vars, cover) == table
