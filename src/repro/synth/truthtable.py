"""Numpy-backed truth tables: the synthesis layer's function representation.

A :class:`TruthTable` is an immutable boolean function of up to 16
variables stored as a flat uint8 output vector indexed by the input
assignment (variable 0 is the least-significant index bit).  All bulk
operations (evaluation over assignment arrays, cofactoring, comparison
against covers) are vectorised.
"""

from __future__ import annotations

import numpy as np


class TruthTable:
    """An n-variable single-output boolean function."""

    MAX_VARS = 16

    def __init__(self, n_vars: int, outputs) -> None:
        if not 0 <= n_vars <= self.MAX_VARS:
            raise ValueError(f"n_vars must be 0..{self.MAX_VARS}, got {n_vars}")
        self.n_vars = int(n_vars)
        arr = np.asarray(outputs, dtype=np.uint8)
        if arr.shape != (1 << n_vars,):
            raise ValueError(
                f"outputs must have length {1 << n_vars} for {n_vars} vars, "
                f"got shape {arr.shape}"
            )
        if not np.all((arr == 0) | (arr == 1)):
            raise ValueError("outputs must be 0/1")
        self.outputs = arr.copy()
        self.outputs.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_minterms(cls, n_vars: int, minterms) -> "TruthTable":
        """Build from a list of minterm indices."""
        out = np.zeros(1 << n_vars, dtype=np.uint8)
        for m in minterms:
            if not 0 <= m < (1 << n_vars):
                raise ValueError(f"minterm {m} out of range for {n_vars} vars")
            out[m] = 1
        return cls(n_vars, out)

    @classmethod
    def from_function(cls, n_vars: int, fn) -> "TruthTable":
        """Build by evaluating ``fn(*bits) -> bool`` over all assignments."""
        size = 1 << n_vars
        out = np.zeros(size, dtype=np.uint8)
        for idx in range(size):
            bits = [(idx >> k) & 1 for k in range(n_vars)]
            out[idx] = 1 if fn(*bits) else 0
        return cls(n_vars, out)

    @classmethod
    def constant(cls, n_vars: int, value: int) -> "TruthTable":
        """Constant 0 or 1 function."""
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value!r}")
        return cls(n_vars, np.full(1 << n_vars, value, dtype=np.uint8))

    @classmethod
    def projection(cls, n_vars: int, var: int) -> "TruthTable":
        """The function f = x_var."""
        if not 0 <= var < n_vars:
            raise ValueError(f"var must be 0..{n_vars - 1}, got {var}")
        idx = np.arange(1 << n_vars)
        return cls(n_vars, ((idx >> var) & 1).astype(np.uint8))

    @classmethod
    def random(cls, n_vars: int, rng: np.random.Generator) -> "TruthTable":
        """Uniformly random function (deterministic given the generator)."""
        return cls(n_vars, rng.integers(0, 2, size=1 << n_vars, dtype=np.uint8))

    @classmethod
    def from_netlist(
        cls,
        netlist,
        input_names,
        output_name: str,
        backend=None,
    ) -> "TruthTable":
        """Extract the exhaustive truth table of one netlist output.

        All ``2**len(input_names)`` assignments are evaluated in a single
        batched backend call (bit-parallel on the default
        :class:`repro.netlist.BatchBackend` — hundreds of vectors per
        pass instead of one event simulation per row).  Raises when the
        output is not a defined 0/1 for some assignment.
        """
        n_vars = len(input_names)
        if n_vars > cls.MAX_VARS:
            raise ValueError(
                f"truth-table extraction supports up to {cls.MAX_VARS} "
                f"inputs, got {n_vars}"
            )
        if backend is None:
            from repro.netlist.backends import BatchBackend

            backend = BatchBackend()
        idx = np.arange(1 << n_vars, dtype=np.int64)
        stimuli = {
            name: ((idx >> k) & 1).astype(np.uint8)
            for k, name in enumerate(input_names)
        }
        vals = backend.evaluate(netlist, stimuli, outputs=[output_name])[output_name]
        if not np.all(vals <= 1):
            bad = int(np.argmax(vals > 1))
            raise ValueError(
                f"output {output_name!r} is undefined (X/Z) at assignment {bad}"
            )
        return cls(n_vars, vals)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment) -> int:
        """Evaluate at one assignment (sequence of n_vars bits, LSB first)."""
        if len(assignment) != self.n_vars:
            raise ValueError(
                f"assignment needs {self.n_vars} bits, got {len(assignment)}"
            )
        idx = 0
        for k, b in enumerate(assignment):
            if b not in (0, 1):
                raise ValueError(f"assignment bits must be 0/1, got {b!r}")
            idx |= b << k
        return int(self.outputs[idx])

    def evaluate_indices(self, indices) -> np.ndarray:
        """Vectorised evaluation at integer-encoded assignments."""
        return self.outputs[np.asarray(indices, dtype=np.int64)]

    def minterms(self) -> list[int]:
        """Indices where the function is 1."""
        return [int(i) for i in np.nonzero(self.outputs)[0]]

    def count_ones(self) -> int:
        """Number of satisfying assignments."""
        return int(self.outputs.sum())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n_vars, 1 - self.outputs)

    def _binary(self, other: "TruthTable", op) -> "TruthTable":
        if not isinstance(other, TruthTable):
            raise TypeError(f"expected TruthTable, got {type(other).__name__}")
        if other.n_vars != self.n_vars:
            raise ValueError(
                f"variable count mismatch: {self.n_vars} vs {other.n_vars}"
            )
        return TruthTable(self.n_vars, op(self.outputs, other.outputs).astype(np.uint8))

    def __and__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, np.minimum)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, np.maximum)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, np.bitwise_xor)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and other.n_vars == self.n_vars
            and bool(np.array_equal(other.outputs, self.outputs))
        )

    def __hash__(self) -> int:
        return hash((self.n_vars, self.outputs.tobytes()))

    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Shannon cofactor f|x_var=value (one fewer variable)."""
        if not 0 <= var < self.n_vars:
            raise ValueError(f"var must be 0..{self.n_vars - 1}, got {var}")
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value!r}")
        idx = np.arange(1 << (self.n_vars - 1))
        low = idx & ((1 << var) - 1)
        high = (idx >> var) << (var + 1)
        full = high | (value << var) | low
        return TruthTable(self.n_vars - 1, self.outputs[full])

    def depends_on(self, var: int) -> bool:
        """True when the function actually depends on x_var."""
        return self.cofactor(var, 0) != self.cofactor(var, 1)

    def support(self) -> list[int]:
        """Variables the function genuinely depends on."""
        return [v for v in range(self.n_vars) if self.depends_on(v)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = "".join(str(int(b)) for b in self.outputs)
        return f"TruthTable({self.n_vars}, 0b{bits[::-1]})"
