"""Synthesis and mapping tools for the polymorphic fabric.

Truth tables, exact two-level minimisation (Quine-McCluskey/Petrick),
hazard-free asynchronous covers, the macro library (LUTs, latches,
flip-flops, C-elements, ECSEs, adder slices), and routing helpers.
"""

from repro.synth.asyncfsm import (
    FlowTable,
    c_element_table,
    count_sic_hazards,
    d_latch_table,
    dff_master_table,
    dff_slave_table,
    ecse_table,
    has_shared_cover,
    hazard_free_cover,
)
from repro.synth.macros import (
    Macro,
    PlacedMacro,
    c_element_pair,
    complement_cell,
    d_latch_pair,
    dff_pair,
    ecse_pair,
    feedthrough_cell,
    full_adder_slice,
    full_adder_testbench,
    lut_pair,
    lut_pair_from_table,
    macro_netlist,
    place,
)
from repro.synth.qm import (
    Implicant,
    cover_is_correct,
    cover_to_table,
    minimise,
    prime_implicants,
)
from repro.synth.route import (
    grid_route,
    route_reaches,
    routing_cost,
    straight_channel,
)
from repro.synth.truthtable import TruthTable

__all__ = [
    "FlowTable",
    "c_element_table",
    "count_sic_hazards",
    "d_latch_table",
    "dff_master_table",
    "dff_slave_table",
    "ecse_table",
    "has_shared_cover",
    "hazard_free_cover",
    "Macro",
    "PlacedMacro",
    "c_element_pair",
    "complement_cell",
    "d_latch_pair",
    "dff_pair",
    "ecse_pair",
    "feedthrough_cell",
    "full_adder_slice",
    "full_adder_testbench",
    "lut_pair",
    "lut_pair_from_table",
    "macro_netlist",
    "place",
    "Implicant",
    "cover_is_correct",
    "cover_to_table",
    "minimise",
    "prime_implicants",
    "grid_route",
    "route_reaches",
    "routing_cost",
    "straight_channel",
    "TruthTable",
]
