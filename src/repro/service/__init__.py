"""The compile service: the PnR flow served, cached, and incremental.

The ROADMAP's "compiles for millions of users" step: instead of every
client paying a full :func:`repro.pnr.compile_to_fabric`, a
:class:`CompileService` owns a worker pool, a content-addressed LRU
result cache (:class:`ResultCache`, keyed on
:func:`repro.netlist.canonical_hash` + :class:`CompileOptions`), and a
delta path (:func:`repro.pnr.incremental.compile_incremental`) that
recompiles small edits against a cached base in a fraction of the cold
time.

Quickstart:

>>> from repro.datapath.adder import ripple_carry_netlist
>>> from repro.service import CompileOptions, CompileService
>>> with CompileService(workers=0, cache_capacity=8) as svc:
...     first = svc.compile(ripple_carry_netlist(2))
...     again = svc.compile(ripple_carry_netlist(2))
...     first.cached, again.cached
...     first.bitstreams() == again.bitstreams()
(False, True)
True

Correctness is proven, not asserted: ``tests/test_service.py`` shows
byte-identity between served and cold-compiled bitstreams under
concurrent duplicate submissions, exact coalescing/eviction
accounting, and worker-count invariance; ``tests/test_pnr_incremental.py``
holds the delta path to dual-backend equivalence and the cold flow's
quality gate.  See ``docs/compile-service.md``.
"""

from repro.service.cache import ResultCache
from repro.service.service import CompileOptions, CompileService, ServiceResult

__all__ = [
    "CompileOptions",
    "CompileService",
    "ResultCache",
    "ServiceResult",
]
