"""The compile service: the PnR flow served, cached, and incremental.

The ROADMAP's "compiles for millions of users" step: instead of every
client paying a full :func:`repro.pnr.compile_to_fabric`, a
:class:`CompileService` owns a worker pool, a content-addressed LRU
result cache (:class:`ResultCache`, keyed on
:func:`repro.netlist.canonical_hash` + :class:`CompileOptions`), an
optional **persisted artifact store** (:class:`ArtifactStore` — an
on-disk second tier under the same keys, so artifacts outlive the
process and are shared between sibling services), and a delta path
(:func:`repro.pnr.incremental.compile_incremental`) that recompiles
small edits against a cached base in a fraction of the cold time —
chained across a whole edit sequence by :class:`EditSession`
(:meth:`CompileService.open_session`).  The whole stack is hardened
against failure — per-job deadlines, transient-fault retries,
crash-isolated workers, bounded admission with load-shedding — and
*proven* so by a deterministic fault-injection layer
(:class:`FaultPlan`, :mod:`repro.service.resilience`; see
``docs/resilience.md``).

Quickstart:

>>> from repro.datapath.adder import ripple_carry_netlist
>>> from repro.service import CompileOptions, CompileService
>>> with CompileService(workers=0, cache_capacity=8) as svc:
...     first = svc.compile(ripple_carry_netlist(2))
...     again = svc.compile(ripple_carry_netlist(2))
...     first.cached, again.cached
...     first.bitstreams() == again.bitstreams()
(False, True)
True

Persistence is one keyword: ``CompileService(store=some_dir)`` — a
*fresh* service on the same directory then serves the artifact from
disk with zero compiles:

>>> import tempfile
>>> root = tempfile.mkdtemp()
>>> with CompileService(workers=0, store=root) as svc:
...     bits = svc.compile(ripple_carry_netlist(2)).bitstreams()
>>> with CompileService(workers=0, store=root) as svc2:
...     served = svc2.compile(ripple_carry_netlist(2))
...     served.bitstreams() == bits, served.from_store
...     svc2.stats()["compiles"]
(True, True)
0

Correctness is proven, not asserted: ``tests/test_service.py`` shows
byte-identity between served and cold-compiled bitstreams under
concurrent duplicate submissions, exact coalescing/eviction
accounting, and worker-count invariance;
``tests/test_service_store.py`` pins the cross-process round-trip and
corruption-degrades-to-miss contract; ``tests/test_pnr_incremental.py``
holds the delta path to dual-backend equivalence and the cold flow's
quality gate.  See ``docs/compile-service.md`` and
``docs/artifact-store.md``.
"""

from repro.service.cache import ResultCache
from repro.service.resilience import (
    CompileTimeout,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServiceOverloaded,
)
from repro.service.service import CompileOptions, CompileService, ServiceResult
from repro.service.session import EditSession, SessionStep
from repro.service.store import ArtifactStore, StoreKeyError

__all__ = [
    "ArtifactStore",
    "CompileOptions",
    "CompileService",
    "CompileTimeout",
    "EditSession",
    "FaultPlan",
    "FaultSpec",
    "ResultCache",
    "RetryPolicy",
    "ServiceOverloaded",
    "ServiceResult",
    "SessionStep",
    "StoreKeyError",
]
