"""Multi-edit incremental sessions: a chain of deltas against one base.

:meth:`repro.service.CompileService.recompile` warm-starts one edit
from one cached artifact.  An interactive client doesn't make one
edit — it makes a *sequence*: tweak a gate, recompile, look at the
timing, tweak again.  :class:`EditSession` is that loop as an API:
:meth:`EditSession.apply` recompiles each edited netlist against the
**previous step's** artifact (not the original base), so a chain of N
small edits costs N delta compiles and zero cold ones, even though step
N may share almost nothing with the base anymore.

Every step goes through the service's ordinary tiered machinery, which
is what makes sessions durable and shareable:

* each step's artifact is cached — and, when the service has a
  persisted :class:`repro.service.store.ArtifactStore`, published to
  disk — under the *edited netlist's own* content key, so any
  intermediate is independently addressable: replaying the session (in
  this process or a sibling on the same store) is all hits, and a
  client submitting step 3's netlist cold gets step 3's exact bytes;
* a step whose delta is too large (or whose warm placement/routing
  jams) raises :class:`repro.pnr.incremental.IncrementalFallback`
  inside the service, which **escalates to a full cold compile** —
  recorded on the step (``fallback=True``) and in the service books
  (``incremental_fallbacks``), never silently;
* the chain then continues from the fallback's artifact: one oversized
  edit does not spoil the warm path for the edits after it.

Sessions are a view over one service; they hold no compile state of
their own and are **not** thread-safe (each step's base is the
previous step — a session is one client's serial edit loop).

Quickstart:

>>> from repro.datapath.adder import ripple_carry_netlist
>>> from repro.netlist import Netlist
>>> from repro.service import CompileService
>>> def flip_gate(nl, name, kind):   # one-cell edit, same ports
...     out = Netlist(nl.name)
...     for p in nl.inputs:
...         out.add_input(p)
...     for p in nl.outputs:
...         out.add_output(p)
...     for c in nl.cells:
...         out.add(kind if c.name == name else c.kind, c.name,
...                 list(c.inputs), c.output, delay=c.delay,
...                 **dict(c.params))
...     return out
>>> base = ripple_carry_netlist(2)
>>> gates = [c.name for c in base.cells if c.kind == "and"]
>>> edit1 = flip_gate(base, gates[0], "or")     # each edit builds on
>>> edit2 = flip_gate(edit1, gates[1], "or")    # the previous one
>>> with CompileService(workers=0) as svc:
...     session = svc.open_session(base)
...     _ = session.apply(edit1)
...     _ = session.apply(edit2)
...     [s.incremental for s in session.steps]
...     session.stats()["fallbacks"]
[True, True]
0

See ``docs/artifact-store.md`` (the session walkthrough),
``examples/persistent_service.py`` and ``tests/test_service_session.py``
(the ≥3x-or-provable-fallback acceptance pin).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.netlist.ir import Netlist
from repro.pnr.parallel import CompileTimeout
from repro.service.resilience import ServiceOverloaded

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.service.service import (
        CompileOptions,
        CompileService,
        ServiceResult,
    )

__all__ = ["EditSession", "SessionStep"]


@dataclass(frozen=True)
class SessionStep:
    """One applied edit: its artifact plus how it was obtained.

    Exactly one of the three provenance flags describes the warm path's
    outcome: ``incremental`` (the delta path succeeded), ``fallback``
    (it provably declined and a cold compile served the step), or
    ``cached`` (the step's key was already cached/persisted — nothing
    was compiled at all, e.g. a replayed session).
    """

    index: int
    #: The netlist this step compiled (the edited design).
    edited: Netlist
    result: ServiceResult
    incremental: bool
    fallback: bool
    cached: bool
    #: Wall-clock of this step's recompile, seconds.
    seconds: float


@dataclass
class EditSession:
    """A chain of incremental recompiles against one evolving base.

    Construct through :meth:`repro.service.CompileService.open_session`
    (which compiles or serves the base first); then call :meth:`apply`
    once per edit.  ``current`` is the artifact the *next* edit will
    warm-start from — the base before any edit, afterwards the last
    step's result.
    """

    service: CompileService
    base: ServiceResult
    options: CompileOptions
    steps: list[SessionStep] = field(default_factory=list)
    #: Edits that did *not* apply: ``(would-be step index, exception)``
    #: for each recompile the service timed out or shed.  The chain
    #: stays on the previous artifact — a failed edit is re-appliable,
    #: and the session survives a resilient service saying "not now".
    errors: list[tuple[int, BaseException]] = field(default_factory=list)

    @property
    def current(self) -> ServiceResult:
        """The artifact the next :meth:`apply` warm-starts from."""
        return self.steps[-1].result if self.steps else self.base

    def apply(self, netlist: Netlist) -> ServiceResult:
        """Recompile an edited netlist against the current artifact.

        Routes through :meth:`CompileService.recompile` with the
        previous step's result as the base, records the step (with its
        provenance and wall-clock) and advances the chain.  Returns the
        step's :class:`ServiceResult`.
        """
        before = self.service.stats()["incremental_fallbacks"]
        t0 = time.perf_counter()
        try:
            result = self.service.recompile(
                netlist, self.current, self.options
            )
        except (CompileTimeout, ServiceOverloaded) as e:
            # The service declined this edit (deadline spent, queue
            # full); record it and leave the chain on the previous
            # artifact so the caller can re-apply when calmer.
            self.errors.append((len(self.steps) + 1, e))
            raise
        seconds = time.perf_counter() - t0
        # The session is serial, so the counter delta is exactly this
        # step's escalation (a cached hit never reaches the delta path).
        fellback = self.service.stats()["incremental_fallbacks"] > before
        self.steps.append(SessionStep(
            index=len(self.steps) + 1,
            edited=netlist,
            result=result,
            incremental=result.incremental and not result.cached,
            fallback=fellback,
            cached=result.cached,
            seconds=seconds,
        ))
        return result

    def stats(self) -> dict:
        """The chain's books: step counts by provenance, total seconds."""
        return {
            "steps": len(self.steps),
            "incremental": sum(1 for s in self.steps if s.incremental),
            "fallbacks": sum(1 for s in self.steps if s.fallback),
            "cached": sum(1 for s in self.steps if s.cached),
            "errors": len(self.errors),
            "seconds": round(sum(s.seconds for s in self.steps), 4),
        }
