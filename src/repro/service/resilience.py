"""Deterministic fault injection + the service's resilience policies.

The paper's whole premise is computing that keeps working when the
substrate fails; this module holds the *software* stack to the same
bar.  It has two halves (see ``docs/resilience.md``):

* :class:`FaultPlan` — a content-addressed, seed-deterministic
  description of injected faults, the software analogue of
  :class:`repro.pnr.defects.DefectMap`: where a defect map says "cell
  (3,4) is dead on this die", a fault plan says "the store's publish
  path corrupts its bytes" or "the second pool worker dies mid-job".
  Plans fire at the named fault points registered across the serving
  stack (:data:`repro.pnr.parallel.FAULT_POINTS`), and every decision
  is a pure function of ``(plan, point, token)`` — the same plan
  replays the same faults whatever the thread interleaving, so chaos
  tests are reproducible and shrinkable.  With no plan active the
  points cost one global read each.

* **Policies proven against it** — :class:`RetryPolicy` (bounded
  attempts, exponential backoff, deterministic seeded jitter, applied
  *only* to faults :func:`is_transient` classifies as retryable:
  worker loss and store IO, never deterministic compile errors or
  timeouts) and :class:`ServiceOverloaded` (what a bounded admission
  queue sheds load with, carrying the queue depth and a retry-after
  hint).  The deadline/cancellation primitives themselves live in
  :mod:`repro.pnr.parallel` (the compile loops check them) and are
  re-exported here.

Quickstart — a plan that kills the first pool worker once, and the
deterministic backoff a retry would use:

>>> from repro.service.resilience import FaultPlan, FaultSpec, RetryPolicy
>>> plan = FaultPlan((FaultSpec("pool.worker", "die", token="0"),))
>>> plan.digest() == FaultPlan.from_specs([("pool.worker", "die", {"token": "0"})]).digest()
True
>>> policy = RetryPolicy(max_attempts=3, base_delay=0.01, seed=7)
>>> policy.delay(0, "job") == policy.delay(0, "job")   # seeded jitter
True
>>> policy.is_transient(OSError("disk hiccup"))
True
>>> from repro.pnr.parallel import CompileTimeout
>>> policy.is_transient(CompileTimeout("budget spent"))
False
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.pnr.defects import RepairFallback
from repro.pnr.flow import PnrError
from repro.pnr.parallel import (
    FAULT_POINTS,
    CompileTimeout,
    Deadline,
    TransientFault,
    WorkerCrash,
    WorkerLost,
    checkpoint,
    current_deadline,
    deadline_scope,
    fault_point,
    inject_faults,
    sleep_checked,
)

__all__ = [
    "FAULT_EXCEPTIONS",
    "FAULT_KINDS",
    "FAULT_POINTS",
    "CompileTimeout",
    "Deadline",
    "DeterministicFault",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "ServiceOverloaded",
    "StoreIOFault",
    "TransientFault",
    "WorkerCrash",
    "WorkerLost",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
    "fault_point",
    "inject_faults",
    "is_transient",
    "sleep_checked",
]


class ServiceOverloaded(RuntimeError):
    """The service's bounded admission queue shed this submission.

    Load-shedding is graceful degradation, not failure: the artifact
    was simply not attempted.  ``queue_depth`` says how many jobs were
    already pending and ``retry_after`` (seconds) is the service's
    estimate of when a resubmission would be admitted.
    """

    def __init__(self, queue_depth: int, max_pending: int, retry_after: float):
        super().__init__(
            f"service overloaded: {queue_depth} jobs pending "
            f"(limit {max_pending}); retry after ~{retry_after:g}s"
        )
        self.queue_depth = queue_depth
        self.max_pending = max_pending
        self.retry_after = retry_after


class StoreIOFault(OSError):
    """Injected store IO trouble (a full disk, a flaky mount) — transient."""


class DeterministicFault(RuntimeError):
    """An injected *deterministic* failure — retrying only repeats it.

    Stands in for the compile-error class of the taxonomy
    (:class:`repro.pnr.flow.PnrError` and friends): the chaos suite
    proves these are never retried and never cached.
    """


def is_transient(exc: BaseException) -> bool:
    """The failure taxonomy: is this fault worth retrying?

    Transient — the operation may succeed if repeated — covers worker
    loss (:class:`repro.pnr.parallel.TransientFault` and subclasses)
    and store IO (``OSError``).  Everything else is deterministic:
    compile errors, :class:`CompileTimeout` (which *is* an ``OSError``
    via ``TimeoutError``, hence the explicit carve-out), verification
    failures.  Retrying a deterministic failure only repeats it.
    """
    if isinstance(exc, CompileTimeout):
        return False
    return isinstance(exc, (TransientFault, OSError))


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
#: Injectable fault kinds (validated on FaultSpec construction).
FAULT_KINDS = ("error", "stall", "corrupt", "die")

#: Exception registry for ``kind="error"`` specs: the failure taxonomy
#: a plan can inject, by name (names, not classes, keep specs
#: JSON-serialisable and hence content-addressable).
FAULT_EXCEPTIONS: dict[str, type[BaseException]] = {
    "transient": TransientFault,
    "io": StoreIOFault,
    "crash": WorkerCrash,
    "deterministic": DeterministicFault,
    "pnr": PnrError,
    "repair": RepairFallback,
}


def _hash01(*parts) -> float:
    """A uniform [0, 1) draw, pure in its inputs (no RNG state)."""
    text = ":".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where, what, how often.

    Attributes
    ----------
    point:
        A registered fault point name
        (:data:`repro.pnr.parallel.FAULT_POINTS`).
    kind:
        ``"error"`` raises ``FAULT_EXCEPTIONS[exc]``; ``"stall"``
        sleeps ``delay`` seconds (deadline-aware — a stalled job still
        times out on schedule); ``"corrupt"`` flips one deterministic
        byte of the data passing through the point; ``"die"`` raises
        :class:`WorkerCrash` (which a crash-isolated process worker
        turns into a real ``os._exit`` — see
        ``repro.service.service._isolated_compile``).
    rate:
        Firing probability per visit, decided by a pure hash of
        ``(plan seed, spec index, point, token)`` — no counters, so the
        decision is identical across threads, processes and reruns.
    token:
        When set, the spec only fires on visits whose token contains
        this substring (e.g. ``"0"`` to kill only the first pool job,
        or a key digest prefix to target one artifact).
    exc, delay, message:
        Kind-specific knobs (see ``kind``).
    """

    point: str
    kind: str
    rate: float = 1.0
    token: str | None = None
    exc: str = "transient"
    delay: float = 0.05
    message: str = ""

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"registered: {sorted(FAULT_POINTS)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.kind == "error" and self.exc not in FAULT_EXCEPTIONS:
            raise ValueError(
                f"unknown fault exception {self.exc!r}; "
                f"one of {sorted(FAULT_EXCEPTIONS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def encode(self) -> list:
        """The spec as a canonical JSON-ready list (for the digest)."""
        return [
            self.point, self.kind, self.rate, self.token,
            self.exc, self.delay, self.message,
        ]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, content-addressed set of injected faults.

    Activate with :meth:`activate` (a context manager installing the
    plan at the process-wide hook); every visit to a registered fault
    point then consults the plan.  Decisions are pure functions of
    ``(seed, spec index, point, token)``: the same plan against the
    same workload injects the same faults, whatever the scheduling.

    Plans are picklable and cheap, so the service ships the active
    plan into its crash-isolated subprocess workers — an injected
    worker death fires *inside* the worker, exercising the real
    ``BrokenProcessPool`` recovery path.

    >>> plan = FaultPlan((FaultSpec("store.load", "error", exc="io"),))
    >>> len(plan.digest())
    64
    >>> from repro.pnr.parallel import fault_point
    >>> with plan.activate():
    ...     try:
    ...         fault_point("store.load", token="anything")
    ...     except OSError as e:
    ...         print("injected:", e)
    injected: injected io fault at store.load
    >>> fault_point("store.load", token="anything") is None   # plan inactive
    True
    """

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def from_specs(cls, rows, seed: int = 0) -> FaultPlan:
        """Build a plan from ``(point, kind[, kwargs])`` rows.

        >>> FaultPlan.from_specs([
        ...     ("pool.worker", "die", {"token": "0"}),
        ...     ("store.publish", "corrupt",),
        ... ]).specs[1].kind
        'corrupt'
        """
        specs = []
        for row in rows:
            point, kind, *rest = row
            kwargs = rest[0] if rest else {}
            specs.append(FaultSpec(point, kind, **kwargs))
        return cls(tuple(specs), seed=seed)

    def digest(self) -> str:
        """SHA-256 content address of (seed, ordered specs).

        Equal plans hash equal whatever constructed them — the same
        contract as :meth:`repro.pnr.defects.DefectMap.digest`, so a
        chaos run is addressable by the plan that produced it.
        """
        text = json.dumps(
            [self.seed, [s.encode() for s in self.specs]],
            separators=(",", ":"),
        )
        return hashlib.sha256(text.encode()).hexdigest()

    def activate(self):
        """Install this plan at the process-wide fault hook (a CM)."""
        return inject_faults(self)

    # -- firing ---------------------------------------------------------
    def fire(self, point: str, token: str = "", data=None):
        """Apply every matching spec to one fault-point visit.

        Called by :func:`repro.pnr.parallel.fault_point` while the plan
        is active.  Specs apply in declaration order; ``corrupt``
        transforms ``data`` (returned), ``stall`` sleeps, ``error`` and
        ``die`` raise.
        """
        for i, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if spec.token is not None and spec.token not in token:
                continue
            if spec.rate < 1.0 and _hash01(
                self.seed, i, point, token
            ) >= spec.rate:
                continue
            data = self._apply(i, spec, point, token, data)
        return data

    def _apply(self, i: int, spec: FaultSpec, point: str, token: str, data):
        if spec.kind == "stall":
            sleep_checked(spec.delay)
            return data
        if spec.kind == "corrupt":
            if isinstance(data, (bytes, bytearray)) and len(data) > 0:
                pos = int(_hash01(self.seed, "pos", i, token) * len(data))
                flipped = bytearray(data)
                flipped[pos] ^= 0xFF
                return bytes(flipped)
            return data
        if spec.kind == "die":
            raise WorkerCrash(
                spec.message or f"injected worker death at {point}"
            )
        # kind == "error" (the only remaining kind, by validation)
        raise FAULT_EXCEPTIONS[spec.exc](
            spec.message or f"injected {spec.exc} fault at {point}"
        )


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Applied **only** to transient faults (:func:`is_transient`): store
    IO and worker loss may succeed on a second try; deterministic
    compile errors and deadline timeouts never do, and retrying them
    would just multiply the load that caused the trouble.  Jitter is
    derived from ``(seed, token, attempt)`` — deterministic, so two
    runs of the same workload back off identically (no thundering-herd
    *and* no flaky tests).

    >>> p = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
    >>> [round(p.delay(a, "t"), 2) for a in range(3)]
    [0.1, 0.2, 0.4]
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    backoff: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    #: The taxonomy, exposed on the policy for callers' convenience.
    is_transient = staticmethod(is_transient)

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        base = min(self.max_delay, self.base_delay * self.backoff**attempt)
        return base * (1.0 + self.jitter * _hash01(self.seed, token, attempt))

    def call(self, fn, *, token: str = "", on_retry=None):
        """Run ``fn()``, retrying transient faults up to the budget.

        Non-transient exceptions propagate immediately; transient ones
        propagate once ``max_attempts`` total attempts are spent.
        Backoff sleeps are deadline-aware (:func:`sleep_checked`), so
        retrying inside a deadline scope still times out on schedule.
        ``on_retry`` (if given) is called once per retry — the service
        counts its ``retries`` book through it.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except BaseException as e:  # noqa: BLE001 - classified below
                if not is_transient(e) or attempt + 1 >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry()
                sleep_checked(self.delay(attempt, token))
                attempt += 1
