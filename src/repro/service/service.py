"""The compile service: queue, worker pool, cache, delta recompiles.

:class:`CompileService` turns the one-shot compile entry points
(:func:`repro.pnr.compile_to_fabric` / the sharded flow it dispatches
to) into a served system, the client/server split of circuit_training's
placement server re-imagined for this fabric:

* **content-addressed cache** — jobs are keyed on
  ``(canonical_hash(netlist), options.key())``
  (:mod:`repro.netlist.canonical`): two clients submitting the same
  circuit under different spellings share one compiled artifact, with a
  port map translated back to each client's own names;
* **persisted artifact store** — with ``store=`` set, a second,
  on-disk tier (:class:`repro.service.store.ArtifactStore`) under the
  in-memory cache: lookups go memory → store → compile, every compiled
  artifact is published to disk, and a restarted or sibling service on
  the same directory serves it byte-identically with zero recompiles;
* **single-flight coalescing** — concurrent submissions of one key run
  one compile; the duplicates wait on the same future and count as
  coalesced, not as compiles;
* **worker pool** — jobs fan out on a persistent
  :class:`repro.pnr.parallel.TaskPool`; each job's compile runs
  *serial inside* (``workers=0``), so results are a pure function of
  (netlist, options) and byte-identical for any pool width;
* **incremental recompiles** — :meth:`CompileService.recompile` routes
  an edited netlist through
  :func:`repro.pnr.incremental.compile_incremental` against a cached
  base, falling back to a cold compile whenever the delta path
  declines (:class:`repro.pnr.incremental.IncrementalFallback`);
  :meth:`CompileService.open_session` chains this across a whole
  *sequence* of edits, each step warm-starting from the previous
  step's artifact (:class:`repro.service.session.EditSession`);
* **per-die repair** — :meth:`CompileService.submit_for_die` compiles
  a design once (the **golden** artifact, shared through the normal
  cache) and adapts it to each defective die with
  :func:`repro.pnr.defects.repair_for_die`, falling back to a cold
  defect-aware compile when the die is too broken
  (:class:`repro.pnr.defects.RepairFallback`).  Die artifacts are
  cached under ``(netlist, options, defect-map digest)``, so one
  golden compile serves a whole wafer's worth of distinct dies.

Determinism contract (proven in ``tests/test_service.py``): a cache
*miss* compiles cold and is byte-identical to calling
``compile_to_fabric`` yourself; a cache *hit* returns the bytes of the
entry's original cold compile (if you hit with a renamed-but-isomorphic
netlist, you get those bytes with your port names mapped on top — the
circuit is the same, the spelling of its pins is yours); an
*incremental* recompile is deterministic and dual-backend equivalent
but placed from the cached base, so its bytes legitimately differ from
a cold compile's.  See ``docs/compile-service.md``.

**Resilience** (PR 10, proven in ``tests/test_resilience.py`` and the
chaos suite): every submission path passes named fault points
(``service.submit`` / ``service.run`` / ``service.settle``) so a
:class:`repro.service.resilience.FaultPlan` can interrogate the
hardening — per-job deadlines cooperatively cancel stuck compiles
(:class:`repro.pnr.parallel.CompileTimeout`), transient store IO and
worker loss retry under a seeded :class:`~repro.service.resilience.RetryPolicy`,
dead workers are respawned with their jobs resubmitted exactly once,
a bounded admission queue sheds overload
(:class:`~repro.service.resilience.ServiceOverloaded`), and
``compile_for_die`` degrades to serving the golden artifact (marked
``degraded=True``, never cached) when repair exhausts its budget under
pressure.  The byte-identity contract extends to all of it: whatever
faults fire, a served artifact is byte-identical to the fault-free
reference or explicitly marked degraded.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

from repro.netlist.canonical import CANONICAL_HASH_VERSION, canonical_hash
from repro.netlist.ir import Netlist
from repro.pnr.defects import DefectMap, RepairFallback, repair_for_die
from repro.pnr.flow import PnrResult, compile_to_fabric
from repro.pnr.incremental import IncrementalFallback, compile_incremental
from repro.pnr.parallel import (
    CompileTimeout,
    ProcessWorkerPool,
    TaskPool,
    TransientFault,
    WorkerCrash,
    WorkerLost,
    active_fault_plan,
    current_deadline,
    deadline_scope,
    fault_point,
    inject_faults,
)
from repro.service.cache import ResultCache
from repro.service.resilience import (
    RetryPolicy,
    ServiceOverloaded,
    is_transient,
)
from repro.service.store import ArtifactStore

__all__ = ["CompileOptions", "CompileService", "ServiceResult"]


@dataclass(frozen=True)
class CompileOptions:
    """The result-affecting knobs of a compile, as one hashable value.

    Mirrors the :func:`repro.pnr.compile_to_fabric` keywords that
    change *what gets built* (seed, anneal schedule, timing mode,
    sharding).  Pool-shape knobs (``workers``) are deliberately absent:
    by the repo's determinism contract they never change results, so
    they must not split the cache.
    """

    seed: int = 0
    anneal_steps: int | None = None
    max_attempts: int = 6
    timing_driven: bool = False
    timing_weight: float = 2.0
    target_period: int | None = None
    shards: int | None = None
    max_side: int | None = None
    replicas: int = 1
    #: Wall-clock budget (seconds) for this job; ``None`` = unbounded.
    #: The compile loops check it cooperatively and raise
    #: :class:`repro.pnr.parallel.CompileTimeout` when it expires.
    #: Like ``workers``, a deadline never changes *what* gets built —
    #: it only bounds how long we try — so it is deliberately excluded
    #: from :meth:`key` (same artifact, same cache slot, any deadline)
    #: and from :meth:`compile_kwargs`.
    deadline: float | None = None

    def key(self) -> tuple:
        """The options' contribution to the cache key."""
        return (
            "opts",
            CANONICAL_HASH_VERSION,
            self.seed,
            self.anneal_steps,
            self.max_attempts,
            self.timing_driven,
            self.timing_weight,
            self.target_period,
            self.shards,
            self.max_side,
            self.replicas,
        )

    def compile_kwargs(self) -> dict:
        """Keyword arguments for :func:`compile_to_fabric`."""
        return {
            "seed": self.seed,
            "anneal_steps": self.anneal_steps,
            "max_attempts": self.max_attempts,
            "timing_driven": self.timing_driven,
            "timing_weight": self.timing_weight,
            "target_period": self.target_period,
            "shards": self.shards,
            "max_side": self.max_side,
            "replicas": self.replicas,
            # Jobs parallelise across the service pool, never inside a
            # compile: serial inner compiles keep tracebacks flat and
            # make every artifact a pure function of (netlist, options).
            "workers": 0,
        }


@dataclass(frozen=True)
class _CacheEntry:
    """What the cache stores: the artifact plus its netlist's port order."""

    result: object  # PnrResult | ShardedPnrResult
    input_ports: tuple[str, ...]
    output_ports: tuple[str, ...]
    incremental: bool = False
    repaired: bool = False
    #: Degraded entries (golden served in place of an exhausted die
    #: repair) are handed to the submitter but never cached/persisted.
    degraded: bool = False


@dataclass(frozen=True)
class ServiceResult:
    """One submission's view of a compiled artifact.

    The underlying ``result`` may have been compiled from a *different
    spelling* of the same circuit (content-addressing coalesces
    isomorphic netlists); ``input_wires`` / ``output_wires`` are keyed
    by **this submission's** port names, mapped positionally onto the
    artifact's ports.  ``cached``/``coalesced``/``incremental`` say how
    the artifact was obtained — ``bitstreams()`` is byte-identical for
    every submission that shares the same cache key.
    """

    key: tuple
    result: object  # PnrResult | ShardedPnrResult
    input_wires: dict
    output_wires: dict
    cached: bool
    coalesced: bool
    incremental: bool
    #: True when the artifact was produced by warm per-die repair of a
    #: golden compile rather than a from-scratch compile.
    repaired: bool = False
    #: True when the artifact was loaded from the persisted
    #: :class:`repro.service.store.ArtifactStore` rather than compiled
    #: (or memory-cached) in this process — typically a compile some
    #: *other* service instance, or an earlier life of this one, paid
    #: for.  The bytes are identical either way.
    from_store: bool = False
    #: True when the service served a *stand-in* under pressure: the
    #: golden artifact in place of a per-die repair whose budget was
    #: exhausted (see ``docs/resilience.md``).  A degraded result is
    #: correct for the defect-free fabric but NOT adapted to this die's
    #: defects; it is never cached, so a calmer resubmission gets the
    #: real repair.
    degraded: bool = False

    def bitstreams(self) -> list[bytes]:
        """Configuration bitstream(s) as bytes: one per array, shard order.

        The flow's ``to_bitstream`` returns the frame array; a served
        artifact serialises to actual wire bytes, so clients (and the
        byte-identity tests) compare with plain ``==``.
        """
        if isinstance(self.result, PnrResult):
            streams = [self.result.to_bitstream()]
        else:
            streams = self.result.to_bitstreams()
        return [s.tobytes() for s in streams]


def _remap_ports(
    entry: _CacheEntry, inputs: tuple[str, ...], outputs: tuple[str, ...]
) -> tuple[dict, dict]:
    """Translate the entry's pin maps to the requester's port names.

    Content-addressing guarantees the requester's netlist has the same
    port *structure* (count and position) as the entry's; names may
    differ.  Wires for ports the flow never routed (dead inputs) are
    absent from both sides.
    """
    res = entry.result
    in_wires = {}
    for i, req_name in enumerate(inputs):
        wire = res.input_wires.get(entry.input_ports[i])
        if wire is not None:
            in_wires[req_name] = wire
    out_wires = {}
    for i, req_name in enumerate(outputs):
        wire = res.output_wires.get(entry.output_ports[i])
        if wire is not None:
            out_wires[req_name] = wire
    return in_wires, out_wires


def _isolated_compile(netlist, kwargs, deadline, plan, token, attempt):
    """One compile inside a crash-isolated subprocess worker.

    Module-level so it pickles.  Re-installs the parent's fault plan
    and the *remaining* deadline in the child, so injected faults and
    timeouts behave identically under both isolation modes.  An
    injected worker death (:class:`WorkerCrash`) becomes a real
    ``os._exit`` — the parent sees ``BrokenProcessPool``, exercising
    the genuine crash-recovery path, not a simulation of it.
    """
    import contextlib
    import os

    from repro.pnr import parallel as _parallel

    # A forked worker inherits the parent's installed plan; clear it so
    # re-installing the shipped copy (or running plan-free) is clean.
    _parallel._ACTIVE_PLAN = None
    cm = inject_faults(plan) if plan is not None else contextlib.nullcontext()
    try:
        with cm, deadline_scope(deadline):
            fault_point("pool.worker", token=f"proc:{token}:{attempt}")
            return compile_to_fabric(netlist, **kwargs)
    except WorkerCrash:
        os._exit(3)


class CompileService:
    """A concurrent compile server over a content-addressed cache.

    Parameters
    ----------
    workers:
        Pool width for concurrent jobs, under the repo convention
        (``None`` auto, ``0``/``1`` serial-inline, ``N`` threads).
    cache_capacity:
        LRU entry budget of the result cache (0 disables caching).
    store:
        The persisted tier: an
        :class:`repro.service.store.ArtifactStore`, or a directory path
        to open one on (``None`` = in-memory only).  Lookups go memory
        → store → compile; every compiled, repaired or incremental
        artifact is published to the store, so a restarted or sibling
        service on the same directory serves it byte-identically with
        zero recompiles (see ``docs/artifact-store.md``).
    max_delta_frac, release_budget_frac:
        Passed through to :func:`compile_incremental`; see there.
    retry:
        The :class:`repro.service.resilience.RetryPolicy` applied to
        transient faults on the store path (IO errors retry with
        seeded backoff, then degrade: a failed load is a miss, a
        failed publish is counted and the compile still served).
        ``None`` installs the default policy.
    max_pending:
        Bounded admission: with ``N`` set, a submission arriving while
        ``N`` or more are already pending is *shed* —
        :class:`~repro.service.resilience.ServiceOverloaded` (carrying
        the queue depth and a retry-after hint) instead of an unbounded
        queue.  ``None`` (default) admits everything.
    isolation:
        ``"thread"`` (default) runs compiles on the thread pool;
        ``"process"`` runs each cold compile in a crash-isolated
        subprocess — a worker death (real or injected) is survived by
        respawning the worker and resubmitting the job exactly once
        (``worker_restarts`` in :meth:`stats`), and only a second
        death surfaces (:class:`repro.pnr.parallel.WorkerLost`).
    degrade_under_pressure:
        When True (default), :meth:`compile_for_die` under pressure
        serves the golden artifact marked ``degraded=True`` instead of
        erroring when per-die repair exhausts its budget (see
        ``docs/resilience.md``); False restores strict behaviour.

    Use as a context manager or call :meth:`close` to release workers
    (the store needs no closing — its whole point is to outlive this).
    Closing drains: every already-accepted future settles before
    :meth:`close` returns, and later submissions raise ``RuntimeError``.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache_capacity: int = 64,
        store: ArtifactStore | str | Path | None = None,
        max_delta_frac: float | None = None,
        release_budget_frac: float | None = None,
        retry: RetryPolicy | None = None,
        max_pending: int | None = None,
        isolation: str = "thread",
        degrade_under_pressure: bool = True,
    ) -> None:
        if isolation not in ("thread", "process"):
            raise ValueError(
                f"isolation must be 'thread' or 'process', got {isolation!r}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.cache = ResultCache(cache_capacity)
        self.store = (
            ArtifactStore(store) if isinstance(store, (str, Path)) else store
        )
        self._pool = TaskPool(workers)
        self._retry = retry if retry is not None else RetryPolicy()
        self._max_pending = max_pending
        self._isolation = isolation
        self._degrade = degrade_under_pressure
        self._procs = (
            ProcessWorkerPool(workers=1) if isolation == "process" else None
        )
        self._closed = False
        self._lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self._delta_kwargs = {}
        if max_delta_frac is not None:
            self._delta_kwargs["max_delta_frac"] = max_delta_frac
        if release_budget_frac is not None:
            self._delta_kwargs["release_budget_frac"] = release_budget_frac
        self._stats_lock = threading.Lock()
        self._pending = 0
        self._counters = {
            "submissions": 0,
            "compiles": 0,
            "coalesced": 0,
            "store_hits": 0,
            "store_errors": 0,
            "incremental_compiles": 0,
            "incremental_fallbacks": 0,
            "repairs": 0,
            "repair_fallbacks": 0,
            # Resilience books (see docs/resilience.md).  Identity:
            # submissions == settled + shed + pending, at every instant.
            "settled": 0,
            "shed": 0,
            "timeouts": 0,
            "retries": 0,
            "worker_restarts": 0,
            "degraded": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Drain outstanding jobs and stop the workers.

        Every already-accepted future settles (with its result or its
        job's exception) before this returns — a waiter can never hang
        on a closed service.  Submitting afterwards raises
        ``RuntimeError``.  Idempotent.
        """
        with self._lock:
            self._closed = True
        self._pool.close()
        if self._procs is not None:
            self._procs.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "CompileService is closed; jobs can no longer be submitted"
            )

    def __enter__(self) -> CompileService:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting -----------------------------------------------------
    def _bump(self, counter: str, by: int = 1) -> None:
        with self._stats_lock:
            self._counters[counter] += by

    def stats(self) -> dict:
        """Service + cache (+ store, when attached) counters, one snapshot.

        The resilience identity — ``submissions == settled + shed +
        pending`` — holds at every instant (chaos-tested): every
        admitted submission's future is counted settled exactly once,
        shed ones never got a future, and ``pending`` gauges the rest.
        """
        with self._stats_lock:
            out = dict(self._counters)
            out["pending"] = self._pending
        out["cache"] = self.cache.stats()
        out["store"] = self.store.stats() if self.store is not None else None
        out["workers"] = self._pool.workers
        if self._procs is not None:
            out["process_restarts"] = self._procs.restarts
        return out

    def _track(self, future: Future) -> Future:
        """Count one admitted submission: pending now, settled at done.

        Attached to *every* future the service hands out (immediate
        cache hits included — their callback fires synchronously), so
        the ``submissions == settled + shed + pending`` identity is a
        property of the code shape, not of any particular path.
        """
        with self._stats_lock:
            self._pending += 1

        def _done(_: Future) -> None:
            with self._stats_lock:
                self._pending -= 1
                self._counters["settled"] += 1

        future.add_done_callback(_done)
        return future

    def _admit(self) -> None:
        """Bounded admission: shed when the pending queue is full.

        Cache hits never reach here (they cost nothing to serve); a
        real job arriving at a full queue raises
        :class:`ServiceOverloaded` with the depth and a retry-after
        hint sized to the backlog.
        """
        if self._max_pending is None:
            return
        with self._stats_lock:
            depth = self._pending
            if depth < self._max_pending:
                return
            self._counters["shed"] += 1
        raise ServiceOverloaded(
            queue_depth=depth,
            max_pending=self._max_pending,
            retry_after=max(0.05, 0.05 * (depth - self._max_pending + 1)),
        )

    def _under_pressure(self) -> bool:
        """Saturated right now?  (Admission-full, with a bound set.)"""
        if self._max_pending is None:
            return False
        with self._stats_lock:
            return self._pending >= self._max_pending

    # -- the persisted tier ---------------------------------------------
    def _store_get(self, key: tuple) -> _CacheEntry | None:
        """Probe the persisted tier (miss when no store is attached).

        A hit is promoted into the in-memory cache and counted under
        ``store_hits``, so the next lookup of this key is a plain
        memory hit.  Store-side integrity failures surface here as
        misses by the store's own contract; transient IO trouble
        retries under the service policy and then *degrades to a miss*
        (counted under ``store_errors``) — a flaky disk costs a
        recompile, never a failed job.  A deadline expiring mid-retry
        still surfaces: timing out is the job's contract, not the
        store's.
        """
        if self.store is None:
            return None
        try:
            entry = self._retry.call(
                lambda: self.store.get(key),
                token=str(key),
                on_retry=lambda: self._bump("retries"),
            )
        except CompileTimeout:
            raise
        except (TransientFault, OSError):
            self._bump("store_errors")
            return None
        if entry is not None:
            self._bump("store_hits")
            self.cache.put(key, entry)
        return entry

    def _store_put(self, key: tuple, entry: _CacheEntry) -> None:
        """Publish an artifact; disk trouble must not fail the compile.

        Transient failures retry, then degrade: a full or read-only
        disk shrinks the store, and a deadline expiring during publish
        backoff is swallowed too (counted under both books) — the
        compile that produced this artifact already succeeded, so it
        is served regardless.
        """
        if self.store is None:
            return
        try:
            self._retry.call(
                lambda: self.store.put(key, entry),
                token=str(key),
                on_retry=lambda: self._bump("retries"),
            )
        except CompileTimeout:
            self._bump("timeouts")
            self._bump("store_errors")
        except (TransientFault, OSError):
            self._bump("store_errors")

    # -- the compile path -----------------------------------------------
    def _compile_cold(
        self,
        netlist: Netlist,
        options: CompileOptions,
        *,
        token: str,
        defect_map: DefectMap | None = None,
    ):
        """One cold compile under the configured isolation mode.

        Thread mode calls :func:`compile_to_fabric` in place (the
        deadline scope installed by the caller covers it).  Process
        mode ships the job — with the *remaining* deadline and the
        active fault plan — into a crash-isolated subprocess: if the
        worker dies mid-job (``os._exit``, a segfault, an injected
        crash) it is respawned and the job resubmitted exactly once
        (``worker_restarts``); a second death raises
        :class:`WorkerLost`.  Results are byte-identical across modes
        and across restarts — a compile is a pure function of
        (netlist, options), so re-running it is safe by construction.
        """
        kwargs = options.compile_kwargs()
        if defect_map is not None:
            kwargs["defect_map"] = defect_map
        if self._procs is None:
            return compile_to_fabric(netlist, **kwargs)
        deadline = current_deadline()
        remaining = deadline.remaining() if deadline is not None else None
        plan = active_fault_plan()
        for attempt in range(2):
            try:
                return self._procs.run(
                    _isolated_compile,
                    netlist, kwargs, remaining, plan, token, attempt,
                )
            except WorkerCrash:
                if attempt == 0:
                    self._bump("worker_restarts")
                    continue
                raise WorkerLost(
                    f"compile worker died twice on job {token}; giving up"
                ) from None

    def _launch(self, key: tuple, compiled: Future, run) -> None:
        """Put ``run`` on the pool, supervised against worker death.

        ``run`` itself never raises (it settles ``compiled``), so an
        exception on the *pool-level* future means the worker died
        before ``run`` executed — an injected ``pool.worker`` fault, in
        practice.  The supervisor resubmits exactly once
        (``worker_restarts``); a second death settles ``compiled`` with
        :class:`WorkerLost` and performs the in-flight cleanup ``run``
        never got to, so coalesced waiters always settle, never hang.
        """

        resubmitted = [False]

        def _supervise(pool_future: Future) -> None:
            err = pool_future.exception()
            if err is None or compiled.done():
                return
            if is_transient(err) and not resubmitted[0]:
                resubmitted[0] = True
                self._bump("worker_restarts")
                try:
                    self._pool.submit(run).add_done_callback(_supervise)
                    return
                except RuntimeError:
                    err = WorkerLost(
                        "worker died and the pool closed before the job "
                        "could be resubmitted"
                    )
            elif is_transient(err):
                err = WorkerLost(
                    "worker died twice running one job; giving up"
                )
            with self._lock:
                self._inflight.pop(key, None)
            compiled.set_exception(err)

        self._pool.submit(run).add_done_callback(_supervise)

    def job_key(self, netlist: Netlist, options: CompileOptions) -> tuple:
        """The content-addressed cache key of one submission."""
        return (canonical_hash(netlist), options.key())

    def submit(
        self, netlist: Netlist, options: CompileOptions | None = None
    ) -> Future:
        """Enqueue one compile; returns a Future of a ServiceResult.

        Cache hits resolve immediately; concurrent duplicate keys
        coalesce onto the one in-flight job.  A memory miss probes the
        persisted store *inside* the job (single-flight is preserved
        across tiers: duplicates coalesce whether the key resolves from
        disk or from a compile) and only compiles on a store miss.  The
        returned future is *per-submission*: its ``ServiceResult``
        carries pin maps in this submission's port names even when the
        artifact was compiled from an isomorphic sibling.

        Resilience semantics: with ``options.deadline`` set, the job's
        compile loops cooperatively cancel on expiry and the future
        carries :class:`CompileTimeout` — within 2x the deadline, never
        hanging the pool; with ``max_pending`` set, a full queue sheds
        the submission *synchronously*
        (:class:`ServiceOverloaded` — cache hits are never shed); after
        :meth:`close`, ``RuntimeError``.  However a job ends — result,
        timeout, worker death, injected fault — an admitted future
        settles exactly once.
        """
        options = options or CompileOptions()
        self._check_open()
        key = self.job_key(netlist, options)
        token = key[0][:12]
        fault_point("service.submit", token=token)
        self._bump("submissions")
        # Snapshot the requester's port spelling now — the netlist is
        # the caller's object and this future may resolve much later.
        req_inputs = tuple(netlist.inputs)
        req_outputs = tuple(netlist.outputs)

        def view(
            entry: _CacheEntry, *, cached: bool, coalesced: bool,
            from_store: bool = False,
        ):
            in_wires, out_wires = _remap_ports(entry, req_inputs, req_outputs)
            return ServiceResult(
                key=key,
                result=entry.result,
                input_wires=in_wires,
                output_wires=out_wires,
                cached=cached,
                coalesced=coalesced,
                incremental=entry.incremental,
                repaired=entry.repaired,
                from_store=from_store,
                degraded=entry.degraded,
            )

        entry = self.cache.get(key)
        if entry is not None:
            future: Future = Future()
            future.set_result(view(entry, cached=True, coalesced=False))
            return self._track(future)

        self._admit()
        with self._lock:
            # Re-check under the lock: a racing compile may have
            # finished (cache.put then inflight pop, in that order)
            # between the lock-free cache probe above and here.  peek,
            # not get — the entry is already most-recent and the probe
            # above already charged this submission its miss.
            entry = self.cache.peek(key)
            if entry is not None:
                future = Future()
                future.set_result(view(entry, cached=True, coalesced=False))
                return self._track(future)
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._bump("coalesced")
                chained: Future = Future()

                def _chain(done: Future, out: Future = chained) -> None:
                    err = done.exception()
                    if err is not None:
                        out.set_exception(err)
                    else:
                        entry, from_store = done.result()
                        out.set_result(view(
                            entry, cached=True, coalesced=True,
                            from_store=from_store,
                        ))

                inflight.add_done_callback(_chain)
                return self._track(chained)

            compiled: Future = Future()
            self._inflight[key] = compiled

        def run() -> None:
            try:
                with deadline_scope(options.deadline):
                    fault_point("service.run", token=token)
                    # Tier 2: the persisted store.  Probed on the pool,
                    # not in submit() — deserialising a large artifact
                    # must not block the submitting thread, and the
                    # in-flight future already coalesces duplicates.
                    entry = self._store_get(key)
                    if entry is not None:
                        fault_point("service.settle", token=token)
                        compiled.set_result((entry, True))
                        return
                    self._bump("compiles")
                    result = self._compile_cold(netlist, options, token=token)
                    entry = _CacheEntry(
                        result=result,
                        input_ports=req_inputs,
                        output_ports=req_outputs,
                    )
                    self.cache.put(key, entry)
                    self._store_put(key, entry)
                    fault_point("service.settle", token=token)
                    compiled.set_result((entry, False))
            except CompileTimeout as e:
                self._bump("timeouts")
                compiled.set_exception(e)
            except BaseException as e:  # noqa: BLE001 - future carries it
                compiled.set_exception(e)
            finally:
                with self._lock:
                    self._inflight.pop(key, None)

        mine: Future = Future()

        def _settle(done: Future, out: Future = mine) -> None:
            err = done.exception()
            if err is not None:
                out.set_exception(err)
            else:
                entry, from_store = done.result()
                out.set_result(view(
                    entry, cached=from_store, coalesced=False,
                    from_store=from_store,
                ))

        compiled.add_done_callback(_settle)
        self._launch(key, compiled, run)
        return self._track(mine)

    def compile(
        self, netlist: Netlist, options: CompileOptions | None = None
    ) -> ServiceResult:
        """Blocking :meth:`submit`."""
        return self.submit(netlist, options).result()

    # -- per-die repair ---------------------------------------------------
    def die_key(
        self,
        netlist: Netlist,
        options: CompileOptions,
        defect_map: DefectMap,
    ) -> tuple:
        """Cache key of one die's artifact: the golden key + die digest.

        Composes the content-addressed job key with the defect map's
        digest, so two isomorphic netlists targeting the same die share
        one repaired artifact while distinct dies never collide.
        """
        return (
            canonical_hash(netlist),
            options.key(),
            ("die", defect_map.digest()),
        )

    def submit_for_die(
        self,
        netlist: Netlist,
        defect_map: DefectMap,
        options: CompileOptions | None = None,
    ) -> Future:
        """Enqueue a defect-adaptive compile for one die.

        Compiles the design once (the **golden** artifact, obtained
        through the normal cached :meth:`compile` path, so a fleet of
        dies shares one cold compile) and then adapts it to this die's
        defects with :func:`repro.pnr.defects.repair_for_die` on the
        pool.  When the die is too broken for the warm path
        (:class:`repro.pnr.defects.RepairFallback`), the job falls back
        to a full defect-aware cold compile — an unroutable die
        surfaces as the compile error on the returned future.

        The golden compile resolves synchronously in the *calling*
        thread (a cache hit after the first die), never inside the pool
        job: a nested blocking submit from a pool slot could deadlock a
        small pool.  Each die submission therefore also counts one
        golden submission in :meth:`stats`.

        Die artifacts cache under :meth:`die_key`; hits resolve
        immediately (from memory or the persisted store — a die another
        process repaired is served from disk without touching the
        golden) and concurrent submissions of the same die coalesce,
        exactly like :meth:`submit`.

        Graceful degradation (``degrade_under_pressure``, default on):
        when repair declines (:class:`RepairFallback`) while the
        service is saturated, or the job's deadline/worker budget is
        exhausted, the future resolves to the **golden** artifact
        marked ``degraded=True`` instead of erroring — correct for the
        defect-free fabric, not adapted to this die, and never cached,
        so a calmer resubmission performs the real repair.
        """
        options = options or CompileOptions()
        self._check_open()
        if options.shards is not None or options.max_side is not None:
            raise ValueError(
                "per-die compiles are single-array; drop shards/max_side"
            )
        key = self.die_key(netlist, options, defect_map)
        token = f"{key[0][:12]}:die:{defect_map.digest()[:12]}"
        fault_point("service.submit", token=token)
        self._bump("submissions")
        req_inputs = tuple(netlist.inputs)
        req_outputs = tuple(netlist.outputs)

        def view(
            entry: _CacheEntry, *, cached: bool, coalesced: bool,
            from_store: bool = False,
        ):
            in_wires, out_wires = _remap_ports(entry, req_inputs, req_outputs)
            return ServiceResult(
                key=key,
                result=entry.result,
                input_wires=in_wires,
                output_wires=out_wires,
                cached=cached,
                coalesced=coalesced,
                incremental=entry.incremental,
                repaired=entry.repaired,
                from_store=from_store,
                degraded=entry.degraded,
            )

        entry = self.cache.get(key)
        if entry is not None:
            future: Future = Future()
            future.set_result(view(entry, cached=True, coalesced=False))
            return self._track(future)

        self._admit()
        with self._lock:
            entry = self.cache.peek(key)
            if entry is not None:
                future = Future()
                future.set_result(view(entry, cached=True, coalesced=False))
                return self._track(future)
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._bump("coalesced")
                chained: Future = Future()

                def _chain(done: Future, out: Future = chained) -> None:
                    err = done.exception()
                    if err is not None:
                        out.set_exception(err)
                    else:
                        entry, from_store = done.result()
                        out.set_result(view(
                            entry, cached=True, coalesced=True,
                            from_store=from_store,
                        ))

                inflight.add_done_callback(_chain)
                return self._track(chained)

            compiled: Future = Future()
            self._inflight[key] = compiled

        mine: Future = Future()

        def _settle(done: Future, out: Future = mine) -> None:
            err = done.exception()
            if err is not None:
                out.set_exception(err)
            else:
                entry, from_store = done.result()
                out.set_result(view(
                    entry, cached=from_store, coalesced=False,
                    from_store=from_store,
                ))

        compiled.add_done_callback(_settle)

        # Tier 2 first: a die already repaired by another process (or
        # an earlier life of this one) serves straight from the store —
        # the golden artifact is not even loaded.  This probe runs in
        # the calling thread because the golden resolve below does too.
        try:
            entry = self._store_get(key)
        except BaseException as e:  # noqa: BLE001 - future carries it
            with self._lock:
                self._inflight.pop(key, None)
            compiled.set_exception(e)
            return self._track(mine)
        if entry is not None:
            with self._lock:
                self._inflight.pop(key, None)
            compiled.set_result((entry, True))
            return self._track(mine)

        try:
            golden = self.compile(netlist, options)
        except BaseException as e:  # noqa: BLE001 - future carries it
            with self._lock:
                self._inflight.pop(key, None)
            compiled.set_exception(e)
            return self._track(mine)

        def degraded_entry() -> _CacheEntry:
            # Serve the golden artifact as a marked stand-in.  Its
            # port spelling is the golden source's (the same remap
            # contract as the repair path); it is handed to waiters
            # but never cached or persisted — the die deserves its
            # real repair when pressure subsides.
            return _CacheEntry(
                result=golden.result,
                input_ports=tuple(golden.result.source.inputs),
                output_ports=tuple(golden.result.source.outputs),
                degraded=True,
            )

        def run() -> None:
            try:
                with deadline_scope(options.deadline):
                    fault_point("service.run", token=token)
                    try:
                        try:
                            result = repair_for_die(
                                golden.result,
                                defect_map,
                                target_period=options.target_period,
                                seed=options.seed,
                            )
                            self._bump("repairs")
                            repaired = True
                        except RepairFallback:
                            self._bump("repair_fallbacks")
                            if self._degrade and self._under_pressure():
                                # Repair declined and the queue is
                                # full: a cold defect-aware compile now
                                # would stall everyone behind it.
                                self._bump("degraded")
                                compiled.set_result((degraded_entry(), False))
                                return
                            self._bump("compiles")
                            result = self._compile_cold(
                                netlist, options,
                                token=token, defect_map=defect_map,
                            )
                            repaired = False
                    except (CompileTimeout, TransientFault) as e:
                        if not self._degrade:
                            raise
                        # The job's time or worker budget is spent —
                        # the golden stand-in beats erroring the die.
                        if isinstance(e, CompileTimeout):
                            self._bump("timeouts")
                        self._bump("degraded")
                        compiled.set_result((degraded_entry(), False))
                        return
                    # The repaired artifact keeps the *golden*
                    # netlist's port spelling (repair reuses the golden
                    # source, which may be an isomorphic sibling of
                    # this submission), so the entry's port order must
                    # come from the artifact — the requester's spelling
                    # is remapped per view.
                    entry = _CacheEntry(
                        result=result,
                        input_ports=tuple(result.source.inputs),
                        output_ports=tuple(result.source.outputs),
                        repaired=repaired,
                    )
                    self.cache.put(key, entry)
                    self._store_put(key, entry)
                    fault_point("service.settle", token=token)
                    compiled.set_result((entry, False))
            except CompileTimeout as e:
                self._bump("timeouts")
                compiled.set_exception(e)
            except BaseException as e:  # noqa: BLE001 - future carries it
                compiled.set_exception(e)
            finally:
                with self._lock:
                    self._inflight.pop(key, None)

        self._launch(key, compiled, run)
        return self._track(mine)

    def compile_for_die(
        self,
        netlist: Netlist,
        defect_map: DefectMap,
        options: CompileOptions | None = None,
    ) -> ServiceResult:
        """Blocking :meth:`submit_for_die`."""
        return self.submit_for_die(netlist, defect_map, options).result()

    # -- incremental recompiles -----------------------------------------
    def recompile(
        self,
        netlist: Netlist,
        base: ServiceResult | PnrResult,
        options: CompileOptions | None = None,
    ) -> ServiceResult:
        """Recompile an edited netlist, warm-starting from ``base``.

        Takes the delta path (:func:`compile_incremental`) when the
        edit is small enough; otherwise falls back to a full cold
        compile through the normal cached/coalesced :meth:`submit`
        machinery.  The result is cached under the *edited* netlist's
        content key — in memory and in the persisted store — so
        submitting the same edit again (from this service or a sibling
        on the same store) is a plain hit.

        A blocking call still keeps the resilience books: it counts
        pending while it runs and settled when it returns (or raises),
        honours ``options.deadline`` on the delta path, and raises
        ``RuntimeError`` after :meth:`close`.
        """
        options = options or CompileOptions()
        self._check_open()
        key = self.job_key(netlist, options)
        fault_point("service.submit", token=key[0][:12])
        self._bump("submissions")
        with self._stats_lock:
            self._pending += 1
        try:
            return self._recompile_body(netlist, base, options, key)
        finally:
            with self._stats_lock:
                self._pending -= 1
                self._counters["settled"] += 1

    def _recompile_body(
        self,
        netlist: Netlist,
        base: ServiceResult | PnrResult,
        options: CompileOptions,
        key: tuple,
    ) -> ServiceResult:
        """:meth:`recompile` body, inside its accounting bracket."""

        def cached_view(entry: _CacheEntry, *, from_store: bool):
            in_w, out_w = _remap_ports(
                entry, tuple(netlist.inputs), tuple(netlist.outputs)
            )
            return ServiceResult(
                key=key,
                result=entry.result,
                input_wires=in_w,
                output_wires=out_w,
                cached=True,
                coalesced=False,
                incremental=entry.incremental,
                repaired=entry.repaired,
                from_store=from_store,
                degraded=entry.degraded,
            )

        entry = self.cache.get(key)
        if entry is not None:
            return cached_view(entry, from_store=False)
        # recompile() is a blocking API, so the store probe runs right
        # here — an edit some sibling service already compiled (or a
        # replayed session step) never pays the delta path again.
        entry = self._store_get(key)
        if entry is not None:
            return cached_view(entry, from_store=True)
        base_result = base.result if isinstance(base, ServiceResult) else base
        try:
            with deadline_scope(options.deadline):
                result = compile_incremental(
                    netlist,
                    base_result,
                    target_period=options.target_period,
                    seed=options.seed,
                    **self._delta_kwargs,
                )
        except CompileTimeout:
            self._bump("timeouts")
            raise
        except IncrementalFallback:
            self._bump("incremental_fallbacks")
            return self.compile(netlist, options)
        self._bump("incremental_compiles")
        entry = _CacheEntry(
            result=result,
            input_ports=tuple(netlist.inputs),
            output_ports=tuple(netlist.outputs),
            incremental=True,
        )
        self.cache.put(key, entry)
        self._store_put(key, entry)
        return ServiceResult(
            key=key,
            result=result,
            input_wires=dict(result.input_wires),
            output_wires=dict(result.output_wires),
            cached=False,
            coalesced=False,
            incremental=True,
        )

    def open_session(
        self, netlist: Netlist, options: CompileOptions | None = None
    ):
        """Open a multi-edit incremental session against ``netlist``.

        Compiles (or serves) the base through the normal tiered path,
        then returns an :class:`repro.service.session.EditSession`
        whose :meth:`~repro.service.session.EditSession.apply` chains
        each edit's recompile off the **previous step's** artifact —
        a whole edit chain without ever re-cold-compiling, every
        intermediate cached and persisted under its own content key.
        """
        from repro.service.session import EditSession

        options = options or CompileOptions()
        base = self.compile(netlist, options)
        return EditSession(self, base, options)
