"""Thread-safe LRU result cache with exact accounting.

The compile service's store of finished artifacts, keyed on
``(canonical netlist hash, compile options)`` — see
:mod:`repro.netlist.canonical` for what the key is invariant under.
Nothing here knows about compiles: it is a plain capacity-bounded
mapping with recency eviction and counters precise enough to assert on
in tests (the accounting identity ``lookups == hits + misses`` and the
LRU order itself are part of the contract, proven in
``tests/test_service.py``).

All operations take one lock, held only for dict bookkeeping — never
while computing a value.  The service layer is responsible for
single-flight deduplication of concurrent misses; the cache itself
treats every ``get``/``put`` independently.

>>> cache = ResultCache(capacity=2)
>>> cache.put("a", 1) + cache.put("b", 2)   # put returns evicted keys
[]
>>> cache.get("a")          # bumps "a" to most-recent
1
>>> cache.put("c", 3)       # evicts "b", the least-recent
['b']
>>> cache.get("b") is None
True
>>> cache.keys()            # LRU -> MRU
['a', 'c']
>>> s = cache.stats()
>>> (s["hits"], s["misses"], s["evictions"], s["insertions"])
(1, 1, 1, 3)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["ResultCache"]

#: Sentinel distinguishing "absent" from a cached ``None``.
_MISSING = object()


class ResultCache:
    """A capacity-bounded mapping with LRU eviction and counters.

    ``capacity`` is the maximum number of entries; 0 disables caching
    entirely (every ``get`` misses, every ``put`` is dropped — useful
    for measuring cold-path behaviour through unchanged service code).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Fetch and bump to most-recent; counts a hit or a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Fetch without touching recency or counters (diagnostics)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> list[Hashable]:
        """Insert (or refresh) an entry as most-recent.

        Returns the keys evicted to make room — at most one for a new
        key under steady state, empty when refreshing an existing key.
        """
        with self._lock:
            if self.capacity == 0:
                return []
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self.insertions += 1
            evicted = []
            while len(self._entries) > self.capacity:
                old_key, _ = self._entries.popitem(last=False)
                self.evictions += 1
                evicted.append(old_key)
            return evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        """Current keys in recency order, least- to most-recent."""
        with self._lock:
            return list(self._entries)

    def items(self) -> list[tuple[Hashable, Any]]:
        """A ``(key, value)`` snapshot, least- to most-recent.

        Reads nothing *through* the LRU (recency and the hit/miss books
        are untouched) — this is the audit hook the chaos suite uses to
        compare every cached artifact against its fault-free reference.
        """
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """A counters snapshot; ``lookups == hits + misses`` always."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "lookups": self.hits + self.misses,
                "evictions": self.evictions,
                "insertions": self.insertions,
            }
