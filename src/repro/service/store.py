"""Persisted artifact store: compiled results that outlive the process.

The in-memory :class:`repro.service.ResultCache` dies with its service;
:class:`ArtifactStore` is the tier below it — a content-addressed,
on-disk mapping from the service's cache keys to pickled artifacts, so
a restarted service (or a sibling process sharing the directory) serves
previously compiled designs **byte-identically with zero recompiles**.
The determinism contract makes this safe by construction: every
artifact is a pure function of ``(netlist, options)``, so whichever
process published a key first, the bytes any process reads back are the
bytes any of them would have compiled.

Four properties carry the contract (proven in
``tests/test_service_store.py``):

* **content addressing** — keys are the service's own tuples,
  ``(canonical_hash(netlist), CompileOptions.key())`` (the options key
  embeds ``CANONICAL_HASH_VERSION``), extended with the defect-map
  digest for repaired dies.  A key's file name is the SHA-256 of its
  canonical JSON encoding (:func:`key_digest`), fanned out over 256
  two-hex-character subdirectories;
* **atomic publication** — a blob is staged to a temporary file in the
  store and ``os.replace``\\ d into its final path, so readers (in this
  process or another) only ever see a complete blob or none at all;
* **verified integrity** — every blob embeds the SHA-256 of its
  payload; :meth:`ArtifactStore.get` recomputes and compares it before
  unpickling.  A truncated, bit-flipped or otherwise malformed blob is
  **quarantined** (moved aside, counted) and reported as a plain miss —
  corruption can cost a recompile, never a crash or a wrong artifact;
* **budgeted LRU eviction** — ``max_entries`` / ``max_bytes`` bound the
  store; :meth:`put` evicts least-recently-used blobs (recency is
  bumped on every hit) until the budget holds, returning the evicted
  keys exactly like :meth:`repro.service.ResultCache.put`, and the
  counters satisfy the same identity (``lookups == hits + misses``).

Quickstart (any picklable value can be stored; the compile service
stores its cache entries):

>>> import tempfile
>>> from repro.service.store import ArtifactStore
>>> root = tempfile.mkdtemp()
>>> store = ArtifactStore(root, max_entries=2)
>>> store.put(("rca8", ("opts", 0)), {"cycle": 141})
[]
>>> store.get(("rca8", ("opts", 0)))
{'cycle': 141}
>>> ArtifactStore(root).get(("rca8", ("opts", 0)))   # a fresh process
{'cycle': 141}
>>> store.put(("k2",), "b") + store.put(("k3",), "c")  # evicts the LRU
[('rca8', ('opts', 0))]
>>> store.get(("rca8", ("opts", 0))) is None
True
>>> s = store.stats()
>>> (s["entries"], s["hits"], s["misses"], s["evictions"])
(2, 1, 1, 1)

See ``docs/artifact-store.md`` for the on-disk layout, the corruption
semantics and a worked two-process session.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.pnr.parallel import fault_point

__all__ = [
    "ARTIFACT_STORE_VERSION",
    "ArtifactStore",
    "StoreKeyError",
    "decode_key",
    "encode_key",
    "key_digest",
]

#: Version of the on-disk envelope (magic line + meta + payload).  A
#: bump makes every existing blob read as a miss — the store-level
#: analogue of ``CANONICAL_HASH_VERSION`` bumping the cache keys.
ARTIFACT_STORE_VERSION = 1

#: First line of every blob: magic token + envelope version.
_MAGIC = f"REPROART {ARTIFACT_STORE_VERSION}".encode()

#: File name suffix of published blobs under ``objects/``.
_SUFFIX = ".art"


class StoreKeyError(TypeError):
    """The key is not encodable (only tuples of JSON scalars are)."""


def encode_key(key: Any) -> Any:
    """A key tuple as a JSON-ready structure (tuples become lists).

    Store keys are the service's cache keys: arbitrarily nested tuples
    of strings, ints, floats, bools and ``None`` — exactly the shapes
    JSON can carry losslessly once tuples are spelled as lists.
    Anything else raises :class:`StoreKeyError`: a key that cannot be
    encoded canonically cannot be content-addressed.
    """
    if isinstance(key, tuple):
        return [encode_key(item) for item in key]
    if key is None or isinstance(key, (str, bool, int, float)):
        return key
    raise StoreKeyError(
        f"store keys are nested tuples of JSON scalars; got "
        f"{type(key).__name__}: {key!r}"
    )


def decode_key(obj: Any) -> Any:
    """Inverse of :func:`encode_key` (lists become tuples again)."""
    if isinstance(obj, list):
        return tuple(decode_key(item) for item in obj)
    return obj


def key_digest(key: Any) -> str:
    """SHA-256 hex digest of a key's canonical JSON encoding.

    The digest is the blob's file name, so it must be stable across
    processes and Python versions: ``sort_keys`` is irrelevant (no
    dicts survive :func:`encode_key`) and separators are pinned.

    >>> key_digest(("rca8", ("opts", 3, None)))[:16]
    '77c526418c01a313'
    """
    text = json.dumps(encode_key(key), separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class ArtifactStore:
    """A content-addressed, size-budgeted, on-disk artifact store.

    Parameters
    ----------
    root:
        Directory of the store (created if missing).  Multiple
        :class:`ArtifactStore` instances — in this process or others —
        may share one root: publication is atomic and loads are
        integrity-checked, so concurrent readers and writers only ever
        cost each other recompiles, never corruption.
    max_entries, max_bytes:
        Eviction budgets (``None`` = unbounded).  ``max_bytes`` counts
        the blobs' on-disk envelope sizes.  A single blob larger than
        ``max_bytes`` is refused outright (counted under ``oversize``)
        rather than evicting the whole store to fit it.

    Layout under ``root``::

        objects/<d[:2]>/<d>.art    the blobs, d = key_digest(key)
        quarantine/<name>          corrupt blobs moved aside on load

    Every blob is ``REPROART <version>`` + a JSON meta line (the
    encoded key, the payload's SHA-256 and size) + the pickled payload.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._objects = self.root / "objects"
        self._quarantine = self.root / "quarantine"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._quarantine.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        # Strictly increasing recency stamps (written as mtimes): two
        # puts/hits inside one clock tick must still order.
        self._last_stamp = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.quarantined = 0
        self.oversize = 0
        self.dir_syncs = 0

    # -- paths ----------------------------------------------------------
    def path_of(self, key: Any) -> Path:
        """The blob path a key publishes to (whether or not it exists)."""
        digest = key_digest(key)
        return self._objects / digest[:2] / (digest + _SUFFIX)

    def _fsync_dir(self, directory: Path) -> None:
        """Flush a rename to the directory's metadata, best-effort.

        ``os.replace`` makes publication atomic against *readers*; the
        directory fsync makes it durable against *power loss* — without
        it a crash after the rename can still lose the entry.  Counted
        (``dir_syncs``); filesystems that refuse directory fds degrade
        silently to the old (rename-only) behaviour.
        """
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
            self.dir_syncs += 1
        except OSError:
            pass
        finally:
            os.close(fd)

    def _touch(self, path: Path) -> None:
        """Stamp ``path`` as most-recently-used (monotonic mtime)."""
        stamp = max(time.time_ns(), self._last_stamp + 1)
        self._last_stamp = stamp
        os.utime(path, ns=(stamp, stamp))

    def _scan(self) -> list[tuple[int, int, Path]]:
        """All published blobs as ``(mtime_ns, size, path)``, LRU first.

        Ties on mtime (possible across processes) break on the file
        name, so eviction order is deterministic everywhere.
        """
        entries = []
        for sub in self._objects.iterdir():
            if not sub.is_dir():
                continue
            for path in sub.iterdir():
                if path.suffix != _SUFFIX:
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue  # raced with a sibling's eviction
                entries.append((st.st_mtime_ns, st.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        return entries

    # -- the envelope ---------------------------------------------------
    @staticmethod
    def _encode_blob(key: Any, payload: bytes) -> bytes:
        meta = {
            "key": encode_key(key),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "size": len(payload),
        }
        meta_line = json.dumps(meta, separators=(",", ":")).encode()
        return _MAGIC + b"\n" + meta_line + b"\n" + payload

    @staticmethod
    def _decode_blob(blob: bytes) -> tuple[Any, Any]:
        """``(key, value)`` of a verified envelope; raises on any defect."""
        magic, _, rest = blob.partition(b"\n")
        if magic != _MAGIC:
            raise ValueError(f"bad magic line {magic[:32]!r}")
        meta_line, sep, payload = rest.partition(b"\n")
        if not sep:
            raise ValueError("truncated before payload")
        meta = json.loads(meta_line)
        if len(payload) != meta["size"]:
            raise ValueError(
                f"payload is {len(payload)} bytes, meta says {meta['size']}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != meta["sha256"]:
            raise ValueError("payload digest mismatch")
        return decode_key(meta["key"]), pickle.loads(payload)

    def _read_key(self, path: Path) -> Any:
        """The key recorded in a blob's meta line (no payload verify)."""
        with path.open("rb") as fh:
            magic = fh.readline().rstrip(b"\n")
            if magic != _MAGIC:
                raise ValueError(f"bad magic line {magic[:32]!r}")
            return decode_key(json.loads(fh.readline())["key"])

    def _quarantine_blob(self, path: Path, reason: Exception) -> None:
        """Move a corrupt blob aside; never raises (a miss must stay a miss)."""
        target = self._quarantine / f"{path.stem}.{self.quarantined}{_SUFFIX}"
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self.quarantined += 1
        self.last_quarantine_reason = str(reason)

    # -- the mapping ----------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Load and verify a blob; bump recency; count a hit or a miss.

        A missing file is a miss.  A file that fails *any* integrity
        check — magic, meta, size, payload digest, unpickling — is
        quarantined and reported as a miss: corruption degrades to a
        recompile, never to an exception or a wrong artifact.

        The ``store.load`` fault point sits between the read and the
        verification, so an injected corruption exercises the real
        quarantine path and an injected IO error propagates as
        ``OSError`` — which the service's retry policy classifies
        transient and retries.
        """
        digest = key_digest(key)
        path = self._objects / digest[:2] / (digest + _SUFFIX)
        with self._lock:
            try:
                blob = path.read_bytes()
            except OSError:
                self.misses += 1
                return default
            blob = fault_point("store.load", token=digest, data=blob)
            try:
                _, value = self._decode_blob(blob)
            except Exception as e:  # noqa: BLE001 - any defect is a miss
                self._quarantine_blob(path, e)
                self.misses += 1
                return default
            self._touch(path)
            self.hits += 1
            return value

    def peek(self, key: Any, default: Any = None) -> Any:
        """Load without touching recency or hit/miss counters."""
        path = self.path_of(key)
        with self._lock:
            try:
                _, value = self._decode_blob(path.read_bytes())
            except OSError:
                return default
            except Exception as e:  # noqa: BLE001 - any defect is a miss
                self._quarantine_blob(path, e)
                return default
            return value

    def __contains__(self, key: Any) -> bool:
        return self.path_of(key).exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._scan())

    def put(self, key: Any, value: Any) -> list[Any]:
        """Publish a blob atomically; evict past the budget.

        The value is pickled into a self-verifying envelope, staged to
        a temporary file and ``os.replace``\\ d into place — a reader in
        any process sees the old blob, the new blob, or none; never a
        torn write.  Returns the keys evicted to restore the budget
        (oldest first), mirroring :meth:`ResultCache.put`; re-putting
        an existing key refreshes its bytes and recency and evicts
        nothing new.  An entry alone exceeding ``max_bytes`` is refused
        (``oversize`` counter) — one huge artifact must not wipe the
        store.

        Fault points (see ``docs/resilience.md``) bracket the critical
        sequence: ``store.publish`` before staging (a corruption fault
        here publishes bad bytes — which :meth:`get`'s verification
        then quarantines into a miss), ``store.publish.stage`` between
        staging and the rename (an interruption leaves only a cleaned
        temp file: old state wins), and ``store.publish.commit`` after
        the rename (an interruption leaves the complete new blob).
        Every interruption therefore leaves the store in the old state
        or the complete new one — never a torn write; the fault sweep
        in ``tests/test_resilience.py`` pins all three.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = self._encode_blob(key, payload)
        digest = key_digest(key)
        with self._lock:
            blob = fault_point("store.publish", token=digest, data=blob)
            if self.max_entries == 0 or (
                self.max_bytes is not None and len(blob) > self.max_bytes
            ):
                self.oversize += 1
                return []
            path = self._objects / digest[:2] / (digest + _SUFFIX)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self._objects, prefix="stage-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                    fh.flush()
                    os.fsync(fh.fileno())
                fault_point("store.publish.stage", token=digest)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            fault_point("store.publish.commit", token=digest)
            self._fsync_dir(path.parent)
            self._touch(path)
            self.insertions += 1
            return self._evict_over_budget(keep=path)

    def _evict_over_budget(self, keep: Path) -> list[Any]:
        """Unlink LRU blobs until the budget holds; return their keys.

        ``keep`` (the blob just published) is evicted last by
        construction — it carries the newest recency stamp — so the
        loop naturally never removes it while any older blob remains.
        """
        evicted: list[Any] = []
        entries = self._scan()
        total = sum(size for _, size, _ in entries)
        while entries and (
            (self.max_entries is not None and len(entries) > self.max_entries)
            or (self.max_bytes is not None and total > self.max_bytes)
        ):
            _, size, path = entries.pop(0)
            fault_point("store.evict", token=path.name)
            try:
                evicted.append(self._read_key(path))
            except Exception:  # noqa: BLE001 - evict unreadable blobs too
                evicted.append(None)
            try:
                path.unlink()
            except OSError:
                pass  # a sibling got there first; budget is restored anyway
            total -= size
            self.evictions += 1
        return evicted

    def keys(self) -> list[Any]:
        """Published keys in recency order, least- to most-recent."""
        with self._lock:
            out = []
            for _, _, path in self._scan():
                try:
                    out.append(self._read_key(path))
                except Exception:  # noqa: BLE001 - skip corrupt headers
                    continue
            return out

    def clear(self) -> None:
        """Unlink every published blob (counters keep accumulating)."""
        with self._lock:
            for _, _, path in self._scan():
                try:
                    path.unlink()
                except OSError:
                    pass

    def size_bytes(self) -> int:
        """Total on-disk bytes of the published blobs."""
        with self._lock:
            return sum(size for _, size, _ in self._scan())

    def stats(self) -> dict[str, Any]:
        """A counters snapshot; ``lookups == hits + misses`` always."""
        with self._lock:
            entries = self._scan()
            return {
                "root": str(self.root),
                "entries": len(entries),
                "bytes": sum(size for _, size, _ in entries),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "lookups": self.hits + self.misses,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "oversize": self.oversize,
                "dir_syncs": self.dir_syncs,
            }
