"""Compact device models: double-gate MOSFETs, RTDs and the tunnelling SRAM.

These are the behavioural substitutes for the paper's physical devices (see
ARCHITECTURE.md).  Everything is analytic, numpy-vectorised and
deterministic.
"""

from repro.devices.dgmosfet import (
    CONFIG_BIAS_LEVELS,
    DGMosfet,
    DGMosfetParams,
    Polarity,
    default_nmos,
    default_pmos,
)
from repro.devices.rtd import RTD, MultiPeakRTD, RTDParams
from repro.devices.rtd_sram import (
    BackGateDriver,
    ResistiveRTDMemory,
    StablePoint,
    TunnellingSRAM,
)
from repro.devices.variation import (
    bulk_rdf_sigma_vt,
    config_margin_yield,
    dg_geometric_sigma_vt,
    sample_vt_population,
)

__all__ = [
    "CONFIG_BIAS_LEVELS",
    "DGMosfet",
    "DGMosfetParams",
    "Polarity",
    "default_nmos",
    "default_pmos",
    "RTD",
    "MultiPeakRTD",
    "RTDParams",
    "BackGateDriver",
    "ResistiveRTDMemory",
    "StablePoint",
    "TunnellingSRAM",
    "bulk_rdf_sigma_vt",
    "config_margin_yield",
    "dg_geometric_sigma_vt",
    "sample_vt_population",
]
