"""Threshold-variation models: undoped DG film vs doped bulk channel.

Section 3 of the paper singles out one manufacturability advantage of the
double-gate device: *"the undoped channel region eliminates performance
variations (in threshold voltage, conductance etc.) due to random dopant
dispersion."*  This module provides the standard first-order random-dopant
-fluctuation (RDF) sigma-V_T model for a doped bulk channel and the residual
(line-edge / film-thickness) variation of the undoped DG device, so the
claim can be quantified and benchmarked.

The bulk RDF expression is the classic Stolk/Asenov first-order form:

    sigma_VT ~ (q * t_ox / eps_ox) * sqrt(N_A * W_dep / (3 * L * W))

Absolute numbers are indicative; the reproduced *shape* is that bulk RDF
sigma grows rapidly as L, W shrink toward 10 nm while the undoped device's
variation stays bounded by geometry control.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import (
    ELEMENTARY_CHARGE_C,
    EPSILON_0_F_PER_M,
    EPSILON_R_SIO2,
)
from repro.util.validate import check_positive


def bulk_rdf_sigma_vt(
    length_nm,
    width_nm,
    t_ox_nm: float = 1.5,
    doping_cm3: float = 3e18,
    depletion_nm: float = 10.0,
) -> np.ndarray | float:
    """Random-dopant-fluctuation sigma-V_T (V) of a doped bulk MOSFET.

    Vectorised over ``length_nm`` / ``width_nm``.
    """
    check_positive("t_ox_nm", t_ox_nm)
    check_positive("doping_cm3", doping_cm3)
    check_positive("depletion_nm", depletion_nm)
    length_m = np.asarray(length_nm, dtype=float) * 1e-9
    width_m = np.asarray(width_nm, dtype=float) * 1e-9
    if np.any(length_m <= 0) or np.any(width_m <= 0):
        raise ValueError("device dimensions must be positive")
    c_ox = EPSILON_0_F_PER_M * EPSILON_R_SIO2 / (t_ox_nm * 1e-9)
    n_a = doping_cm3 * 1e6  # -> m^-3
    w_dep = depletion_nm * 1e-9
    sigma = (
        (ELEMENTARY_CHARGE_C / c_ox)
        * np.sqrt(n_a * w_dep / (3.0 * length_m * width_m))
    )
    if np.ndim(sigma) == 0:
        return float(sigma)
    return sigma


def dg_geometric_sigma_vt(
    length_nm,
    film_thickness_nm: float = 1.5,
    thickness_control_pct: float = 5.0,
    dvt_dtsi_mv_per_nm: float = 30.0,
) -> np.ndarray | float:
    """Residual sigma-V_T (V) of the undoped double-gate device.

    With no channel dopants, V_T variation is set by silicon-film-thickness
    control (the paper cites Ren [29] on how hard "the required level of
    dimensional control" is).  A linear sensitivity ``dVT/dT_Si`` times the
    achievable thickness sigma gives the residual spread; it is independent
    of device area to first order, which is exactly why the paper prefers
    the device for dense fabrics.
    """
    check_positive("film_thickness_nm", film_thickness_nm)
    check_positive("thickness_control_pct", thickness_control_pct)
    check_positive("dvt_dtsi_mv_per_nm", dvt_dtsi_mv_per_nm)
    length_nm = np.asarray(length_nm, dtype=float)
    if np.any(length_nm <= 0):
        raise ValueError("device length must be positive")
    sigma_t = film_thickness_nm * thickness_control_pct / 100.0
    sigma = np.full_like(length_nm, dvt_dtsi_mv_per_nm * 1e-3 * sigma_t, dtype=float)
    if sigma.ndim == 0:
        return float(sigma)
    return sigma


def sample_vt_population(
    n_devices: int,
    sigma_vt: float,
    vt_nominal: float = 0.25,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw a V_T population for Monte-Carlo fabric studies.

    Deterministic given the supplied generator, per the package convention.
    """
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    check_positive("sigma_vt", sigma_vt)
    rng = rng or np.random.default_rng(0)
    return rng.normal(vt_nominal, sigma_vt, size=n_devices)


def config_margin_yield(
    sigma_vt: float,
    vt_nominal: float = 0.25,
    gamma: float = 0.6,
    bias: float = 2.0,
    swing: float = 1.0,
    margin: float = 0.1,
) -> float:
    """Fraction of devices whose force-on/force-off config margins survive.

    A leaf cell is configurable only if a +/-``bias`` back-gate level still
    forces the device past the logic swing despite its V_T offset.  Returns
    the analytic two-sided Gaussian yield.
    """
    from scipy.stats import norm

    check_positive("sigma_vt", sigma_vt)
    # Force-off requires vt_nominal + gamma*bias > swing + margin;
    # force-on requires vt_nominal - gamma*bias < -margin.
    slack_off = (vt_nominal + gamma * bias) - (swing + margin)
    slack_on = (gamma * bias - vt_nominal) - margin
    p_off = norm.cdf(slack_off / sigma_vt)
    p_on = norm.cdf(slack_on / sigma_vt)
    return float(max(0.0, p_off + p_on - 1.0))
