"""Compact model of the fully-depleted double-gate (DG) MOSFET.

This is the behavioural stand-in for the 10 nm SOI-Si double-gate device of
the paper's Fig. 2 (after Ren et al. [30]) as simulated with the UFDG models
of Fossum & Chong [31].  The paper exploits exactly one device property:

    *the second (back) gate offers a means of controlling the operation of
    the logic device in a way that decouples the configuration mechanism
    from the logic path* (Section 3)

i.e. biasing the back gate shifts the threshold voltage far enough that the
transistor can be

* left **active** (back gate near 0 V — normal logic operation),
* forced permanently **on** (threshold pushed below the whole input range),
* forced permanently **off** (threshold pushed above the whole input range).

The model below is an EKV-flavoured single-piece expression: a softplus
channel-charge term squared for drain saturation current, blended into the
triode region with a tanh, plus linear back-gate threshold coupling.  It is
smooth, monotone in both V_GS and V_DS, vectorises over numpy arrays, and
reproduces the Fig. 3 voltage-transfer-curve family (see
``benchmarks/bench_fig3_inverter_vtc.py``).

It is *not* a predictive TCAD model — see ARCHITECTURE.md for why the
substitution preserves the behaviour the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

import numpy as np

from repro.util.constants import softplus, thermal_voltage
from repro.util.validate import check_positive


class Polarity(Enum):
    """Channel polarity of a MOS device."""

    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True, slots=True)
class DGMosfetParams:
    """Electrical parameters of the double-gate compact model.

    Attributes
    ----------
    polarity:
        NMOS or PMOS.
    vt0:
        Magnitude of the zero-back-bias threshold voltage (V).  Positive for
        both polarities; the sign convention is handled internally.
    back_gate_gamma:
        Threshold shift per volt of back-gate bias (dimensionless).  The
        symmetric 1.5 nm / 1.5 nm oxide stack of Fig. 2 gives an ideal
        coupling of ~1; fully-depleted-film division reduces it.  The default
        of 0.6 places the force-on/force-off corners at |V_G2| ~= 1.5 V,
        matching Fig. 3, with +/-2 V (the Fig. 4/5 configuration levels)
        comfortably inside the forced regions.
    k_transconductance:
        Current factor K (A/V^2) of the saturation-current expression.
    subthreshold_n:
        Subthreshold ideality factor (slope = n * kT/q * ln 10 per decade).
    temperature_k:
        Device temperature.
    """

    polarity: Polarity = Polarity.NMOS
    vt0: float = 0.25
    back_gate_gamma: float = 0.6
    k_transconductance: float = 200e-6
    subthreshold_n: float = 1.1
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        check_positive("vt0", self.vt0)
        check_positive("back_gate_gamma", self.back_gate_gamma)
        check_positive("k_transconductance", self.k_transconductance)
        check_positive("subthreshold_n", self.subthreshold_n)
        check_positive("temperature_k", self.temperature_k)

    def as_pmos(self) -> "DGMosfetParams":
        """A PMOS twin of this parameter set (same magnitudes)."""
        return replace(self, polarity=Polarity.PMOS)

    def as_nmos(self) -> "DGMosfetParams":
        """An NMOS twin of this parameter set (same magnitudes)."""
        return replace(self, polarity=Polarity.NMOS)


class DGMosfet:
    """Evaluable double-gate MOSFET.

    The terminal convention is *bulk-referenced magnitudes*: for both
    polarities ``ids(vgs, vds, vbg)`` takes the gate-source and drain-source
    voltages **as seen by the device** (so for a PMOS pull-up with source at
    VDD, ``vgs = VDD - v_gate`` and ``vds = VDD - v_drain``), and returns the
    current magnitude flowing source->drain.  This keeps the VTC solvers
    polarity-agnostic.

    The back-gate bias ``vbg`` is signed and polarity-aware: *positive* vbg
    always pushes the device **towards conduction** for NMOS and **away from
    conduction** for PMOS, matching the paper's single shared configuration
    node per complementary pair (Figs. 3-5: one V_G2 value simultaneously
    strengthens one device of the pair and weakens the other).
    """

    def __init__(self, params: DGMosfetParams | None = None) -> None:
        self.params = params or DGMosfetParams()
        p = self.params
        self._phi_t = thermal_voltage(p.temperature_k)
        # Smoothing scale of the softplus channel-charge term.
        self._sigma = 2.0 * p.subthreshold_n * self._phi_t

    # ------------------------------------------------------------------
    # Threshold behaviour
    # ------------------------------------------------------------------
    def effective_vt(self, vbg) -> np.ndarray | float:
        """Effective threshold voltage under back-gate bias ``vbg``.

        For NMOS:  VT = vt0 - gamma * vbg  (positive vbg lowers VT).
        For PMOS the device is evaluated in magnitude space and positive vbg
        *raises* the magnitude threshold:  |VT| = vt0 + gamma * vbg.
        """
        p = self.params
        vbg = np.asarray(vbg, dtype=float)
        if p.polarity is Polarity.NMOS:
            vt = p.vt0 - p.back_gate_gamma * vbg
        else:
            vt = p.vt0 + p.back_gate_gamma * vbg
        if vt.ndim == 0:
            return float(vt)
        return vt

    def force_on_bias(self, swing: float = 1.0, margin: float = 0.25) -> float:
        """Back-gate bias guaranteeing conduction over the whole input swing.

        Returns the (signed) bias that moves the effective threshold at least
        ``margin`` volts below 0, so the device conducts even at vgs = 0.
        For NMOS this is positive, matching the +2 V row of Fig. 4's table.
        """
        del swing  # conduction at vgs=0 suffices for the full swing
        need = (self.params.vt0 + margin) / self.params.back_gate_gamma
        return need if self.params.polarity is Polarity.NMOS else -need

    def force_off_bias(self, swing: float = 1.0, margin: float = 0.25) -> float:
        """Back-gate bias guaranteeing cut-off over the whole input swing.

        Moves the effective threshold at least ``margin`` volts above the
        supply swing so the device never conducts.  Negative for NMOS.
        """
        need = (swing + margin - self.params.vt0) / self.params.back_gate_gamma
        return -need if self.params.polarity is Polarity.NMOS else need

    # ------------------------------------------------------------------
    # Current
    # ------------------------------------------------------------------
    def ids(self, vgs, vds, vbg=0.0) -> np.ndarray | float:
        """Drain-current magnitude (A) at the given terminal magnitudes.

        Smooth in all arguments; broadcastable.  ``vds`` must be >= 0 in the
        magnitude convention (the solvers only ever ask for forward
        conduction; reverse conduction through the complementary structure is
        modelled by the opposing network).
        """
        p = self.params
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vt = np.asarray(self.effective_vt(vbg), dtype=float)

        # Smooth overdrive (EKV channel charge): -> vgs - vt when >> 0,
        # -> exp((vgs - vt)/sigma) * sigma when << 0 (subthreshold).
        vov = softplus(vgs - vt, self._sigma)
        isat = p.k_transconductance * vov**2
        # Triode/saturation blending: saturation voltage tracks the
        # overdrive; tanh gives the monotone, smooth join.  The factor of 2
        # sharpens the knee so deep saturation is flat to <1%.
        vdsat = np.maximum(vov, 1e-12)
        out = isat * np.tanh(2.0 * np.maximum(vds, 0.0) / vdsat)
        if out.ndim == 0:
            return float(out)
        return out

    def conductance(self, vgs, vds, vbg=0.0, dv: float = 1e-4) -> np.ndarray | float:
        """Numerical output conductance d(ids)/d(vds) — used by load-line checks."""
        hi = self.ids(vgs, np.asarray(vds, dtype=float) + dv, vbg)
        lo = self.ids(vgs, np.maximum(np.asarray(vds, dtype=float) - dv, 0.0), vbg)
        return (hi - lo) / (2.0 * dv)


def default_nmos() -> DGMosfet:
    """The reference NMOS device used throughout the fabric models."""
    return DGMosfet(DGMosfetParams(polarity=Polarity.NMOS))


def default_pmos() -> DGMosfet:
    """The reference PMOS device (matched magnitudes to :func:`default_nmos`)."""
    return DGMosfet(DGMosfetParams(polarity=Polarity.PMOS))


#: The three canonical configuration bias levels of the paper's Figs. 4-5,
#: in volts: FORCE_OFF, ACTIVE, FORCE_ON for the NMOS of a complementary
#: pair (the PMOS sees the same node and responds oppositely).
CONFIG_BIAS_LEVELS: tuple[float, float, float] = (-2.0, 0.0, +2.0)
