"""Compact model of the resonant tunnelling diode (RTD).

The paper's configuration mechanism (Section 3, Fig. 6) stores multi-valued
back-gate biases in an RTD RAM of the type described by van der Wagt [34];
the negative-differential-resistance (NDR) I-V characteristic of the RTD is
what gives the storage node multiple stable states.

The single-peak model is a three-term analytic curve:

* a resonant term ``Ip * x * exp((1 - x^2)/2)`` with ``x = V/Vp`` — peaks at
  exactly (Vp, Ip) and decays Gaussian-fast into the valley;
* a weak leak term ``(Ip / valley_ratio) * tanh(x) / 2`` that sets the
  valley floor and keeps dI/dV nonzero everywhere (no flat regions, which
  matters for the load-line analysis in :mod:`repro.devices.rtd_sram`);
* a thermionic diode term ``Is * (exp((V - V_onset)/V_sl) - 1)`` producing
  the post-valley second rise.

A multi-peak device (the series stack used by Wei & Lin [33] and Seabaugh's
nine-state memory [36]) repeats the resonant term at ``Vp, 3Vp, 5Vp, ...``
with the diode onset pushed past the last peak.

Currents are odd-extended for negative bias so the devices can be used in
the bipolar-supply storage latch of :mod:`repro.devices.rtd_sram`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validate import check_positive


@dataclass(frozen=True, slots=True)
class RTDParams:
    """Parameters of a single-peak RTD.

    Attributes
    ----------
    peak_voltage:
        Bias (V) of the resonant current peak.
    peak_current:
        Peak current (A).  The paper's Nanotechnology-Roadmap citation [40]
        projects 10-50 pA peaks for 50 nm RTDs; the default sits mid-range.
    valley_ratio:
        Approximate peak-to-valley current ratio (PVCR).  Room-temperature
        silicon interband diodes reach a few (Hobart [37], Jin [38]); III-V
        devices reach tens.
    diode_saturation:
        Saturation current (A) of the post-valley thermionic rise.
    diode_slope_v:
        Exponential slope (V) of the post-valley rise.
    """

    peak_voltage: float = 0.35
    peak_current: float = 25e-12
    valley_ratio: float = 8.0
    diode_saturation: float = 1e-14
    diode_slope_v: float = 0.30

    def __post_init__(self) -> None:
        check_positive("peak_voltage", self.peak_voltage)
        check_positive("peak_current", self.peak_current)
        if self.valley_ratio <= 1.0:
            raise ValueError(
                f"valley_ratio must exceed 1 for NDR behaviour, got {self.valley_ratio!r}"
            )
        check_positive("diode_saturation", self.diode_saturation)
        check_positive("diode_slope_v", self.diode_slope_v)


def _resonant_term(av: np.ndarray, vp: float, ip: float) -> np.ndarray:
    """Gaussian-decay resonant tunnelling current, peak exactly at (vp, ip)."""
    x = av / vp
    return ip * x * np.exp(0.5 * (1.0 - x * x))


class RTD:
    """Single-peak resonant tunnelling diode (odd-symmetric I-V)."""

    def __init__(self, params: RTDParams | None = None) -> None:
        self.params = params or RTDParams()

    def current(self, v) -> np.ndarray | float:
        """Terminal current (A) at bias ``v`` (V); odd in ``v``."""
        p = self.params
        v = np.asarray(v, dtype=float)
        av = np.abs(v)
        resonant = _resonant_term(av, p.peak_voltage, p.peak_current)
        leak = 0.5 * (p.peak_current / p.valley_ratio) * np.tanh(av / p.peak_voltage)
        diode = p.diode_saturation * np.expm1(av / p.diode_slope_v)
        out = np.sign(v) * (resonant + leak + diode)
        if out.ndim == 0:
            return float(out)
        return out

    def differential_conductance(self, v, dv: float = 1e-4) -> np.ndarray | float:
        """Numerical dI/dV — negative inside the NDR region."""
        v = np.asarray(v, dtype=float)
        return (self.current(v + dv) - self.current(v - dv)) / (2.0 * dv)

    def peak_point(self) -> tuple[float, float]:
        """(V, I) of the resonant peak, located numerically."""
        v = np.linspace(1e-3, 2.0 * self.params.peak_voltage, 4001)
        i = np.asarray(self.current(v))
        k = int(np.argmax(i))
        return float(v[k]), float(i[k])

    def valley_point(self) -> tuple[float, float]:
        """(V, I) of the current valley following the peak."""
        vp, _ = self.peak_point()
        v = np.linspace(vp, vp + 6.0 * self.params.peak_voltage, 8001)
        i = np.asarray(self.current(v))
        k = int(np.argmin(i))
        return float(v[k]), float(i[k])

    def measured_pvcr(self) -> float:
        """Peak-to-valley current ratio extracted from the modelled curve."""
        _, ip = self.peak_point()
        _, iv = self.valley_point()
        return ip / iv


class MultiPeakRTD:
    """Behavioural multi-peak RTD (series-stack equivalent).

    A series stack of ``n`` RTDs exhibits ``n`` current peaks as the devices
    switch one at a time (Wei & Lin [33]); this class reproduces that
    composite shape by repeating the resonant term at odd multiples of the
    peak voltage (``Vp, 3Vp, 5Vp, ...``) with the thermionic rise delayed
    until after the last peak.  ``MultiPeakRTD(1)`` coincides with
    :class:`RTD` up to the diode onset shift.
    """

    def __init__(
        self,
        n_peaks: int,
        params: RTDParams | None = None,
        spacing_factor: float = 2.0,
    ) -> None:
        if n_peaks < 1:
            raise ValueError(f"n_peaks must be >= 1, got {n_peaks}")
        if spacing_factor < 1.0:
            raise ValueError(f"spacing_factor must be >= 1, got {spacing_factor}")
        self.n_peaks = int(n_peaks)
        self.params = params or RTDParams()
        #: Peak-to-peak spacing in units of the peak voltage.  2.0 matches a
        #: minimal series stack; wider spacing deepens the inter-peak valleys
        #: (used by the resistive multi-valued memory, which needs the load
        #: line to thread every fold).
        self.spacing_factor = float(spacing_factor)

    @property
    def peak_voltages(self) -> np.ndarray:
        """Bias positions of the peaks (V), ascending."""
        p = self.params
        return p.peak_voltage * (
            1.0 + self.spacing_factor * np.arange(self.n_peaks)
        )

    @property
    def diode_onset(self) -> float:
        """Bias (V) where the post-valley thermionic rise begins."""
        return float(self.peak_voltages[-1] + self.params.peak_voltage)

    def current(self, v) -> np.ndarray | float:
        """Terminal current (A); odd in ``v``; ``n_peaks`` NDR regions."""
        p = self.params
        v = np.asarray(v, dtype=float)
        av = np.abs(v)
        centers = self.peak_voltages
        # Shifted resonant coordinate per peak; clipped below zero so each
        # term only contributes once its onset is reached.
        y = (av[..., None] - (centers - p.peak_voltage)) / p.peak_voltage
        y = np.clip(y, 0.0, None)
        resonant = (p.peak_current * y * np.exp(0.5 * (1.0 - y * y))).sum(axis=-1)
        leak = 0.5 * (p.peak_current / p.valley_ratio) * np.tanh(av / p.peak_voltage)
        rise = np.clip(av - self.diode_onset, 0.0, None)
        diode = p.diode_saturation * np.expm1(rise / p.diode_slope_v)
        out = np.sign(v) * (resonant + leak + diode)
        if out.ndim == 0:
            return float(out)
        return out

    def differential_conductance(self, v, dv: float = 1e-4) -> np.ndarray | float:
        """Numerical dI/dV of the composite curve."""
        v = np.asarray(v, dtype=float)
        return (self.current(v + dv) - self.current(v - dv)) / (2.0 * dv)

    def count_ndr_regions(self, v_max: float | None = None, samples: int = 20001) -> int:
        """Number of distinct negative-slope regions up to ``v_max``.

        Sanity instrument for tests: must equal ``n_peaks`` for a healthy
        parameterisation.
        """
        if v_max is None:
            v_max = self.diode_onset + 2.0 * self.params.peak_voltage
        v = np.linspace(1e-3, v_max, samples)
        g = np.asarray(self.differential_conductance(v))
        neg = g < 0.0
        return int(np.count_nonzero(neg[1:] & ~neg[:-1]) + (1 if neg[0] else 0))
