"""Tunnelling-SRAM storage cells: the paper's multi-valued configuration bit.

Fig. 6 of the paper shows the reconfigurable leaf-cell: three FDSOI
transistors whose shared back gate is held by an RTD RAM "of the type
described in [34]" (van der Wagt's tunnelling SRAM).  Two storage topologies
from that literature are modelled:

* :class:`TunnellingSRAM` — a **bipolar series latch**: two RTD stacks
  between +supply and -supply.  With single-peak stacks the storage node has
  exactly three stable voltages, symmetric about 0 — the -2/0/+2 V back-gate
  levels of the Fig. 4/5 configuration tables after calibration.
* :class:`ResistiveRTDMemory` — the classic **resistive-load multi-valued
  cell** (Wei & Lin [33], Seabaugh's nine-state memory [36]): an n-peak RTD
  stack against a resistor load gives n+1 stable crossings.  With eight
  peaks this reproduces the nine-state cell the paper cites.

Stable states are found by vectorised load-line analysis: equilibria are
zero crossings of the net node current, stable when the crossing has
negative slope (restoring).

The stored node voltage maps to the back-gate bias through an affine
calibration (:class:`BackGateDriver`): physically the paper sets the
correspondence "by adjusting the thickness of each of the RTD layers"
(Section 3); behaviourally we rescale the measured stable voltages onto the
required bias levels, preserving ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.rtd import MultiPeakRTD, RTDParams
from repro.util.validate import check_positive


@dataclass(frozen=True, slots=True)
class StablePoint:
    """One stable operating point of a storage node.

    Attributes
    ----------
    voltage:
        Storage-node voltage (V).
    basin:
        (lo, hi) voltage interval that settles to this point.
    margin_current:
        Peak restoring-current magnitude (A) available inside the basin — a
        static noise-margin figure for the state.
    """

    voltage: float
    basin: tuple[float, float]
    margin_current: float


def _find_equilibria(v: np.ndarray, f: np.ndarray) -> tuple[list[float], list[float]]:
    """Classify zero crossings of ``f(v)`` into (stable, unstable) points.

    Stable equilibria are crossings where ``f`` falls through zero
    (restoring); unstable where it rises.  Exact grid zeros (common at the
    symmetric centre point) are handled by looking at the flanking samples.
    """
    stable: list[float] = []
    unstable: list[float] = []
    n = len(v)
    k = 0
    while k < n - 1:
        a, b = f[k], f[k + 1]
        if a == 0.0:
            # Equilibrium exactly on a grid point: classify via neighbours.
            left = f[k - 1] if k > 0 else -b
            if left > 0.0 > b:
                stable.append(float(v[k]))
            elif left < 0.0 < b:
                unstable.append(float(v[k]))
            k += 1
            continue
        if a * b < 0.0:
            vc = v[k] - a * (v[k + 1] - v[k]) / (b - a)
            if a > 0.0:
                stable.append(float(vc))
            else:
                unstable.append(float(vc))
        k += 1
    return stable, unstable


class _LoadLineCell:
    """Shared machinery: stable points, basins, write/settle, from a node-current law."""

    def __init__(self, v_lo: float, v_hi: float, samples: int = 80001) -> None:
        self._v_lo = float(v_lo)
        self._v_hi = float(v_hi)
        self._grid = np.linspace(self._v_lo, self._v_hi, samples)
        self._stable: list[StablePoint] | None = None

    def node_current(self, v_node):  # pragma: no cover - abstract
        """Net current *into* the storage node; positive charges it upward."""
        raise NotImplementedError

    def stable_points(self) -> list[StablePoint]:
        """All stable states, ascending in voltage, with basins and margins."""
        if self._stable is not None:
            return self._stable
        v = self._grid
        f = np.asarray(self.node_current(v))
        stable, unstable = _find_equilibria(v, f)
        stable.sort()
        unstable.sort()
        points: list[StablePoint] = []
        edges = [self._v_lo, *unstable, self._v_hi]
        for vs in stable:
            lo = max(e for e in edges if e <= vs)
            hi = min(e for e in edges if e >= vs)
            inner = np.linspace(lo + 1e-6, hi - 1e-6, 501)
            margin = float(np.max(np.abs(np.asarray(self.node_current(inner)))))
            points.append(StablePoint(voltage=vs, basin=(lo, hi), margin_current=margin))
        self._stable = points
        return points

    @property
    def n_states(self) -> int:
        """Number of stable states of the cell."""
        return len(self.stable_points())

    def settle(self, v_initial: float) -> int:
        """State index the node relaxes to when released at ``v_initial``.

        Follows the basin structure (equivalent to integrating
        C dV/dt = node_current until rest).
        """
        v0 = float(np.clip(v_initial, self._v_lo, self._v_hi))
        points = self.stable_points()
        if not points:
            raise RuntimeError("storage cell has no stable states; check parameters")
        for i, p in enumerate(points):
            lo, hi = p.basin
            if lo <= v0 <= hi:
                return i
        dists = [abs(v0 - p.voltage) for p in points]
        return int(np.argmin(dists))

    def write(self, state_index: int) -> float:
        """Voltage the bit line must force to write state ``state_index``.

        Returns the stable voltage itself: forcing the node there and
        releasing it is guaranteed (by :meth:`settle`) to latch the state.
        """
        points = self.stable_points()
        if not 0 <= state_index < len(points):
            raise ValueError(
                f"state_index must lie in [0, {len(points)}), got {state_index}"
            )
        return points[state_index].voltage


class TunnellingSRAM(_LoadLineCell):
    """Bipolar series-latch storage cell (two RTD stacks, +/- supply).

    With the default single-peak stacks and a 1.7 V supply the cell has
    exactly **three** stable states at approximately -1.45 / 0 / +1.45 V —
    the back-gate configuration trit.  More peaks move the side states
    around but (in this symmetric topology) do not reliably add states; use
    :class:`ResistiveRTDMemory` for higher-radix storage.
    """

    def __init__(
        self,
        n_peaks: int = 1,
        supply: float = 1.7,
        params: RTDParams | None = None,
    ) -> None:
        check_positive("supply", supply)
        self.supply = float(supply)
        self.rtd_top = MultiPeakRTD(n_peaks, params)
        self.rtd_bottom = MultiPeakRTD(n_peaks, params)
        super().__init__(-self.supply, self.supply)

    def node_current(self, v_node) -> np.ndarray | float:
        """Net current into the storage node: top stack in, bottom stack out."""
        v_node = np.asarray(v_node, dtype=float)
        i_in = self.rtd_top.current(self.supply - v_node)
        i_out = self.rtd_bottom.current(v_node + self.supply)
        return i_in - i_out

    def hold_current(self, state_index: int) -> float:
        """Standby current (A) drawn from the supply while holding a state.

        At equilibrium the same current flows through both stacks; the paper
        (Section 3) relies on 10-50 pA peak currents to argue the whole
        10^9-cell configuration plane draws under 100 mW — reproduced in
        ``bench_claims_summary``.
        """
        v = self.write(state_index)
        return float(abs(self.rtd_top.current(self.supply - v)))


class ResistiveRTDMemory(_LoadLineCell):
    """Resistive-load multi-valued RTD memory (Wei & Lin [33] / Seabaugh [36]).

    An ``n_peaks``-peak RTD stack from the storage node to ground works
    against a resistor to VDD.  When the load line threads every NDR fold it
    crosses the composite I-V ``n_peaks + 1`` times stably: the nine-state
    cell of [36] is ``n_peaks=8``.

    The default load resistance is chosen automatically so the load line
    passes midway between peak and valley currents across the whole span.
    """

    def __init__(
        self,
        n_peaks: int = 8,
        vdd: float | None = None,
        r_load: float | None = None,
        params: RTDParams | None = None,
        spacing_factor: float = 4.0,
    ) -> None:
        # Wide peak spacing deepens the inter-peak valleys so the resistor
        # load line can thread every fold (see MultiPeakRTD.spacing_factor).
        self.rtd = MultiPeakRTD(n_peaks, params, spacing_factor=spacing_factor)
        p = self.rtd.params
        span = float(self.rtd.peak_voltages[-1])
        # Supply far enough above the last peak that the load-line current
        # varies by less than the peak/valley ratio across the span.
        self.vdd = float(vdd) if vdd is not None else 2.5 * span + 4.0 * p.peak_voltage
        check_positive("vdd", self.vdd)
        if r_load is None:
            # Mid-band target: geometric mean of peak and valley currents at
            # the middle of the span.
            i_mid = p.peak_current / np.sqrt(p.valley_ratio)
            r_load = (self.vdd - 0.5 * span) / i_mid
        check_positive("r_load", r_load)
        self.r_load = float(r_load)
        super().__init__(0.0, self.vdd)

    def node_current(self, v_node) -> np.ndarray | float:
        """Net current into the node: resistor delivers, RTD stack removes."""
        v_node = np.asarray(v_node, dtype=float)
        return (self.vdd - v_node) / self.r_load - np.asarray(self.rtd.current(v_node))

    def hold_current(self, state_index: int) -> float:
        """Standby current (A) through the cell while holding a state."""
        v = self.write(state_index)
        return float((self.vdd - v) / self.r_load)


class BackGateDriver:
    """Maps stored SRAM states onto the configuration bias levels.

    Physically the RTD layer thicknesses are chosen so the latch's stable
    voltages coincide with the required back-gate levels; behaviourally this
    class affinely rescales the measured stable voltages onto the target
    levels (default: the -2/0/+2 V of Figs. 4-5), preserving order.
    """

    def __init__(
        self,
        cell: _LoadLineCell,
        target_levels: tuple[float, ...] = (-2.0, 0.0, +2.0),
    ) -> None:
        points = cell.stable_points()
        if len(points) != len(target_levels):
            raise ValueError(
                f"cell has {len(points)} stable states but {len(target_levels)} "
                "target levels were requested; adjust the cell or the targets"
            )
        self.cell = cell
        self.target_levels = tuple(float(t) for t in target_levels)
        self._stored = [p.voltage for p in points]

    def bias_for_state(self, state_index: int) -> float:
        """Back-gate bias (V) produced when the cell holds ``state_index``."""
        if not 0 <= state_index < len(self.target_levels):
            raise ValueError(
                f"state_index must lie in [0, {len(self.target_levels)}), got {state_index}"
            )
        return self.target_levels[state_index]

    def state_for_bias(self, bias: float) -> int:
        """Closest stored state for a requested bias — write-path helper."""
        diffs = [abs(bias - t) for t in self.target_levels]
        return int(np.argmin(diffs))

    def calibration_error(self) -> float:
        """RMS mismatch (V) between affinely-rescaled stored voltages and targets.

        A behavioural stand-in for how tightly the RTD layer thicknesses
        must be controlled.
        """
        stored = np.asarray(self._stored)
        targets = np.asarray(self.target_levels)
        a, b = np.polyfit(stored, targets, 1)
        return float(np.sqrt(np.mean((a * stored + b - targets) ** 2)))
