"""Tiled cell array with rotated abutment and local feedback (paper Fig. 8).

Wiring model (see ARCHITECTURE.md for the derivation from Fig. 8 and the
layer diagram this compiler sits in):

* ``wire (r, c, i)`` is the shared **input line** ``i`` of the cell at grid
  position (r, c).  It can be driven by up to two upstream neighbours —
  the cell to the **west** (row driver configured EAST) and the cell to the
  **south** (row driver configured NORTH); the 3-state drivers guarantee at
  most one actually drives it in a legal configuration (the simulator's
  resolution reports X on conflicts).
* Wires with ``r == n_rows`` or ``c == n_cols`` are the fabric's primary
  outputs; wires on the west/south boundary with no internal driver are
  primary inputs, driven externally by the testbench.
* Each cell owns two **lfb** nets tapped from its row values; a cell's
  input columns may select its *own* lfb lines or those of its east/north
  downstream partner (:class:`repro.fabric.nandcell.LfbPartner`), giving
  the purely-local feedback the paper's state elements rely on.

``to_netlist`` lowers the configured array into the backend-neutral
:class:`repro.netlist.Netlist` IR: every NAND row becomes a ``nand`` cell
(or a constant), every active driver a ``not``/``buf`` cell onto its
abutment wire, every lfb tap a buffer.  Delays: 2 units per NAND row
(series stack), 1 per driver (2 for PASS mode), 1 per lfb tap.
``compile_into`` then elaborates that netlist onto the event-driven
simulator (reference semantics); the same netlist feeds the bit-parallel
:class:`repro.netlist.BatchBackend` for build-once / evaluate-many sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.bitstream import decode_array, encode_array
from repro.fabric.driver import DRIVER_DELAY, DriverMode
from repro.fabric.nandcell import (
    CellConfig,
    Direction,
    InputSource,
    LfbPartner,
    N_INPUTS,
    N_LFB,
    N_ROWS,
)
from repro.netlist.backends import EventBackend
from repro.netlist.ir import NetRef, Netlist
from repro.sim.scheduler import Simulator
from repro.sim.values import ONE, ZERO

#: Simulator delay of a NAND row (the 6-high series stack).
ROW_DELAY = 2
#: Simulator delay of an lfb tap buffer.
LFB_DELAY = 1


def wire_name(r: int, c: int, i: int) -> str:
    """Name of input line ``i`` of grid position (r, c)."""
    return f"w[{r}][{c}][{i}]"


def row_net_name(r: int, c: int, j: int) -> str:
    """Name of the NAND-plane value of row ``j`` in cell (r, c)."""
    return f"row[{r}][{c}][{j}]"


def lfb_net_name(r: int, c: int, k: int) -> str:
    """Name of local feedback line ``k`` of cell (r, c)."""
    return f"lfb[{r}][{c}][{k}]"


class ConfigurationError(ValueError):
    """A cell configuration references wiring that does not exist."""


@dataclass
class FabricNetlist:
    """A configured array lowered to the backend-neutral IR.

    Attributes
    ----------
    netlist:
        The :class:`repro.netlist.Netlist` describing the fabric, with
        the boundary wires declared as ports.
    n_gates:
        Number of cells instantiated (area/activity statistics).
    input_wires:
        Names of boundary wires with no internal driver — the primary
        inputs a stimulus may drive.
    output_wires:
        Names of wires past the east/north edges that are driven — the
        primary outputs.
    """

    netlist: Netlist
    n_gates: int
    input_wires: list[str] = field(default_factory=list)
    output_wires: list[str] = field(default_factory=list)


@dataclass
class CompiledFabric:
    """Handle returned by :meth:`CellArray.compile_into`.

    Attributes
    ----------
    sim:
        The simulator holding the lowered netlist.
    n_gates:
        Number of gates instantiated (area/activity statistics).
    input_wires:
        Names of boundary wires with no internal driver — the primary
        inputs a testbench may drive.
    output_wires:
        Names of wires past the east/north edges that are driven — the
        primary outputs.
    netlist:
        The backend-neutral IR the simulator was elaborated from.
    """

    sim: Simulator
    n_gates: int
    input_wires: list[str] = field(default_factory=list)
    output_wires: list[str] = field(default_factory=list)
    netlist: Netlist | None = None


class CellArray:
    """A grid of polymorphic cells plus the abutment wiring rules."""

    def __init__(self, n_rows: int, n_cols: int) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ValueError(f"array shape must be >= 1x1, got {n_rows}x{n_cols}")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.configs: list[list[CellConfig]] = [
            [CellConfig() for _ in range(self.n_cols)] for _ in range(self.n_rows)
        ]

    # ------------------------------------------------------------------
    # Config access
    # ------------------------------------------------------------------
    def cell(self, r: int, c: int) -> CellConfig:
        """The configuration of the cell at (r, c)."""
        self._check_pos(r, c)
        return self.configs[r][c]

    def set_cell(self, r: int, c: int, config: CellConfig) -> None:
        """Install a configuration (validated) at (r, c)."""
        self._check_pos(r, c)
        config.validate()
        self.configs[r][c] = config

    def _check_pos(self, r: int, c: int) -> None:
        if not (0 <= r < self.n_rows and 0 <= c < self.n_cols):
            raise ValueError(
                f"cell position ({r}, {c}) outside {self.n_rows}x{self.n_cols} array"
            )

    def used_cells(self) -> int:
        """Number of non-blank cells (utilisation statistics)."""
        return sum(
            0 if cfg.is_blank() else 1 for row in self.configs for cfg in row
        )

    def leaf_count(self) -> int:
        """Total configured leaf cells across the array (area proxy)."""
        return sum(cfg.leaf_count() for row in self.configs for cfg in row)

    # ------------------------------------------------------------------
    # Bitstream round trip
    # ------------------------------------------------------------------
    def to_bitstream(self):
        """Serialise the whole array (see :mod:`repro.fabric.bitstream`)."""
        return encode_array(self.configs)

    @classmethod
    def from_bitstream(cls, bits) -> "CellArray":
        """Rebuild an array from a serialised bitstream."""
        configs = decode_array(bits)
        arr = cls(len(configs), len(configs[0]))
        for r, row in enumerate(configs):
            for c, cfg in enumerate(row):
                arr.set_cell(r, c, cfg)
        return arr

    # ------------------------------------------------------------------
    # Lowering onto the netlist IR
    # ------------------------------------------------------------------
    def _column_net(self, nl: Netlist, r: int, c: int, col: int) -> NetRef:
        """Resolve a cell's input-column source to a net."""
        cfg = self.configs[r][c]
        sel = cfg.input_select[col]
        if sel is InputSource.ABUT:
            return nl.net(wire_name(r, c, col))
        k = 0 if sel is InputSource.LFB0 else 1
        partner = cfg.lfb_partner
        if partner is LfbPartner.SELF:
            pr, pc = r, c
        elif partner is LfbPartner.EAST:
            pr, pc = r, c + 1
        else:
            pr, pc = r + 1, c
        if not (0 <= pr < self.n_rows and 0 <= pc < self.n_cols):
            raise ConfigurationError(
                f"cell ({r},{c}) column {col} selects lfb of {partner.name} "
                f"partner ({pr},{pc}), which is outside the array"
            )
        tap = self.configs[pr][pc].lfb_taps[k]
        if tap is None:
            raise ConfigurationError(
                f"cell ({r},{c}) column {col} reads lfb{k} of ({pr},{pc}) "
                "but that line has no tap configured"
            )
        return nl.net(lfb_net_name(pr, pc, k))

    def to_netlist(self) -> FabricNetlist:
        """Lower the configured array into the backend-neutral IR."""
        nl = Netlist(name=f"fabric{self.n_rows}x{self.n_cols}")
        n_gates = 0
        for r in range(self.n_rows):
            for c in range(self.n_cols):
                cfg = self.configs[r][c]
                if cfg.is_blank():
                    continue
                cfg.validate()
                col_nets = [
                    self._column_net(nl, r, c, col) for col in range(N_INPUTS)
                ]
                row_nets = [nl.net(row_net_name(r, c, j)) for j in range(N_ROWS)]
                needed = set(cfg.used_rows())
                for j in range(N_ROWS):
                    if j not in needed:
                        continue
                    kind = cfg.row_kind(j)
                    gname = f"cell[{r}][{c}].row{j}"
                    if kind == "const1":
                        nl.add("const", gname, [], row_nets[j], delay=ROW_DELAY, value=ONE)
                    elif kind == "const0":
                        nl.add("const", gname, [], row_nets[j], delay=ROW_DELAY, value=ZERO)
                    else:
                        ins = [col_nets[col] for col in cfg.active_columns(j)]
                        nl.add("nand", gname, ins, row_nets[j], delay=ROW_DELAY)
                    n_gates += 1
                for j in range(N_ROWS):
                    mode = cfg.drivers[j]
                    if mode is DriverMode.OFF:
                        continue
                    if cfg.directions[j] is Direction.EAST:
                        target = nl.net(wire_name(r, c + 1, j))
                    else:
                        target = nl.net(wire_name(r + 1, c, j))
                    gname = f"cell[{r}][{c}].drv{j}"
                    delay = DRIVER_DELAY[mode]
                    kind = "not" if mode is DriverMode.INVERT else "buf"
                    nl.add(kind, gname, [row_nets[j]], target, delay=delay)
                    n_gates += 1
                for k in range(N_LFB):
                    tap = cfg.lfb_taps[k]
                    if tap is None:
                        continue
                    gname = f"cell[{r}][{c}].lfb{k}"
                    nl.add(
                        "buf", gname, [row_nets[tap]],
                        nl.net(lfb_net_name(r, c, k)), delay=LFB_DELAY,
                    )
                    n_gates += 1
        inputs, outputs = self._classify_boundary(nl)
        for name in inputs:
            nl.add_input(name)
        for name in outputs:
            nl.add_output(name)
        return FabricNetlist(
            netlist=nl, n_gates=n_gates, input_wires=inputs, output_wires=outputs
        )

    def compile_into(self, sim: Simulator | None = None) -> CompiledFabric:
        """Lower the array to a netlist and elaborate it onto a simulator."""
        return elaborate_fabric(self.to_netlist(), sim=sim)

    def _classify_boundary(self, nl: Netlist) -> tuple[list[str], list[str]]:
        """Split instantiated wires into primary inputs and outputs."""
        inputs: list[str] = []
        outputs: list[str] = []
        for name in nl.net_names():
            if not name.startswith("w["):
                continue
            if nl.drivers_of(name):
                # Driven from inside; wires beyond the edges are outputs.
                r, c, _ = _parse_wire(name)
                if r >= self.n_rows or c >= self.n_cols:
                    outputs.append(name)
            elif nl.readers_of(name):
                inputs.append(name)
        return sorted(inputs), sorted(outputs)


def elaborate_fabric(
    fn: FabricNetlist,
    sim: Simulator | None = None,
    limits=None,
) -> CompiledFabric:
    """Elaborate a lowered fabric onto the event simulator.

    The single assembly point for :class:`CompiledFabric` — used by both
    :meth:`CellArray.compile_into` and the platform layer (which patches
    folded routes into ``fn.netlist`` first).
    """
    sim = EventBackend(limits).elaborate(fn.netlist, sim)
    return CompiledFabric(
        sim=sim,
        n_gates=fn.n_gates,
        input_wires=fn.input_wires,
        output_wires=fn.output_wires,
        netlist=fn.netlist,
    )


def _parse_wire(name: str) -> tuple[int, int, int]:
    """Parse ``w[r][c][i]`` back into indices."""
    parts = name[2:-1].split("][")
    if len(parts) != 3:
        raise ValueError(f"malformed wire name {name!r}")
    r, c, i = (int(p) for p in parts)
    return r, c, i
