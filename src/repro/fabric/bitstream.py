"""Configuration frame encoding: CellConfig <-> 128-bit frames.

Frame layout (64 quaternary digits = 128 bits, matching the paper's
"8x8 RAM block ... 128 bits reconfiguration data"):

====== ===========================================================
digits  contents
====== ===========================================================
0-35    crosspoint trits, row-major (LeafState 0..2)
36-41   driver modes (DriverMode 0..3)
42-47   per-row output direction (Direction 0..1)
48-53   input column sources (InputSource 0..2)
54      lfb partner (LfbPartner 0..2)
55-56   lfb tap 0: (hi, lo) quaternary digits encoding 0..7 (7 = unused)
57-58   lfb tap 1: same encoding
59-63   reserved (must read back 0)
====== ===========================================================

An array-level bitstream is simply the concatenation of per-cell frames in
row-major cell order, prefixed by a small header with the array shape and a
CRC-16 over the payload — enough structure to catch truncated or corrupted
streams in tests without inventing a full configuration protocol the paper
does not describe.
"""

from __future__ import annotations

import numpy as np

from repro.fabric.driver import DriverMode
from repro.fabric.leafcell import LeafState
from repro.fabric.mvram import FRAME_BITS, MVRAM, N_CELLS
from repro.fabric.nandcell import (
    CellConfig,
    Direction,
    InputSource,
    LfbPartner,
    N_INPUTS,
    N_LFB,
    N_ROWS,
)

_TAP_NONE = 7

# Digit-field offsets.
_OFF_XPOINT = 0
_OFF_DRIVER = 36
_OFF_DIRECTION = 42
_OFF_INSEL = 48
_OFF_PARTNER = 54
_OFF_TAPS = 55
_OFF_RESERVED = 59


def encode_cell(config: CellConfig) -> np.ndarray:
    """Encode one CellConfig into its 64 quaternary digits."""
    config.validate()
    digits = np.zeros(N_CELLS, dtype=np.uint8)
    k = _OFF_XPOINT
    for r in range(N_ROWS):
        for c in range(N_INPUTS):
            digits[k] = int(config.crosspoints[r][c])
            k += 1
    for r in range(N_ROWS):
        digits[_OFF_DRIVER + r] = int(config.drivers[r])
        digits[_OFF_DIRECTION + r] = int(config.directions[r])
    for c in range(N_INPUTS):
        digits[_OFF_INSEL + c] = int(config.input_select[c])
    digits[_OFF_PARTNER] = int(config.lfb_partner)
    for t in range(N_LFB):
        tap = config.lfb_taps[t]
        value = _TAP_NONE if tap is None else int(tap)
        digits[_OFF_TAPS + 2 * t] = (value >> 2) & 0b11
        digits[_OFF_TAPS + 2 * t + 1] = value & 0b11
    return digits


def decode_cell(digits) -> CellConfig:
    """Inverse of :func:`encode_cell`; validates every field strictly."""
    arr = np.asarray(digits, dtype=np.int64)
    if arr.shape != (N_CELLS,):
        raise ValueError(f"need {N_CELLS} digits, got shape {arr.shape}")
    cfg = CellConfig()
    k = _OFF_XPOINT
    for r in range(N_ROWS):
        for c in range(N_INPUTS):
            v = int(arr[k])
            k += 1
            if v > 2:
                raise ValueError(f"crosspoint digit {v} at row {r} col {c} out of range")
            cfg.crosspoints[r][c] = LeafState(v)
    for r in range(N_ROWS):
        cfg.drivers[r] = DriverMode(int(arr[_OFF_DRIVER + r]))
        d = int(arr[_OFF_DIRECTION + r])
        if d > 1:
            raise ValueError(f"direction digit {d} at row {r} out of range")
        cfg.directions[r] = Direction(d)
    for c in range(N_INPUTS):
        v = int(arr[_OFF_INSEL + c])
        if v > 2:
            raise ValueError(f"input-select digit {v} at column {c} out of range")
        cfg.input_select[c] = InputSource(v)
    p = int(arr[_OFF_PARTNER])
    if p > 2:
        raise ValueError(f"lfb-partner digit {p} out of range")
    cfg.lfb_partner = LfbPartner(p)
    for t in range(N_LFB):
        value = (int(arr[_OFF_TAPS + 2 * t]) << 2) | int(arr[_OFF_TAPS + 2 * t + 1])
        if value == _TAP_NONE:
            cfg.lfb_taps[t] = None
        elif value < N_ROWS:
            cfg.lfb_taps[t] = value
        else:
            raise ValueError(f"lfb tap {t} digit pair encodes {value}, out of range")
    if np.any(arr[_OFF_RESERVED:] != 0):
        raise ValueError("reserved digits must be zero")
    cfg.validate()
    return cfg


def cell_to_frame(config: CellConfig) -> np.ndarray:
    """CellConfig -> 128-bit frame via the MVRAM digit layout."""
    ram = MVRAM()
    ram.load_digits(encode_cell(config))
    return ram.to_bits()


def frame_to_cell(bits) -> CellConfig:
    """Inverse of :func:`cell_to_frame`."""
    return decode_cell(MVRAM.from_bits(bits).digits())


def crc16(bits: np.ndarray) -> int:
    """CRC-16/CCITT over a bit array (MSB-first)."""
    reg = 0xFFFF
    # Pack to bytes for a byte-wise CRC loop.
    arr = np.asarray(bits, dtype=np.uint8)
    pad = (-len(arr)) % 8
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.uint8)])
    for byte in np.packbits(arr):
        reg ^= int(byte) << 8
        for _ in range(8):
            if reg & 0x8000:
                reg = ((reg << 1) ^ 0x1021) & 0xFFFF
            else:
                reg = (reg << 1) & 0xFFFF
    return reg


class BitstreamError(ValueError):
    """Malformed or corrupted array bitstream."""


def encode_array(configs: list[list[CellConfig]]) -> np.ndarray:
    """Concatenate per-cell frames with a shape header and CRC.

    Layout: 8 bits rows | 8 bits cols | frames... | 16 bits CRC (over the
    frame payload only).
    """
    n_rows = len(configs)
    if n_rows == 0 or n_rows > 255:
        raise BitstreamError(f"array rows must be 1..255, got {n_rows}")
    n_cols = len(configs[0])
    if n_cols == 0 or n_cols > 255:
        raise BitstreamError(f"array cols must be 1..255, got {n_cols}")
    frames = []
    for r, row in enumerate(configs):
        if len(row) != n_cols:
            raise BitstreamError(f"row {r} has {len(row)} cells, expected {n_cols}")
        for cfg in row:
            frames.append(cell_to_frame(cfg))
    payload = np.concatenate(frames) if frames else np.zeros(0, dtype=np.uint8)
    header = np.array(
        [(n_rows >> k) & 1 for k in range(7, -1, -1)]
        + [(n_cols >> k) & 1 for k in range(7, -1, -1)],
        dtype=np.uint8,
    )
    crc = crc16(payload)
    trailer = np.array([(crc >> k) & 1 for k in range(15, -1, -1)], dtype=np.uint8)
    return np.concatenate([header, payload, trailer])


def decode_array(bits) -> list[list[CellConfig]]:
    """Inverse of :func:`encode_array`, verifying shape and CRC."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1 or len(arr) < 32:
        raise BitstreamError("bitstream too short for header and CRC")
    n_rows = int(arr[:8] @ (1 << np.arange(7, -1, -1)))
    n_cols = int(arr[8:16] @ (1 << np.arange(7, -1, -1)))
    expected = 16 + n_rows * n_cols * FRAME_BITS + 16
    if len(arr) != expected:
        raise BitstreamError(
            f"bitstream length {len(arr)} != expected {expected} for "
            f"{n_rows}x{n_cols} array"
        )
    payload = arr[16:-16]
    crc_stored = int(arr[-16:] @ (1 << np.arange(15, -1, -1)))
    if crc16(payload) != crc_stored:
        raise BitstreamError("CRC mismatch: corrupted bitstream")
    out: list[list[CellConfig]] = []
    k = 0
    for _ in range(n_rows):
        row = []
        for _ in range(n_cols):
            row.append(frame_to_cell(payload[k : k + FRAME_BITS]))
            k += FRAME_BITS
        out.append(row)
    return out
