"""Inter-array channels: explicit wires between chiplet cell arrays.

One :class:`repro.fabric.array.CellArray` can only host a combinational
chain of ``rows + cols - 1`` gates (the monotone east/north dominance
bound the paper's Section 4.1 page-size argument runs into).  Designs
deeper than that are *sharded* across several arrays — chiplets — and
the nets crossing a shard boundary are lifted out of the abutment
wiring into explicit :class:`InterArrayChannel` objects.

A channel is a point-to-multipoint connection:

* on the **source** array, a boundary-port cell (a gate fan-out row or
  a feed-through buffer the router committed) drives an observable
  abutment wire — ``source_wire``;
* the signal then crosses between arrays, paying :data:`CHANNEL_DELAY`
  — modelled as one exporting buffer cell on the source die plus one
  importing buffer cell on the sink die, i.e. two feed-through hops;
* on each **sink** array it enters on an undriven abutment wire
  (``sink_wires``) exactly like a primary input.

The delay model keeps system-level static timing sound against event
simulation of the stitched netlist: :meth:`splice` realises the channel
as one shared ``buf`` cell of delay :data:`CHANNEL_DELAY` fanning out
to every sink, which is also what
:func:`repro.pnr.partition.compile_sharded` adds to each sink shard's
input arrival during timing composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.array import ROW_DELAY
from repro.fabric.driver import DRIVER_DELAY, DriverMode

#: Forward delay of one inter-array crossing: an exporting feed-through
#: (single-input NAND row + INVERT driver) on the source die plus the
#: matching importing feed-through on the sink die.
CHANNEL_DELAY: int = 2 * (ROW_DELAY + DRIVER_DELAY[DriverMode.INVERT])


class ChannelError(ValueError):
    """An inter-array channel is malformed or cannot be spliced."""


@dataclass(frozen=True, slots=True)
class InterArrayChannel:
    """One net lifted across shard boundaries.

    Attributes
    ----------
    net:
        The source-design net the channel carries.
    source_shard:
        Index of the shard whose array drives the net.
    sink_shards:
        Shards that consume the net, in index order.  Always strictly
        greater than ``source_shard`` — the shard graph is acyclic by
        construction.
    source_wire:
        Observable abutment wire on the source array carrying the value.
    sink_wires:
        Per-sink-shard entry wire (an undriven abutment wire driven
        externally, like a primary input).
    source_cell:
        Grid position of the boundary-port cell driving ``source_wire``
        on the source array (``None`` when untracked).
    delay:
        Crossing delay in simulator units (:data:`CHANNEL_DELAY`).
    """

    net: str
    source_shard: int
    sink_shards: tuple[int, ...]
    source_wire: str
    sink_wires: dict[int, str] = field(default_factory=dict)
    source_cell: tuple[int, int] | None = None
    delay: int = CHANNEL_DELAY

    def __post_init__(self) -> None:
        if any(s <= self.source_shard for s in self.sink_shards):
            raise ChannelError(
                f"channel {self.net!r}: sinks {self.sink_shards} must all "
                f"come after source shard {self.source_shard} (acyclic order)"
            )
        if set(self.sink_wires) - set(self.sink_shards):
            raise ChannelError(
                f"channel {self.net!r}: sink wires for shards outside "
                f"{self.sink_shards}"
            )

    @property
    def fan_out(self) -> int:
        """Number of sink shards the channel feeds."""
        return len(self.sink_shards)

    def splice(self, netlist, source_net: str, target_net: str) -> None:
        """Realise the crossing in a merged netlist.

        Adds a ``buf`` of :attr:`delay` from ``source_net`` (the source
        array's driven wire) onto ``target_net`` (the net the sink
        arrays' entry wires were bound to).  Used by
        ``ShardedPnrResult.to_netlist``.
        """
        netlist.add(
            "buf", f"chan.{self.net}", [source_net], target_net,
            delay=self.delay,
        )
