"""Row output driver modes (the Fig. 5 structure, behavioural form).

Every NAND-array row terminates in the configurable inverting /
non-inverting 3-state driver of Fig. 5.  The paper lists its purposes
(Section 4): in its off state it decouples adjacent cells and sets the
direction of logic flow; as an inverting driver it builds complex logic;
as a buffer it provides data feed-through from an adjacent cell; and it can
act as a simple pass-transistor connection to the neighbouring cell.

Behaviourally that is four modes on the row value:

* ``OFF``    — high impedance (Z): the row does not drive its output line.
* ``INVERT`` — drives NOT(row).  Since the row itself computes the NAND
  (i.e. the *complement* of a product), INVERT recovers the product/AND.
* ``BUFFER`` — drives the row value unchanged (the NAND / complement).
* ``PASS``   — electrically a pass-transistor connection; simulated as a
  (slightly slower) non-inverting drive.  Kept distinct from BUFFER so
  area/power accounting can price the two differently.
"""

from __future__ import annotations

from enum import IntEnum


class DriverMode(IntEnum):
    """Configuration of one row's output driver (2 configuration bits)."""

    OFF = 0
    INVERT = 1
    BUFFER = 2
    PASS = 3


#: Simulator propagation delay (time units) of each driver mode.  A pass
#: transistor is weaker than an active driver; the fabric compiler uses
#: these when building gates.
DRIVER_DELAY: dict[DriverMode, int] = {
    DriverMode.INVERT: 1,
    DriverMode.BUFFER: 1,
    DriverMode.PASS: 2,
}


def driver_drives(mode: DriverMode) -> bool:
    """True when the mode puts a value on the output line."""
    return mode is not DriverMode.OFF


def driver_inverting(mode: DriverMode) -> bool:
    """True when the mode complements the row value."""
    return mode is DriverMode.INVERT


def encode_mode(mode: DriverMode) -> int:
    """2-bit field for the configuration frame."""
    return int(mode)


def decode_mode(bits: int) -> DriverMode:
    """Inverse of :func:`encode_mode`."""
    try:
        return DriverMode(bits)
    except ValueError:
        raise ValueError(f"driver mode field must be 0..3, got {bits!r}") from None
