"""Leaf-cell configuration states: the polymorphic trit.

The leaf cell of the paper's Fig. 6 is a complementary double-gate pair
whose shared back-gate node is held by a three-state tunnelling SRAM.  The
three stored levels (-2 / 0 / +2 V, Fig. 4) put the pair in one of three
operating modes:

* ``ACTIVE``     (0 V)  — the pair responds to its logic input: the
  crosspoint *participates* in its row's NAND product.
* ``FORCE_ON``   (+2 V) — the NMOS is always on and the PMOS always off:
  the input is effectively a logic 1, *excluding* the crosspoint from the
  product (a NAND input tied high).
* ``FORCE_OFF``  (-2 V) — the NMOS never conducts: the row's series
  pull-down is broken and the row output rests high regardless of inputs
  (the Fig. 4 constant-1 row).

This module is the bridge between the stored-state world (SRAM state
indices, bias volts) and the logical world (row semantics) used by
:mod:`repro.fabric.nandcell`.
"""

from __future__ import annotations

from enum import IntEnum

from repro.devices.dgmosfet import CONFIG_BIAS_LEVELS


class LeafState(IntEnum):
    """Back-gate configuration trit of one leaf cell (crosspoint)."""

    #: Row's pull-down broken: row output constant 1 (bias -2 V).
    FORCE_OFF = 0
    #: Normal logic operation: crosspoint participates (bias 0 V).
    ACTIVE = 1
    #: Input tied high: crosspoint excluded from the product (bias +2 V).
    FORCE_ON = 2


#: SRAM state index (0, 1, 2) <-> LeafState: the tunnelling SRAM's stable
#: states are voltage-ascending, matching the IntEnum ordering.
def leaf_from_sram_state(state_index: int) -> LeafState:
    """Decode a stored tunnelling-SRAM state index into a LeafState."""
    try:
        return LeafState(state_index)
    except ValueError:
        raise ValueError(
            f"SRAM state index must be 0, 1 or 2, got {state_index!r}"
        ) from None


def sram_state_for_leaf(state: LeafState) -> int:
    """Inverse of :func:`leaf_from_sram_state`."""
    return int(state)


def bias_for_leaf(state: LeafState) -> float:
    """Back-gate bias (V) that realises a LeafState (Fig. 4 levels)."""
    return CONFIG_BIAS_LEVELS[int(state)]


def leaf_for_bias(bias: float) -> LeafState:
    """Closest LeafState for an analog back-gate bias."""
    diffs = [abs(bias - b) for b in CONFIG_BIAS_LEVELS]
    return LeafState(diffs.index(min(diffs)))


def leaf_to_char(state: LeafState) -> str:
    """Single-character display form: '.' off, 'A' active, '^' tied-high."""
    return {"FORCE_OFF": ".", "ACTIVE": "A", "FORCE_ON": "^"}[state.name]


def char_to_leaf(ch: str) -> LeafState:
    """Inverse of :func:`leaf_to_char`, for compact test fixtures."""
    table = {".": LeafState.FORCE_OFF, "A": LeafState.ACTIVE, "^": LeafState.FORCE_ON}
    try:
        return table[ch]
    except KeyError:
        raise ValueError(
            f"unknown leaf char {ch!r}; expected one of {sorted(table)}"
        ) from None
