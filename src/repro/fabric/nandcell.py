"""The polymorphic 6x6 NAND-array cell (paper Fig. 7).

One cell is a 6-input x 6-row NAND plane: every row is a 6-wide series
pull-down stack (a NAND gate) whose per-input leaf cells carry the
polymorphic trit of :mod:`repro.fabric.leafcell`, terminated in the
configurable 3-state driver of :mod:`repro.fabric.driver`.

Row semantics (derived from the Fig. 4 configuration table):

* any ``FORCE_OFF`` crosspoint breaks the series stack -> row is constant 1;
* otherwise the row computes ``NAND`` of its ``ACTIVE`` columns
  (``FORCE_ON`` crosspoints are inputs tied high: excluded);
* a row whose crosspoints are all ``FORCE_ON`` conducts permanently ->
  constant 0.

Interconnect interpretation (see ARCHITECTURE.md): every cell also owns

* a per-row **output direction** (EAST or NORTH) — Fig. 8's 90-degree
  rotation means each cell's outputs abut the inputs of its two downstream
  neighbours; a row drives exactly one of them at a time;
* two **local feedback (lfb) lines** tapped from its own row values, which
  the cell itself *or its upstream partner* can select as input-column
  sources.  This is what lets a cell pair host a two-state-variable
  asynchronous state machine (the paper's flip-flops and latches) with
  purely local wiring;
* a per-column **input source**: the abutment wire, or one of the two lfb
  lines of the configured partner (self / east / north downstream cell).

A full cell configuration packs into the paper's 128-bit frame (8x8
two-bit RAM): see :mod:`repro.fabric.bitstream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.fabric.driver import DriverMode
from repro.fabric.leafcell import LeafState, char_to_leaf, leaf_to_char
from repro.sim.values import ONE, Z, ZERO, invert, nand

#: Cell geometry: 6 input columns x 6 NAND rows, 2 local feedback lines.
N_INPUTS = 6
N_ROWS = 6
N_LFB = 2


class Direction(IntEnum):
    """Abutment direction a row's driver sends its output to."""

    EAST = 0
    NORTH = 1


class InputSource(IntEnum):
    """What an input column listens to."""

    #: The shared abutment wire (driven by upstream neighbours).
    ABUT = 0
    #: Local feedback line 0 of the configured lfb partner.
    LFB0 = 1
    #: Local feedback line 1 of the configured lfb partner.
    LFB1 = 2


class LfbPartner(IntEnum):
    """Whose lfb lines this cell's LFB0/LFB1 column sources refer to."""

    SELF = 0
    EAST = 1
    NORTH = 2


@dataclass
class CellConfig:
    """Complete configuration of one polymorphic cell.

    The default-constructed cell is inert: every crosspoint FORCE_OFF
    (rows constant 1) and every driver OFF (nothing driven).
    """

    crosspoints: list[list[LeafState]] = field(
        default_factory=lambda: [
            [LeafState.FORCE_OFF] * N_INPUTS for _ in range(N_ROWS)
        ]
    )
    drivers: list[DriverMode] = field(default_factory=lambda: [DriverMode.OFF] * N_ROWS)
    directions: list[Direction] = field(default_factory=lambda: [Direction.EAST] * N_ROWS)
    input_select: list[InputSource] = field(
        default_factory=lambda: [InputSource.ABUT] * N_INPUTS
    )
    lfb_partner: LfbPartner = LfbPartner.SELF
    #: Row index driving each lfb line, or None for an unused line.
    lfb_taps: list[int | None] = field(default_factory=lambda: [None] * N_LFB)

    # ------------------------------------------------------------------
    # Validation / construction helpers
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        if len(self.crosspoints) != N_ROWS:
            raise ValueError(f"need {N_ROWS} crosspoint rows, got {len(self.crosspoints)}")
        for r, row in enumerate(self.crosspoints):
            if len(row) != N_INPUTS:
                raise ValueError(f"row {r} needs {N_INPUTS} crosspoints, got {len(row)}")
            for state in row:
                if not isinstance(state, LeafState):
                    raise ValueError(f"row {r} holds non-LeafState {state!r}")
        for name, seq, n, typ in (
            ("drivers", self.drivers, N_ROWS, DriverMode),
            ("directions", self.directions, N_ROWS, Direction),
            ("input_select", self.input_select, N_INPUTS, InputSource),
        ):
            if len(seq) != n:
                raise ValueError(f"{name} needs {n} entries, got {len(seq)}")
            for v in seq:
                if not isinstance(v, typ):
                    raise ValueError(f"{name} holds non-{typ.__name__} {v!r}")
        if len(self.lfb_taps) != N_LFB:
            raise ValueError(f"lfb_taps needs {N_LFB} entries, got {len(self.lfb_taps)}")
        for k, tap in enumerate(self.lfb_taps):
            if tap is not None and not 0 <= tap < N_ROWS:
                raise ValueError(f"lfb tap {k} must be a row index or None, got {tap!r}")

    def set_product(self, row: int, active_cols: list[int]) -> "CellConfig":
        """Configure ``row`` as the NAND of the given columns.

        All other columns of the row are set FORCE_ON (tied high, i.e.
        excluded from the product).  Returns self for chaining.
        """
        if not 0 <= row < N_ROWS:
            raise ValueError(f"row must be 0..{N_ROWS - 1}, got {row}")
        if not active_cols:
            raise ValueError("a product row needs at least one active column")
        for c in active_cols:
            if not 0 <= c < N_INPUTS:
                raise ValueError(f"column must be 0..{N_INPUTS - 1}, got {c}")
        self.crosspoints[row] = [
            LeafState.ACTIVE if c in active_cols else LeafState.FORCE_ON
            for c in range(N_INPUTS)
        ]
        return self

    def set_constant(self, row: int, value: int) -> "CellConfig":
        """Configure ``row`` as constant 0 or 1 (Fig. 4's last table rows)."""
        if not 0 <= row < N_ROWS:
            raise ValueError(f"row must be 0..{N_ROWS - 1}, got {row}")
        if value == 1:
            self.crosspoints[row] = [LeafState.FORCE_OFF] * N_INPUTS
        elif value == 0:
            self.crosspoints[row] = [LeafState.FORCE_ON] * N_INPUTS
        else:
            raise ValueError(f"constant must be 0 or 1, got {value!r}")
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def row_kind(self, row: int) -> str:
        """'const1', 'const0' or 'nand' — the compiled form of a row."""
        states = self.crosspoints[row]
        if any(s is LeafState.FORCE_OFF for s in states):
            return "const1"
        if all(s is LeafState.FORCE_ON for s in states):
            return "const0"
        return "nand"

    def active_columns(self, row: int) -> list[int]:
        """Columns participating in a row's product (empty for constants)."""
        if self.row_kind(row) != "nand":
            return []
        return [
            c
            for c, s in enumerate(self.crosspoints[row])
            if s is LeafState.ACTIVE
        ]

    def used_rows(self) -> list[int]:
        """Rows whose driver drives or that feed an lfb line."""
        out = set()
        for r in range(N_ROWS):
            if self.drivers[r] is not DriverMode.OFF:
                out.add(r)
        for tap in self.lfb_taps:
            if tap is not None:
                out.add(tap)
        return sorted(out)

    def leaf_count(self) -> int:
        """Number of leaf cells not in their default state — area proxy."""
        n = sum(
            1
            for row in self.crosspoints
            for s in row
            if s is not LeafState.FORCE_OFF
        )
        n += sum(1 for d in self.drivers if d is not DriverMode.OFF)
        n += sum(1 for t in self.lfb_taps if t is not None)
        return n

    def is_blank(self) -> bool:
        """True for the default inert configuration."""
        return self.leaf_count() == 0

    # ------------------------------------------------------------------
    # Pure combinational evaluation
    # ------------------------------------------------------------------
    def row_values(self, column_values: list[int]) -> list[int]:
        """Row (NAND-plane) values for given resolved column values.

        ``column_values`` are 4-valued logic levels for the 6 columns after
        input-source selection; this is the pure-functional view used by
        tests and by the truth-table extractors (the event simulator builds
        gates instead via :mod:`repro.fabric.array`).
        """
        if len(column_values) != N_INPUTS:
            raise ValueError(
                f"need {N_INPUTS} column values, got {len(column_values)}"
            )
        out = []
        for r in range(N_ROWS):
            kind = self.row_kind(r)
            if kind == "const1":
                out.append(ONE)
            elif kind == "const0":
                out.append(ZERO)
            else:
                out.append(nand(column_values[c] for c in self.active_columns(r)))
        return out

    def output_values(self, column_values: list[int]) -> list[int]:
        """Post-driver output values (Z where the driver is OFF)."""
        rows = self.row_values(column_values)
        out = []
        for r in range(N_ROWS):
            mode = self.drivers[r]
            if mode is DriverMode.OFF:
                out.append(Z)
            elif mode is DriverMode.INVERT:
                out.append(invert(rows[r]))
            else:  # BUFFER or PASS
                out.append(rows[r])
        return out

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def sketch(self) -> str:
        """Compact multi-line picture of the configuration."""
        lines = ["cols: " + " ".join(s.name[0] for s in self.input_select)]
        for r in range(N_ROWS):
            cps = "".join(leaf_to_char(s) for s in self.crosspoints[r])
            drv = self.drivers[r].name[:3]
            d = self.directions[r].name[0]
            lines.append(f"row{r} [{cps}] {drv}->{d}")
        taps = ",".join("-" if t is None else str(t) for t in self.lfb_taps)
        lines.append(f"lfb taps: {taps} partner: {self.lfb_partner.name}")
        return "\n".join(lines)

    @classmethod
    def from_sketch_rows(cls, rows: list[str]) -> "CellConfig":
        """Build crosspoints from strings of '.', 'A', '^' (test helper)."""
        cfg = cls()
        if len(rows) != N_ROWS:
            raise ValueError(f"need {N_ROWS} sketch rows, got {len(rows)}")
        for r, line in enumerate(rows):
            if len(line) != N_INPUTS:
                raise ValueError(f"sketch row {r} needs {N_INPUTS} chars, got {len(line)}")
            cfg.crosspoints[r] = [char_to_leaf(ch) for ch in line]
        return cfg
