"""Multi-valued configuration RAM (the paper's 8x8 frame store).

Section 4: *"From the outside, the reconfiguration array appears as a
simple (albeit multi-valued) 8x8 RAM block ... each block requires 128 bits
reconfiguration data."*  An 8x8 array of cells, each storing one of four
levels (2 bits), is exactly 128 bits.

Behaviourally each RAM cell is a tunnelling-SRAM storage node
(:class:`repro.devices.rtd_sram.TunnellingSRAM` holds three of the four
levels; the fourth level of 2-bit fields is realised by pairing cells —
the encoding layer in :mod:`repro.fabric.bitstream` only ever stores
quaternary digits, so this class simply models a 64-digit word-addressable
store with write/read and per-cell hold-power accounting).
"""

from __future__ import annotations

import numpy as np

from repro.devices.rtd_sram import TunnellingSRAM

#: Geometry of the configuration plane of one cell.
WORDS = 8
BITS_PER_WORD = 8
N_CELLS = WORDS * BITS_PER_WORD  # 64 quaternary cells
FRAME_BITS = 2 * N_CELLS  # the paper's 128 bits


class MVRAM:
    """8x8 multi-valued RAM holding one cell's configuration frame.

    Digits are quaternary (0..3).  Word-line / bit-line addressing follows
    the figure: writing a word drives all eight bit lines while one word
    line is raised.
    """

    def __init__(self) -> None:
        self._digits = np.zeros((WORDS, BITS_PER_WORD), dtype=np.uint8)

    # ------------------------------------------------------------------
    # Word access (the hardware's native operation)
    # ------------------------------------------------------------------
    def write_word(self, word: int, digits) -> None:
        """Write eight quaternary digits to one word line."""
        if not 0 <= word < WORDS:
            raise ValueError(f"word must be 0..{WORDS - 1}, got {word}")
        arr = np.asarray(digits, dtype=np.int64)
        if arr.shape != (BITS_PER_WORD,):
            raise ValueError(f"need {BITS_PER_WORD} digits, got shape {arr.shape}")
        if arr.min() < 0 or arr.max() > 3:
            raise ValueError(f"digits must be 0..3, got {digits!r}")
        self._digits[word] = arr.astype(np.uint8)

    def read_word(self, word: int) -> np.ndarray:
        """Read eight quaternary digits from one word line."""
        if not 0 <= word < WORDS:
            raise ValueError(f"word must be 0..{WORDS - 1}, got {word}")
        return self._digits[word].copy()

    # ------------------------------------------------------------------
    # Flat access (used by the frame encoder)
    # ------------------------------------------------------------------
    def write_digit(self, index: int, digit: int) -> None:
        """Write one quaternary digit by flat index (row-major)."""
        if not 0 <= index < N_CELLS:
            raise ValueError(f"index must be 0..{N_CELLS - 1}, got {index}")
        if not 0 <= digit <= 3:
            raise ValueError(f"digit must be 0..3, got {digit}")
        self._digits[divmod(index, BITS_PER_WORD)] = digit

    def read_digit(self, index: int) -> int:
        """Read one quaternary digit by flat index."""
        if not 0 <= index < N_CELLS:
            raise ValueError(f"index must be 0..{N_CELLS - 1}, got {index}")
        return int(self._digits[divmod(index, BITS_PER_WORD)])

    def digits(self) -> np.ndarray:
        """All 64 digits, flat, row-major."""
        return self._digits.reshape(-1).copy()

    def load_digits(self, digits) -> None:
        """Overwrite the full store from 64 flat digits."""
        arr = np.asarray(digits, dtype=np.int64)
        if arr.shape != (N_CELLS,):
            raise ValueError(f"need {N_CELLS} digits, got shape {arr.shape}")
        if arr.min() < 0 or arr.max() > 3:
            raise ValueError("digits must be 0..3")
        self._digits = arr.reshape(WORDS, BITS_PER_WORD).astype(np.uint8)

    # ------------------------------------------------------------------
    # Bit view
    # ------------------------------------------------------------------
    def to_bits(self) -> np.ndarray:
        """128-bit frame: each digit as two bits, MSB first, row-major."""
        flat = self._digits.reshape(-1)
        bits = np.empty(FRAME_BITS, dtype=np.uint8)
        bits[0::2] = (flat >> 1) & 1
        bits[1::2] = flat & 1
        return bits

    @classmethod
    def from_bits(cls, bits) -> "MVRAM":
        """Inverse of :meth:`to_bits`."""
        arr = np.asarray(bits, dtype=np.int64)
        if arr.shape != (FRAME_BITS,):
            raise ValueError(f"need {FRAME_BITS} bits, got shape {arr.shape}")
        if not np.all((arr == 0) | (arr == 1)):
            raise ValueError("frame bits must be 0/1")
        ram = cls()
        ram.load_digits((arr[0::2] << 1) | arr[1::2])
        return ram

    # ------------------------------------------------------------------
    # Power accounting
    # ------------------------------------------------------------------
    def hold_power_w(self, cell: TunnellingSRAM | None = None) -> float:
        """Static power (W) of the 64 storage nodes at their hold currents.

        Every digit costs one tunnelling-SRAM node biased at its stable
        state; the supply is the cell's bipolar span.  Used by the Section 3
        power claim bench (<=100 mW for 1e9 leaf cells).
        """
        cell = cell or TunnellingSRAM()
        worst = max(cell.hold_current(k) for k in range(cell.n_states))
        return float(N_CELLS * worst * 2.0 * cell.supply)
