"""The polymorphic fabric: leaf cells, NAND-array cells, tiling, bitstreams.

This package is the digital behavioural model of the paper's hardware
platform (Sections 3-4): configuration trits, the 6x6 NAND cell, the
rotated-abutment array with local feedback, the 128-bit configuration
frames, and the floorplanner.
"""

from repro.fabric.array import (
    CellArray,
    CompiledFabric,
    ConfigurationError,
    FabricNetlist,
    LFB_DELAY,
    ROW_DELAY,
    lfb_net_name,
    row_net_name,
    wire_name,
)
from repro.fabric.channel import (
    CHANNEL_DELAY,
    ChannelError,
    InterArrayChannel,
)
from repro.fabric.bitstream import (
    BitstreamError,
    cell_to_frame,
    crc16,
    decode_array,
    decode_cell,
    encode_array,
    encode_cell,
    frame_to_cell,
)
from repro.fabric.driver import (
    DRIVER_DELAY,
    DriverMode,
    decode_mode,
    driver_drives,
    driver_inverting,
    encode_mode,
)
from repro.fabric.floorplan import Floorplan, FloorplanError, Region
from repro.fabric.leafcell import (
    LeafState,
    bias_for_leaf,
    char_to_leaf,
    leaf_for_bias,
    leaf_from_sram_state,
    leaf_to_char,
    sram_state_for_leaf,
)
from repro.fabric.mvram import FRAME_BITS, MVRAM, N_CELLS
from repro.fabric.nandcell import (
    CellConfig,
    Direction,
    InputSource,
    LfbPartner,
    N_INPUTS,
    N_LFB,
    N_ROWS,
)

__all__ = [
    "CellArray",
    "CompiledFabric",
    "FabricNetlist",
    "ConfigurationError",
    "LFB_DELAY",
    "ROW_DELAY",
    "lfb_net_name",
    "row_net_name",
    "wire_name",
    "CHANNEL_DELAY",
    "ChannelError",
    "InterArrayChannel",
    "BitstreamError",
    "cell_to_frame",
    "crc16",
    "decode_array",
    "decode_cell",
    "encode_array",
    "encode_cell",
    "frame_to_cell",
    "DRIVER_DELAY",
    "DriverMode",
    "decode_mode",
    "driver_drives",
    "driver_inverting",
    "encode_mode",
    "Floorplan",
    "FloorplanError",
    "Region",
    "LeafState",
    "bias_for_leaf",
    "char_to_leaf",
    "leaf_for_bias",
    "leaf_from_sram_state",
    "leaf_to_char",
    "sram_state_for_leaf",
    "FRAME_BITS",
    "MVRAM",
    "N_CELLS",
    "CellConfig",
    "Direction",
    "InputSource",
    "LfbPartner",
    "N_INPUTS",
    "N_LFB",
    "N_ROWS",
]
