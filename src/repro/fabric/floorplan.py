"""Region allocation over the cell array.

Section 4.1 of the paper argues that GALS partitioning "raises a problem
... analogous to the choice of page size in a hierarchical memory system"
and that module sizes should ideally be *unconstrained* — which a
fine-grained fabric provides.  The floorplanner here is the concrete tool
for that claim: it carves arbitrary rectangular regions out of an array,
tracks utilisation and fragmentation, and is used by the GALS benches to
compare fixed-page against exact-fit allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Region:
    """A named rectangular claim on the cell grid.

    Attributes
    ----------
    name:
        Module name.
    row, col:
        Top-left cell position.
    n_rows, n_cols:
        Extent in cells.
    """

    name: str
    row: int
    col: int
    n_rows: int
    n_cols: int

    def __post_init__(self) -> None:
        if self.n_rows < 1 or self.n_cols < 1:
            raise ValueError(f"region {self.name!r} must be at least 1x1")
        if self.row < 0 or self.col < 0:
            raise ValueError(f"region {self.name!r} origin must be non-negative")

    @property
    def cells(self) -> int:
        """Number of cells claimed."""
        return self.n_rows * self.n_cols

    def overlaps(self, other: "Region") -> bool:
        """True when two regions share any cell."""
        return not (
            self.row + self.n_rows <= other.row
            or other.row + other.n_rows <= self.row
            or self.col + self.n_cols <= other.col
            or other.col + other.n_cols <= self.col
        )


class FloorplanError(ValueError):
    """Region does not fit or collides with an existing allocation."""


class Floorplan:
    """Tracks rectangular module allocations on an array."""

    def __init__(self, n_rows: int, n_cols: int) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ValueError(f"floorplan must be at least 1x1, got {n_rows}x{n_cols}")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.regions: dict[str, Region] = {}
        self._occupied = np.zeros((n_rows, n_cols), dtype=bool)

    def allocate(self, region: Region) -> Region:
        """Claim a region; raises :class:`FloorplanError` on any conflict."""
        if region.name in self.regions:
            raise FloorplanError(f"region name {region.name!r} already allocated")
        if (
            region.row + region.n_rows > self.n_rows
            or region.col + region.n_cols > self.n_cols
        ):
            raise FloorplanError(
                f"region {region.name!r} ({region.n_rows}x{region.n_cols} at "
                f"({region.row},{region.col})) exceeds the {self.n_rows}x"
                f"{self.n_cols} array"
            )
        window = self._occupied[
            region.row : region.row + region.n_rows,
            region.col : region.col + region.n_cols,
        ]
        if window.any():
            raise FloorplanError(f"region {region.name!r} overlaps an allocation")
        window[:] = True
        self.regions[region.name] = region
        return region

    def allocate_anywhere(self, name: str, n_rows: int, n_cols: int) -> Region:
        """First-fit allocation scanning row-major; raises when full."""
        free = ~self._occupied
        # Vectorised window-fit test via a 2-D sliding sum.
        if n_rows > self.n_rows or n_cols > self.n_cols:
            raise FloorplanError(
                f"module {name!r} ({n_rows}x{n_cols}) larger than the array"
            )
        ok = (
            np.lib.stride_tricks.sliding_window_view(free, (n_rows, n_cols))
            .all(axis=(2, 3))
        )
        hits = np.argwhere(ok)
        if len(hits) == 0:
            raise FloorplanError(f"no free {n_rows}x{n_cols} window for {name!r}")
        r, c = map(int, hits[0])
        return self.allocate(Region(name, r, c, n_rows, n_cols))

    def release(self, name: str) -> None:
        """Free a named region (dynamic-reconfiguration modelling)."""
        region = self.regions.pop(name, None)
        if region is None:
            raise FloorplanError(f"no region named {name!r}")
        self._occupied[
            region.row : region.row + region.n_rows,
            region.col : region.col + region.n_cols,
        ] = False

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def total_cells(self) -> int:
        """Cells in the whole array."""
        return self.n_rows * self.n_cols

    @property
    def used_cells(self) -> int:
        """Cells currently allocated."""
        return int(self._occupied.sum())

    @property
    def utilisation(self) -> float:
        """Fraction of cells allocated."""
        return self.used_cells / self.total_cells

    def largest_free_square(self) -> int:
        """Side of the largest free square window (fragmentation metric).

        Classic dynamic-programming maximal-square over the free map.
        """
        free = (~self._occupied).astype(np.int64)
        dp = free.copy()
        for r in range(1, self.n_rows):
            for c in range(1, self.n_cols):
                if free[r, c]:
                    dp[r, c] = 1 + min(dp[r - 1, c], dp[r, c - 1], dp[r - 1, c - 1])
        return int(dp.max())

    def internal_fragmentation(self, requested_cells: dict[str, int]) -> float:
        """Wasted fraction when modules were padded to their regions.

        ``requested_cells`` maps region names to the cell count the module
        actually needed; the difference to the allocated rectangle is
        internal fragmentation — the paper's fixed-page-size problem.
        """
        waste = 0
        total = 0
        for name, need in requested_cells.items():
            region = self.regions.get(name)
            if region is None:
                raise FloorplanError(f"no region named {name!r}")
            if need > region.cells:
                raise FloorplanError(
                    f"region {name!r} holds {region.cells} cells but "
                    f"{need} were claimed to be needed"
                )
            waste += region.cells - need
            total += region.cells
        return waste / total if total else 0.0
