"""repro — behavioural reproduction of Beckett, *A Polymorphic Hardware
Platform* (IPDPS 2003).

The package models a very fine-grained reconfigurable fabric whose leaf cell
— a complementary double-gate MOSFET pair with an RTD multi-valued
configuration memory on its back gate — can act as logic, state, or
interconnect.  Layers, bottom up:

* :mod:`repro.devices`   — compact DG-MOSFET / RTD / tunnelling-SRAM models
* :mod:`repro.circuits`  — DC solvers and the configurable gate structures
* :mod:`repro.fabric`    — the polymorphic NAND-array cell and its tiling
* :mod:`repro.netlist`   — backend-neutral netlist IR and the pluggable
  simulation backends (event-driven reference + bit-parallel batch)
* :mod:`repro.sim`       — event-driven 4-valued logic simulator
* :mod:`repro.synth`     — minimisation, NAND mapping, async-FSM synthesis,
  place & route, macro library
* :mod:`repro.asynclogic`— C-elements, micropipelines, GALS wrappers
* :mod:`repro.datapath`  — adder / accumulator / bit-serial generators
* :mod:`repro.arch`      — area, power, config-bit and scaling analytics
* :mod:`repro.core`      — the high-level :class:`PolymorphicPlatform` API

See ARCHITECTURE.md for the layer diagram, the netlist IR contract and a
dual-backend quickstart.
"""

__version__ = "1.1.0"

__all__ = [
    "devices",
    "circuits",
    "fabric",
    "netlist",
    "sim",
    "synth",
    "asynclogic",
    "datapath",
    "arch",
    "core",
    "util",
]
