"""Technology-node table used by the scaling studies of Section 2.

The paper argues (Section 2.1, citing DeHon [1], De Dinechin [18], Liu & Pai
[20], Sylvester & Keutzer [19]) that interconnect delay comes to dominate
FPGA path delay as feature size shrinks, so that FPGA operating frequency
improves only O(lambda^1/2).  The :class:`TechnologyNode` records the handful
of per-node electrical parameters those first-order arguments need.

Values are representative mid-1990s-to-2000s ITRS-style numbers: the goal is
to reproduce the *shape* of the paper's scaling arguments (who wins, where
the crossover falls), not any particular foundry kit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TechnologyNode:
    """Electrical snapshot of one lithography generation.

    Attributes
    ----------
    name:
        Conventional node label, e.g. ``"130nm"``.
    feature_nm:
        Drawn feature size (the paper's lambda is ``feature_nm / 2``).
    vdd:
        Nominal supply voltage (V).
    gate_delay_ps:
        Intrinsic fanout-of-4-style gate delay (ps); scales roughly with
        feature size.
    wire_r_ohm_per_um:
        Resistance of a minimum-width mid-level wire (ohm/um).
    wire_c_ff_per_um:
        Capacitance of the same wire (fF/um).
    """

    name: str
    feature_nm: float
    vdd: float
    gate_delay_ps: float
    wire_r_ohm_per_um: float
    wire_c_ff_per_um: float

    @property
    def lambda_nm(self) -> float:
        """Layout lambda in nm (half the drawn feature size)."""
        return self.feature_nm / 2.0

    @property
    def wire_rc_ps_per_um2(self) -> float:
        """Distributed-RC delay coefficient: 0.38 * R * C (ps per um^2).

        The 0.38 factor is the standard Elmore coefficient for a distributed
        RC line.  Total unrepeated wire delay over length L um is
        ``wire_rc_ps_per_um2 * L**2``.
        """
        return 0.38 * self.wire_r_ohm_per_um * self.wire_c_ff_per_um * 1e-3


#: Representative scaling ladder from 250 nm (the paper's present) down to
#: 22 nm (the "deep sub-micron to nano-scale" future it argues about).
#: Wire R grows as the inverse square of width; wire C per unit length is
#: nearly constant; gate delay shrinks linearly.
NODES: dict[str, TechnologyNode] = {
    n.name: n
    for n in (
        TechnologyNode("250nm", 250.0, 2.5, 80.0, 0.06, 0.20),
        TechnologyNode("180nm", 180.0, 1.8, 55.0, 0.12, 0.20),
        TechnologyNode("130nm", 130.0, 1.3, 38.0, 0.22, 0.21),
        TechnologyNode("90nm", 90.0, 1.1, 25.0, 0.45, 0.21),
        TechnologyNode("65nm", 65.0, 1.0, 17.0, 0.90, 0.22),
        TechnologyNode("45nm", 45.0, 1.0, 11.0, 1.90, 0.22),
        TechnologyNode("32nm", 32.0, 0.9, 7.5, 3.80, 0.23),
        TechnologyNode("22nm", 22.0, 0.8, 5.0, 7.80, 0.23),
    )
}


def node(name: str) -> TechnologyNode:
    """Look up a :class:`TechnologyNode` by label.

    Raises ``KeyError`` with the list of known nodes on a miss, which is the
    most common user error in the benches.
    """
    try:
        return NODES[name]
    except KeyError:
        known = ", ".join(sorted(NODES, key=lambda k: -NODES[k].feature_nm))
        raise KeyError(f"unknown technology node {name!r}; known nodes: {known}") from None


def lambda_nm(name: str) -> float:
    """Layout lambda (nm) of the named node."""
    return node(name).lambda_nm


def nodes_descending() -> list[TechnologyNode]:
    """All nodes ordered from the largest feature size to the smallest."""
    return sorted(NODES.values(), key=lambda n: -n.feature_nm)
