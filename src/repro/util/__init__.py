"""Shared utilities: physical constants, technology tables, validation helpers.

These are deliberately dependency-free so every other subpackage can import
them without cycles.
"""

from repro.util.constants import (
    BOLTZMANN_EV,
    ROOM_TEMPERATURE_K,
    thermal_voltage,
)
from repro.util.technology import (
    TechnologyNode,
    NODES,
    node,
    lambda_nm,
)
from repro.util.validate import (
    check_finite,
    check_in_range,
    check_positive,
)

__all__ = [
    "BOLTZMANN_EV",
    "ROOM_TEMPERATURE_K",
    "thermal_voltage",
    "TechnologyNode",
    "NODES",
    "node",
    "lambda_nm",
    "check_finite",
    "check_in_range",
    "check_positive",
]
