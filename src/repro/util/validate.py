"""Small argument-validation helpers shared across the package.

They raise ``ValueError``/``TypeError`` with messages that name the offending
parameter, which keeps the device/fabric constructors short and the error
messages uniform.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` if >= 0 and finite, else raise ``ValueError``."""
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def check_finite(name: str, value) -> np.ndarray:
    """Return ``value`` as a float array, raising if any element is non-finite."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return arr


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Return ``value`` if ``lo <= value <= hi``, else raise ``ValueError``."""
    v = float(value)
    if not np.isfinite(v) or v < lo or v > hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value!r}")
    return v


def check_index(name: str, value: int, size: int) -> int:
    """Validate an integer index into a container of ``size`` elements."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if not 0 <= value < size:
        raise ValueError(f"{name} must lie in [0, {size}), got {value}")
    return int(value)


def check_length(name: str, seq: Sequence, expected: int) -> Sequence:
    """Validate that ``seq`` has exactly ``expected`` elements."""
    if len(seq) != expected:
        raise ValueError(f"{name} must have length {expected}, got {len(seq)}")
    return seq
