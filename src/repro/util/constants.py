"""Physical constants used by the device models.

Only the handful of constants the compact models need are defined here;
values follow CODATA 2018 to the precision relevant for a behavioural model.
"""

from __future__ import annotations

import math

#: Boltzmann constant in eV/K.
BOLTZMANN_EV: float = 8.617333262e-5

#: Elementary charge in coulombs.
ELEMENTARY_CHARGE_C: float = 1.602176634e-19

#: Default simulation temperature (K).
ROOM_TEMPERATURE_K: float = 300.0

#: Vacuum permittivity in F/m.
EPSILON_0_F_PER_M: float = 8.8541878128e-12

#: Relative permittivity of SiO2 (gate oxide in the paper's Fig. 2 stack).
EPSILON_R_SIO2: float = 3.9

#: Relative permittivity of silicon.
EPSILON_R_SI: float = 11.7


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Return kT/q in volts at ``temperature_k``.

    The subthreshold behaviour of the double-gate MOSFET model is expressed
    in units of the thermal voltage, so almost every device evaluation calls
    this.

    >>> round(thermal_voltage(300.0), 6)
    0.025852
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    return BOLTZMANN_EV * temperature_k


def oxide_capacitance_f_per_m2(t_ox_nm: float) -> float:
    """Areal gate-oxide capacitance (F/m^2) for an oxide ``t_ox_nm`` thick.

    The paper's device (Fig. 2) uses 1.5 nm top and bottom oxides; the
    back-gate coupling factor of the compact model derives from the ratio of
    front and back oxide capacitances.
    """
    if t_ox_nm <= 0.0:
        raise ValueError(f"oxide thickness must be positive, got {t_ox_nm!r}")
    return EPSILON_0_F_PER_M * EPSILON_R_SIO2 / (t_ox_nm * 1e-9)


def back_gate_coupling(t_ox_front_nm: float, t_ox_back_nm: float) -> float:
    """Ideal back-gate coupling factor gamma = C_back / C_front.

    For the symmetric 1.5 nm / 1.5 nm stack of the paper's Fig. 2 this is
    1.0 — i.e. the back gate is (ideally) as effective as the front gate at
    moving the threshold, which is what lets a +/-2 V configuration bias
    force a device fully on or off across the whole logic range.

    Real fully-depleted films divide the coupling by the series silicon-film
    capacitance; callers may scale the returned value accordingly.
    """
    c_front = oxide_capacitance_f_per_m2(t_ox_front_nm)
    c_back = oxide_capacitance_f_per_m2(t_ox_back_nm)
    return c_back / c_front


def softplus(x, scale: float = 1.0):
    """Numerically-stable softplus ``scale * log(1 + exp(x / scale))``.

    Used as the smooth max(0, x) in the EKV-style channel-charge expression.
    Works on scalars and numpy arrays.
    """
    import numpy as np

    x = np.asarray(x, dtype=float)
    z = x / scale
    # log1p(exp(z)) = z + log1p(exp(-z)) for z > 0 avoids overflow.
    out = np.where(z > 0.0, z + np.log1p(np.exp(-np.abs(z))), np.log1p(np.exp(np.minimum(z, 0.0))))
    result = scale * out
    if result.ndim == 0:
        return float(result)
    return result


def logistic(x):
    """Standard logistic function, overflow-safe, scalar or array."""
    import numpy as np

    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    if out.ndim == 0:
        return float(out)
    return out


def db10(ratio: float) -> float:
    """Power ratio in decibels; convenience for report formatting."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)
