"""DC operating-point solvers for small complementary gate structures.

The paper's Figs. 3-5 are DC transfer results of configurable CMOS-style
gates built from double-gate pairs.  Rather than a general SPICE engine, the
fabric only ever needs static CMOS topologies: a pull-up network between VDD
and the output, a pull-down network between the output and ground.  The
output voltage is then the unique balance point

    I_pullup(VDD -> out) = I_pulldown(out -> 0)

Both network currents are monotone in the output voltage (pull-up current
falls as the output rises, pull-down current rises), so the balance point is
found by a *vectorised bisection* over the whole input-sweep array at once —
no Python loop over sweep samples, per the hpc-parallel guides.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

#: A network-current function: maps (v_out, aux...) -> current array.
CurrentFn = Callable[[np.ndarray], np.ndarray]


def bisect_balance(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    iterations: int = 80,
) -> np.ndarray:
    """Vectorised bisection for ``f(x) = 0`` with ``f`` decreasing in ``x``.

    ``lo`` and ``hi`` are arrays bracketing the roots elementwise; ``f`` must
    accept and return arrays of the same shape.  80 iterations drive the
    interval below 1e-24 of the initial span — far past float64 resolution —
    so the result is exact to machine precision for smooth ``f``.
    """
    lo = np.array(lo, dtype=float, copy=True)
    hi = np.array(hi, dtype=float, copy=True)
    if lo.shape != hi.shape:
        raise ValueError(f"lo/hi shape mismatch: {lo.shape} vs {hi.shape}")
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        fm = f(mid)
        go_up = fm > 0.0  # f decreasing: positive residual -> root above mid
        lo = np.where(go_up, mid, lo)
        hi = np.where(go_up, hi, mid)
    return 0.5 * (lo + hi)


def solve_output(
    pullup_current: CurrentFn,
    pulldown_current: CurrentFn,
    vdd: float,
    shape: tuple[int, ...],
) -> np.ndarray:
    """Solve the output node of a static complementary stage.

    ``pullup_current(v_out)`` is the current delivered into the node by the
    pull-up network and ``pulldown_current(v_out)`` the current removed by
    the pull-down network, both already closed over the gate inputs.  The
    residual ``pullup - pulldown`` is decreasing in ``v_out``.
    """

    def residual(v_out: np.ndarray) -> np.ndarray:
        return pullup_current(v_out) - pulldown_current(v_out)

    lo = np.zeros(shape)
    hi = np.full(shape, vdd)
    return bisect_balance(residual, lo, hi)


def series_pair_current(
    lower_ids: Callable[[np.ndarray, np.ndarray], np.ndarray],
    upper_ids: Callable[[np.ndarray, np.ndarray], np.ndarray],
    v_total: np.ndarray,
    iterations: int = 60,
) -> np.ndarray:
    """Current through two stacked devices sharing an internal node.

    ``lower_ids(v_internal_drop, v_internal)`` gives the lower device current
    with its drain at the internal node; ``upper_ids(v_upper_drop,
    v_internal)`` the upper device current with its source at the internal
    node.  Both callables receive the *drop across that device* and the
    internal node voltage (needed because the upper device's gate drive
    depends on its source).  The internal node ``vm`` in [0, v_total] where
    the two currents match is found by vectorised bisection: the residual
    ``lower(vm) - upper(vm)`` rises with ``vm``.

    Returns the matched stack current.
    """
    v_total = np.asarray(v_total, dtype=float)
    lo = np.zeros_like(v_total)
    hi = np.array(v_total, copy=True)

    def residual(vm: np.ndarray) -> np.ndarray:
        return lower_ids(vm, vm) - upper_ids(v_total - vm, vm)

    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        r = residual(mid)
        go_up = r < 0.0  # residual rising: negative -> root above mid
        lo = np.where(go_up, mid, lo)
        hi = np.where(go_up, hi, mid)
    vm = 0.5 * (lo + hi)
    return lower_ids(vm, vm)


def switching_threshold(vin: np.ndarray, vout: np.ndarray, vdd: float) -> float:
    """Input voltage where the transfer curve crosses VDD/2.

    Returns ``nan`` when the curve never crosses (the stuck-high / stuck-low
    configurations of Fig. 3), which the benches report as "no switching".
    """
    vin = np.asarray(vin, dtype=float)
    vout = np.asarray(vout, dtype=float)
    half = vdd / 2.0
    above = vout > half
    flips = np.nonzero(above[:-1] != above[1:])[0]
    if flips.size == 0:
        return float("nan")
    k = int(flips[0])
    # Linear interpolation of the crossing.
    f = (half - vout[k]) / (vout[k + 1] - vout[k])
    return float(vin[k] + f * (vin[k + 1] - vin[k]))


def output_swing(vout: np.ndarray) -> tuple[float, float]:
    """(min, max) of a transfer curve — logic-level integrity metric."""
    vout = np.asarray(vout, dtype=float)
    return float(vout.min()), float(vout.max())


def gain_peak(vin: np.ndarray, vout: np.ndarray) -> float:
    """Maximum |dVout/dVin| of a transfer curve (regeneration metric)."""
    vin = np.asarray(vin, dtype=float)
    vout = np.asarray(vout, dtype=float)
    g = np.gradient(vout, vin)
    return float(np.max(np.abs(g)))
