"""Analog models of the paper's configurable gate structures (Figs. 3-5).

Three circuits are reproduced at the DC level:

* :class:`ConfigurableInverter` — Fig. 3: a complementary DG pair whose
  shared back-gate bias V_G2 moves the switching threshold across the whole
  logic range, saturating into stuck-high (V_G2 <= -1.5 V) and stuck-low
  (V_G2 >= +1.5 V) configurations.
* :class:`ConfigurableNAND2` — Fig. 4: a 2-NAND in which each input's
  complementary pair has its own back-gate bias, yielding the enhanced
  function set {NAND(A,B), NOT A, NOT B, constant 0, constant 1}.
* :class:`TristateDriver` — Fig. 5: the inverting / non-inverting /
  open-circuit output structure that terminates every NAND-array row.

The back-gate sign convention follows :class:`repro.devices.DGMosfet`: one
shared configuration node biases the NMOS and PMOS of a pair oppositely, so
a single stored trit selects force-on / active / force-off for the *pair*.

Note on Fig. 5 fidelity: the paper's four-transistor reorganised structure
is not fully recoverable from the figure; we model the inverting and
open-circuit modes with the classic back-gate-enabled tristate-inverter
stack and obtain the non-inverting mode by cascading two inverting stages.
The configuration *table* of Fig. 5 (Out in {NOT IN, IN, open}) is
reproduced exactly; the transistor count for the non-inverting mode is
doubled.  See EXPERIMENTS.md (E3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.dc import (
    series_pair_current,
    solve_output,
    switching_threshold,
)
from repro.devices.dgmosfet import DGMosfet, DGMosfetParams, Polarity
from repro.netlist.ir import NetRef, Netlist


@dataclass(frozen=True, slots=True)
class VTCResult:
    """A solved voltage-transfer curve.

    Attributes
    ----------
    vin, vout:
        Sweep arrays (V).
    vdd:
        Supply (V).
    back_gate_bias:
        The configuration bias the curve was solved at.
    """

    vin: np.ndarray
    vout: np.ndarray
    vdd: float
    back_gate_bias: float

    @property
    def threshold(self) -> float:
        """Input switching threshold (V), nan when stuck."""
        return switching_threshold(self.vin, self.vout, self.vdd)

    @property
    def is_stuck_high(self) -> bool:
        """True when the output never falls below VDD/2 (Fig. 3, V_G2 <= -1.5)."""
        return bool(np.all(self.vout > self.vdd / 2.0))

    @property
    def is_stuck_low(self) -> bool:
        """True when the output never rises above VDD/2 (Fig. 3, V_G2 >= +1.5)."""
        return bool(np.all(self.vout < self.vdd / 2.0))

    @property
    def switches(self) -> bool:
        """True when the curve crosses VDD/2 (an active logic configuration)."""
        return not (self.is_stuck_high or self.is_stuck_low)


class ConfigurableInverter:
    """Complementary DG pair with a shared back-gate configuration node."""

    def __init__(
        self,
        vdd: float = 1.0,
        nmos: DGMosfet | None = None,
        pmos: DGMosfet | None = None,
    ) -> None:
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd!r}")
        self.vdd = float(vdd)
        self.nmos = nmos or DGMosfet(DGMosfetParams(polarity=Polarity.NMOS))
        self.pmos = pmos or DGMosfet(DGMosfetParams(polarity=Polarity.PMOS))

    def vtc(self, back_gate_bias: float = 0.0, n_points: int = 401, vin_max: float | None = None) -> VTCResult:
        """Solve the transfer curve at the given configuration bias.

        ``vin_max`` defaults to 1.2 * VDD, matching the Fig. 3 sweep range.
        """
        vin = np.linspace(0.0, vin_max if vin_max is not None else 1.2 * self.vdd, n_points)
        vdd = self.vdd

        def pullup(v_out: np.ndarray) -> np.ndarray:
            return np.asarray(self.pmos.ids(vdd - vin, vdd - v_out, back_gate_bias))

        def pulldown(v_out: np.ndarray) -> np.ndarray:
            return np.asarray(self.nmos.ids(vin, v_out, back_gate_bias))

        vout = solve_output(pullup, pulldown, vdd, vin.shape)
        return VTCResult(vin=vin, vout=vout, vdd=vdd, back_gate_bias=float(back_gate_bias))

    def vtc_family(self, biases=(-1.5, -0.5, 0.0, +0.5, +1.5), n_points: int = 401) -> list[VTCResult]:
        """The Fig. 3 curve family (default biases are the figure's five)."""
        return [self.vtc(b, n_points=n_points) for b in biases]

    def logic_output(self, vin_logical: int, back_gate_bias: float = 0.0) -> int | None:
        """Digital abstraction: drive a rail input, threshold the output.

        Returns 0/1, or ``None`` when the output is not a clean level
        (within 25% of a rail) — used to build configuration tables.
        """
        v = self.vdd if vin_logical else 0.0
        res = self.vtc(back_gate_bias, n_points=3, vin_max=self.vdd)
        # Interpolate the solved VTC at the driven input.
        vout = float(np.interp(v, res.vin, res.vout))
        if vout > 0.75 * self.vdd:
            return 1
        if vout < 0.25 * self.vdd:
            return 0
        return None


class ConfigurableNAND2:
    """Two-input NAND with per-input back-gate configuration (Fig. 4).

    Pull-down: series NMOS stack (input A lower, input B upper).
    Pull-up: parallel PMOS pair.  Input A's pair is biased by ``bias_a``,
    input B's by ``bias_b``; each bias is one of the -2 / 0 / +2 V levels.
    """

    def __init__(
        self,
        vdd: float = 1.0,
        nmos: DGMosfet | None = None,
        pmos: DGMosfet | None = None,
    ) -> None:
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd!r}")
        self.vdd = float(vdd)
        self.nmos = nmos or DGMosfet(DGMosfetParams(polarity=Polarity.NMOS))
        self.pmos = pmos or DGMosfet(DGMosfetParams(polarity=Polarity.PMOS))

    def solve(self, va, vb, bias_a: float = 0.0, bias_b: float = 0.0) -> np.ndarray:
        """Output voltage for (arrays of) analog input voltages."""
        va = np.asarray(va, dtype=float)
        vb = np.asarray(vb, dtype=float)
        va, vb = np.broadcast_arrays(va, vb)
        vdd = self.vdd
        nmos, pmos = self.nmos, self.pmos

        def pulldown(v_out: np.ndarray) -> np.ndarray:
            def lower(v_drop: np.ndarray, _vm: np.ndarray) -> np.ndarray:
                return np.asarray(nmos.ids(va, v_drop, bias_a))

            def upper(v_drop: np.ndarray, vm: np.ndarray) -> np.ndarray:
                return np.asarray(nmos.ids(vb - vm, v_drop, bias_b))

            return series_pair_current(lower, upper, v_out)

        def pullup(v_out: np.ndarray) -> np.ndarray:
            ia = np.asarray(pmos.ids(vdd - va, vdd - v_out, bias_a))
            ib = np.asarray(pmos.ids(vdd - vb, vdd - v_out, bias_b))
            return ia + ib

        return solve_output(pullup, pulldown, vdd, va.shape)

    def logic_table(self, bias_a: float, bias_b: float) -> dict[tuple[int, int], int | None]:
        """Digital truth table under a configuration; None marks a bad level."""
        table: dict[tuple[int, int], int | None] = {}
        a_bits = np.array([0, 0, 1, 1])
        b_bits = np.array([0, 1, 0, 1])
        vout = self.solve(a_bits * self.vdd, b_bits * self.vdd, bias_a, bias_b)
        for a, b, v in zip(a_bits, b_bits, vout):
            if v > 0.75 * self.vdd:
                bit: int | None = 1
            elif v < 0.25 * self.vdd:
                bit = 0
            else:
                bit = None
            table[(int(a), int(b))] = bit
        return table

    def classify(self, bias_a: float, bias_b: float) -> str:
        """Name the configured function, reproducing the Fig. 4 table rows.

        Returns one of ``"NAND"``, ``"NOT_A"``, ``"NOT_B"``, ``"ONE"``,
        ``"ZERO"`` or ``"OTHER"``.
        """
        t = self.logic_table(bias_a, bias_b)
        if None in t.values():
            return "OTHER"
        bits = tuple(t[(a, b)] for a in (0, 1) for b in (0, 1))
        named = {
            (1, 1, 1, 0): "NAND",
            (1, 1, 0, 0): "NOT_A",
            (1, 0, 1, 0): "NOT_B",
            (1, 1, 1, 1): "ONE",
            (0, 0, 0, 0): "ZERO",
        }
        return named.get(bits, "OTHER")

    def lower_into(
        self,
        netlist: Netlist,
        name: str,
        bias_a: float,
        bias_b: float,
        a: NetRef | str,
        b: NetRef | str,
        output: NetRef | str,
        delay: int = 1,
    ) -> NetRef:
        """Classify the configured function and emit it as a netlist cell.

        The bridge from the analog layer to the digital IR: solve the DC
        behaviour under (``bias_a``, ``bias_b``), name the Fig. 4 row it
        lands on, and lower that row via :func:`lower_fig4_function`.
        """
        return lower_fig4_function(
            netlist, name, self.classify(bias_a, bias_b), a, b, output, delay=delay
        )


def lower_fig4_function(
    netlist: Netlist,
    name: str,
    function: str,
    a: NetRef | str,
    b: NetRef | str,
    output: NetRef | str,
    delay: int = 1,
) -> NetRef:
    """Lower one classified Fig. 4 configuration onto the netlist IR.

    ``function`` is a row of the Fig. 4 table — ``"NAND"``, ``"NOT_A"``,
    ``"NOT_B"``, ``"ONE"`` or ``"ZERO"``; ``"OTHER"`` (a degenerate analog
    configuration) has no digital meaning and raises ``ValueError``.
    """
    if function == "NAND":
        return netlist.add("nand", name, [a, b], output, delay=delay)
    if function == "NOT_A":
        return netlist.add("not", name, [a], output, delay=delay)
    if function == "NOT_B":
        return netlist.add("not", name, [b], output, delay=delay)
    if function == "ONE":
        return netlist.add("const", name, [], output, delay=delay, value=1)
    if function == "ZERO":
        return netlist.add("const", name, [], output, delay=delay, value=0)
    raise ValueError(
        f"Fig. 4 function {function!r} has no digital lowering"
        + (" (degenerate analog levels)" if function == "OTHER" else "")
    )


class TristateDriver:
    """The Fig. 5 output structure: inverting / non-inverting / open.

    Modes are selected by two stored trits, matching the three-row table of
    Fig. 5.  The inverting mode is a back-gate-enabled tristate inverter
    (enable devices forced on); open-circuit forces both enables off; the
    non-inverting mode cascades a second inverting stage (see module note).
    """

    MODES = ("INVERTING", "NON_INVERTING", "OPEN")

    def __init__(self, vdd: float = 1.0) -> None:
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd!r}")
        self.vdd = float(vdd)
        self._inv = ConfigurableInverter(vdd=vdd)

    def mode_for_biases(self, vg1: float, vg2: float) -> str:
        """Decode the Fig. 5 configuration table.

        (active, off)  -> INVERTING
        (on, active)   -> NON_INVERTING (second stage active)
        (off, off)     -> OPEN
        Any other combination is reported as OPEN for safety (the fabric
        never programs them).
        """
        def level(v: float) -> str:
            if v <= -1.0:
                return "off"
            if v >= 1.0:
                return "on"
            return "active"

        l1, l2 = level(vg1), level(vg2)
        if l1 == "active" and l2 == "off":
            return "INVERTING"
        if l1 == "on" and l2 == "active":
            return "NON_INVERTING"
        return "OPEN"

    def drive(self, vin_logical: int, mode: str) -> int | None:
        """Digital output for a rail input in the given mode.

        Returns ``None`` for high-impedance (the bus resolution layer in
        :mod:`repro.sim` turns that into Z).
        """
        if mode not in self.MODES:
            raise ValueError(f"unknown driver mode {mode!r}; expected one of {self.MODES}")
        if mode == "OPEN":
            return None
        first = self._inv.logic_output(vin_logical, 0.0)
        if first is None:
            return None
        if mode == "INVERTING":
            return first
        return self._inv.logic_output(first, 0.0)

    def lower_into(
        self,
        netlist: Netlist,
        name: str,
        mode: str,
        din: NetRef | str,
        output: NetRef | str,
        delay: int = 1,
    ) -> NetRef | None:
        """Emit the Fig. 5 driver in ``mode`` as a netlist cell.

        INVERTING -> ``not``, NON_INVERTING -> ``buf``; OPEN contributes
        no cell at all (the row's driver is off) and returns ``None``.
        """
        if mode not in self.MODES:
            raise ValueError(f"unknown driver mode {mode!r}; expected one of {self.MODES}")
        if mode == "OPEN":
            return None
        kind = "not" if mode == "INVERTING" else "buf"
        return netlist.add(kind, name, [din], output, delay=delay)

    def analog_vtc(self, mode: str, n_points: int = 201) -> VTCResult | None:
        """DC transfer curve of the driver in an active mode; None when OPEN."""
        if mode == "OPEN":
            return None
        res = self._inv.vtc(0.0, n_points=n_points, vin_max=self.vdd)
        if mode == "INVERTING":
            return res
        vout2 = np.interp(res.vout, res.vin, res.vout)
        return VTCResult(vin=res.vin, vout=vout2, vdd=self.vdd, back_gate_bias=0.0)
