"""Analog circuit substrate: DC solvers and the configurable gate structures.

This layer regenerates the paper's circuit-level evidence (Figs. 3-5) from
the compact device models.  It is intentionally small: the polymorphic
fabric only ever uses static complementary topologies, so a full nodal
simulator is unnecessary (see ARCHITECTURE.md).
"""

from repro.circuits.dc import (
    bisect_balance,
    gain_peak,
    output_swing,
    series_pair_current,
    solve_output,
    switching_threshold,
)
from repro.circuits.gates import (
    ConfigurableInverter,
    ConfigurableNAND2,
    TristateDriver,
    VTCResult,
    lower_fig4_function,
)

__all__ = [
    "bisect_balance",
    "gain_peak",
    "output_swing",
    "series_pair_current",
    "solve_output",
    "switching_threshold",
    "ConfigurableInverter",
    "ConfigurableNAND2",
    "TristateDriver",
    "VTCResult",
    "lower_fig4_function",
]
