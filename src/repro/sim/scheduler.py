"""Event-driven logic simulator core.

The substrate every configured fabric design runs on.  Design points:

* **Discrete integer time** (arbitrary units; the fabric compiler uses
  picoseconds).  Determinism is guaranteed by a monotone sequence number
  tie-breaker in the event queue.
* **Multi-driver nets with tristate resolution** — fabric input lines are
  shared by the 3-state drivers of neighbouring cells (Fig. 8), so every
  net resolves its drivers through :func:`repro.sim.values.resolve`.
* **Inertial delay** — a gate whose output is re-scheduled before a pending
  transition matures cancels the stale transition (classic inertial model).
  This is what lets asynchronous feedback circuits (the paper's Section 4
  state elements) settle instead of accumulating ghost events.
* **Oscillation guard** — a configurable cap on events processed at a
  single timestamp; a genuine combinational oscillation (e.g. an unstable
  asynchronous state machine) raises :class:`OscillationError` rather than
  hanging.

The hot loop is plain-Python but allocation-light: events are tuples in a
heapq, logic values are small ints, and nets carry slots-only state.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.sim.limits import SimLimits
from repro.sim.values import VALUE_NAMES, X, Z, resolve


class OscillationError(RuntimeError):
    """Raised when a net keeps toggling without time advancing."""


class Net:
    """A named signal wire with tristate multi-driver resolution."""

    __slots__ = ("name", "value", "drivers", "fanout", "history")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Resolved value currently on the wire.
        self.value: int = X
        #: Contribution of each driver, keyed by driver identity.
        self.drivers: dict[object, int] = {}
        #: Gates whose inputs include this net.
        self.fanout: list[Gate] = []
        #: Recorded (time, value) transitions (filled when traced).
        self.history: list[tuple[int, int]] | None = None

    def resolved(self) -> int:
        """Resolve all driver contributions; undriven nets float to Z."""
        if not self.drivers:
            return Z
        if len(self.drivers) == 1:
            return next(iter(self.drivers.values()))
        return resolve(self.drivers.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name}={VALUE_NAMES[self.value]})"


class Gate:
    """Base class for simulator primitives.

    Subclasses implement :meth:`evaluate` over the current input values.
    ``delay`` is the inertial propagation delay in simulator time units and
    must be >= 1 so feedback loops advance time.
    """

    __slots__ = ("name", "inputs", "output", "delay", "_pending")

    def __init__(self, name: str, inputs: list[Net], output: Net, delay: int = 1) -> None:
        if delay < 1:
            raise ValueError(f"gate {name!r}: delay must be >= 1, got {delay}")
        self.name = name
        self.inputs = list(inputs)
        self.output = output
        self.delay = int(delay)
        #: Sequence number of the newest scheduled output event (for
        #: inertial cancellation); stale events are dropped lazily.
        self._pending: int = -1

    def evaluate(self) -> int:  # pragma: no cover - abstract
        """Compute the output value from the current input values."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ins = ",".join(n.name for n in self.inputs)
        return f"{type(self).__name__}({self.name}: {ins} -> {self.output.name})"


class Simulator:
    """Owns the netlist and the event wheel.

    Typical use::

        sim = Simulator()
        a, b, y = sim.net("a"), sim.net("b"), sim.net("y")
        sim.add(Nand("g", [a, b], y, delay=2))
        sim.drive(a, ONE)
        sim.drive(b, ONE)
        sim.run(until=100)
        assert y.value == ZERO
    """

    #: Legacy default for the oscillation guard; still honoured when no
    #: explicit :class:`SimLimits` is supplied (subclasses may override).
    MAX_EVENTS_PER_TIME = 10_000

    def __init__(self, limits: SimLimits | None = None) -> None:
        self.limits = limits or SimLimits(
            max_events_per_time=self.MAX_EVENTS_PER_TIME
        )
        self.nets: dict[str, Net] = {}
        self.gates: list[Gate] = []
        self.now: int = 0
        self._queue: list[tuple[int, int, Gate | None, Net, object, int]] = []
        self._seq = 0
        self._traced: set[str] = set()
        self._events_at_now = 0
        self._initialised = False

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def net(self, name: str) -> Net:
        """Create (or fetch) the net called ``name``."""
        n = self.nets.get(name)
        if n is None:
            n = Net(name)
            self.nets[name] = n
        return n

    def add(self, gate: Gate) -> Gate:
        """Register a gate; its output net gains this gate as a driver."""
        self.gates.append(gate)
        for n in gate.inputs:
            n.fanout.append(gate)
        # Claim a driver slot on the output immediately so multi-driver
        # resolution sees all contenders from time zero.
        gate.output.drivers.setdefault(gate, X)
        return gate

    def trace(self, *names: str) -> None:
        """Start recording (time, value) transitions on the named nets."""
        for name in names:
            net = self.net(name)
            if net.history is None:
                net.history = [(self.now, net.value)]
            self._traced.add(name)

    def trace_all(self) -> None:
        """Trace every net currently in the design."""
        self.trace(*self.nets.keys())

    # ------------------------------------------------------------------
    # Stimulus
    # ------------------------------------------------------------------
    def drive(self, net: Net | str, value: int, at: int | None = None, key: object = "ext") -> None:
        """Drive ``net`` with ``value`` from the external driver ``key``.

        ``at`` defaults to the current time.  Driving ``Z`` releases the
        line (other drivers, if any, take over).
        """
        net = self.net(net) if isinstance(net, str) else net
        t = self.now if at is None else int(at)
        if t < self.now:
            raise ValueError(f"cannot schedule in the past: {t} < now={self.now}")
        self._push(t, None, net, key, value)

    def stimulus(self, net: Net | str, waveform: Iterable[tuple[int, int]], key: object = "ext") -> None:
        """Apply a list of (time, value) pairs to a net."""
        for t, v in waveform:
            self.drive(net, v, at=t, key=key)

    def clock(self, net: Net | str, period: int, until: int, start: int = 0, first: int = 0) -> None:
        """Generate a square clock on ``net``: half-period toggles.

        ``first`` is the initial level at ``start``; the net toggles every
        ``period // 2`` units until ``until``.
        """
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        level = first
        t = start
        while t <= until:
            self.drive(net, level, at=t)
            level ^= 1
            t += period // 2

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def _push(self, t: int, gate: Gate | None, net: Net, key: object, value: int) -> None:
        self._seq += 1
        # seq is unique, so the payload tuple is never compared.
        heapq.heappush(self._queue, (t, self._seq, (gate, net, key, value)))
        if gate is not None:
            gate._pending = self._seq

    def _schedule_gate(self, gate: Gate) -> None:
        """Evaluate a gate now and schedule its output with inertial delay."""
        new = gate.evaluate()
        # Skip if the output driver already carries this value and nothing
        # is pending — avoids event storms on reconvergent fanout.
        cur = gate.output.drivers.get(gate, X)
        if new == cur and gate._pending < 0:
            return
        self._push(self.now + gate.delay, gate, gate.output, gate, new)

    def _apply(self, gate: Gate | None, net: Net, key: object, value: int, seq: int) -> None:
        if gate is not None:
            if gate._pending != seq:
                return  # superseded by a newer scheduling: inertial cancel
            gate._pending = -1
        net.drivers[key] = value
        resolved = net.resolved()
        if resolved == net.value:
            return
        net.value = resolved
        self._events_at_now += 1
        if self._events_at_now > self.limits.max_events_per_time:
            raise OscillationError(
                f"net {net.name!r} still toggling after "
                f"{self.limits.max_events_per_time} events at t={self.now}; "
                "combinational loop without settling?"
            )
        if net.history is not None:
            net.history.append((self.now, resolved))
        for g in net.fanout:
            self._schedule_gate(g)

    def initialise(self) -> None:
        """Evaluate every gate once so outputs leave their X state.

        Called automatically by the first :meth:`run`.
        """
        if self._initialised:
            return
        self._initialised = True
        for g in self.gates:
            self._schedule_gate(g)

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Process events up to (and including) time ``until``.

        Returns the number of events applied.  With ``until=None`` the
        queue is drained completely (the design must quiesce).
        ``max_events`` defaults to the simulator's :class:`SimLimits`.
        """
        if max_events is None:
            max_events = self.limits.max_events
        self.initialise()
        count = 0
        while self._queue:
            t = self._queue[0][0]
            if until is not None and t > until:
                break
            item = heapq.heappop(self._queue)
            t, seq = item[0], item[1]
            gate, net, key, value = item[2]
            if t != self.now:
                self.now = t
                self._events_at_now = 0
            self._apply(gate, net, key, value, seq)
            count += 1
            if count > max_events:
                raise OscillationError(
                    f"exceeded {max_events} events; design does not quiesce"
                )
        if until is not None and self.now < until:
            self.now = until
        return count

    def run_to_quiescence(self, max_time: int | None = None) -> int:
        """Drain all pending events; error if activity passes ``max_time``.

        ``max_time`` defaults to the simulator's :class:`SimLimits`.
        """
        if max_time is None:
            max_time = self.limits.max_time
        self.initialise()
        count = 0
        while self._queue:
            if self._queue[0][0] > max_time:
                raise OscillationError(
                    f"activity beyond t={max_time}; design does not quiesce"
                )
            count += self.run(until=self._queue[0][0])
        return count

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def value(self, net: Net | str) -> int:
        """Current resolved value of a net."""
        net = self.net(net) if isinstance(net, str) else net
        return net.value

    def values(self, names: Iterable[str]) -> list[int]:
        """Current values of several nets, in order."""
        return [self.net(n).value for n in names]

    def history(self, net: Net | str) -> list[tuple[int, int]]:
        """Recorded transitions of a traced net."""
        net = self.net(net) if isinstance(net, str) else net
        if net.history is None:
            raise ValueError(f"net {net.name!r} is not traced; call trace() first")
        return list(net.history)

    def pending_events(self) -> int:
        """Number of events still queued (including superseded ones)."""
        return len(self._queue)
