"""Event-driven four-valued logic simulator.

The substrate all configured fabric designs execute on: discrete-time event
wheel with inertial delays, tristate multi-driver nets, waveform capture,
and hazard analysis.
"""

from repro.sim.hazards import Glitch, count_spurious_transitions, find_glitches, is_hazard_free
from repro.sim.primitives import (
    AndGate,
    BufGate,
    CElementGate,
    ConstGate,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    TableGate,
    TristateGate,
    XorGate,
)
from repro.sim.limits import DEFAULT_LIMITS, SimLimits
from repro.sim.scheduler import Gate, Net, OscillationError, Simulator
from repro.sim.values import (
    ALL_VALUES,
    ONE,
    VALUE_NAMES,
    X,
    Z,
    ZERO,
    and_,
    format_value,
    from_bool,
    invert,
    is_defined,
    nand,
    or_,
    resolve,
    to_bool,
    xor2,
)
from repro.sim.waveform import Edge, TraceSet, Waveform

__all__ = [
    "Glitch",
    "count_spurious_transitions",
    "find_glitches",
    "is_hazard_free",
    "AndGate",
    "BufGate",
    "CElementGate",
    "ConstGate",
    "NandGate",
    "NorGate",
    "NotGate",
    "OrGate",
    "TableGate",
    "TristateGate",
    "XorGate",
    "DEFAULT_LIMITS",
    "SimLimits",
    "Gate",
    "Net",
    "OscillationError",
    "Simulator",
    "ALL_VALUES",
    "ONE",
    "VALUE_NAMES",
    "X",
    "Z",
    "ZERO",
    "and_",
    "format_value",
    "from_bool",
    "invert",
    "is_defined",
    "nand",
    "or_",
    "resolve",
    "to_bool",
    "xor2",
    "Edge",
    "TraceSet",
    "Waveform",
]
