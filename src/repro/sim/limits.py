"""Simulation resource limits, shared by every backend.

Historically the oscillation guard (events allowed at one timestamp), the
total event cap and the quiescence horizon were three per-call magic
numbers scattered across :class:`repro.sim.scheduler.Simulator` call
sites.  :class:`SimLimits` gathers them into one immutable config that is
threaded through the event scheduler *and* the netlist backends
(:mod:`repro.netlist.backends`), so a design runs under the same safety
envelope no matter which engine evaluates it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SimLimits:
    """Caps that turn a non-quiescing design into an error, not a hang.

    Attributes
    ----------
    max_events_per_time:
        Events applied at a single timestamp before the scheduler declares
        a combinational oscillation (:class:`OscillationError`).
    max_events:
        Total events one :meth:`Simulator.run` call may apply.
    max_time:
        Simulated-time horizon for :meth:`Simulator.run_to_quiescence`;
        activity beyond it means the design does not settle.
    """

    max_events_per_time: int = 10_000
    max_events: int = 5_000_000
    max_time: int = 10_000_000

    def __post_init__(self) -> None:
        for name in ("max_events_per_time", "max_events", "max_time"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 1:
                raise ValueError(f"{name} must be a positive int, got {v!r}")


#: Shared default instance (SimLimits is immutable, so this is safe).
DEFAULT_LIMITS = SimLimits()
