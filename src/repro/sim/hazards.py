"""Hazard detection on simulation traces.

The paper's Section 4.1 notes that "current programmable systems tend not
[to] support hazard-free logic implementations [47]" — one of the reasons
FPGAs are poor hosts for asynchronous circuits.  The polymorphic fabric's
two-level NAND rows allow hazard-free covers (consensus terms synthesised
by :mod:`repro.synth.asyncfsm`), and this module provides the instrument
that *checks* the claim: it scans traces for glitch pulses and classifies
static hazards.

A *static-1 hazard* is a momentary 0-pulse on a signal whose initial and
final values are both 1 across an input transition; a *static-0 hazard* is
the dual.  Pulses at a signal's steady level narrower than a threshold are
reported as glitches regardless of classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.values import ONE, ZERO
from repro.sim.waveform import Waveform


@dataclass(frozen=True, slots=True)
class Glitch:
    """A transient pulse judged spurious.

    Attributes
    ----------
    net:
        Signal name.
    start:
        Pulse start time.
    width:
        Pulse width in simulation time units.
    kind:
        ``"static-1"`` (0-pulse on a 1 signal), ``"static-0"`` (1-pulse on
        a 0 signal).
    """

    net: str
    start: int
    width: int
    kind: str


def find_glitches(wave: Waveform, window: tuple[int, int], max_width: int) -> list[Glitch]:
    """Spurious pulses on ``wave`` inside ``window`` narrower than ``max_width``.

    The window should bracket a single input transition: the signal's value
    at the window edges defines its intended steady level, and any
    excursion away from that level and back, narrower than ``max_width``,
    is reported.
    """
    t0, t1 = window
    if t1 <= t0:
        raise ValueError(f"window must be increasing, got {window}")
    v_start = wave.value_at(t0)
    v_end = wave.value_at(t1)
    out: list[Glitch] = []
    if v_start != v_end or v_start not in (ZERO, ONE):
        return out  # a genuine transition or undefined levels: not a hazard
    steady = v_start
    excursion = ONE if steady == ZERO else ZERO
    for start, width in wave.pulses(level=excursion):
        if start >= t0 and start + width <= t1 and width <= max_width:
            kind = "static-1" if steady == ONE else "static-0"
            out.append(Glitch(net=wave.name, start=start, width=width, kind=kind))
    return out


def is_hazard_free(
    wave: Waveform,
    windows: list[tuple[int, int]],
    max_width: int,
) -> bool:
    """True when no window shows a glitch on ``wave``."""
    return all(not find_glitches(wave, w, max_width) for w in windows)


def count_spurious_transitions(wave: Waveform, expected_edges: int) -> int:
    """Transitions beyond the functionally-expected count.

    A blunt instrument for power-oriented comparisons: every transition
    above ``expected_edges`` is glitch energy.
    """
    if expected_edges < 0:
        raise ValueError(f"expected_edges must be >= 0, got {expected_edges}")
    return max(0, wave.toggle_count() - expected_edges)
