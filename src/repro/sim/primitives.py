"""Simulator gate primitives.

The behavioural vocabulary the fabric compiles into:

* :class:`NandGate` — the n-input NAND row of the polymorphic cell (Fig. 7);
* :class:`NotGate` / :class:`BufGate` — the inverting / non-inverting
  configurations of the row output driver (Fig. 5);
* :class:`TristateGate` — the same driver with its output enable exposed as
  a net, for shared-line arbitration;
* :class:`ConstGate` — a row configured as constant 0/1 (the Fig. 4 table's
  last two rows);
* :class:`TableGate` — arbitrary truth table, used by the synthesis layer's
  reference models and by behavioural test doubles;
* :class:`CElementGate` — behavioural Muller C-element (the gate-level
  NAND decomposition lives in :mod:`repro.synth.macros`; this primitive is
  the golden reference it is checked against).
"""

from __future__ import annotations

from repro.sim.scheduler import Gate, Net
from repro.sim.values import (
    ONE,
    X,
    Z,
    ZERO,
    and_,
    from_bool,
    invert,
    is_defined,
    nand,
    or_,
    to_bool,
    xor2,
)


class NandGate(Gate):
    """n-input NAND (the fabric's product-term row)."""

    __slots__ = ()

    def evaluate(self) -> int:
        return nand(n.value for n in self.inputs)


class AndGate(Gate):
    """n-input AND."""

    __slots__ = ()

    def evaluate(self) -> int:
        return and_(n.value for n in self.inputs)


class OrGate(Gate):
    """n-input OR."""

    __slots__ = ()

    def evaluate(self) -> int:
        return or_(n.value for n in self.inputs)


class NorGate(Gate):
    """n-input NOR."""

    __slots__ = ()

    def evaluate(self) -> int:
        return invert(or_(n.value for n in self.inputs))


class XorGate(Gate):
    """2-input XOR."""

    __slots__ = ()

    def __init__(self, name: str, inputs: list[Net], output: Net, delay: int = 1) -> None:
        if len(inputs) != 2:
            raise ValueError(f"XorGate {name!r} needs exactly 2 inputs, got {len(inputs)}")
        super().__init__(name, inputs, output, delay)

    def evaluate(self) -> int:
        return xor2(self.inputs[0].value, self.inputs[1].value)


class NotGate(Gate):
    """Inverter (driver in INVERT mode)."""

    __slots__ = ()

    def __init__(self, name: str, inputs: list[Net], output: Net, delay: int = 1) -> None:
        if len(inputs) != 1:
            raise ValueError(f"NotGate {name!r} needs exactly 1 input, got {len(inputs)}")
        super().__init__(name, inputs, output, delay)

    def evaluate(self) -> int:
        return invert(self.inputs[0].value)


class BufGate(Gate):
    """Non-inverting buffer (driver in BUFFER mode / data feed-through)."""

    __slots__ = ()

    def __init__(self, name: str, inputs: list[Net], output: Net, delay: int = 1) -> None:
        if len(inputs) != 1:
            raise ValueError(f"BufGate {name!r} needs exactly 1 input, got {len(inputs)}")
        super().__init__(name, inputs, output, delay)

    def evaluate(self) -> int:
        v = self.inputs[0].value
        return v if is_defined(v) else X


class TristateGate(Gate):
    """Driver with an enable net: inputs = [data, enable].

    Output follows data (optionally inverted) while enable is 1, floats (Z)
    while enable is 0, and is X for an undefined enable.
    """

    __slots__ = ("inverting",)

    def __init__(
        self,
        name: str,
        inputs: list[Net],
        output: Net,
        delay: int = 1,
        inverting: bool = False,
    ) -> None:
        if len(inputs) != 2:
            raise ValueError(
                f"TristateGate {name!r} needs [data, enable] inputs, got {len(inputs)}"
            )
        super().__init__(name, inputs, output, delay)
        self.inverting = bool(inverting)

    def evaluate(self) -> int:
        data, enable = self.inputs[0].value, self.inputs[1].value
        if enable == ZERO:
            return Z
        if enable != ONE:
            return X
        if not is_defined(data):
            return X
        return invert(data) if self.inverting else data


class ConstGate(Gate):
    """Constant driver (rows configured as fixed 0 / 1 in the Fig. 4 table)."""

    __slots__ = ("constant",)

    def __init__(self, name: str, output: Net, constant: int, delay: int = 1) -> None:
        if constant not in (ZERO, ONE):
            raise ValueError(f"ConstGate {name!r}: constant must be 0 or 1, got {constant}")
        super().__init__(name, [], output, delay)
        self.constant = constant

    def evaluate(self) -> int:
        return self.constant


class TableGate(Gate):
    """Arbitrary combinational function given as a truth-table list.

    ``table[i]`` is the output bit for the input index whose bit k is the
    value of ``inputs[k]`` (inputs[0] is the least-significant bit).  Any
    X/Z input makes the output X (pessimistic).
    """

    __slots__ = ("table",)

    def __init__(self, name: str, inputs: list[Net], output: Net, table, delay: int = 1) -> None:
        super().__init__(name, inputs, output, delay)
        expected = 1 << len(inputs)
        self.table = [from_bool(bool(b)) for b in table]
        if len(self.table) != expected:
            raise ValueError(
                f"TableGate {name!r}: table needs {expected} entries for "
                f"{len(inputs)} inputs, got {len(self.table)}"
            )

    def evaluate(self) -> int:
        idx = 0
        for k, n in enumerate(self.inputs):
            v = n.value
            if not is_defined(v):
                return X
            idx |= to_bool(v) << k
        return self.table[idx]


class CElementGate(Gate):
    """Behavioural Muller C-element: c = a.b + a.c' + b.c' (paper Section 4.1).

    Output follows the inputs when they agree and holds its previous value
    when they differ.  From an all-X start the element stays X until the
    inputs first agree — matching the gate-level realisation's behaviour
    after its feedback loop settles.
    """

    __slots__ = ("_state",)

    def __init__(
        self,
        name: str,
        inputs: list[Net],
        output: Net,
        delay: int = 1,
        init: int = X,
    ) -> None:
        if len(inputs) != 2:
            raise ValueError(f"CElementGate {name!r} needs exactly 2 inputs, got {len(inputs)}")
        super().__init__(name, inputs, output, delay)
        #: ``init`` models a power-on reset of the element's keeper —
        #: micropipeline control chains start with all C-elements cleared.
        self._state: int = init

    def evaluate(self) -> int:
        a, b = self.inputs[0].value, self.inputs[1].value
        if is_defined(a) and is_defined(b) and a == b:
            self._state = a
        return self._state


class EventLatchGate(Gate):
    """Behavioural capture-pass latch (Sutherland's ECSE, paper Fig. 12).

    Inputs = [din, req, ack].  Transparent while the two-phase request and
    acknowledge phases agree; holds while they differ (a request event
    captures, an acknowledge event releases).  The gate-level fabric
    realisation is :func:`repro.synth.macros.ecse_pair`; this primitive is
    its golden reference and the data path of the behavioural
    micropipeline.
    """

    __slots__ = ("_state",)

    def __init__(
        self,
        name: str,
        inputs: list[Net],
        output: Net,
        delay: int = 1,
        init: int = X,
    ) -> None:
        if len(inputs) != 3:
            raise ValueError(
                f"EventLatchGate {name!r} needs [din, req, ack] inputs, got {len(inputs)}"
            )
        super().__init__(name, inputs, output, delay)
        self._state: int = init

    def evaluate(self) -> int:
        din, req, ack = (n.value for n in self.inputs)
        if is_defined(req) and is_defined(ack) and req == ack and is_defined(din):
            self._state = din
        return self._state
