"""Waveform capture and edge queries over simulator traces.

A :class:`Waveform` wraps the per-net transition history recorded by
:class:`repro.sim.scheduler.Simulator` and answers the questions the
benches and the asynchronous-logic checkers ask: value at a time, edges in
a direction, pulse widths, event counts, and alignment of two signals
(request/acknowledge handshakes).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.sim.scheduler import Simulator
from repro.sim.values import ONE, VALUE_NAMES, X, ZERO


@dataclass(frozen=True, slots=True)
class Edge:
    """A value transition on a signal.

    Attributes
    ----------
    time:
        Simulation time of the transition.
    old, new:
        Values before and after.
    """

    time: int
    old: int
    new: int

    @property
    def rising(self) -> bool:
        """True for a 0 -> 1 transition."""
        return self.old == ZERO and self.new == ONE

    @property
    def falling(self) -> bool:
        """True for a 1 -> 0 transition."""
        return self.old == ONE and self.new == ZERO

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{VALUE_NAMES[self.old]}->{VALUE_NAMES[self.new]}@{self.time}"


class Waveform:
    """Transition record of one net."""

    def __init__(self, name: str, history: list[tuple[int, int]]) -> None:
        self.name = name
        #: (time, value) pairs, time-ascending; first entry is the initial
        #: value.  Sort is stable and by time only so same-time updates keep
        #: their apply order (the last value at a time wins in value_at).
        self.samples = sorted(history, key=lambda s: s[0])
        self._times = [t for t, _ in self.samples]

    def value_at(self, time: int) -> int:
        """Value on the wire at ``time`` (after any transition at that time)."""
        k = bisect_right(self._times, time)
        if k == 0:
            return X
        return self.samples[k - 1][1]

    def edges(self) -> list[Edge]:
        """All transitions, in time order."""
        out: list[Edge] = []
        for (t0, v0), (t1, v1) in zip(self.samples, self.samples[1:]):
            del t0
            if v1 != v0:
                out.append(Edge(time=t1, old=v0, new=v1))
        return out

    def rising_edges(self) -> list[int]:
        """Times of all 0 -> 1 transitions."""
        return [e.time for e in self.edges() if e.rising]

    def falling_edges(self) -> list[int]:
        """Times of all 1 -> 0 transitions."""
        return [e.time for e in self.edges() if e.falling]

    def toggle_count(self) -> int:
        """Number of defined-level transitions (activity/power proxy)."""
        return sum(1 for e in self.edges() if e.rising or e.falling)

    def pulses(self, level: int = ONE) -> list[tuple[int, int]]:
        """(start, width) of each maximal interval at ``level``.

        The final interval is open-ended and omitted (its width is unknown
        at trace end).
        """
        out: list[tuple[int, int]] = []
        start: int | None = None
        for t, v in self.samples:
            if v == level and start is None:
                start = t
            elif v != level and start is not None:
                out.append((start, t - start))
                start = None
        return out

    def final_value(self) -> int:
        """Last recorded value."""
        return self.samples[-1][1] if self.samples else X


class TraceSet:
    """All traced nets of a finished simulation, ready for queries."""

    def __init__(self, sim: Simulator) -> None:
        self._wave: dict[str, Waveform] = {}
        for name, net in sim.nets.items():
            if net.history is not None:
                self._wave[name] = Waveform(name, net.history)

    def __getitem__(self, name: str) -> Waveform:
        try:
            return self._wave[name]
        except KeyError:
            known = ", ".join(sorted(self._wave)) or "(none)"
            raise KeyError(f"net {name!r} was not traced; traced nets: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._wave

    def names(self) -> list[str]:
        """All traced net names, sorted."""
        return sorted(self._wave)

    def sample_bus(self, names: list[str], time: int) -> list[int]:
        """Values of an ordered list of nets at ``time`` (LSB-first buses)."""
        return [self[n].value_at(time) for n in names]

    def bus_as_int(self, names: list[str], time: int) -> int:
        """Interpret an LSB-first bus sample as an unsigned integer.

        Raises ``ValueError`` if any bit is X/Z at that time.
        """
        total = 0
        for k, n in enumerate(names):
            v = self[n].value_at(time)
            if v == ONE:
                total |= 1 << k
            elif v != ZERO:
                raise ValueError(
                    f"bus bit {n!r} is {VALUE_NAMES[v]} at t={time}; not a clean integer"
                )
        return total
