"""Four-valued logic for the event-driven simulator.

The polymorphic fabric's row outputs are 3-state drivers onto shared input
lines (Figs. 5, 7, 8), so the simulator needs high-impedance and unknown
values in addition to 0/1:

* ``ZERO`` / ``ONE`` — driven logic levels,
* ``Z``  — undriven (all drivers on the line are in their off state),
* ``X``  — unknown (uninitialised state, or a drive conflict).

Values are plain ``int`` constants (not an Enum) because the simulator's
inner loop touches them constantly and attribute access on Enum members is
several times slower.
"""

from __future__ import annotations

ZERO: int = 0
ONE: int = 1
X: int = 2
Z: int = 3

#: Human-readable names, indexed by value.
VALUE_NAMES: tuple[str, str, str, str] = ("0", "1", "X", "Z")

#: All legal values, for validation.
ALL_VALUES: frozenset[int] = frozenset((ZERO, ONE, X, Z))


def is_defined(v: int) -> bool:
    """True for a driven 0/1 level."""
    return v == ZERO or v == ONE


def to_bool(v: int) -> bool:
    """Convert a defined value to bool; raises on X/Z."""
    if v == ZERO:
        return False
    if v == ONE:
        return True
    raise ValueError(f"value {VALUE_NAMES[v]} has no boolean interpretation")


def from_bool(b: bool) -> int:
    """Convert a bool (or 0/1 int) to a logic value."""
    return ONE if b else ZERO


def invert(v: int) -> int:
    """Logical NOT with X/Z propagation (Z input reads as unknown)."""
    if v == ZERO:
        return ONE
    if v == ONE:
        return ZERO
    return X


def nand(values) -> int:
    """n-input NAND with the standard pessimistic X semantics.

    Any 0 input forces the output to 1 (the controlling value) regardless of
    X/Z on other inputs; otherwise any X/Z input makes the output X; all-1
    inputs give 0.

    An empty input list yields 1: this is the *fabric* convention, not the
    algebraic NOT(AND()) = 0 — a NAND row with no enabled crosspoints has no
    pull-down path at all, so its output rests at the pulled-up level
    (Fig. 4's constant-1 configuration).
    """
    saw_unknown = False
    saw_any = False
    for v in values:
        saw_any = True
        if v == ZERO:
            return ONE
        if v != ONE:
            saw_unknown = True
    if not saw_any:
        return ONE
    return X if saw_unknown else ZERO


def and_(values) -> int:
    """n-input AND with pessimistic X semantics."""
    return invert(nand(values))


def or_(values) -> int:
    """n-input OR: any 1 dominates; else X/Z poisons; else 0."""
    saw_unknown = False
    for v in values:
        if v == ONE:
            return ONE
        if v != ZERO:
            saw_unknown = True
    return X if saw_unknown else ZERO


def xor2(a: int, b: int) -> int:
    """2-input XOR; X/Z on either input poisons the output."""
    if is_defined(a) and is_defined(b):
        return ONE if a != b else ZERO
    return X


def resolve(drivers) -> int:
    """Resolve multiple driver contributions on a shared line.

    Fabric input lines are driven by the 3-state drivers of up to two
    neighbouring cells (Fig. 8); the resolution rule is the usual tristate
    bus: all-Z lines float (Z), a single driven value wins, and conflicting
    driven values produce X.
    """
    out = Z
    for v in drivers:
        if v == Z:
            continue
        if out == Z:
            out = v
        elif out != v:
            return X
    return out


def format_value(v: int) -> str:
    """Printable form of a value, for traces and error messages."""
    try:
        return VALUE_NAMES[v]
    except (IndexError, TypeError):
        return f"?{v!r}"
