"""Sutherland micropipelines (paper Fig. 11).

Three complementary models:

* :func:`micropipeline_netlist` — the structural description: the Fig. 11
  control chain of two-input Muller C-elements (one input inverted, all
  elements cleared at power-on), matched delay buffers, and one
  event-controlled storage element per data bit per stage, emitted as a
  backend-neutral :class:`repro.netlist.Netlist`.  Build once, elaborate
  on any :class:`repro.netlist.SimBackend`.
* :class:`MicropipelineSim` — the netlist elaborated onto the event
  simulator with token-level push/drain/observe helpers.  Tokens are
  injected by toggling the input request and are individually tracked.
* :class:`PipelineModel` — the standard token-flow performance model of a
  micropipeline (forward latency per stage, reverse latency per stage),
  giving throughput/latency/occupancy curves for the Fig. 11 bench without
  gate-level cost.

The gate-level model is validated against the token model in the tests:
measured cycle time matches the analytic ``forward + reverse`` latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.backends import EventBackend
from repro.netlist.ir import Netlist
from repro.sim.limits import SimLimits
from repro.sim.values import ONE, ZERO, is_defined


def micropipeline_netlist(
    n_stages: int,
    data_width: int = 4,
    c_delay: int = 2,
    latch_delay: int = 2,
    matched_delay: int = 4,
    auto_sink: bool = True,
) -> tuple[Netlist, dict[str, object]]:
    """Emit the Fig. 11 n-stage two-phase micropipeline as a netlist.

    Returns ``(netlist, ports)`` where ``ports`` names the interface nets:
    ``req_in``, ``data_in`` (list), ``c`` (per-stage C-element outputs),
    ``ack_out``, ``req_out`` and ``data_out`` (list).  With ``auto_sink``
    the output request is acknowledged immediately by a 1-delay buffer (a
    consumer that is never the bottleneck); without it, ``ack_out`` is a
    free input for back-pressure experiments.
    """
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if data_width < 1:
        raise ValueError(f"data_width must be >= 1, got {data_width}")
    nl = Netlist(name=f"micropipeline{n_stages}x{data_width}")
    req_in = nl.add_input("req_in")
    data_in = [nl.add_input(f"din[{b}]") for b in range(data_width)]
    c = [nl.net(f"c[{i}]") for i in range(n_stages)]
    ack_out = nl.net("ack_out")

    # Control chain: c[i] = C(delayed req from stage i-1, NOT c[i+1]).
    stage_req = req_in
    stage_reqs = []
    for i in range(n_stages):
        delayed = nl.add("buf", f"delay[{i}]", [stage_req], f"rd[{i}]", delay=matched_delay)
        nxt = c[i + 1] if i + 1 < n_stages else ack_out
        inv = nl.add("not", f"ackinv[{i}]", [nxt], f"ai[{i}]")
        nl.add("celement", f"c[{i}]", [delayed, inv], c[i], delay=c_delay, init=ZERO)
        stage_reqs.append(delayed)
        stage_req = c[i]
    req_out = c[-1]
    if auto_sink:
        nl.add("buf", "sink", [req_out], ack_out, delay=1)
    else:
        nl.add_input("ack_out")

    # Data path: stage i latches din when c[i] toggles (capture) and
    # releases when the next stage has taken it.
    prev = data_in
    stage_data = []
    for i in range(n_stages):
        nxt_ack = c[i + 1] if i + 1 < n_stages else ack_out
        outs = []
        for b in range(data_width):
            out = nl.add(
                "eventlatch", f"lat[{i}][{b}]",
                [prev[b], c[i], nxt_ack], f"d[{i}][{b}]",
                delay=latch_delay, init=ZERO,
            )
            outs.append(out)
        stage_data.append(outs)
        prev = outs
    for b in range(data_width):
        nl.add_output(prev[b])
    nl.add_output(req_out)
    nl.add_output(ack_out)
    ports: dict[str, object] = {
        "req_in": req_in.name,
        "data_in": [n.name for n in data_in],
        "c": [n.name for n in c],
        "ack_out": ack_out.name,
        "req_out": req_out.name,
        "data_out": [n.name for n in prev],
        "stage_reqs": [n.name for n in stage_reqs],
    }
    return nl, ports


class MicropipelineSim:
    """Gate-level n-stage two-phase micropipeline FIFO."""

    def __init__(
        self,
        n_stages: int,
        data_width: int = 4,
        c_delay: int = 2,
        latch_delay: int = 2,
        matched_delay: int = 4,
    ) -> None:
        self.n_stages = int(n_stages)
        self.data_width = int(data_width)
        #: The design as data: built once, elaborated below onto the
        #: event backend (the netlist can be handed to any SimBackend).
        self.netlist, self.ports = micropipeline_netlist(
            n_stages,
            data_width=data_width,
            c_delay=c_delay,
            latch_delay=latch_delay,
            matched_delay=matched_delay,
        )
        self.sim = EventBackend(SimLimits()).elaborate(self.netlist)
        sim = self.sim

        #: External request / data-in; acknowledged on ack_in.
        self.req_in = sim.net(self.ports["req_in"])
        self.data_in = [sim.net(n) for n in self.ports["data_in"]]
        self.c = [sim.net(n) for n in self.ports["c"]]
        self.ack_out = sim.net(self.ports["ack_out"])  # sink-side acknowledge
        self.stage_reqs = [sim.net(n) for n in self.ports["stage_reqs"]]
        #: The last stage's request is the FIFO's output request.
        self.req_out = self.c[-1]
        self.stage_data = [
            [sim.net(f"d[{i}][{b}]") for b in range(data_width)]
            for i in range(n_stages)
        ]
        self.data_out = [sim.net(n) for n in self.ports["data_out"]]

        sim.trace("req_in", "ack_out", *(n.name for n in self.c))
        self._req_phase = 0
        self._ack_seen = 0
        sim.drive(self.req_in, ZERO, at=0)
        for b in range(data_width):
            sim.drive(self.data_in[b], ZERO, at=0)
        sim.run(until=20)

    # ------------------------------------------------------------------
    # Token-level operation
    # ------------------------------------------------------------------
    def _wait_ack(self, timeout: int) -> int:
        """Run until ack_in (= c[0]) toggles to match the request phase."""
        sim = self.sim
        deadline = sim.now + timeout
        # Two-phase: c[0] acknowledges the producer by matching req phase.
        while sim.now < deadline:
            sim.run(until=min(sim.now + 5, deadline))
            v = self.c[0].value
            if is_defined(v) and v == self._req_phase:
                return sim.now
        raise TimeoutError(
            f"stage-0 acknowledge did not arrive within {timeout} units"
        )

    def push(self, value: int, timeout: int = 10_000) -> int:
        """Send one token carrying ``value``; returns the accept time."""
        if not 0 <= value < (1 << self.data_width):
            raise ValueError(
                f"value must fit in {self.data_width} bits, got {value!r}"
            )
        sim = self.sim
        for b in range(self.data_width):
            sim.drive(self.data_in[b], ONE if (value >> b) & 1 else ZERO)
        self._req_phase ^= 1
        sim.drive(self.req_in, self._req_phase)
        return self._wait_ack(timeout)

    def drain(self, dt: int = 2_000) -> None:
        """Let in-flight tokens reach the output."""
        self.sim.run(until=self.sim.now + dt)

    def output_value(self) -> int:
        """Integer currently on the FIFO output."""
        total = 0
        for b, net in enumerate(self.data_out):
            if net.value == ONE:
                total |= 1 << b
            elif net.value != ZERO:
                raise ValueError(f"output bit {b} undefined")
        return total

    def output_tokens(self) -> int:
        """Tokens that have left the pipeline (output request toggles)."""
        hist = self.sim.history(self.c[-1].name)
        defined = [v for _, v in hist if is_defined(v)]
        toggles = sum(1 for a, b in zip(defined, defined[1:]) if a != b)
        return toggles


@dataclass(frozen=True, slots=True)
class PipelineModel:
    """Token-flow performance model of an n-stage micropipeline.

    Attributes
    ----------
    n_stages:
        FIFO depth.
    forward_ps:
        Per-stage forward latency (C-element + matched delay + latch).
    reverse_ps:
        Per-stage reverse (acknowledge/bubble) latency.
    """

    n_stages: int
    forward_ps: float
    reverse_ps: float

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.forward_ps <= 0 or self.reverse_ps <= 0:
            raise ValueError("latencies must be positive")

    @property
    def cycle_ps(self) -> float:
        """Steady-state interval between tokens at any stage."""
        return self.forward_ps + self.reverse_ps

    @property
    def throughput_per_ns(self) -> float:
        """Tokens per nanosecond at saturation."""
        return 1e3 / self.cycle_ps

    @property
    def empty_latency_ps(self) -> float:
        """Time for one token to traverse an empty pipeline."""
        return self.n_stages * self.forward_ps

    @property
    def max_occupancy(self) -> float:
        """Tokens the ring of stages can hold at speed (one per f+r window)."""
        return self.n_stages * self.forward_ps / self.cycle_ps

    def time_for_tokens(self, k: int) -> float:
        """Time to emit k tokens from saturation start (ps)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self.empty_latency_ps + (k - 1) * self.cycle_ps

    def against_synchronous(self, clock_ps: float, stages: int | None = None) -> float:
        """Throughput ratio micropipeline : clocked pipeline.

        A synchronous pipeline emits one token per worst-case clock; the
        micropipeline emits one per average cycle — the elasticity argument
        of Sutherland that the paper leans on.
        """
        if clock_ps <= 0:
            raise ValueError("clock_ps must be positive")
        del stages
        return clock_ps / self.cycle_ps
