"""Sutherland micropipelines (paper Fig. 11).

Two complementary models:

* :class:`MicropipelineSim` — a gate-level build on the event simulator:
  the Fig. 11 control chain of two-input Muller C-elements (one input
  inverted, all elements cleared at power-on), matched delay buffers, and
  one event-controlled storage element per data bit per stage.  Tokens are
  injected by toggling the input request and are individually tracked.
* :class:`PipelineModel` — the standard token-flow performance model of a
  micropipeline (forward latency per stage, reverse latency per stage),
  giving throughput/latency/occupancy curves for the Fig. 11 bench without
  gate-level cost.

The gate-level model is validated against the token model in the tests:
measured cycle time matches the analytic ``forward + reverse`` latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.primitives import BufGate, CElementGate, EventLatchGate, NotGate
from repro.sim.scheduler import Simulator
from repro.sim.values import ONE, ZERO, is_defined


class MicropipelineSim:
    """Gate-level n-stage two-phase micropipeline FIFO."""

    def __init__(
        self,
        n_stages: int,
        data_width: int = 4,
        c_delay: int = 2,
        latch_delay: int = 2,
        matched_delay: int = 4,
    ) -> None:
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {n_stages}")
        if data_width < 1:
            raise ValueError(f"data_width must be >= 1, got {data_width}")
        self.n_stages = int(n_stages)
        self.data_width = int(data_width)
        self.sim = Simulator()
        sim = self.sim

        #: External request / data-in; acknowledged on ack_in.
        self.req_in = sim.net("req_in")
        self.data_in = [sim.net(f"din[{b}]") for b in range(data_width)]

        # Control chain: c[i] = C(delayed req from stage i-1, NOT c[i+1]).
        # c[n] region is the sink: it acknowledges immediately.
        self.c = [sim.net(f"c[{i}]") for i in range(n_stages)]
        self.ack_out = sim.net("ack_out")  # sink-side acknowledge
        stage_req = self.req_in
        self.stage_reqs = []
        for i in range(n_stages):
            delayed = sim.net(f"rd[{i}]")
            sim.add(BufGate(f"delay[{i}]", [stage_req], delayed, delay=matched_delay))
            inv = sim.net(f"ai[{i}]")
            nxt = self.c[i + 1] if i + 1 < n_stages else self.ack_out
            sim.add(NotGate(f"ackinv[{i}]", [nxt], inv, delay=1))
            sim.add(
                CElementGate(
                    f"c[{i}]", [delayed, inv], self.c[i], delay=c_delay, init=ZERO
                )
            )
            self.stage_reqs.append(delayed)
            stage_req = self.c[i]

        #: The last stage's request is the FIFO's output request.
        self.req_out = self.c[-1]

        # Sink: acknowledge every output request immediately (a consumer
        # that is never the bottleneck).  Tests may instead drive ack_out
        # externally for back-pressure experiments.
        self._auto_sink = sim.add(
            BufGate("sink", [self.req_out], self.ack_out, delay=1)
        )

        # Data path: stage i latches din when c[i] toggles (capture) and
        # releases when the next stage has taken it.
        self.stage_data = []
        prev = self.data_in
        for i in range(n_stages):
            nxt_ack = self.c[i + 1] if i + 1 < n_stages else self.ack_out
            outs = []
            for b in range(data_width):
                out = sim.net(f"d[{i}][{b}]")
                sim.add(
                    EventLatchGate(
                        f"lat[{i}][{b}]",
                        [prev[b], self.c[i], nxt_ack],
                        out,
                        delay=latch_delay,
                        init=ZERO,
                    )
                )
                outs.append(out)
            self.stage_data.append(outs)
            prev = outs
        self.data_out = prev

        sim.trace("req_in", "ack_out", *(n.name for n in self.c))
        self._req_phase = 0
        self._ack_seen = 0
        sim.drive(self.req_in, ZERO, at=0)
        for b in range(data_width):
            sim.drive(self.data_in[b], ZERO, at=0)
        sim.run(until=20)

    # ------------------------------------------------------------------
    # Token-level operation
    # ------------------------------------------------------------------
    def _wait_ack(self, timeout: int) -> int:
        """Run until ack_in (= c[0]) toggles to match the request phase."""
        sim = self.sim
        deadline = sim.now + timeout
        # Two-phase: c[0] acknowledges the producer by matching req phase.
        while sim.now < deadline:
            sim.run(until=min(sim.now + 5, deadline))
            v = self.c[0].value
            if is_defined(v) and v == self._req_phase:
                return sim.now
        raise TimeoutError(
            f"stage-0 acknowledge did not arrive within {timeout} units"
        )

    def push(self, value: int, timeout: int = 10_000) -> int:
        """Send one token carrying ``value``; returns the accept time."""
        if not 0 <= value < (1 << self.data_width):
            raise ValueError(
                f"value must fit in {self.data_width} bits, got {value!r}"
            )
        sim = self.sim
        for b in range(self.data_width):
            sim.drive(self.data_in[b], ONE if (value >> b) & 1 else ZERO)
        self._req_phase ^= 1
        sim.drive(self.req_in, self._req_phase)
        return self._wait_ack(timeout)

    def drain(self, dt: int = 2_000) -> None:
        """Let in-flight tokens reach the output."""
        self.sim.run(until=self.sim.now + dt)

    def output_value(self) -> int:
        """Integer currently on the FIFO output."""
        total = 0
        for b, net in enumerate(self.data_out):
            if net.value == ONE:
                total |= 1 << b
            elif net.value != ZERO:
                raise ValueError(f"output bit {b} undefined")
        return total

    def output_tokens(self) -> int:
        """Tokens that have left the pipeline (output request toggles)."""
        hist = self.sim.history(self.c[-1].name)
        defined = [v for _, v in hist if is_defined(v)]
        toggles = sum(1 for a, b in zip(defined, defined[1:]) if a != b)
        return toggles


@dataclass(frozen=True, slots=True)
class PipelineModel:
    """Token-flow performance model of an n-stage micropipeline.

    Attributes
    ----------
    n_stages:
        FIFO depth.
    forward_ps:
        Per-stage forward latency (C-element + matched delay + latch).
    reverse_ps:
        Per-stage reverse (acknowledge/bubble) latency.
    """

    n_stages: int
    forward_ps: float
    reverse_ps: float

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.forward_ps <= 0 or self.reverse_ps <= 0:
            raise ValueError("latencies must be positive")

    @property
    def cycle_ps(self) -> float:
        """Steady-state interval between tokens at any stage."""
        return self.forward_ps + self.reverse_ps

    @property
    def throughput_per_ns(self) -> float:
        """Tokens per nanosecond at saturation."""
        return 1e3 / self.cycle_ps

    @property
    def empty_latency_ps(self) -> float:
        """Time for one token to traverse an empty pipeline."""
        return self.n_stages * self.forward_ps

    @property
    def max_occupancy(self) -> float:
        """Tokens the ring of stages can hold at speed (one per f+r window)."""
        return self.n_stages * self.forward_ps / self.cycle_ps

    def time_for_tokens(self, k: int) -> float:
        """Time to emit k tokens from saturation start (ps)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self.empty_latency_ps + (k - 1) * self.cycle_ps

    def against_synchronous(self, clock_ps: float, stages: int | None = None) -> float:
        """Throughput ratio micropipeline : clocked pipeline.

        A synchronous pipeline emits one token per worst-case clock; the
        micropipeline emits one per average cycle — the elasticity argument
        of Sutherland that the paper leans on.
        """
        if clock_ps <= 0:
            raise ValueError("clock_ps must be positive")
        del stages
        return clock_ps / self.cycle_ps
