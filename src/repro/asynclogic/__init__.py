"""Asynchronous building blocks (paper Section 4.1).

Micropipelines, handshake protocol checkers, arbiters/synchronisers and the
GALS system model.  The gate-level storage/control primitives live in
:mod:`repro.sim.primitives` (CElementGate, EventLatchGate) and their fabric
realisations in :mod:`repro.synth.macros`.
"""

from repro.asynclogic.arbiter import (
    MutexElement,
    flops_for_target_mtbf,
    synchronizer_mtbf,
)
from repro.asynclogic.gals import AsyncChannel, ClockDomain, GalsResult, GalsSystem
from repro.asynclogic.handshake import (
    HandshakeViolation,
    check_four_phase,
    check_two_phase,
    completed_transfers,
    cycle_times,
    two_phase_event_counts,
)
from repro.asynclogic.micropipeline import (
    MicropipelineSim,
    PipelineModel,
    micropipeline_netlist,
)

__all__ = [
    "MutexElement",
    "flops_for_target_mtbf",
    "synchronizer_mtbf",
    "AsyncChannel",
    "ClockDomain",
    "GalsResult",
    "GalsSystem",
    "HandshakeViolation",
    "check_four_phase",
    "check_two_phase",
    "completed_transfers",
    "cycle_times",
    "two_phase_event_counts",
    "MicropipelineSim",
    "PipelineModel",
    "micropipeline_netlist",
]
