"""Globally-asynchronous locally-synchronous (GALS) system model.

Section 4.1 of the paper: partition the platform into many clock domains
with "asynchronous wrappers" (Muttersbach [45]) between them, modules of
unconstrained size carved from the fine-grained fabric.  This module is a
discrete-event token model of such a system:

* :class:`ClockDomain` — a synchronous island with its own period and a
  per-cycle processing capacity;
* :class:`AsyncChannel` — a bounded FIFO between two domains whose
  consumer side pays a synchroniser latency (the wrapper);
* :class:`GalsSystem` — composes domains and channels, runs a token
  simulation, and checks conservation and ordering.

The model answers the bench's questions: cross-domain throughput (set by
the slower domain plus wrapper overhead), end-to-end latency, and the
token-integrity guarantee of the wrapper discipline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ClockDomain:
    """A synchronous island.

    Attributes
    ----------
    name:
        Domain name.
    period_ps:
        Local clock period.
    cells:
        Fabric cells the module occupies (for the floorplan/power benches).
    """

    name: str
    period_ps: int
    cells: int = 0

    def __post_init__(self) -> None:
        if self.period_ps < 1:
            raise ValueError(f"domain {self.name!r}: period must be >= 1 ps")


@dataclass
class AsyncChannel:
    """Bounded FIFO with synchroniser latency between two domains."""

    src: str
    dst: str
    capacity: int = 4
    sync_cycles: int = 2  # two-flop synchroniser in the consumer domain

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        if self.sync_cycles < 0:
            raise ValueError("sync_cycles must be >= 0")
        self._fifo: list[tuple[int, int]] = []  # (visible_time, seq)

    def can_accept(self) -> bool:
        """True when the producer may push."""
        return len(self._fifo) < self.capacity

    def push(self, now_ps: int, seq: int, consumer_period_ps: int) -> None:
        """Producer deposits a token; it becomes visible after sync."""
        if not self.can_accept():
            raise RuntimeError("push into a full channel (producer must block)")
        visible = now_ps + self.sync_cycles * consumer_period_ps
        self._fifo.append((visible, seq))

    def pop_ready(self, now_ps: int) -> int | None:
        """Consumer takes the oldest visible token, or None."""
        if self._fifo and self._fifo[0][0] <= now_ps:
            return self._fifo.pop(0)[1]
        return None

    @property
    def occupancy(self) -> int:
        """Tokens in flight in this channel."""
        return len(self._fifo)


@dataclass
class GalsResult:
    """Outcome of a GALS simulation run."""

    tokens_produced: int
    tokens_consumed: int
    consumed_sequence: list[int]
    sim_time_ps: int
    producer_stalls: int
    throughput_per_ns: float = field(init=False)

    def __post_init__(self) -> None:
        self.throughput_per_ns = (
            1e3 * self.tokens_consumed / self.sim_time_ps if self.sim_time_ps else 0.0
        )

    @property
    def in_order(self) -> bool:
        """True when tokens arrived in production order (no loss, no swap)."""
        return self.consumed_sequence == sorted(self.consumed_sequence) and (
            len(set(self.consumed_sequence)) == len(self.consumed_sequence)
        )


class GalsSystem:
    """A producer domain feeding a consumer domain through a wrapper."""

    def __init__(
        self,
        producer: ClockDomain,
        consumer: ClockDomain,
        channel: AsyncChannel | None = None,
    ) -> None:
        self.producer = producer
        self.consumer = consumer
        self.channel = channel or AsyncChannel(producer.name, consumer.name)

    def run(self, duration_ps: int) -> GalsResult:
        """Simulate token flow for ``duration_ps``.

        The producer attempts one token per local cycle (blocking on a full
        channel); the consumer takes one visible token per local cycle.
        """
        if duration_ps < 1:
            raise ValueError("duration_ps must be >= 1")
        events: list[tuple[int, int, str]] = []
        heapq.heappush(events, (self.producer.period_ps, 0, "produce"))
        heapq.heappush(events, (self.consumer.period_ps, 1, "consume"))
        seq = 0
        produced = 0
        consumed: list[int] = []
        stalls = 0
        counter = 2
        while events and events[0][0] <= duration_ps:
            t, _, kind = heapq.heappop(events)
            if kind == "produce":
                if self.channel.can_accept():
                    self.channel.push(t, seq, self.consumer.period_ps)
                    seq += 1
                    produced += 1
                else:
                    stalls += 1
                heapq.heappush(events, (t + self.producer.period_ps, counter, "produce"))
            else:
                got = self.channel.pop_ready(t)
                if got is not None:
                    consumed.append(got)
                heapq.heappush(events, (t + self.consumer.period_ps, counter, "consume"))
            counter += 1
        return GalsResult(
            tokens_produced=produced,
            tokens_consumed=len(consumed),
            consumed_sequence=consumed,
            sim_time_ps=duration_ps,
            producer_stalls=stalls,
        )

    def ideal_throughput_per_ns(self) -> float:
        """Upper bound: the slower domain's rate."""
        return 1e3 / max(self.producer.period_ps, self.consumer.period_ps)
