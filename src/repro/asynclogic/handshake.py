"""Handshake protocol checkers (two-phase and four-phase).

The paper's asynchronous structures (Section 4.1) use Sutherland's
two-phase (transition-signalling) protocol: every *toggle* of request is
an event answered by a *toggle* of acknowledge.  These checkers consume
recorded waveforms and verify protocol conformance — the property-style
instruments the micropipeline tests and benches rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.waveform import Waveform


@dataclass(frozen=True, slots=True)
class HandshakeViolation:
    """A protocol violation found on a req/ack pair.

    Attributes
    ----------
    time:
        When the offending transition happened.
    kind:
        Violation class, e.g. ``"req-before-ack"``.
    detail:
        Human-readable explanation.
    """

    time: int
    kind: str
    detail: str


def _toggle_times(wave: Waveform) -> list[int]:
    """Times of all defined-level transitions (two-phase events)."""
    return [e.time for e in wave.edges() if e.rising or e.falling]


def check_two_phase(req: Waveform, ack: Waveform) -> list[HandshakeViolation]:
    """Verify transition-signalling alternation: req, ack, req, ack, ...

    Every request event must be answered by exactly one acknowledge event
    before the next request is issued.  Returns all violations found.
    """
    req_t = _toggle_times(req)
    ack_t = _toggle_times(ack)
    out: list[HandshakeViolation] = []
    # Merge the two event streams and require strict alternation
    # starting with a request.
    events = sorted([(t, "req") for t in req_t] + [(t, "ack") for t in ack_t])
    expect = "req"
    for t, kind in events:
        if kind != expect:
            out.append(
                HandshakeViolation(
                    time=t,
                    kind=f"{kind}-out-of-turn",
                    detail=f"expected a {expect} event at t={t}, saw {kind}",
                )
            )
            # Resynchronise to keep subsequent reports meaningful.
            expect = "ack" if kind == "req" else "req"
        else:
            expect = "ack" if kind == "req" else "req"
    return out


def two_phase_event_counts(req: Waveform, ack: Waveform) -> tuple[int, int]:
    """(requests, acknowledges) seen on the pair."""
    return len(_toggle_times(req)), len(_toggle_times(ack))


def completed_transfers(req: Waveform, ack: Waveform) -> int:
    """Number of fully acknowledged two-phase transfers."""
    n_req, n_ack = two_phase_event_counts(req, ack)
    return min(n_req, n_ack)


def cycle_times(req: Waveform) -> list[int]:
    """Intervals between successive request events (throughput metric)."""
    t = _toggle_times(req)
    return [b - a for a, b in zip(t, t[1:])]


def check_four_phase(req: Waveform, ack: Waveform) -> list[HandshakeViolation]:
    """Verify return-to-zero handshaking.

    Legal order per transfer: req rises, ack rises, req falls, ack falls.
    """
    events = sorted(
        [(e.time, "req+", e.rising) for e in req.edges() if e.rising or e.falling]
        + [(e.time, "ack+", e.rising) for e in ack.edges() if e.rising or e.falling]
    )
    sequence = [
        ("req+", True),
        ("ack+", True),
        ("req+", False),
        ("ack+", False),
    ]
    out: list[HandshakeViolation] = []
    idx = 0
    for t, chan, rising in events:
        want_chan, want_rising = sequence[idx % 4]
        if (chan, rising) != (want_chan, want_rising):
            want = f"{want_chan[:3]} {'rise' if want_rising else 'fall'}"
            got = f"{chan[:3]} {'rise' if rising else 'fall'}"
            out.append(
                HandshakeViolation(
                    time=t,
                    kind="four-phase-order",
                    detail=f"expected {want} at t={t}, saw {got}",
                )
            )
        idx += 1
    return out
