"""Arbiters and synchronisers — the special functions FPGAs lack.

Section 4.1: current programmable systems do not include "special
functions such as arbiters and synchronizers".  The polymorphic fabric's
analog substrate can build them (a mutual-exclusion element is a
cross-coupled NAND pair plus a metastability filter); behaviourally we
model:

* :class:`MutexElement` — two-way mutual exclusion with an explicit
  metastability model: near-simultaneous requests resolve randomly after
  an exponentially-distributed resolution delay (deterministic given the
  supplied generator);
* :func:`synchronizer_mtbf` — the standard two-flop synchroniser MTBF
  expression, quantifying the cost GALS wrappers pay at clock-domain
  crossings.
"""

from __future__ import annotations

import math

import numpy as np


class MutexElement:
    """Two-way mutual-exclusion element with metastability resolution.

    Requests are level-signalled.  When both requests arrive within
    ``contention_window`` time units, the winner is random and the grant
    is delayed by an exponential resolution time with mean ``tau`` —
    the standard first-order metastability model.
    """

    def __init__(
        self,
        contention_window: float = 1.0,
        tau: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if contention_window < 0 or tau <= 0:
            raise ValueError("contention_window must be >= 0 and tau > 0")
        self.contention_window = float(contention_window)
        self.tau = float(tau)
        self.rng = rng or np.random.default_rng(0)
        self._granted: int | None = None

    def request(self, t_a: float | None, t_b: float | None) -> tuple[int, float]:
        """Arbitrate two request arrival times.

        ``None`` means that side did not request.  Returns (winner, grant
        time); winner is 0 or 1.  Raises when neither side requests.
        """
        if t_a is None and t_b is None:
            raise ValueError("at least one side must request")
        if t_b is None:
            return 0, float(t_a)
        if t_a is None:
            return 1, float(t_b)
        dt = abs(t_a - t_b)
        if dt > self.contention_window:
            winner = 0 if t_a < t_b else 1
            return winner, float(min(t_a, t_b))
        # Metastable: random winner, exponential resolution delay.
        winner = int(self.rng.integers(0, 2))
        resolve = float(self.rng.exponential(self.tau))
        return winner, float(max(t_a, t_b) + resolve)

    def release(self) -> None:
        """Drop the current grant (level protocol bookkeeping)."""
        self._granted = None


def synchronizer_mtbf(
    clock_hz: float,
    data_rate_hz: float,
    resolution_time_s: float,
    tau_s: float,
    window_s: float = 1e-10,
) -> float:
    """Mean time between synchroniser failures (seconds).

    The classic expression  MTBF = e^(t_r / tau) / (f_clk * f_data * T_w).
    Used by the GALS bench to pick the wrapper's synchroniser depth.
    """
    if min(clock_hz, data_rate_hz, tau_s, window_s) <= 0 or resolution_time_s < 0:
        raise ValueError("all rates/times must be positive (resolution >= 0)")
    return math.exp(resolution_time_s / tau_s) / (clock_hz * data_rate_hz * window_s)


def flops_for_target_mtbf(
    target_mtbf_s: float,
    clock_hz: float,
    data_rate_hz: float,
    tau_s: float,
    window_s: float = 1e-10,
) -> int:
    """Synchroniser depth (extra flops) needed to reach a target MTBF.

    Each additional flop adds one clock period of resolution time.
    """
    if target_mtbf_s <= 0:
        raise ValueError("target_mtbf_s must be positive")
    period = 1.0 / clock_hz
    for n in range(1, 16):
        if synchronizer_mtbf(clock_hz, data_rate_hz, n * period, tau_s, window_s) >= target_mtbf_s:
            return n
    return 16
