"""Monte-Carlo configurability yield across a fabric (variation study).

Ties the device-level variation models to the architecture: a leaf cell is
*configurable* only if its transistors' threshold offsets leave the
force-on / force-off margins intact at the +/-2 V levels.  This module
samples whole arrays and reports cell and array yield, for the undoped
double-gate device versus a doped bulk device of the same geometry — the
quantified version of the paper's Section 3 manufacturability argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.variation import (
    bulk_rdf_sigma_vt,
    config_margin_yield,
    dg_geometric_sigma_vt,
)


@dataclass(frozen=True, slots=True)
class YieldResult:
    """Monte-Carlo outcome for one technology option.

    Attributes
    ----------
    label:
        Device option name.
    sigma_vt:
        Threshold spread used (V).
    cell_yield:
        Fraction of leaf cells with intact configuration margins.
    block_yield:
        Fraction of 6x6 blocks (36 leaf cells + 6 drivers) fully usable.
    array_yield:
        Fraction of whole sampled arrays fully usable.
    """

    label: str
    sigma_vt: float
    cell_yield: float
    block_yield: float
    array_yield: float


def _simulate(
    label: str,
    sigma_vt: float,
    n_arrays: int,
    blocks_per_array: int,
    rng: np.random.Generator,
    vt_nominal: float = 0.25,
    gamma: float = 0.6,
    bias: float = 2.0,
    swing: float = 1.0,
    margin: float = 0.1,
    active_window: float = 0.15,
) -> YieldResult:
    cells_per_block = 42  # 36 crosspoints + 6 driver pairs
    n_cells = n_arrays * blocks_per_array * cells_per_block
    vt = rng.normal(vt_nominal, sigma_vt, size=n_cells)
    # A cell survives when +bias still forces on, -bias still forces off,
    # AND the zero-bias ACTIVE state keeps its switching threshold inside
    # the noise-margin window (the binding constraint in practice: the
    # forced states have ~1 V of slack at +/-2 V bias, the active inverter
    # threshold has only the logic noise margin).
    on_ok = vt - gamma * bias < -margin
    off_ok = vt + gamma * bias > swing + margin
    active_ok = np.abs(vt - vt_nominal) < active_window
    good = on_ok & off_ok & active_ok
    cell_yield = float(good.mean())
    blocks = good.reshape(n_arrays, blocks_per_array, cells_per_block)
    block_good = blocks.all(axis=2)
    block_yield = float(block_good.mean())
    array_yield = float(block_good.all(axis=1).mean())
    return YieldResult(label, sigma_vt, cell_yield, block_yield, array_yield)


def compare_device_options(
    n_arrays: int = 200,
    blocks_per_array: int = 64,
    length_nm: float = 10.0,
    rng: np.random.Generator | None = None,
) -> list[YieldResult]:
    """Yield of undoped-DG versus doped-bulk fabrics at ``length_nm``.

    Returns one result per option; deterministic given the generator.
    """
    if n_arrays < 1 or blocks_per_array < 1:
        raise ValueError("need at least one array and one block")
    rng = rng or np.random.default_rng(0)
    sigma_dg = float(dg_geometric_sigma_vt(length_nm))
    sigma_bulk = float(bulk_rdf_sigma_vt(length_nm, length_nm))
    return [
        _simulate("undoped double-gate", sigma_dg, n_arrays, blocks_per_array, rng),
        _simulate("doped bulk (RDF)", sigma_bulk, n_arrays, blocks_per_array, rng),
    ]


def analytic_cell_yield(
    sigma_vt: float,
    vt_nominal: float = 0.25,
    gamma: float = 0.6,
    bias: float = 2.0,
    swing: float = 1.0,
    margin: float = 0.1,
    active_window: float = 0.15,
) -> float:
    """Closed-form single-cell yield for cross-checking the Monte Carlo.

    All three criteria constrain the *same* threshold sample, so the good
    region is an interval in V_T; the yield is the Gaussian mass inside it.
    """
    from scipy.stats import norm

    lo = max(swing + margin - gamma * bias, vt_nominal - active_window)
    hi = min(gamma * bias - margin, vt_nominal + active_window)
    if hi <= lo:
        return 0.0
    return float(norm.cdf((hi - vt_nominal) / sigma_vt) - norm.cdf((lo - vt_nominal) / sigma_vt))


def _unused_strict_yield(sigma_vt: float) -> float:
    """Force-margin-only yield (kept for the sensitivity bench)."""
    return config_margin_yield(sigma_vt)
