"""Monte-Carlo configurability yield across a fabric (variation study).

Ties the device-level variation models to the architecture: a leaf cell is
*configurable* only if its transistors' threshold offsets leave the
force-on / force-off margins intact at the +/-2 V levels.  This module
samples whole arrays and reports cell and array yield, for the undoped
double-gate device versus a doped bulk device of the same geometry — the
quantified version of the paper's Section 3 manufacturability argument.

Two granularities:

* the margin model (:func:`compare_device_options`) — a leaf cell is
  good/bad from its threshold sample alone, no logic evaluated;
* the **functional** model (:func:`functional_fabric_yield`) — a
  configured design is lowered once to the netlist IR, XOR
  fault-injection points are spliced onto its internal nets
  (:func:`repro.netlist.with_fault_points`), and each Monte-Carlo
  configuration sample (a Bernoulli draw of flipped nets) is checked
  against the golden truth table over a stimulus set.  On the
  :class:`repro.netlist.BatchBackend` all ``n_configs x n_vectors``
  lanes evaluate in one bit-parallel sweep — the build-once /
  evaluate-many structure that makes whole-array yield studies cheap.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.devices.variation import (
    bulk_rdf_sigma_vt,
    config_margin_yield,
    dg_geometric_sigma_vt,
)
from repro.netlist.backends import BatchBackend, SimBackend
from repro.netlist.ir import Netlist, with_fault_points


@dataclass(frozen=True, slots=True)
class YieldResult:
    """Monte-Carlo outcome for one technology option.

    Attributes
    ----------
    label:
        Device option name.
    sigma_vt:
        Threshold spread used (V).
    cell_yield:
        Fraction of leaf cells with intact configuration margins.
    block_yield:
        Fraction of 6x6 blocks (36 leaf cells + 6 drivers) fully usable.
    array_yield:
        Fraction of whole sampled arrays fully usable.
    """

    label: str
    sigma_vt: float
    cell_yield: float
    block_yield: float
    array_yield: float


def _simulate(
    label: str,
    sigma_vt: float,
    n_arrays: int,
    blocks_per_array: int,
    rng: np.random.Generator,
    vt_nominal: float = 0.25,
    gamma: float = 0.6,
    bias: float = 2.0,
    swing: float = 1.0,
    margin: float = 0.1,
    active_window: float = 0.15,
) -> YieldResult:
    cells_per_block = 42  # 36 crosspoints + 6 driver pairs
    n_cells = n_arrays * blocks_per_array * cells_per_block
    vt = rng.normal(vt_nominal, sigma_vt, size=n_cells)
    # A cell survives when +bias still forces on, -bias still forces off,
    # AND the zero-bias ACTIVE state keeps its switching threshold inside
    # the noise-margin window (the binding constraint in practice: the
    # forced states have ~1 V of slack at +/-2 V bias, the active inverter
    # threshold has only the logic noise margin).
    on_ok = vt - gamma * bias < -margin
    off_ok = vt + gamma * bias > swing + margin
    active_ok = np.abs(vt - vt_nominal) < active_window
    good = on_ok & off_ok & active_ok
    cell_yield = float(good.mean())
    blocks = good.reshape(n_arrays, blocks_per_array, cells_per_block)
    block_good = blocks.all(axis=2)
    block_yield = float(block_good.mean())
    array_yield = float(block_good.all(axis=1).mean())
    return YieldResult(label, sigma_vt, cell_yield, block_yield, array_yield)


def compare_device_options(
    n_arrays: int = 200,
    blocks_per_array: int = 64,
    length_nm: float = 10.0,
    rng: np.random.Generator | None = None,
) -> list[YieldResult]:
    """Yield of undoped-DG versus doped-bulk fabrics at ``length_nm``.

    Returns one result per option; deterministic given the generator.
    """
    if n_arrays < 1 or blocks_per_array < 1:
        raise ValueError("need at least one array and one block")
    rng = rng or np.random.default_rng(0)
    sigma_dg = float(dg_geometric_sigma_vt(length_nm))
    sigma_bulk = float(bulk_rdf_sigma_vt(length_nm, length_nm))
    return [
        _simulate("undoped double-gate", sigma_dg, n_arrays, blocks_per_array, rng),
        _simulate("doped bulk (RDF)", sigma_bulk, n_arrays, blocks_per_array, rng),
    ]


def analytic_cell_yield(
    sigma_vt: float,
    vt_nominal: float = 0.25,
    gamma: float = 0.6,
    bias: float = 2.0,
    swing: float = 1.0,
    margin: float = 0.1,
    active_window: float = 0.15,
) -> float:
    """Closed-form single-cell yield for cross-checking the Monte Carlo.

    All three criteria constrain the *same* threshold sample, so the good
    region is an interval in V_T; the yield is the Gaussian mass inside it.

    ``sigma_vt = 0`` is the ideal-process limit: every cell sits exactly
    at ``vt_nominal``, so the yield is 1.0 when the nominal threshold
    lies inside the good interval and 0.0 otherwise (the previous
    implementation divided by sigma and returned NaN).  Negative sigma
    is a caller bug and raises.
    """
    from scipy.stats import norm

    if sigma_vt < 0:
        raise ValueError(f"sigma_vt must be >= 0, got {sigma_vt}")
    lo = max(swing + margin - gamma * bias, vt_nominal - active_window)
    hi = min(gamma * bias - margin, vt_nominal + active_window)
    if hi <= lo:
        return 0.0
    if sigma_vt == 0:
        return 1.0 if lo < vt_nominal < hi else 0.0
    return float(norm.cdf((hi - vt_nominal) / sigma_vt) - norm.cdf((lo - vt_nominal) / sigma_vt))


def strict_margin_cell_yield(sigma_vt: float) -> float:
    """Config-margin-only cell yield — the stuck-bit survival rate.

    The fraction of cells whose programmed crosspoints hold their
    configured state under threshold variation ``sigma_vt`` — the force
    margin criterion alone, without the on/off current and active-window
    criteria :func:`analytic_cell_yield` adds.  Its complement is the
    per-row *stuck configuration bit* probability
    :func:`repro.pnr.defects.sample_die` draws defect maps from: a cell
    that fails only this criterion still switches, but one of its rows
    cannot be trusted to hold a programmed crosspoint.
    """
    if sigma_vt < 0:
        raise ValueError(f"sigma_vt must be >= 0, got {sigma_vt}")
    if sigma_vt == 0:
        return 1.0
    return float(config_margin_yield(sigma_vt))


# ----------------------------------------------------------------------
# Gate-level functional yield on the netlist IR
# ----------------------------------------------------------------------

def cell_fail_probability(
    sigma_vt: float,
    vt_nominal: float = 0.25,
    gamma: float = 0.6,
    bias: float = 2.0,
    swing: float = 1.0,
    margin: float = 0.1,
    active_window: float = 0.15,
) -> float:
    """Probability one configured net misbehaves under variation.

    The complement of :func:`analytic_cell_yield` — the Bernoulli
    parameter the functional Monte-Carlo samples per fault point.
    """
    return 1.0 - analytic_cell_yield(
        sigma_vt, vt_nominal, gamma, bias, swing, margin, active_window
    )


@dataclass(frozen=True, slots=True)
class FunctionalYieldResult:
    """Outcome of one gate-level functional yield run.

    Attributes
    ----------
    label:
        Option / backend description.
    backend:
        Name of the engine that evaluated the lanes.
    n_configs:
        Monte-Carlo configuration samples drawn.
    n_vectors:
        Stimulus vectors checked per configuration.
    functional_yield:
        Fraction of configurations matching the golden responses on
        every vector.
    elapsed_s:
        Wall time of the evaluation.
    """

    label: str
    backend: str
    n_configs: int
    n_vectors: int
    functional_yield: float
    elapsed_s: float

    @property
    def configs_per_second(self) -> float:
        """Monte-Carlo throughput (the batching figure of merit)."""
        return self.n_configs / self.elapsed_s if self.elapsed_s > 0 else float("inf")


def functional_fabric_yield(
    netlist: Netlist,
    stimulus: Mapping[str, np.ndarray],
    golden: Mapping[str, np.ndarray],
    fail_prob: float,
    n_configs: int,
    rng: np.random.Generator | None = None,
    backend: SimBackend | None = None,
    label: str = "",
) -> FunctionalYieldResult:
    """Monte-Carlo functional yield of a configured design.

    ``stimulus`` maps the design's free inputs to equal-length vectors of
    test patterns; ``golden`` the expected responses.  Each of the
    ``n_configs`` samples flips every internal net independently with
    probability ``fail_prob`` (via XOR fault points); a configuration is
    functional when all its patterns match.  All ``n_configs *
    n_vectors`` lanes go to the backend in **one** call, so the batch
    engine amortises the whole sweep into a single levelized pass.
    """
    if not 0.0 <= fail_prob <= 1.0:
        raise ValueError(f"fail_prob must be in [0, 1], got {fail_prob!r}")
    if n_configs < 1:
        raise ValueError(f"n_configs must be >= 1, got {n_configs}")
    if not stimulus or not golden:
        raise ValueError("stimulus and golden must each name at least one net")
    rng = rng or np.random.default_rng(0)
    backend = backend or BatchBackend()
    faulty, fault_nets = with_fault_points(netlist)
    vectors = {k: np.atleast_1d(np.asarray(v, dtype=np.uint8)) for k, v in stimulus.items()}
    n_vec = next(iter(vectors.values())).shape[0]
    lanes: dict[str, np.ndarray] = {
        # Per config, replay the whole pattern set.
        k: np.tile(v, n_configs) for k, v in vectors.items()
    }
    flips = (rng.random((n_configs, len(fault_nets))) < fail_prob).astype(np.uint8)
    for j, f in enumerate(fault_nets):
        lanes[f] = np.repeat(flips[:, j], n_vec)
    out_names = list(golden)
    t0 = time.perf_counter()
    res = backend.evaluate(faulty, lanes, outputs=out_names)
    elapsed = time.perf_counter() - t0
    ok = np.ones(n_configs * n_vec, dtype=bool)
    for name in out_names:
        expect = np.tile(np.asarray(golden[name], dtype=np.uint8), n_configs)
        ok &= res[name] == expect
    config_ok = ok.reshape(n_configs, n_vec).all(axis=1)
    return FunctionalYieldResult(
        label=label or netlist.name,
        backend=getattr(backend, "name", type(backend).__name__),
        n_configs=n_configs,
        n_vectors=n_vec,
        functional_yield=float(config_ok.mean()),
        elapsed_s=elapsed,
    )
