"""Conventional island-style FPGA cost baseline (the paper's Fig. 1 CLB).

Everything the benches compare against: an XC5200-flavoured logic cell
(4-LUT + D-FF + output muxes) in an island-style tile, with the usual
island cost structure (logic is a sliver; routing and configuration
dominate).  Mapping is deliberately first-order: functions are costed by
LUT count from their support size and product structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.arch.area import FPGA_LUT4_AREA_L2
from repro.arch.configbits import CLBModel
from repro.synth.qm import Implicant
from repro.synth.truthtable import TruthTable


@dataclass(frozen=True, slots=True)
class FpgaCost:
    """First-order implementation cost on the baseline FPGA."""

    n_lut4: int
    n_ff: int
    area_l2: float
    config_bits: int


class FpgaBaseline:
    """Cost model instance (parameters shared across the benches)."""

    def __init__(self, clb: CLBModel | None = None, lut_area_l2: float = FPGA_LUT4_AREA_L2) -> None:
        self.clb = clb or CLBModel()
        self.lut_area_l2 = float(lut_area_l2)

    # ------------------------------------------------------------------
    # Mapping cost estimators
    # ------------------------------------------------------------------
    def luts_for_table(self, table: TruthTable) -> int:
        """4-LUT count for a single-output function (Shannon splitting)."""
        support = len(table.support())
        if support <= 4:
            return 1 if support > 0 else 0
        # Each decomposition level above 4 inputs costs a 2:1 LUT tree.
        extra = support - 4
        return 1 + ceil(extra / 3) * 2

    def luts_for_cover(self, cover: list[Implicant], n_vars: int) -> int:
        """4-LUT count for an SOP cover (wide-OR trees beyond 4 inputs)."""
        if not cover:
            return 0
        if n_vars <= 4:
            return 1
        or_inputs = len(cover)
        tree = ceil(max(or_inputs - 1, 0) / 3)
        return len(cover) + tree

    def cost(self, n_lut4: int, n_ff: int = 0) -> FpgaCost:
        """Total area/config cost of a mapped design."""
        if n_lut4 < 0 or n_ff < 0:
            raise ValueError("counts must be >= 0")
        # A flip-flop rides in the same logic cell when one is free; cost
        # the excess only.
        cells = max(n_lut4, n_ff)
        return FpgaCost(
            n_lut4=n_lut4,
            n_ff=n_ff,
            area_l2=cells * self.lut_area_l2,
            config_bits=cells * self.clb.bits_per_logic_cell(),
        )

    # ------------------------------------------------------------------
    # Canned reference designs (mirroring the paper's examples)
    # ------------------------------------------------------------------
    def lut3_with_ff(self) -> FpgaCost:
        """The Fig. 9 tile on the baseline: one LC (3-LUT fits a 4-LUT + FF)."""
        return self.cost(n_lut4=1, n_ff=1)

    def ripple_adder(self, n_bits: int) -> FpgaCost:
        """n-bit ripple adder: 2 LUTs per bit (sum, carry) without fast carry."""
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        return self.cost(n_lut4=2 * n_bits)

    def accumulator(self, n_bits: int) -> FpgaCost:
        """Adder + register column."""
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        return self.cost(n_lut4=2 * n_bits, n_ff=n_bits)
