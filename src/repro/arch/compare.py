"""Side-by-side comparisons used by the benches and EXPERIMENTS.md.

Each function returns an :class:`repro.core.report.ExperimentReport` so
benches only format and print.
"""

from __future__ import annotations

import math

from repro.arch.area import (
    CELL_PAIR_AREA_L2,
    FPGA_LUT4_AREA_L2,
    area_ratio,
    density_cells_per_cm2,
)
from repro.arch.configbits import CLBModel, function_for_function_ratio, polymorphic_bits_per_block
from repro.arch.power import clock_power_saving, config_plane_power_w
from repro.arch.scaling import frequency_scaling_exponent, scaling_series
from repro.arch.wires import required_drive_wl, unrepeated_delay_ps
from repro.core.report import ExperimentReport
from repro.util.technology import node, nodes_descending


def area_claims_report() -> ExperimentReport:
    """Paper Section 4/5 area numbers versus the model."""
    rep = ExperimentReport("E6/E12", "area and density claims")
    rep.add("LUT cell-pair area", "< 400 lambda^2", f"{CELL_PAIR_AREA_L2:.0f} lambda^2 (model constant)")
    rep.add("conventional 4-LUT area", "up to 600 K-lambda^2", f"{FPGA_LUT4_AREA_L2 / 1e3:.0f} K-lambda^2 (model constant)")
    ratio = area_ratio(polymorphic_cells=2, fpga_lut4s=1)
    rep.add(
        "area reduction (function-for-function)",
        "~3 orders of magnitude",
        f"{ratio:.0f}x ({math.log10(ratio):.1f} orders)",
        verdict="match" if ratio >= 300 else "deviation",
    )
    density = density_cells_per_cm2(lambda_nm=5.0)  # 10 nm device -> lambda ~5 nm
    rep.add(
        "cell density at 10 nm devices",
        "> 1e9 cells/cm^2",
        f"{density:.2e} cells/cm^2",
        verdict="match" if density > 1e9 else "deviation",
    )
    return rep


def config_bits_report() -> ExperimentReport:
    """Paper Section 4 configuration-data accounting."""
    rep = ExperimentReport("E5/E12", "configuration bits per block")
    rep.add("bits per polymorphic block", "128", str(polymorphic_bits_per_block()))
    clb = CLBModel()
    rep.add(
        "bits per CLB logic cell (Fig. 1 style)",
        "several hundred",
        str(clb.bits_per_logic_cell()),
        verdict="match" if 100 <= clb.bits_per_logic_cell() <= 999 else "deviation",
    )
    ratio = function_for_function_ratio(clb)
    rep.add(
        "function-for-function ratio (CLB LC : cell pair)",
        "same order",
        f"{ratio:.2f}x",
        verdict="match" if 0.1 <= ratio <= 10 else "deviation",
    )
    return rep


def power_claim_report(n_cells: float = 1e9) -> ExperimentReport:
    """Paper Section 3: <= 100 mW static for the configuration plane."""
    rep = ExperimentReport("E12", "configuration-plane static power")
    p = config_plane_power_w(n_cells)
    rep.add(
        f"static power at {n_cells:.0e} cells",
        "< 100 mW",
        f"{p * 1e3:.1f} mW",
        verdict="match" if p < 0.1 else "deviation",
    )
    saving = clock_power_saving(n_sinks=1e6, n_domains=16)
    rep.add(
        "GALS clock-power saving (16 domains)",
        "significant",
        f"{saving * 100:.0f}%",
        verdict="match" if saving > 0.2 else "deviation",
    )
    return rep


def scaling_report() -> ExperimentReport:
    """Paper Section 2.1: interconnect fraction and O(lambda^1/2) frequency."""
    rep = ExperimentReport("E11", "interconnect scaling (Section 2.1)")
    series = scaling_series()
    lambdas = [n.lambda_nm for n in nodes_descending()]
    dsm = series["fpga"][2]  # 130 nm: the paper's DSM reference point
    rep.add(
        "FPGA interconnect share of path delay (DSM)",
        "~80%",
        f"{dsm.wire_fraction * 100:.0f}%",
        verdict="match" if 0.6 <= dsm.wire_fraction <= 0.95 else "deviation",
    )
    x_fpga = frequency_scaling_exponent(series["fpga"], lambdas)
    x_custom = frequency_scaling_exponent(series["custom"], lambdas)
    x_poly = frequency_scaling_exponent(series["polymorphic"], lambdas)
    rep.add(
        "FPGA frequency scaling exponent",
        "~0.5 (De Dinechin)",
        f"{x_fpga:.2f}",
        verdict="shape-match" if 0.2 <= x_fpga <= 0.8 else "deviation",
    )
    rep.add(
        "custom-silicon exponent (reference)",
        "~1",
        f"{x_custom:.2f}",
        verdict="shape-match" if x_custom > x_fpga else "deviation",
    )
    rep.add(
        "polymorphic-fabric exponent",
        "tracks gate delay (> FPGA)",
        f"{x_poly:.2f}",
        verdict="match" if x_poly > x_fpga else "deviation",
    )
    n120 = node("130nm")  # closest ladder point to Liu & Pai's 120 nm
    wl = required_drive_wl(n120, length_um=1000.0, target_ps=100.0)
    measured = "unreachable (wire RC floor > 100 ps)" if math.isinf(wl) else f"{wl:.0f}:1"
    rep.add(
        "W/L to drive 1 mm in <100 ps at ~120 nm",
        "order 100:1 (Liu & Pai)",
        measured,
        verdict="match" if math.isinf(wl) or wl >= 50 else "deviation",
    )
    if math.isinf(wl):
        rep.note(
            "with our wire constants the bare 1 mm RC already exceeds 100 ps "
            f"({unrepeated_delay_ps(n120, 1000.0):.0f} ps): an even stronger "
            "form of the paper's point that no driver rescues long wires"
        )
    return rep
