"""Configuration-bit accounting (paper Section 4).

The paper: each polymorphic block "requires 128 bits reconfiguration data
— in the same order (on a function-for-function basis) as the several
hundred bits required by typical CLB structures and their associated
interconnects in FPGA devices."

This module counts both sides.  The CLB side models an XC5200-like logic
cell (the paper's Fig. 1): four 4-LUT function generators with flip-flops
plus the per-tile share of the routing switch configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.mvram import FRAME_BITS


@dataclass(frozen=True, slots=True)
class CLBModel:
    """Configuration cost of a conventional CLB tile.

    Attributes
    ----------
    n_luts:
        Function generators per CLB (XC5200: 4 per CLB).
    lut_inputs:
        Inputs per LUT (XC5200 LC: 4-LUT equivalents; Fig. 1 shows the
        3/4-LUT F generator).
    ff_config_bits:
        Per-LC bits for flip-flop mode, clock enable, set/reset selects
        and the output muxes (M1-M3 in Fig. 1).
    routing_bits_per_lc:
        Per-logic-cell share of the interconnect switch configuration;
        island-style devices spend most bits here (DeHon [1]).
    """

    n_luts: int = 4
    lut_inputs: int = 4
    ff_config_bits: int = 8
    routing_bits_per_lc: int = 200

    def lut_bits(self) -> int:
        """Truth-table bits per LUT."""
        return 1 << self.lut_inputs

    def bits_per_logic_cell(self) -> int:
        """All configuration bits attributable to one logic cell."""
        return self.lut_bits() + self.ff_config_bits + self.routing_bits_per_lc

    def bits_per_clb(self) -> int:
        """Configuration bits of the whole CLB tile."""
        return self.n_luts * self.bits_per_logic_cell()


def polymorphic_bits_per_block() -> int:
    """The paper's 128 bits per 6x6 NAND block (one MVRAM frame)."""
    return FRAME_BITS


def function_for_function_ratio(clb: CLBModel | None = None) -> float:
    """CLB bits versus polymorphic bits for comparable logic capacity.

    A polymorphic cell *pair* offers a 6-input/6-term/6-output two-level
    block, comparable to (roughly) one 4-LUT + flip-flop logic cell; a
    pair costs two frames.  The paper says the two are "in the same
    order"; this returns the modelled ratio so benches can verify it sits
    near 1 (same order of magnitude).
    """
    clb = clb or CLBModel()
    pair_bits = 2 * polymorphic_bits_per_block()
    return clb.bits_per_logic_cell() / pair_bits


def bits_for_design(n_cells: int) -> int:
    """Total configuration storage for an n-cell polymorphic design."""
    if n_cells < 0:
        raise ValueError(f"n_cells must be >= 0, got {n_cells}")
    return n_cells * FRAME_BITS
