"""Area models in lambda^2 (paper Section 4 and its headline claim).

The paper's numbers:

* a pair of polymorphic LUT cells "could occupy less than 400 lambda^2";
* a "typical" 4-input LUT costs "as high as 600 K-lambda^2" once its
  programmable interconnect and configuration memory are included
  (DeHon [1]);
* overall reduction "possibly as large as three orders of magnitude".

These are layout-arithmetic claims; this module reproduces the arithmetic
parametrically so its sensitivity can be swept in the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validate import check_positive

#: Paper constant: area of a configured polymorphic cell *pair* (lambda^2).
CELL_PAIR_AREA_L2 = 400.0

#: Paper constant: area of a conventional 4-LUT including interconnect and
#: configuration memory (lambda^2), after DeHon [1].
FPGA_LUT4_AREA_L2 = 600_000.0


@dataclass(frozen=True, slots=True)
class AreaBreakdown:
    """Area of a mapped design in lambda^2 with its contributors."""

    logic_l2: float
    interconnect_l2: float
    config_l2: float

    @property
    def total_l2(self) -> float:
        """Total area (lambda^2)."""
        return self.logic_l2 + self.interconnect_l2 + self.config_l2


def polymorphic_area_l2(n_cells: int, pair_area_l2: float = CELL_PAIR_AREA_L2) -> AreaBreakdown:
    """Area of ``n_cells`` configured polymorphic cells.

    The vertical layout *hides* the configuration plane under the logic
    (the RTD stack sits below the transistor pair), and interconnect IS
    logic cells, so the entire cost is the logic term — this is exactly
    the paper's argument for why the overheads vanish from the floorplan.
    """
    if n_cells < 0:
        raise ValueError(f"n_cells must be >= 0, got {n_cells}")
    check_positive("pair_area_l2", pair_area_l2)
    return AreaBreakdown(
        logic_l2=n_cells * pair_area_l2 / 2.0,
        interconnect_l2=0.0,
        config_l2=0.0,
    )


def fpga_area_l2(
    n_lut4: int,
    lut4_area_l2: float = FPGA_LUT4_AREA_L2,
    logic_fraction: float = 0.1,
    config_fraction: float = 0.35,
) -> AreaBreakdown:
    """Area of ``n_lut4`` conventional 4-LUTs with the island-style split.

    DeHon's accounting: the logic itself is a small fraction of the tile;
    programmable routing and its configuration bits dominate (the paper's
    "FPGA area is proportional to the number of configuration bits
    required to control the routing switches").
    """
    if n_lut4 < 0:
        raise ValueError(f"n_lut4 must be >= 0, got {n_lut4}")
    check_positive("lut4_area_l2", lut4_area_l2)
    if not 0 < logic_fraction < 1 or not 0 < config_fraction < 1:
        raise ValueError("fractions must be in (0, 1)")
    if logic_fraction + config_fraction >= 1:
        raise ValueError("logic + config fractions must leave room for routing")
    total = n_lut4 * lut4_area_l2
    return AreaBreakdown(
        logic_l2=total * logic_fraction,
        interconnect_l2=total * (1.0 - logic_fraction - config_fraction),
        config_l2=total * config_fraction,
    )


def area_ratio(
    polymorphic_cells: int,
    fpga_lut4s: int,
    pair_area_l2: float = CELL_PAIR_AREA_L2,
    lut4_area_l2: float = FPGA_LUT4_AREA_L2,
) -> float:
    """FPGA : polymorphic area ratio for functionally-matched designs."""
    poly = polymorphic_area_l2(polymorphic_cells, pair_area_l2).total_l2
    fpga = fpga_area_l2(fpga_lut4s, lut4_area_l2).total_l2
    if poly <= 0:
        raise ValueError("polymorphic design has zero area; nothing to compare")
    return fpga / poly


def routed_area_breakdown(
    cells_logic: int,
    cells_route: int,
    pair_area_l2: float = CELL_PAIR_AREA_L2,
) -> AreaBreakdown:
    """Area of a placed-and-routed design (the `repro.pnr` flow).

    On the polymorphic fabric interconnect is not a separate resource:
    a route is just more cells (feed-throughs), priced identically to
    logic.  This accounting makes the paper's Section 4 trade explicit —
    ``interconnect_l2`` is the cells the router burned as wire, and the
    configuration plane still costs nothing extra (it sits under the
    logic in the vertical stack).
    """
    if cells_logic < 0 or cells_route < 0:
        raise ValueError("cell counts must be >= 0")
    check_positive("pair_area_l2", pair_area_l2)
    per_cell = pair_area_l2 / 2.0
    return AreaBreakdown(
        logic_l2=cells_logic * per_cell,
        interconnect_l2=cells_route * per_cell,
        config_l2=0.0,
    )


def density_cells_per_cm2(lambda_nm: float, pair_area_l2: float = CELL_PAIR_AREA_L2) -> float:
    """Leaf-cell pairs per cm^2 at a given lambda — the 1e9 cells/cm^2 claim.

    The paper argues densities "in excess of 10^9 logic cells/cm^2" at the
    10 nm FDSOI limit.
    """
    check_positive("lambda_nm", lambda_nm)
    pair_area_cm2 = pair_area_l2 * (lambda_nm * 1e-7) ** 2
    # Two cells per pair.
    return 2.0 / pair_area_cm2
