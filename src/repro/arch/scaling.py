"""Technology-scaling studies (paper Section 2.1).

Anchors reproduced:

* interconnect already ~80% of FPGA path delay in DSM technology [1];
* De Dinechin [18]: with fixed organisation, FPGA operating frequency
  improves only O(lambda^1/2) — the gap to custom hardware widens;
* the polymorphic fabric's local-only wiring tracks gate delay instead.

The FPGA path model: a logical hop traverses the gate itself plus a routed
segment whose *physical length is a fixed number of tile pitches*; routing
passes through unscaled switch resistance.  Custom hardware repeats its
wires optimally; the polymorphic fabric only ever drives one cell pitch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.wires import driven_delay_ps, repeated_delay_ps
from repro.util.technology import TechnologyNode, nodes_descending

#: FPGA routed-segment length in tile pitches (island-style average).
FPGA_SEGMENT_TILES = 8.0
#: FPGA tile pitch in lambda (a CLB tile is hundreds of lambda on a side).
FPGA_TILE_PITCH_LAMBDA = 800.0
#: Constant per-segment switch-junction loading (fF): the attached pass
#: transistors' diffusion — the part of routing capacitance that scales
#: poorly.
SWITCH_LOAD_FF = 12.0
#: Die span (um) that long FPGA routes are pinned to: designs grow to fill
#: the die, so average net length follows sqrt(local pitch x die span)
#: (Donath-style interconnect prediction, cf. Hutton [24]) rather than
#: shrinking with lambda.  This is what produces De Dinechin's O(lambda^1/2)
#: frequency scaling.
DIE_SPAN_UM = 500.0
#: Polymorphic cell pitch in lambda (a ~14x14-lambda cell, see area model).
POLY_CELL_PITCH_LAMBDA = 20.0
#: Logic depth of the reference path (gates between registers).
PATH_DEPTH = 8


@dataclass(frozen=True, slots=True)
class PathDelay:
    """One architecture's critical-path split at a node (ps)."""

    node: str
    logic_ps: float
    wire_ps: float

    @property
    def total_ps(self) -> float:
        """Path delay."""
        return self.logic_ps + self.wire_ps

    @property
    def wire_fraction(self) -> float:
        """Interconnect share of the path delay."""
        return self.wire_ps / self.total_ps if self.total_ps else 0.0

    @property
    def frequency_mhz(self) -> float:
        """Operating frequency implied by the path."""
        return 1e6 / self.total_ps


def fpga_path(node: TechnologyNode, depth: int = PATH_DEPTH) -> PathDelay:
    """FPGA critical path: gates + Donath-length routed segments.

    Local pitch shrinks with lambda but critical routes stretch toward the
    (fixed) die span; the average is the geometric mean.  Each segment
    also carries the constant switch-junction loading.
    """
    local_um = FPGA_SEGMENT_TILES * FPGA_TILE_PITCH_LAMBDA * node.lambda_nm * 1e-3
    seg_um = (local_um * DIE_SPAN_UM) ** 0.5
    wire_ps = depth * driven_delay_ps(
        node, seg_um, drive_wl=8.0, load_ff=SWITCH_LOAD_FF
    )
    logic_ps = depth * node.gate_delay_ps
    return PathDelay(node.name, logic_ps, wire_ps)


def custom_path(node: TechnologyNode, depth: int = PATH_DEPTH) -> PathDelay:
    """Custom-silicon path: same logic, short optimally-repeated wires."""
    seg_um = 2.0 * FPGA_TILE_PITCH_LAMBDA * node.lambda_nm * 1e-3 / 8.0
    wire_ps = depth * repeated_delay_ps(node, seg_um)
    logic_ps = depth * node.gate_delay_ps
    return PathDelay(node.name, logic_ps, wire_ps)


def polymorphic_path(node: TechnologyNode, depth: int = PATH_DEPTH) -> PathDelay:
    """Polymorphic-fabric path: every hop is one cell pitch, low drive.

    The load is a neighbouring cell's gate input, which scales with the
    device — nothing in the hop is pinned to the die.
    """
    hop_um = POLY_CELL_PITCH_LAMBDA * node.lambda_nm * 1e-3
    gate_load_ff = 0.16 * node.lambda_nm / 125.0
    # Two NAND levels + driver per logical hop; wire is one abutment.
    wire_ps = depth * driven_delay_ps(node, hop_um, drive_wl=1.0, load_ff=gate_load_ff)
    logic_ps = depth * 2.0 * node.gate_delay_ps
    return PathDelay(node.name, logic_ps, wire_ps)


def scaling_series(depth: int = PATH_DEPTH) -> dict[str, list[PathDelay]]:
    """Path delays across the node ladder for all three architectures."""
    ladder = nodes_descending()
    return {
        "fpga": [fpga_path(n, depth) for n in ladder],
        "custom": [custom_path(n, depth) for n in ladder],
        "polymorphic": [polymorphic_path(n, depth) for n in ladder],
    }


def frequency_scaling_exponent(paths: list[PathDelay], lambdas_nm: list[float]) -> float:
    """Fit f ~ lambda^(-x) over a series; returns x.

    De Dinechin's estimate corresponds to x ~= 0.5 for FPGAs (frequency
    improves only with the square root of scaling) versus x -> 1 for
    gate-limited custom logic.
    """
    import numpy as np

    if len(paths) != len(lambdas_nm) or len(paths) < 2:
        raise ValueError("need matching series of at least two points")
    f = np.array([p.frequency_mhz for p in paths])
    lam = np.array(lambdas_nm, dtype=float)
    slope, _ = np.polyfit(np.log(lam), np.log(f), 1)
    return float(-slope)
