"""Power models: configuration-plane standby power and clocking power.

Two of the paper's quantitative claims live here:

* Section 3: at 10^9 cells/cm^2, "the configuration circuits would be
  likely to consume less than 100 mW of static power" — RTD hold currents
  of tens of picoamps times a couple of volts times 10^9 cells;
* Section 4.1: removing the global clock "will, on its own, result in
  significant power savings" — a clock-tree dynamic-power model versus
  per-domain GALS clocks and handshake energy.
"""

from __future__ import annotations

from repro.devices.rtd_sram import TunnellingSRAM
from repro.util.validate import check_positive


def config_plane_power_w(
    n_cells: float,
    cell: TunnellingSRAM | None = None,
) -> float:
    """Static power of ``n_cells`` configuration storage nodes (W).

    Worst-case hold state: current times the bipolar supply span.
    """
    if n_cells < 0:
        raise ValueError(f"n_cells must be >= 0, got {n_cells}")
    cell = cell or TunnellingSRAM()
    worst = max(cell.hold_current(k) for k in range(cell.n_states))
    return float(n_cells) * worst * 2.0 * cell.supply


def clock_tree_power_w(
    n_sinks: float,
    sink_cap_ff: float,
    wire_cap_nf: float,
    vdd: float,
    freq_hz: float,
    activity: float = 1.0,
) -> float:
    """Dynamic power of a global clock tree: C_total * V^2 * f.

    The clock switches every cycle (activity 1 by definition); ``activity``
    is exposed for gated-clock studies.
    """
    check_positive("vdd", vdd)
    check_positive("freq_hz", freq_hz)
    if n_sinks < 0 or sink_cap_ff < 0 or wire_cap_nf < 0:
        raise ValueError("capacitances and sink count must be >= 0")
    if not 0 <= activity <= 1:
        raise ValueError(f"activity must be in [0, 1], got {activity}")
    c_total_f = n_sinks * sink_cap_ff * 1e-15 + wire_cap_nf * 1e-9
    return c_total_f * vdd**2 * freq_hz * activity


def gals_clock_power_w(
    domain_sinks: list[float],
    sink_cap_ff: float,
    wire_cap_per_domain_nf: float,
    vdd: float,
    freq_hz: float,
    handshake_energy_pj: float = 1.0,
    crossings_hz: float = 0.0,
) -> float:
    """Clock power of a GALS partition plus wrapper handshake energy.

    Each domain clocks only its own sinks over a short local tree; the
    global spine disappears.  Crossing events cost handshake energy.
    """
    if not domain_sinks:
        raise ValueError("need at least one domain")
    total = 0.0
    for sinks in domain_sinks:
        total += clock_tree_power_w(
            sinks, sink_cap_ff, wire_cap_per_domain_nf, vdd, freq_hz
        )
    total += handshake_energy_pj * 1e-12 * crossings_hz
    return total


def clock_power_saving(
    n_sinks: float,
    n_domains: int,
    sink_cap_ff: float = 2.0,
    global_wire_cap_nf: float = 2.0,
    vdd: float = 1.0,
    freq_hz: float = 500e6,
    crossings_hz: float = 50e6,
) -> float:
    """Fractional clock-power saving of GALS versus one global tree.

    The sink power is unavoidable; the saving comes from replacing the
    global spine (whose capacitance scales with die span) by per-domain
    local trees (1/n_domains of the wire each, and shorter).
    """
    if n_domains < 1:
        raise ValueError(f"n_domains must be >= 1, got {n_domains}")
    baseline = clock_tree_power_w(n_sinks, sink_cap_ff, global_wire_cap_nf, vdd, freq_hz)
    # A domain's local tree spans die/sqrt(n), so total tree wire across
    # the n domains is ~global/sqrt(n): deeper partitions keep saving.
    per_domain_wire = global_wire_cap_nf / (n_domains * n_domains**0.5)
    gals = gals_clock_power_w(
        [n_sinks / n_domains] * n_domains,
        sink_cap_ff,
        per_domain_wire,
        vdd,
        freq_hz,
        crossings_hz=crossings_hz,
    )
    return 1.0 - gals / baseline
