"""Interconnect delay models (paper Section 2.1).

Reproduces the section's quantitative anchors:

* distributed-RC delay of unrepeated wires (quadratic in length);
* optimal repeater insertion (linearises the delay at area/power cost);
* the Liu & Pai [20] driver-sizing observation: even at the 120 nm node,
  driving 1 mm in under 100 ps takes a driver of extreme W/L (order
  100:1) — the motivation for architectures that simply never drive long
  wires, like the paper's locally-connected fabric.
"""

from __future__ import annotations

import math

from repro.util.technology import TechnologyNode
from repro.util.validate import check_positive

#: Representative driver channel resistance (ohm) for a *minimum-size*
#: device; the effective resistance scales inversely with W/L.
R_DRIVER_MIN_OHM = 60_000.0

#: Gate capacitance of a minimum device (fF); repeater load term.
C_GATE_MIN_FF = 0.08


def unrepeated_delay_ps(node: TechnologyNode, length_um: float) -> float:
    """Elmore delay of a bare wire: 0.38 * R * C * L^2."""
    check_positive("length_um", length_um)
    return node.wire_rc_ps_per_um2 * length_um**2


def driven_delay_ps(
    node: TechnologyNode,
    length_um: float,
    drive_wl: float,
    load_ff: float = 2.0,
) -> float:
    """Delay of one driver of strength ``drive_wl`` into a wire + load.

    0.69 * R_drv * (C_wire + C_load) + 0.38 * R_wire * C_wire.
    """
    check_positive("length_um", length_um)
    check_positive("drive_wl", drive_wl)
    r_drv = R_DRIVER_MIN_OHM / drive_wl
    c_wire_ff = node.wire_c_ff_per_um * length_um
    driver_ps = 0.69 * r_drv * (c_wire_ff + load_ff) * 1e-3
    wire_ps = unrepeated_delay_ps(node, length_um)
    return driver_ps + wire_ps


def required_drive_wl(
    node: TechnologyNode,
    length_um: float,
    target_ps: float,
    load_ff: float = 2.0,
) -> float:
    """Smallest W/L meeting a delay target, or ``inf`` if unreachable.

    Solves ``driven_delay(wl) <= target`` for wl; the wire's own RC floor
    may exceed the target, in which case no driver helps (the Liu-Pai
    wall).
    """
    check_positive("target_ps", target_ps)
    wire_ps = unrepeated_delay_ps(node, length_um)
    if wire_ps >= target_ps:
        return math.inf
    c_wire_ff = node.wire_c_ff_per_um * length_um
    budget_ps = target_ps - wire_ps
    # 0.69 * (Rmin / wl) * C * 1e-3 <= budget  ->  wl >= ...
    return 0.69 * R_DRIVER_MIN_OHM * (c_wire_ff + load_ff) * 1e-3 / budget_ps


def optimal_repeater_segment_um(node: TechnologyNode) -> float:
    """Segment length minimising repeated-wire delay (standard result).

    L_opt = sqrt(2 * R_drv * C_gate / (0.38 * r_w * c_w)) for minimum-size
    repeaters; practical insertions use multiples of this.
    """
    rw = node.wire_r_ohm_per_um
    cw = node.wire_c_ff_per_um
    num = 2.0 * R_DRIVER_MIN_OHM * C_GATE_MIN_FF
    return math.sqrt(num / (0.38 * rw * cw))


def repeated_delay_ps(node: TechnologyNode, length_um: float) -> float:
    """Delay of an optimally repeated *and sized* wire (linear in length).

    The classic result for optimal repeater size and spacing:

        delay / length = 2 * sqrt(0.69 * R0 * C0 * 0.38 * r_w * c_w)

    with R0/C0 the minimum driver's resistance and gate capacitance.  This
    is the custom-silicon reference the paper's Section 2.1 compares FPGAs
    against ("fat global wires plus careful repeater insertion" [19]).
    """
    check_positive("length_um", length_um)
    r0c0_ps = R_DRIVER_MIN_OHM * C_GATE_MIN_FF * 1e-3  # ps
    rc = node.wire_rc_ps_per_um2  # ps/um^2
    return 2.0 * length_um * math.sqrt(0.69 * r0c0_ps * rc)


def local_hop_delay_ps(node: TechnologyNode, hop_um: float, drive_wl: float = 2.0) -> float:
    """Delay of one fabric-local hop — the only wire the platform uses."""
    return driven_delay_ps(node, hop_um, drive_wl)
