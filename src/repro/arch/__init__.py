"""Architecture analytics: area, configuration bits, wires, scaling, power.

The quantitative side of the reproduction — every in-text number of the
paper's Sections 2-5 has a parametric model here, compared against the
paper in :mod:`repro.arch.compare`.
"""

from repro.arch.area import (
    AreaBreakdown,
    CELL_PAIR_AREA_L2,
    FPGA_LUT4_AREA_L2,
    area_ratio,
    density_cells_per_cm2,
    fpga_area_l2,
    polymorphic_area_l2,
    routed_area_breakdown,
)
from repro.arch.compare import (
    area_claims_report,
    config_bits_report,
    power_claim_report,
    scaling_report,
)
from repro.arch.configbits import (
    CLBModel,
    bits_for_design,
    function_for_function_ratio,
    polymorphic_bits_per_block,
)
from repro.arch.fpga_baseline import FpgaBaseline, FpgaCost
from repro.arch.montecarlo import (
    FunctionalYieldResult,
    YieldResult,
    analytic_cell_yield,
    cell_fail_probability,
    compare_device_options,
    functional_fabric_yield,
    strict_margin_cell_yield,
)
from repro.arch.power import (
    clock_power_saving,
    clock_tree_power_w,
    config_plane_power_w,
    gals_clock_power_w,
)
from repro.arch.scaling import (
    PathDelay,
    custom_path,
    fpga_path,
    frequency_scaling_exponent,
    polymorphic_path,
    scaling_series,
)
from repro.arch.wires import (
    driven_delay_ps,
    local_hop_delay_ps,
    optimal_repeater_segment_um,
    repeated_delay_ps,
    required_drive_wl,
    unrepeated_delay_ps,
)

__all__ = [
    "AreaBreakdown",
    "CELL_PAIR_AREA_L2",
    "FPGA_LUT4_AREA_L2",
    "area_ratio",
    "density_cells_per_cm2",
    "fpga_area_l2",
    "polymorphic_area_l2",
    "routed_area_breakdown",
    "FunctionalYieldResult",
    "YieldResult",
    "analytic_cell_yield",
    "cell_fail_probability",
    "compare_device_options",
    "functional_fabric_yield",
    "strict_margin_cell_yield",
    "area_claims_report",
    "config_bits_report",
    "power_claim_report",
    "scaling_report",
    "CLBModel",
    "bits_for_design",
    "function_for_function_ratio",
    "polymorphic_bits_per_block",
    "FpgaBaseline",
    "FpgaCost",
    "clock_power_saving",
    "clock_tree_power_w",
    "config_plane_power_w",
    "gals_clock_power_w",
    "PathDelay",
    "custom_path",
    "fpga_path",
    "frequency_scaling_exponent",
    "polymorphic_path",
    "scaling_series",
    "driven_delay_ps",
    "local_hop_delay_ps",
    "optimal_repeater_segment_um",
    "repeated_delay_ps",
    "required_drive_wl",
    "unrepeated_delay_ps",
]
