"""Unit tests for repro.util.constants."""

import math

import numpy as np
import pytest

from repro.util.constants import (
    back_gate_coupling,
    db10,
    logistic,
    oxide_capacitance_f_per_m2,
    softplus,
    thermal_voltage,
)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, abs=1e-4)

    def test_scales_linearly_with_temperature(self):
        assert thermal_voltage(600.0) == pytest.approx(2 * thermal_voltage(300.0))

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            thermal_voltage(0.0)
        with pytest.raises(ValueError):
            thermal_voltage(-10.0)


class TestOxideCapacitance:
    def test_paper_stack_value(self):
        # 1.5 nm SiO2: C_ox = eps0 * 3.9 / 1.5e-9 ~ 0.023 F/m^2.
        c = oxide_capacitance_f_per_m2(1.5)
        assert c == pytest.approx(0.02302, rel=1e-3)

    def test_thinner_oxide_higher_capacitance(self):
        assert oxide_capacitance_f_per_m2(1.0) > oxide_capacitance_f_per_m2(2.0)

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ValueError):
            oxide_capacitance_f_per_m2(0.0)


class TestBackGateCoupling:
    def test_symmetric_stack_is_unity(self):
        # The paper's Fig. 2 device: 1.5 nm top and bottom oxides.
        assert back_gate_coupling(1.5, 1.5) == pytest.approx(1.0)

    def test_thicker_back_oxide_reduces_coupling(self):
        assert back_gate_coupling(1.5, 3.0) == pytest.approx(0.5)


class TestSoftplus:
    def test_limits(self):
        assert softplus(50.0) == pytest.approx(50.0, rel=1e-6)
        assert softplus(-50.0) == pytest.approx(0.0, abs=1e-12)

    def test_at_zero(self):
        assert softplus(0.0) == pytest.approx(math.log(2.0))

    def test_no_overflow_at_extremes(self):
        out = softplus(np.array([-1e4, 0.0, 1e4]))
        assert np.all(np.isfinite(out))

    def test_scale_parameter(self):
        # softplus(x, s) = s * softplus(x/s).
        assert softplus(1.0, 0.1) == pytest.approx(0.1 * softplus(10.0))

    def test_monotone(self):
        x = np.linspace(-5, 5, 101)
        y = softplus(x)
        assert np.all(np.diff(y) > 0)


class TestLogistic:
    def test_midpoint(self):
        assert logistic(0.0) == pytest.approx(0.5)

    def test_saturation(self):
        assert logistic(100.0) == pytest.approx(1.0)
        assert logistic(-100.0) == pytest.approx(0.0, abs=1e-12)

    def test_array_shape_preserved(self):
        x = np.zeros((3, 4))
        assert logistic(x).shape == (3, 4)


class TestDb10:
    def test_decade(self):
        assert db10(10.0) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            db10(0.0)
