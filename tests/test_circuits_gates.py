"""Unit tests for the configurable gate structures (paper Figs. 3-5)."""

import numpy as np
import pytest

from repro.circuits.gates import (
    ConfigurableInverter,
    ConfigurableNAND2,
    TristateDriver,
)


@pytest.fixture(scope="module")
def inv():
    return ConfigurableInverter(vdd=1.0)


@pytest.fixture(scope="module")
def nand():
    return ConfigurableNAND2(vdd=1.0)


class TestFig3Inverter:
    """The Fig. 3 VTC family is the paper's core device-level evidence."""

    def test_active_config_switches(self, inv):
        res = inv.vtc(0.0)
        assert res.switches
        # Symmetric devices -> threshold near VDD/2.
        assert res.threshold == pytest.approx(0.5, abs=0.1)

    def test_stuck_high_at_minus_1p5(self, inv):
        assert inv.vtc(-1.5).is_stuck_high

    def test_stuck_low_at_plus_1p5(self, inv):
        assert inv.vtc(+1.5).is_stuck_low

    def test_threshold_moves_monotonically_with_bias(self, inv):
        # Negative bias weakens the NMOS -> switching point moves to higher
        # VIN; positive bias the reverse (Fig. 3's curve ordering).
        t_neg = inv.vtc(-0.5).threshold
        t_zero = inv.vtc(0.0).threshold
        t_pos = inv.vtc(+0.5).threshold
        assert t_pos < t_zero < t_neg

    def test_family_covers_fig3_biases(self, inv):
        family = inv.vtc_family()
        assert len(family) == 5
        assert family[0].is_stuck_high
        assert family[-1].is_stuck_low
        assert all(r.switches for r in family[1:-1])

    def test_full_rail_swing_when_active(self, inv):
        res = inv.vtc(0.0)
        assert res.vout.max() > 0.95
        assert res.vout.min() < 0.05

    def test_vtc_monotone_nonincreasing(self, inv):
        res = inv.vtc(0.0)
        assert np.all(np.diff(res.vout) <= 1e-9)

    def test_logic_output_inverts(self, inv):
        assert inv.logic_output(0, 0.0) == 1
        assert inv.logic_output(1, 0.0) == 0

    def test_rejects_bad_vdd(self):
        with pytest.raises(ValueError):
            ConfigurableInverter(vdd=-1.0)


class TestFig4NAND:
    """The Fig. 4 configuration table, row by row.

    Note the table prints the *complemented* single-input functions: with B
    forced on, NAND(A, 1) = NOT A (the paper's overbars are lost in the
    text extraction; see EXPERIMENTS.md E2).
    """

    def test_both_active_is_nand(self, nand):
        assert nand.classify(0.0, 0.0) == "NAND"

    def test_b_forced_on_gives_not_a(self, nand):
        assert nand.classify(0.0, +2.0) == "NOT_A"

    def test_a_forced_on_gives_not_b(self, nand):
        assert nand.classify(+2.0, 0.0) == "NOT_B"

    def test_any_forced_off_gives_one(self, nand):
        assert nand.classify(-2.0, -2.0) == "ONE"
        assert nand.classify(-2.0, 0.0) == "ONE"
        assert nand.classify(0.0, -2.0) == "ONE"

    def test_both_forced_on_gives_zero(self, nand):
        assert nand.classify(+2.0, +2.0) == "ZERO"

    def test_nand_truth_values(self, nand):
        t = nand.logic_table(0.0, 0.0)
        assert t == {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}

    def test_output_levels_are_clean(self, nand):
        # No configuration in the Fig. 4 set may produce an indeterminate
        # level on any input combination.
        for ba, bb in [(0, 0), (0, 2), (2, 0), (-2, -2), (2, 2)]:
            t = nand.logic_table(float(ba), float(bb))
            assert None not in t.values(), (ba, bb)


class TestFig5Driver:
    def test_mode_decoding_matches_table(self):
        drv = TristateDriver()
        assert drv.mode_for_biases(0.0, -2.0) == "INVERTING"
        assert drv.mode_for_biases(+2.0, 0.0) == "NON_INVERTING"
        assert drv.mode_for_biases(-2.0, -2.0) == "OPEN"

    def test_inverting_drive(self):
        drv = TristateDriver()
        assert drv.drive(0, "INVERTING") == 1
        assert drv.drive(1, "INVERTING") == 0

    def test_non_inverting_drive(self):
        drv = TristateDriver()
        assert drv.drive(0, "NON_INVERTING") == 0
        assert drv.drive(1, "NON_INVERTING") == 1

    def test_open_drives_nothing(self):
        drv = TristateDriver()
        assert drv.drive(0, "OPEN") is None
        assert drv.drive(1, "OPEN") is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TristateDriver().drive(0, "WEIRD")

    def test_analog_vtc_modes(self):
        drv = TristateDriver()
        inv = drv.analog_vtc("INVERTING")
        buf = drv.analog_vtc("NON_INVERTING")
        assert drv.analog_vtc("OPEN") is None
        # Inverting curve falls, buffered curve rises.
        assert inv.vout[0] > inv.vout[-1]
        assert buf.vout[0] < buf.vout[-1]
