"""Unit tests for the technology-node table."""

import pytest

from repro.util.technology import NODES, lambda_nm, node, nodes_descending


class TestNodeLookup:
    def test_known_node(self):
        n = node("130nm")
        assert n.feature_nm == 130.0

    def test_unknown_node_lists_alternatives(self):
        with pytest.raises(KeyError, match="250nm"):
            node("7nm")

    def test_lambda_is_half_feature(self):
        assert lambda_nm("90nm") == pytest.approx(45.0)


class TestScalingMonotonicity:
    """The scaling arguments of Section 2 rely on these trends."""

    def test_gate_delay_shrinks_with_feature(self):
        ladder = nodes_descending()
        delays = [n.gate_delay_ps for n in ladder]
        assert delays == sorted(delays, reverse=True)

    def test_wire_resistance_grows_as_wires_narrow(self):
        ladder = nodes_descending()
        rs = [n.wire_r_ohm_per_um for n in ladder]
        assert rs == sorted(rs)

    def test_wire_rc_coefficient_grows(self):
        # Distributed RC per um^2 worsens with scaling: the root cause of
        # the paper's "interconnect will dominate" argument.
        ladder = nodes_descending()
        rc = [n.wire_rc_ps_per_um2 for n in ladder]
        assert rc == sorted(rc)

    def test_supply_voltage_non_increasing(self):
        ladder = nodes_descending()
        vdd = [n.vdd for n in ladder]
        assert all(a >= b for a, b in zip(vdd, vdd[1:]))

    def test_ladder_covers_paper_range(self):
        # From the paper's present (250 nm) into the DSM future it argues
        # about.
        names = set(NODES)
        assert {"250nm", "130nm", "90nm", "22nm"} <= names
