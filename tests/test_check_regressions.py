"""Tests for the CI benchmark-regression gate (`benchmarks/check_regressions.py`).

The gate must demonstrably fail on a synthetic regression and pass on
the committed trajectory — the acceptance bar for wiring it into the
example-smoke CI job after ``run_all.py``.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

from check_regressions import (  # noqa: E402 (path bootstrap above)
    METRICS,
    PINNED_DESIGNS,
    check,
    main,
)


@pytest.fixture()
def committed() -> dict:
    return json.loads((BENCHMARKS / "BENCH_results.json").read_text())


def test_committed_trajectory_passes(committed):
    assert check(committed, committed) == []


def test_pinned_designs_present_in_committed_trajectory(committed):
    quality = committed["microbench"]["pnr"]["quality"]
    for design in PINNED_DESIGNS:
        assert design in quality, design
        for metric in METRICS:
            assert metric in quality[design], (design, metric)


def test_synthetic_regression_fails(committed):
    fresh = copy.deepcopy(committed)
    row = fresh["microbench"]["pnr"]["quality"]["rca8"]
    row["cycle_time"] = int(row["cycle_time"] * 1.2)  # 20% > 10% tolerance
    violations = check(committed, fresh)
    assert len(violations) == 1
    assert "rca8.cycle_time" in violations[0]


def test_drift_within_tolerance_passes(committed):
    fresh = copy.deepcopy(committed)
    for design in PINNED_DESIGNS:
        row = fresh["microbench"]["pnr"]["quality"][design]
        for metric in METRICS:
            row[metric] = int(row[metric] * 1.05)  # 5% < 10% tolerance
    assert check(committed, fresh) == []


def test_improvement_passes(committed):
    fresh = copy.deepcopy(committed)
    row = fresh["microbench"]["pnr"]["quality"]["mul3_array"]
    row["wirelength"] = int(row["wirelength"] * 0.5)
    assert check(committed, fresh) == []


def test_missing_design_fails(committed):
    fresh = copy.deepcopy(committed)
    del fresh["microbench"]["pnr"]["quality"]["mul2_array"]
    violations = check(committed, fresh)
    assert any("mul2_array" in v and "missing" in v for v in violations)


def test_missing_metric_fails(committed):
    fresh = copy.deepcopy(committed)
    del fresh["microbench"]["pnr"]["quality"]["rca8"]["wirelength"]
    violations = check(committed, fresh)
    assert any("rca8.wirelength" in v for v in violations)


def test_new_design_in_fresh_is_not_gated(committed):
    fresh = copy.deepcopy(committed)
    fresh["microbench"]["pnr"]["quality"]["brand_new"] = {"cycle_time": 10**9}
    assert check(committed, fresh) == []


def test_empty_fresh_results_fail(committed):
    assert check(committed, {}) != []


def test_cli_round_trip(tmp_path, committed, capsys):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(committed))
    good = tmp_path / "fresh_good.json"
    good.write_text(json.dumps(committed))
    fresh = copy.deepcopy(committed)
    fresh["microbench"]["pnr"]["quality"]["rca8"]["wirelength"] *= 2
    bad = tmp_path / "fresh_bad.json"
    bad.write_text(json.dumps(fresh))
    assert main(["--baseline", str(base), "--fresh", str(good)]) == 0
    assert main(["--baseline", str(base), "--fresh", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSIONS" in out


def test_cli_refuses_self_comparison(tmp_path, committed, capsys):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(committed))
    assert main(["--baseline", str(base), "--fresh", str(base)]) == 2
    assert "same file" in capsys.readouterr().out


def test_tolerance_is_adjustable(committed):
    fresh = copy.deepcopy(committed)
    row = fresh["microbench"]["pnr"]["quality"]["rca8"]
    row["cycle_time"] = int(row["cycle_time"] * 1.15)
    assert check(committed, fresh, tolerance=0.10) != []
    assert check(committed, fresh, tolerance=0.25) == []


def test_compile_s_is_recorded_but_never_gated(committed, capsys):
    """A 10x compile-time blowup must not fail the gate (machine noise),
    but the drift table must still show the trajectory."""
    from check_regressions import REPORT_ONLY_METRICS

    assert "compile_s" in REPORT_ONLY_METRICS
    fresh = copy.deepcopy(committed)
    for design in PINNED_DESIGNS:
        row = fresh["microbench"]["pnr"]["quality"][design]
        if "compile_s" in row:
            row["compile_s"] = row["compile_s"] * 10
    assert check(committed, fresh) == []


def test_cli_prints_compile_s_trajectory(tmp_path, committed, capsys):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(committed))
    fresh = tmp_path / "fresh.json"
    fresh.write_text(json.dumps(committed))
    assert main(["--baseline", str(base), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "compile_s" in out
    assert "recorded, not gated" in out


def test_service_rows_are_printed_but_never_gated(tmp_path, committed, capsys):
    """The compile-service rows show in the drift table and cannot fail
    the gate no matter how badly they move (ISSUE 7: printed, not gated)."""
    fresh = copy.deepcopy(committed)
    svc = fresh.setdefault("microbench", {}).setdefault("service", {})
    svc["throughput"] = {"speedup": 0.01, "jobs_per_s": 0.1, "cache_hit_rate": 0.0}
    svc["incremental"] = {"incremental_speedup": 0.5, "cold_s": 1, "incremental_s": 99}
    assert check(committed, fresh) == []

    base = tmp_path / "base.json"
    base.write_text(json.dumps(committed))
    fresh_p = tmp_path / "fresh.json"
    fresh_p.write_text(json.dumps(fresh))
    assert main(["--baseline", str(base), "--fresh", str(fresh_p)]) == 0
    out = capsys.readouterr().out
    assert "service.throughput" in out
    assert "incremental_speedup" in out
